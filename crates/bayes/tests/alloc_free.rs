//! Asserts the zero-steady-state-allocation contract of the incremental
//! engines: once a `PosteriorUpdater`/`BlackBoxUpdater` exists, applying
//! monotone count deltas and reading marginal views must not touch the
//! heap.
//!
//! A counting `#[global_allocator]` wraps the system allocator. This
//! file deliberately contains a single `#[test]` — the counter is
//! process-global, and a concurrently running test would add its own
//! allocations to the window under measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::BlackBoxInference;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_updates_do_not_allocate() {
    // --- White-box engine ---
    let engine = WhiteBoxInference::with_resolution(
        ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
        ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        CoincidencePrior::IndifferenceUniform,
        Resolution {
            a_cells: 32,
            b_cells: 32,
            q_cells: 8,
        },
    );
    let mut updater = engine.updater();
    // Warm up: a few checkpoints so any lazy one-time work is done.
    for step in 1..=5u64 {
        let counts = JointCounts::from_raw(step * 200, step, step * 2, step * 2);
        updater.update_to(&counts);
    }

    let before = allocation_count();
    for step in 6..=40u64 {
        let counts = JointCounts::from_raw(step * 200, step, step * 2, step * 2);
        updater.update_to(&counts);
        let a99 = updater.marginal_a().percentile(0.99);
        let b99 = updater.marginal_b().percentile(0.99);
        let bc = updater.marginal_b().confidence(1e-3);
        let am = updater.marginal_a().mean();
        assert!(a99.is_finite() && b99.is_finite() && bc.is_finite() && am.is_finite());
    }
    let whitebox_allocs = allocation_count() - before;
    assert_eq!(
        whitebox_allocs, 0,
        "white-box steady state allocated {whitebox_allocs} times"
    );

    // --- Black-box engine ---
    let prior = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
    let inference = BlackBoxInference::new(prior, 256);
    let mut bb = inference.updater();
    for d in 1..=5u64 {
        bb.update_to(d * 100, d);
    }

    let before = allocation_count();
    for d in 6..=40u64 {
        bb.update_to(d * 100, d);
        let conf = bb.confidence(1e-2);
        let p99 = bb.percentile(0.99);
        let mean = bb.posterior_view().mean();
        assert!(conf.is_finite() && p99.is_finite() && mean.is_finite());
    }
    let blackbox_allocs = allocation_count() - before;
    assert_eq!(
        blackbox_allocs, 0,
        "black-box steady state allocated {blackbox_allocs} times"
    );
}
