//! Golden-equivalence suite: the incremental updaters must agree with
//! the batch `posterior()` path.
//!
//! * `rebase()` recomputes in place with the exact batch loop, so its
//!   marginals are **bit-for-bit** equal to the batch marginals.
//! * the delta path (`update_to` across checkpoints) accumulates the
//!   same log-weights up to floating-point re-association; across
//!   realistic sequences the drift is ~1e-13 relative, far below the
//!   7 significant digits the experiment artefacts print. The tests
//!   bound it at 1e-9 relative.
//!
//! Sequences are generated with a seeded LCG (the crate has no RNG
//! dependency), covering all four [`CoincidencePrior`] variants plus
//! zero-delta and out-of-order (non-monotone) checkpoints.

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::BlackBoxInference;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};

struct Lcg(u64);

impl Lcg {
    fn next_u32(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }

    fn below(&mut self, n: u32) -> u64 {
        u64::from(self.next_u32() % n)
    }
}

const RES: Resolution = Resolution {
    a_cells: 24,
    b_cells: 24,
    q_cells: 8,
};

fn engine(coincidence: CoincidencePrior) -> WhiteBoxInference {
    WhiteBoxInference::with_resolution(
        ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
        ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        coincidence,
        RES,
    )
}

fn assert_close(incremental: f64, batch: f64, what: &str) {
    let tol = 1e-9 * batch.abs().max(f64::MIN_POSITIVE);
    assert!(
        (incremental - batch).abs() <= tol,
        "{what}: incremental {incremental:e} vs batch {batch:e}"
    );
}

fn assert_bits_equal(incremental: &[f64], batch: &[f64], what: &str) {
    assert_eq!(incremental.len(), batch.len(), "{what}: length mismatch");
    for (i, (a, b)) in incremental.iter().zip(batch).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: cell {i} differs: {a:e} vs {b:e}"
        );
    }
}

fn random_monotone_step(rng: &mut Lcg, counts: &JointCounts) -> JointCounts {
    JointCounts::from_raw(
        counts.demands() + 50 + rng.below(200),
        counts.both_failed() + rng.below(2),
        counts.only_a_failed() + rng.below(3),
        counts.only_b_failed() + rng.below(3),
    )
}

#[test]
fn delta_path_tracks_batch_for_all_coincidence_priors() {
    for (variant, coincidence) in [
        CoincidencePrior::IndifferenceUniform,
        CoincidencePrior::ScaledUniform(0.5),
        CoincidencePrior::FixedFraction(0.3),
        CoincidencePrior::Independent,
    ]
    .into_iter()
    .enumerate()
    {
        let engine = engine(coincidence);
        let mut updater = engine.updater();
        let mut rng = Lcg(0x9E37_79B9 + variant as u64);
        let mut counts = JointCounts::new();
        for _ in 0..12 {
            counts = random_monotone_step(&mut rng, &counts);
            updater.update_to(&counts);
            let batch = engine.posterior(&counts);
            let (batch_a, batch_b) = (batch.marginal_a(), batch.marginal_b());
            let (inc_a, inc_b) = (updater.marginal_a(), updater.marginal_b());
            for c in [0.90, 0.99] {
                assert_close(
                    inc_a.percentile(c),
                    batch_a.percentile(c),
                    &format!("{coincidence:?} A p{c}"),
                );
                assert_close(
                    inc_b.percentile(c),
                    batch_b.percentile(c),
                    &format!("{coincidence:?} B p{c}"),
                );
            }
            assert_close(inc_a.mean(), batch_a.mean(), "A mean");
            assert_close(
                inc_b.confidence(1e-3),
                batch_b.confidence(1e-3),
                "B confidence",
            );
        }
    }
}

#[test]
fn rebase_is_bit_for_bit_equal_to_batch() {
    let engine = engine(CoincidencePrior::IndifferenceUniform);
    let mut updater = engine.updater();
    let mut rng = Lcg(42);
    let mut counts = JointCounts::new();
    for _ in 0..6 {
        counts = random_monotone_step(&mut rng, &counts);
        updater.rebase(&counts);
        let batch = engine.posterior(&counts);
        assert_bits_equal(
            updater.marginal_a_posterior().masses(),
            batch.marginal_a().masses(),
            "marginal A after rebase",
        );
        assert_bits_equal(
            updater.marginal_b_posterior().masses(),
            batch.marginal_b().masses(),
            "marginal B after rebase",
        );
        assert_eq!(
            updater.marginal_a().percentile(0.99).to_bits(),
            batch.marginal_a().percentile(0.99).to_bits(),
            "p99 A after rebase"
        );
    }
}

#[test]
fn fresh_updater_matches_prior_only_batch() {
    let engine = engine(CoincidencePrior::IndifferenceUniform);
    let updater = engine.updater();
    let batch = engine.posterior(&JointCounts::new());
    assert_bits_equal(
        updater.marginal_a_posterior().masses(),
        batch.marginal_a().masses(),
        "prior-only marginal A",
    );
    assert_bits_equal(
        updater.marginal_b_posterior().masses(),
        batch.marginal_b().masses(),
        "prior-only marginal B",
    );
}

#[test]
fn zero_delta_checkpoint_is_a_no_op() {
    let engine = engine(CoincidencePrior::IndifferenceUniform);
    let mut updater = engine.updater();
    let counts = JointCounts::from_raw(1_000, 1, 3, 2);
    updater.update_to(&counts);
    let before_a: Vec<u64> = updater
        .marginal_a()
        .masses()
        .iter()
        .map(|m| m.to_bits())
        .collect();
    let before_p99 = updater.marginal_b().percentile(0.99).to_bits();
    updater.update_to(&counts);
    let after_a: Vec<u64> = updater
        .marginal_a()
        .masses()
        .iter()
        .map(|m| m.to_bits())
        .collect();
    assert_eq!(before_a, after_a, "zero-delta update changed marginal A");
    assert_eq!(
        before_p99,
        updater.marginal_b().percentile(0.99).to_bits(),
        "zero-delta update changed B p99"
    );
    assert_eq!(updater.counts().demands(), 1_000);
}

#[test]
fn out_of_order_counts_rebase_to_exact_batch() {
    let engine = engine(CoincidencePrior::IndifferenceUniform);
    let mut updater = engine.updater();
    updater.update_to(&JointCounts::from_raw(5_000, 2, 10, 8));
    // Checkpoint moves backwards (fewer demands): the updater must fall
    // back to an exact recompute and agree with batch to the bit.
    let earlier = JointCounts::from_raw(2_000, 1, 4, 3);
    updater.update_to(&earlier);
    assert_eq!(updater.counts().demands(), 2_000);
    let batch = engine.posterior(&earlier);
    assert_bits_equal(
        updater.marginal_a_posterior().masses(),
        batch.marginal_a().masses(),
        "marginal A after out-of-order checkpoint",
    );
    assert_bits_equal(
        updater.marginal_b_posterior().masses(),
        batch.marginal_b().masses(),
        "marginal B after out-of-order checkpoint",
    );
}

#[test]
fn blackbox_updater_tracks_batch() {
    let prior = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
    let inference = BlackBoxInference::new(prior, 256);
    let mut updater = inference.updater();
    let mut rng = Lcg(7);
    let (mut demands, mut failures) = (0u64, 0u64);
    for _ in 0..15 {
        demands += 20 + rng.below(500);
        failures += rng.below(3).min(demands - failures);
        updater.update_to(demands, failures);
        let batch = inference.posterior(demands, failures);
        assert_close(
            updater.confidence(1e-2),
            batch.confidence(1e-2),
            "black-box confidence",
        );
        assert_close(
            updater.percentile(0.99),
            batch.percentile(0.99),
            "black-box p99",
        );
    }
    // Rebase restores exact batch bits.
    updater.rebase(demands, failures);
    let batch = inference.posterior(demands, failures);
    assert_bits_equal(
        updater.posterior_view().masses(),
        batch.masses(),
        "black-box masses after rebase",
    );
}

#[test]
fn blackbox_out_of_order_rebases() {
    let prior = ScaledBeta::new(1.0, 1.0, 0.1).unwrap();
    let inference = BlackBoxInference::new(prior, 128);
    let mut updater = inference.updater();
    updater.update_to(1_000, 5);
    // Failure count drops — impossible as a delta, must rebase.
    updater.update_to(1_500, 2);
    assert_eq!((updater.demands(), updater.failures()), (1_500, 2));
    let batch = inference.posterior(1_500, 2);
    assert_bits_equal(
        updater.posterior_view().masses(),
        batch.masses(),
        "black-box masses after out-of-order counts",
    );
}
