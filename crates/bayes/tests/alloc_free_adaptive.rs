//! Asserts the zero-steady-state-allocation contract of the adaptive
//! coarse-to-fine engine: checkpoints that keep the posterior inside
//! the current fine window (no refinement) must not touch the heap —
//! the coarse update, the window re-selection and the fine update are
//! all in-place.
//!
//! A counting `#[global_allocator]` wraps the system allocator. This
//! file deliberately contains a single `#[test]` — the counter is
//! process-global, and a concurrently running test would add its own
//! allocations to the window under measurement (`alloc_free.rs` covers
//! the fixed-grid engines the same way).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use wsu_bayes::adaptive::AdaptiveWhiteBox;
use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn adaptive_steady_state_does_not_allocate() {
    let engine = AdaptiveWhiteBox::new(
        ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
        ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        CoincidencePrior::IndifferenceUniform,
        Resolution::adaptive(),
    );
    let mut updater = engine.updater();
    // Warm up to a settled window: after 10k clean demands the next
    // refinement on this trajectory does not fire until ~16.8k demands,
    // so +100-demand increments up to 13k stay inside the window.
    updater.update_to(&JointCounts::from_raw(10_000, 0, 0, 0));
    let settled_refinements = updater.refinements();

    let before = allocation_count();
    for step in 1..=30u64 {
        let counts = JointCounts::from_raw(10_000 + step * 100, 0, 0, 0);
        updater.update_to(&counts);
        let a99 = updater.marginal_a().percentile(0.99);
        let b99 = updater.marginal_b().percentile(0.99);
        let bc = updater.marginal_b().confidence(1e-3);
        assert!(a99.is_finite() && b99.is_finite() && bc.is_finite());
    }
    let allocs = allocation_count() - before;

    // The window under measurement must really have been refinement-free,
    // otherwise the assertion below would test the wrong thing.
    assert_eq!(
        updater.refinements(),
        settled_refinements,
        "a refinement fired during the measurement window"
    );
    assert_eq!(allocs, 0, "adaptive steady state allocated {allocs} times");
}
