//! Property tests pinning the chunked kernels against the scalar
//! references in `wsu_bayes::kernels::scalar`, **bit for bit**, across
//! 32 seeded random shapes per kernel — including odd-length tails,
//! all-dead (`-inf`) slices and single-live-class updates — plus the
//! `fast_exp` == libm identity sweep the equivalence rests on.

use wsu_bayes::kernels::{self, scalar, Term, EXP_UNDERFLOW, LANES};
use wsu_simcore::rng::StreamRng;

const SEEDS: u64 = 32;

/// Random slice length that lands on every tail residue mod LANES,
/// including lengths shorter than one chunk.
fn random_len(rng: &mut StreamRng) -> usize {
    1 + rng.next_below(257) as usize
}

/// A random log-weight slice: mostly live cells in the realistic
/// shifted-log-weight band, a sprinkling of dead (`-inf`) cells, and
/// occasionally an entirely dead slice.
fn random_weights(rng: &mut StreamRng, len: usize) -> Vec<f64> {
    if rng.bernoulli(0.1) {
        return vec![f64::NEG_INFINITY; len];
    }
    (0..len)
        .map(|_| {
            if rng.bernoulli(0.15) {
                f64::NEG_INFINITY
            } else {
                // Spans deep underflow (< EXP_UNDERFLOW), the skip band
                // and the fast-exp range.
                rng.uniform(-800.0, 4.0)
            }
        })
        .collect()
}

/// A random per-cell log-probability table (finite, non-positive).
fn random_table(rng: &mut StreamRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.uniform(-20.0, 0.0)).collect()
}

/// Non-zero positive count delta, as the updaters pass.
fn random_delta(rng: &mut StreamRng) -> f64 {
    rng.next_below(500) as f64 + 1.0
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str, seed: u64) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: seed {seed} cell {i}: {g} vs {w}"
        );
    }
}

fn assert_bit_eq(got: f64, want: f64, what: &str, seed: u64) {
    assert_eq!(
        got.to_bits(),
        want.to_bits(),
        "{what}: seed {seed}: {got} vs {want}"
    );
}

#[test]
fn axpy_matches_scalar() {
    for seed in 0..SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        let len = random_len(&mut rng);
        let base = random_weights(&mut rng, len);
        let p = random_table(&mut rng, len);
        let d = random_delta(&mut rng);
        let mut chunked = base.clone();
        let mut reference = base;
        kernels::axpy(&mut chunked, &p, d);
        scalar::axpy(&mut reference, &p, d);
        assert_bits_eq(&chunked, &reference, "axpy", seed);
    }
}

#[test]
fn axpy_max_matches_scalar() {
    for seed in 0..SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        let len = random_len(&mut rng);
        let base = random_weights(&mut rng, len);
        let p = random_table(&mut rng, len);
        let d = random_delta(&mut rng);
        let mut chunked = base.clone();
        let mut reference = base;
        let got = kernels::axpy_max(&mut chunked, &p, d);
        let want = scalar::axpy_max(&mut reference, &p, d);
        assert_bits_eq(&chunked, &reference, "axpy_max weights", seed);
        assert_bit_eq(got, want, "axpy_max max", seed);
    }
}

#[test]
fn fused_axpy_max_matches_scalar_for_one_to_four_terms() {
    for seed in 0..SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        let len = random_len(&mut rng);
        let base = random_weights(&mut rng, len);
        // Single-live-class updates (one term) up to the full four-term
        // fused update of the white-box grid.
        let n_terms = 1 + rng.next_below(4) as usize;
        let tables: Vec<Vec<f64>> = (0..n_terms).map(|_| random_table(&mut rng, len)).collect();
        let deltas: Vec<f64> = (0..n_terms).map(|_| random_delta(&mut rng)).collect();
        let terms: Vec<Term<'_>> = tables
            .iter()
            .zip(&deltas)
            .map(|(t, &d)| (t.as_slice(), d))
            .collect();
        let mut chunked = base.clone();
        let mut reference = base;
        let got = kernels::fused_axpy_max(&mut chunked, &terms);
        let want = scalar::fused_axpy_max(&mut reference, &terms);
        assert_bits_eq(&chunked, &reference, "fused_axpy_max weights", seed);
        assert_bit_eq(got, want, "fused_axpy_max max", seed);
    }
}

#[test]
fn recompute_max_matches_scalar_for_zero_to_four_terms() {
    for seed in 0..SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        let len = random_len(&mut rng);
        let prior = random_weights(&mut rng, len);
        let n_terms = rng.next_below(5) as usize;
        let tables: Vec<Vec<f64>> = (0..n_terms).map(|_| random_table(&mut rng, len)).collect();
        let deltas: Vec<f64> = (0..n_terms).map(|_| random_delta(&mut rng)).collect();
        let terms: Vec<Term<'_>> = tables
            .iter()
            .zip(&deltas)
            .map(|(t, &d)| (t.as_slice(), d))
            .collect();
        let mut chunked = vec![0.0; len];
        let mut reference = vec![0.0; len];
        let got = kernels::recompute_max(&mut chunked, &prior, &terms);
        let want = scalar::recompute_max(&mut reference, &prior, &terms);
        assert_bits_eq(&chunked, &reference, "recompute_max weights", seed);
        assert_bit_eq(got, want, "recompute_max max", seed);
    }
}

#[test]
fn exp_weights_matches_scalar() {
    for seed in 0..SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        let len = random_len(&mut rng);
        let w = random_weights(&mut rng, len);
        let max = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        let mut chunked = vec![f64::NAN; len];
        let mut reference = vec![f64::NAN; len];
        kernels::exp_weights(&w, max, &mut chunked);
        scalar::exp_weights(&w, max, &mut reference);
        assert_bits_eq(&chunked, &reference, "exp_weights", seed);
    }
}

#[test]
fn exp_stride_sums_long_stride_matches_scalar() {
    // q beyond the interleaved path's stack buffer exercises the serial
    // fallback; the association must not change with it.
    for seed in 0..SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        let na = 1 + rng.next_below(5) as usize;
        let nb = 1 + rng.next_below(5) as usize;
        let q = 65 + rng.next_below(40) as usize;
        let w = random_weights(&mut rng, na * nb * q);
        let max = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        let (mut a_got, mut b_got) = (vec![f64::NAN; na], vec![f64::NAN; nb]);
        let (mut a_want, mut b_want) = (vec![f64::NAN; na], vec![f64::NAN; nb]);
        kernels::exp_stride_sums(&w, max, q, &mut a_got, &mut b_got);
        scalar::exp_stride_sums(&w, max, q, &mut a_want, &mut b_want);
        assert_bits_eq(&a_got, &a_want, "exp_stride_sums long a", seed);
        assert_bits_eq(&b_got, &b_want, "exp_stride_sums long b", seed);
    }
}

#[test]
fn exp_stride_sums_matches_scalar() {
    for seed in 0..SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        // Random grid shapes, with q deliberately hitting odd lengths
        // and sub-chunk strides.
        let na = 1 + rng.next_below(9) as usize;
        let nb = 1 + rng.next_below(9) as usize;
        let q = 1 + rng.next_below(11) as usize;
        let w = random_weights(&mut rng, na * nb * q);
        let max = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        let (mut a_got, mut b_got) = (vec![f64::NAN; na], vec![f64::NAN; nb]);
        let (mut a_want, mut b_want) = (vec![f64::NAN; na], vec![f64::NAN; nb]);
        kernels::exp_stride_sums(&w, max, q, &mut a_got, &mut b_got);
        scalar::exp_stride_sums(&w, max, q, &mut a_want, &mut b_want);
        assert_bits_eq(&a_got, &a_want, "exp_stride_sums a", seed);
        assert_bits_eq(&b_got, &b_want, "exp_stride_sums b", seed);
    }
}

#[test]
fn all_dead_slices_stay_dead_through_every_kernel() {
    let len = 23; // odd tail on purpose
    let p = vec![-1.5; len];
    let mut w = vec![f64::NEG_INFINITY; len];
    let max = kernels::axpy_max(&mut w, &p, 7.0);
    assert!(max.is_infinite() && max < 0.0);
    assert!(w.iter().all(|v| v.is_infinite() && *v < 0.0));
    let max = kernels::fused_axpy_max(&mut w, &[(&p, 3.0), (&p, 1.0)]);
    assert!(max.is_infinite() && max < 0.0);
    let mut x = vec![f64::NAN; len];
    kernels::exp_weights(&w, 0.0, &mut x);
    assert!(x.iter().all(|v| v.to_bits() == 0.0f64.to_bits()));
    let (mut a, mut b) = (vec![f64::NAN; 1], vec![f64::NAN; 1]);
    kernels::exp_stride_sums(&w, 0.0, len, &mut a, &mut b);
    assert_eq!(a[0].to_bits(), 0.0f64.to_bits());
    assert_eq!(b[0].to_bits(), 0.0f64.to_bits());
}

#[test]
fn fast_exp_is_bit_identical_to_libm() {
    // Random sweep across the whole band the kernels produce, both the
    // fast path (2^-54 ≤ |x| < 512) and every delegation band.
    let mut rng = StreamRng::from_seed(1234);
    for _ in 0..200_000 {
        let x = rng.uniform(-800.0, 710.0);
        assert_eq!(
            kernels::fast_exp(x).to_bits(),
            x.exp().to_bits(),
            "fast_exp({x})"
        );
    }
    // Edge cases: zeros, subnormal-adjacent, the fast-path boundaries,
    // the underflow threshold, overflow and non-finite inputs.
    let edges = [
        0.0,
        -0.0,
        1e-300,
        -1e-300,
        f64::from_bits(0x3c90000000000000), // 2^-54, fast-path lower edge
        f64::from_bits(0x3c8fffffffffffff), // just below it
        511.9999999999999,
        512.0,
        -511.9999999999999,
        -512.0,
        EXP_UNDERFLOW,
        EXP_UNDERFLOW - 1.0,
        -745.133219101941,
        709.782712893384,
        710.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        f64::EPSILON,
        1.0,
        -1.0,
    ];
    for x in edges {
        assert_eq!(
            kernels::fast_exp(x).to_bits(),
            x.exp().to_bits(),
            "fast_exp({x})"
        );
    }
    assert!(kernels::fast_exp(f64::NAN).is_nan());
    // And the 4-lane form agrees with the scalar one on mixed chunks.
    for seed in 0..SEEDS {
        let mut rng = StreamRng::from_seed(seed);
        let chunk = [
            rng.uniform(-800.0, 4.0),
            rng.uniform(-520.0, -500.0), // straddles the fast-path edge
            rng.uniform(-1e-16, 1e-16),  // below 2^-54: delegation band
            rng.uniform(-40.0, 0.0),
        ];
        let got = kernels::fast_exp4(chunk);
        for l in 0..LANES {
            assert_eq!(
                got[l].to_bits(),
                chunk[l].exp().to_bits(),
                "fast_exp4 lane {l} of {chunk:?}"
            );
        }
    }
}
