//! Monte-Carlo cross-check of the white-box grid posterior.
//!
//! The grid integration in `wsu_bayes::whitebox` is the numerical heart
//! of the reproduction. This test validates it against a completely
//! independent estimator: importance sampling from the prior
//! (`p_A ~ ScaledBeta`, `p_B ~ ScaledBeta`, `q ~ U[0,1]`,
//! `p_AB = q·min(p_A, p_B)`) with multinomial likelihood weights.

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};
use wsu_simcore::rng::StreamRng;

/// Debug builds use a smaller sample (and a looser tolerance) so the
/// cross-check stays inside a routine `cargo test` budget; release
/// builds run the full-strength check.
#[cfg(debug_assertions)]
const SAMPLES: usize = 60_000;
#[cfg(not(debug_assertions))]
const SAMPLES: usize = 400_000;

#[cfg(debug_assertions)]
const TOLERANCE: f64 = 0.05;
#[cfg(not(debug_assertions))]
const TOLERANCE: f64 = 0.02;

#[cfg(debug_assertions)]
const MIN_ESS: f64 = 800.0;
#[cfg(not(debug_assertions))]
const MIN_ESS: f64 = 5_000.0;

struct McPosterior {
    /// (p_A, p_B, weight) samples.
    samples: Vec<(f64, f64, f64)>,
    total_weight: f64,
}

impl McPosterior {
    fn confidence_b(&self, target: f64) -> f64 {
        self.samples
            .iter()
            .filter(|(_, pb, _)| *pb <= target)
            .map(|(_, _, w)| w)
            .sum::<f64>()
            / self.total_weight
    }

    fn confidence_a(&self, target: f64) -> f64 {
        self.samples
            .iter()
            .filter(|(pa, _, _)| *pa <= target)
            .map(|(_, _, w)| w)
            .sum::<f64>()
            / self.total_weight
    }

    fn effective_sample_size(&self) -> f64 {
        let sum_sq: f64 = self.samples.iter().map(|(_, _, w)| w * w).sum();
        self.total_weight * self.total_weight / sum_sq
    }
}

/// A tabulated inverse CDF: 4096 precomputed quantiles with linear
/// interpolation — exact enough for the cross-check tolerance and ~100x
/// faster than per-draw bisection.
struct QuantileTable {
    values: Vec<f64>,
}

impl QuantileTable {
    fn new(prior: ScaledBeta) -> QuantileTable {
        let n = 4096;
        let values = (0..=n)
            .map(|i| prior.quantile(i as f64 / n as f64))
            .collect();
        QuantileTable { values }
    }

    fn sample(&self, u: f64) -> f64 {
        let n = self.values.len() - 1;
        let x = u * n as f64;
        let idx = (x as usize).min(n - 1);
        let frac = x - idx as f64;
        self.values[idx] + (self.values[idx + 1] - self.values[idx]) * frac
    }
}

fn mc_posterior(
    prior_a: ScaledBeta,
    prior_b: ScaledBeta,
    counts: &JointCounts,
    samples: usize,
    seed: u64,
) -> McPosterior {
    let table_a = QuantileTable::new(prior_a);
    let table_b = QuantileTable::new(prior_b);
    let mut rng = StreamRng::from_seed(seed);
    let r1 = counts.both_failed() as f64;
    let r2 = counts.only_a_failed() as f64;
    let r3 = counts.only_b_failed() as f64;
    let r4 = counts.both_succeeded() as f64;
    let mut out = Vec::with_capacity(samples);
    let mut total = 0.0;
    // Log-weights are shifted by their running maximum at the end; store
    // raw logs first.
    let mut logs = Vec::with_capacity(samples);
    let mut max_log = f64::NEG_INFINITY;
    for _ in 0..samples {
        let pa = table_a.sample(rng.next_f64());
        let pb = table_b.sample(rng.next_f64());
        let q = rng.next_f64();
        let p11 = q * pa.min(pb);
        let p10 = pa - p11;
        let p01 = pb - p11;
        let p00 = 1.0 - pa - pb + p11;
        let mut lw = 0.0;
        for (r, p) in [(r1, p11), (r2, p10), (r3, p01), (r4, p00)] {
            if r > 0.0 {
                if p <= 0.0 {
                    lw = f64::NEG_INFINITY;
                    break;
                }
                lw += r * p.ln();
            }
        }
        logs.push((pa, pb, lw));
        if lw > max_log {
            max_log = lw;
        }
    }
    for (pa, pb, lw) in logs {
        let w = if lw.is_finite() {
            (lw - max_log).exp()
        } else {
            0.0
        };
        total += w;
        out.push((pa, pb, w));
    }
    McPosterior {
        samples: out,
        total_weight: total,
    }
}

#[test]
fn grid_matches_importance_sampling_scenario1() {
    let prior_a = ScaledBeta::new(20.0, 20.0, 0.002).unwrap();
    let prior_b = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
    let counts = JointCounts::from_raw(2_000, 1, 2, 1);

    let engine = WhiteBoxInference::with_resolution(
        prior_a,
        prior_b,
        CoincidencePrior::IndifferenceUniform,
        Resolution {
            a_cells: 96,
            b_cells: 96,
            q_cells: 32,
        },
    );
    let posterior = engine.posterior(&counts);
    let marginal_a = posterior.marginal_a();
    let marginal_b = posterior.marginal_b();

    let mc = mc_posterior(prior_a, prior_b, &counts, SAMPLES, 2024);
    assert!(
        mc.effective_sample_size() > MIN_ESS,
        "degenerate importance weights: ESS {}",
        mc.effective_sample_size()
    );

    for target in [0.5e-3, 0.8e-3, 1.0e-3, 1.3e-3, 1.6e-3] {
        let grid_b = marginal_b.confidence(target);
        let mc_b = mc.confidence_b(target);
        assert!(
            (grid_b - mc_b).abs() < TOLERANCE,
            "B at {target}: grid {grid_b} vs MC {mc_b}"
        );
        let grid_a = marginal_a.confidence(target);
        let mc_a = mc.confidence_a(target);
        assert!(
            (grid_a - mc_a).abs() < TOLERANCE,
            "A at {target}: grid {grid_a} vs MC {mc_a}"
        );
    }
}

#[test]
fn grid_matches_importance_sampling_scenario2() {
    let prior_a = ScaledBeta::new(1.0, 10.0, 0.01).unwrap();
    let prior_b = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
    // A failing visibly more than B, as in the paper's Scenario 2 truth.
    let counts = JointCounts::from_raw(1_000, 1, 4, 0);

    let engine = WhiteBoxInference::with_resolution(
        prior_a,
        prior_b,
        CoincidencePrior::IndifferenceUniform,
        Resolution {
            a_cells: 96,
            b_cells: 96,
            q_cells: 32,
        },
    );
    let posterior = engine.posterior(&counts);
    let marginal_b = posterior.marginal_b();

    let mc = mc_posterior(prior_a, prior_b, &counts, SAMPLES, 77);
    assert!(mc.effective_sample_size() > MIN_ESS);

    for target in [1e-3, 2e-3, 4e-3, 6e-3] {
        let grid = marginal_b.confidence(target);
        let sampled = mc.confidence_b(target);
        assert!(
            (grid - sampled).abs() < TOLERANCE,
            "B at {target}: grid {grid} vs MC {sampled}"
        );
    }
}
