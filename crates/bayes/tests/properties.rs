//! Property-style tests of the inference machinery.
//!
//! Originally written with `proptest`; rewritten as deterministic
//! seeded-loop checks (no external dev-dependencies — see the note in
//! `crates/simcore/tests/properties.rs`).

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::BlackBoxInference;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::special::{betainc, ln_gamma, log_sum_exp};
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};
use wsu_simcore::rng::{MasterSeed, StreamRng};

fn rng_for(test: &str) -> StreamRng {
    MasterSeed::new(0x42_41_59_45_53_50_52_4F).stream(test)
}

fn f64_in(rng: &mut StreamRng, lo: f64, hi: f64) -> f64 {
    let unit = rng.next_u64() as f64 / u64::MAX as f64;
    lo + unit * (hi - lo)
}

/// I_x(a,b) is a CDF: within [0,1], monotone in x, symmetric under
/// (a,b,x) -> (b,a,1-x).
#[test]
fn betainc_is_a_cdf() {
    let mut rng = rng_for("betainc_cdf");
    for _ in 0..64 {
        let a = f64_in(&mut rng, 0.1, 50.0);
        let b = f64_in(&mut rng, 0.1, 50.0);
        let x = f64_in(&mut rng, 0.0, 1.0);
        let y = f64_in(&mut rng, 0.0, 1.0);
        let fx = betainc(a, b, x);
        let fy = betainc(a, b, y);
        assert!((0.0..=1.0).contains(&fx));
        if x <= y {
            assert!(fx <= fy + 1e-9);
        } else {
            assert!(fy <= fx + 1e-9);
        }
        let sym = 1.0 - betainc(b, a, 1.0 - x);
        assert!((fx - sym).abs() < 1e-9);
    }
}

/// The log-gamma recurrence holds across the domain.
#[test]
fn ln_gamma_recurrence() {
    let mut rng = rng_for("ln_gamma_rec");
    for _ in 0..128 {
        let x = f64_in(&mut rng, 0.05, 100.0);
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        assert!((lhs - rhs).abs() < 1e-8, "x={x}: {lhs} vs {rhs}");
    }
}

/// log_sum_exp is shift-invariant.
#[test]
fn log_sum_exp_shift_invariant() {
    let mut rng = rng_for("lse_shift");
    for _ in 0..64 {
        let len = 1 + rng.next_below(19) as usize;
        let xs: Vec<f64> = (0..len).map(|_| f64_in(&mut rng, -50.0, 50.0)).collect();
        let shift = f64_in(&mut rng, -100.0, 100.0);
        let base = log_sum_exp(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        assert!((log_sum_exp(&shifted) - (base + shift)).abs() < 1e-8);
    }
}

/// The grid black-box posterior matches the conjugate closed form on
/// the unit support, across priors and observations.
#[test]
fn blackbox_matches_conjugate() {
    let mut rng = rng_for("blackbox_conjugate");
    for _ in 0..24 {
        let alpha = f64_in(&mut rng, 0.5, 10.0);
        let beta = f64_in(&mut rng, 0.5, 10.0);
        let n = rng.next_below(500);
        let fail_fraction = f64_in(&mut rng, 0.0, 1.0);
        let q = f64_in(&mut rng, 0.05, 0.95);
        let r = (n as f64 * fail_fraction) as u64;
        let prior = ScaledBeta::standard(alpha, beta).unwrap();
        let inf = BlackBoxInference::new(prior, 2048);
        let grid = inf.posterior(n, r).percentile(q);
        let exact = ScaledBeta::standard(alpha + r as f64, beta + (n - r) as f64)
            .unwrap()
            .quantile(q);
        assert!((grid - exact).abs() < 5e-3, "grid {grid} vs exact {exact}");
    }
}

/// Black-box confidence is monotone in the number of failures: more
/// failures can only reduce confidence at any fixed target.
#[test]
fn more_failures_less_confidence() {
    let mut rng = rng_for("monotone_confidence");
    for _ in 0..24 {
        let n = 10 + rng.next_below(1_990);
        let target = f64_in(&mut rng, 0.001, 0.05);
        let prior = ScaledBeta::new(1.0, 1.0, 0.1).unwrap();
        let inf = BlackBoxInference::new(prior, 512);
        let mut prev = f64::INFINITY;
        for failures in [0u64, 1, 2, 5, n.min(10)] {
            if failures > n {
                break;
            }
            let c = inf.posterior(n, failures).confidence(target);
            assert!(c <= prev + 1e-9, "failures {failures}: {c} > {prev}");
            prev = c;
        }
    }
}

/// White-box marginals are proper distributions for arbitrary counts.
#[test]
fn whitebox_marginals_are_normalised() {
    let mut rng = rng_for("whitebox_normalised");
    for _ in 0..16 {
        let r1 = rng.next_below(20);
        let r2 = rng.next_below(20);
        let r3 = rng.next_below(20);
        let n = (r1 + r2 + r3) + 1 + rng.next_below(5_000);
        let engine = WhiteBoxInference::with_resolution(
            ScaledBeta::new(2.0, 3.0, 0.02).unwrap(),
            ScaledBeta::new(2.0, 3.0, 0.02).unwrap(),
            CoincidencePrior::IndifferenceUniform,
            Resolution {
                a_cells: 16,
                b_cells: 16,
                q_cells: 4,
            },
        );
        let counts = JointCounts::from_raw(n, r1, r2, r3);
        let posterior = engine.posterior(&counts);
        for marginal in [
            posterior.marginal_a(),
            posterior.marginal_b(),
            posterior.marginal_ab(8),
        ] {
            let mass: f64 = marginal.masses().iter().sum();
            assert!((mass - 1.0).abs() < 1e-9);
            let p99 = marginal.percentile(0.99);
            assert!(p99.is_finite() && p99 >= 0.0);
        }
    }
}

/// Scaled-Beta mass over a partition of the support always sums to 1.
#[test]
fn scaled_beta_partition_of_unity() {
    let mut rng = rng_for("beta_partition");
    for _ in 0..48 {
        let alpha = f64_in(&mut rng, 0.5, 20.0);
        let beta = f64_in(&mut rng, 0.5, 20.0);
        let range = f64_in(&mut rng, 1e-4, 1.0);
        let parts = 1 + rng.next_below(29) as usize;
        let dist = ScaledBeta::new(alpha, beta, range).unwrap();
        let w = range / parts as f64;
        let total: f64 = (0..parts)
            .map(|i| dist.mass(i as f64 * w, (i + 1) as f64 * w))
            .sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }
}

/// Joint-count merging is associative with addition of raw counts.
#[test]
fn joint_counts_merge() {
    let mut rng = rng_for("joint_counts_merge");
    for _ in 0..64 {
        let draw = |rng: &mut StreamRng| {
            let r1 = rng.next_below(10);
            let r2 = rng.next_below(10);
            let r3 = rng.next_below(10);
            let n = r1 + r2 + r3 + rng.next_below(1000);
            (n, r1, r2, r3)
        };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        let mut left = JointCounts::from_raw(a.0, a.1, a.2, a.3);
        let right = JointCounts::from_raw(b.0, b.1, b.2, b.3);
        left += right;
        assert_eq!(
            left,
            JointCounts::from_raw(a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3)
        );
    }
}
