//! Property-based tests of the inference machinery.

use proptest::prelude::*;

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::BlackBoxInference;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::special::{betainc, ln_gamma, log_sum_exp};
use wsu_bayes::whitebox::{CoincidencePrior, Resolution, WhiteBoxInference};

proptest! {
    /// I_x(a,b) is a CDF: within [0,1], monotone in x, symmetric under
    /// (a,b,x) -> (b,a,1-x).
    #[test]
    fn betainc_is_a_cdf(a in 0.1f64..50.0, b in 0.1f64..50.0, x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let fx = betainc(a, b, x);
        let fy = betainc(a, b, y);
        prop_assert!((0.0..=1.0).contains(&fx));
        if x <= y {
            prop_assert!(fx <= fy + 1e-9);
        } else {
            prop_assert!(fy <= fx + 1e-9);
        }
        let sym = 1.0 - betainc(b, a, 1.0 - x);
        prop_assert!((fx - sym).abs() < 1e-9);
    }

    /// The log-gamma recurrence holds across the domain.
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..100.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x={x}: {lhs} vs {rhs}");
    }

    /// log_sum_exp is shift-invariant.
    #[test]
    fn log_sum_exp_shift_invariant(
        xs in prop::collection::vec(-50.0f64..50.0, 1..20),
        shift in -100.0f64..100.0,
    ) {
        let base = log_sum_exp(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((log_sum_exp(&shifted) - (base + shift)).abs() < 1e-8);
    }

    /// The grid black-box posterior matches the conjugate closed form on
    /// the unit support, across priors and observations.
    #[test]
    fn blackbox_matches_conjugate(
        alpha in 0.5f64..10.0,
        beta in 0.5f64..10.0,
        n in 0u64..500,
        fail_fraction in 0.0f64..1.0,
        q in 0.05f64..0.95,
    ) {
        let r = (n as f64 * fail_fraction) as u64;
        let prior = ScaledBeta::standard(alpha, beta).unwrap();
        let inf = BlackBoxInference::new(prior, 2048);
        let grid = inf.posterior(n, r).percentile(q);
        let exact = ScaledBeta::standard(alpha + r as f64, beta + (n - r) as f64)
            .unwrap()
            .quantile(q);
        prop_assert!((grid - exact).abs() < 5e-3, "grid {grid} vs exact {exact}");
    }

    /// Black-box confidence is monotone in the number of failures: more
    /// failures can only reduce confidence at any fixed target.
    #[test]
    fn more_failures_less_confidence(n in 10u64..2_000, target in 0.001f64..0.05) {
        let prior = ScaledBeta::new(1.0, 1.0, 0.1).unwrap();
        let inf = BlackBoxInference::new(prior, 512);
        let mut prev = f64::INFINITY;
        for failures in [0u64, 1, 2, 5, n.min(10)] {
            if failures > n {
                break;
            }
            let c = inf.posterior(n, failures).confidence(target);
            prop_assert!(c <= prev + 1e-9, "failures {failures}: {c} > {prev}");
            prev = c;
        }
    }

    /// White-box marginals are proper distributions for arbitrary counts.
    #[test]
    fn whitebox_marginals_are_normalised(
        n in 1u64..5_000,
        r1 in 0u64..20,
        r2 in 0u64..20,
        r3 in 0u64..20,
    ) {
        prop_assume!(r1 + r2 + r3 <= n);
        let engine = WhiteBoxInference::with_resolution(
            ScaledBeta::new(2.0, 3.0, 0.02).unwrap(),
            ScaledBeta::new(2.0, 3.0, 0.02).unwrap(),
            CoincidencePrior::IndifferenceUniform,
            Resolution { a_cells: 16, b_cells: 16, q_cells: 4 },
        );
        let counts = JointCounts::from_raw(n, r1, r2, r3);
        let posterior = engine.posterior(&counts);
        for marginal in [posterior.marginal_a(), posterior.marginal_b(), posterior.marginal_ab(8)] {
            let mass: f64 = marginal.masses().iter().sum();
            prop_assert!((mass - 1.0).abs() < 1e-9);
            let p99 = marginal.percentile(0.99);
            prop_assert!(p99.is_finite() && p99 >= 0.0);
        }
    }

    /// Scaled-Beta mass over a partition of the support always sums to 1.
    #[test]
    fn scaled_beta_partition_of_unity(
        alpha in 0.5f64..20.0,
        beta in 0.5f64..20.0,
        range in 1e-4f64..1.0,
        parts in 1usize..30,
    ) {
        let dist = ScaledBeta::new(alpha, beta, range).unwrap();
        let w = range / parts as f64;
        let total: f64 = (0..parts)
            .map(|i| dist.mass(i as f64 * w, (i + 1) as f64 * w))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    /// Joint-count merging is associative with addition of raw counts.
    #[test]
    fn joint_counts_merge(
        a in (0u64..1000, 0u64..10, 0u64..10, 0u64..10),
        b in (0u64..1000, 0u64..10, 0u64..10, 0u64..10),
    ) {
        prop_assume!(a.1 + a.2 + a.3 <= a.0 && b.1 + b.2 + b.3 <= b.0);
        let mut left = JointCounts::from_raw(a.0, a.1, a.2, a.3);
        let right = JointCounts::from_raw(b.0, b.1, b.2, b.3);
        left += right;
        prop_assert_eq!(left, JointCounts::from_raw(a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3));
    }
}
