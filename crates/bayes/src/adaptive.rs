//! Adaptive coarse-to-fine white-box resolution.
//!
//! The fixed default grid spends 96×96×32 cells uniformly over the
//! priors' full supports, but after any real amount of evidence the
//! posterior occupies a small corner of that grid: the rest of the
//! cells buy nothing. The adaptive mode splits the budget instead:
//!
//! 1. a **coarse** engine (default 32×32×16, ~6% of the default cell
//!    count) tracks the posterior over the *full* support and is
//!    updated at every checkpoint;
//! 2. its marginals locate the **high-mass window** of each axis — the
//!    central interval holding `mass_target` of the posterior, snapped
//!    outwards to coarse cell edges and padded by `guard_cells`;
//! 3. a **fine** engine at full resolution is built over just that
//!    window ([`WhiteBoxInference::windowed`]) and answers all queries.
//!
//! Checkpoints that keep the posterior inside the current fine window
//! are pure steady-state work: one coarse and one fine incremental
//! update, **zero heap allocations**. When the window escapes (mass
//! drifts outside it) or the posterior has tightened so much that the
//! window is twice as wide as needed, the fine engine is **rebuilt**
//! over the new window — an allocating refinement, counted by
//! [`AdaptiveUpdater::refinements`] — and rebased to the cumulative
//! counts. Refinements are rare by construction: the window must halve
//! (or escape) to trigger one, so a study run incurs O(log) rebuilds.
//!
//! # Accuracy contract
//!
//! Adaptive results are **not** bit-identical to the fixed grid — the
//! fine grid's cells sit at different coordinates. The contract is a
//! tolerance one, pinned by this module's golden tests:
//!
//! * at least `mass_target` (default `0.9999`) of posterior mass lies
//!   inside the window, so confidence queries lose at most
//!   `1 − mass_target` plus discretisation error;
//! * percentiles agree with the fixed default grid to within one fixed
//!   default grid cell width;
//! * the default fixed-resolution path is completely untouched: the
//!   adaptive mode is opt-in via [`Resolution::adaptive`] and builds on
//!   the same kernels and the same windowed constructor that reproduces
//!   the fixed grid bit-for-bit at full-support windows.

use crate::beta::ScaledBeta;
use crate::counts::JointCounts;
use crate::posterior::MarginalView;
use crate::whitebox::{CoincidencePrior, PosteriorUpdater, Resolution, WhiteBoxInference};

/// Configuration of the adaptive coarse-to-fine mode. Build one with
/// [`Resolution::adaptive`] and customise fields as needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveResolution {
    /// Full-support coarse tracking grid.
    pub coarse: Resolution,
    /// Windowed fine grid; all queries are answered at this resolution.
    pub fine: Resolution,
    /// Posterior mass the window must capture per axis (the central
    /// interval), before snapping and guard padding.
    pub mass_target: f64,
    /// Coarse cells of margin added on each side of the snapped window.
    pub guard_cells: usize,
}

impl Default for AdaptiveResolution {
    /// Coarse 32×32×16 over the full support, fine [`Resolution::default`]
    /// over the window, 99.99% captured mass, one coarse guard cell.
    fn default() -> AdaptiveResolution {
        AdaptiveResolution {
            coarse: Resolution {
                a_cells: 32,
                b_cells: 32,
                q_cells: 16,
            },
            fine: Resolution::default(),
            mass_target: 0.9999,
            guard_cells: 1,
        }
    }
}

impl AdaptiveResolution {
    fn validate(self) {
        assert!(
            self.mass_target > 0.5 && self.mass_target < 1.0,
            "mass_target {} not in (0.5, 1)",
            self.mass_target
        );
    }
}

/// One axis window in prior-support coordinates, snapped to coarse cell
/// edges.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Window {
    lo: f64,
    hi: f64,
}

impl Window {
    fn contains(self, other: Window) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    fn width(self) -> f64 {
        self.hi - self.lo
    }
}

/// Selects the axis window: the central `mass_target` interval of the
/// coarse marginal, snapped outwards to coarse cell edges and padded by
/// `guard_cells`, clamped to the support.
fn select_window(
    marginal: &MarginalView<'_>,
    range: f64,
    cells: usize,
    mass_target: f64,
    guard_cells: usize,
) -> Window {
    let tail = (1.0 - mass_target) / 2.0;
    let lo_q = marginal.percentile(tail);
    let hi_q = marginal.percentile(1.0 - tail);
    let cell = range / cells as f64;
    let lo_cell = ((lo_q / cell).floor() as isize - guard_cells as isize).max(0) as usize;
    let hi_cell = (((hi_q / cell).ceil() as isize + guard_cells as isize) as usize).min(cells);
    // A degenerate marginal can collapse both quantiles into one cell
    // edge; keep at least one cell of window.
    let hi_cell = hi_cell.max(lo_cell + 1);
    Window {
        lo: range * lo_cell as f64 / cells as f64,
        hi: range * hi_cell as f64 / cells as f64,
    }
}

/// Adaptive coarse-to-fine white-box engine: the opt-in alternative to
/// a fixed-resolution [`WhiteBoxInference`]. See the module docs for
/// the algorithm and accuracy contract.
#[derive(Debug, Clone)]
pub struct AdaptiveWhiteBox {
    prior_a: ScaledBeta,
    prior_b: ScaledBeta,
    coincidence: CoincidencePrior,
    adaptive: AdaptiveResolution,
    coarse: WhiteBoxInference,
}

impl AdaptiveWhiteBox {
    /// Creates an adaptive engine.
    ///
    /// # Panics
    ///
    /// Panics if a resolution component is zero, a coincidence-prior
    /// parameter is out of range, or `mass_target` is not in `(0.5, 1)`.
    pub fn new(
        prior_a: ScaledBeta,
        prior_b: ScaledBeta,
        coincidence: CoincidencePrior,
        adaptive: AdaptiveResolution,
    ) -> AdaptiveWhiteBox {
        adaptive.validate();
        let coarse =
            WhiteBoxInference::with_resolution(prior_a, prior_b, coincidence, adaptive.coarse);
        AdaptiveWhiteBox {
            prior_a,
            prior_b,
            coincidence,
            adaptive,
            coarse,
        }
    }

    /// The adaptive configuration.
    pub fn adaptive(&self) -> AdaptiveResolution {
        self.adaptive
    }

    /// The prior over the old release's pfd.
    pub fn prior_a(&self) -> ScaledBeta {
        self.prior_a
    }

    /// The prior over the new release's pfd.
    pub fn prior_b(&self) -> ScaledBeta {
        self.prior_b
    }

    /// Creates an incremental adaptive updater positioned at the prior.
    /// The coarse tracker and the first fine window (located from the
    /// coarse prior marginals) are allocated here; steady-state
    /// [`AdaptiveUpdater::update_to`] calls are allocation-free.
    pub fn updater(&self) -> AdaptiveUpdater {
        let coarse = self.coarse.updater();
        let window_a = self.desired_window_a(&coarse);
        let window_b = self.desired_window_b(&coarse);
        let (fine_engine, fine) = self.build_fine(window_a, window_b, &JointCounts::new());
        AdaptiveUpdater {
            shared: self.clone(),
            coarse,
            fine_engine,
            fine,
            window_a,
            window_b,
            refinements: 0,
        }
    }

    fn desired_window_a(&self, coarse: &PosteriorUpdater) -> Window {
        select_window(
            &coarse.marginal_a(),
            self.prior_a.range(),
            self.adaptive.coarse.a_cells,
            self.adaptive.mass_target,
            self.adaptive.guard_cells,
        )
    }

    fn desired_window_b(&self, coarse: &PosteriorUpdater) -> Window {
        select_window(
            &coarse.marginal_b(),
            self.prior_b.range(),
            self.adaptive.coarse.b_cells,
            self.adaptive.mass_target,
            self.adaptive.guard_cells,
        )
    }

    fn build_fine(
        &self,
        window_a: Window,
        window_b: Window,
        counts: &JointCounts,
    ) -> (WhiteBoxInference, PosteriorUpdater) {
        let engine = WhiteBoxInference::windowed(
            self.prior_a,
            self.prior_b,
            self.coincidence,
            self.adaptive.fine,
            (window_a.lo, window_a.hi),
            (window_b.lo, window_b.hi),
        );
        let mut updater = engine.updater();
        if counts.demands() > 0 {
            updater.rebase(counts);
        }
        (engine, updater)
    }
}

/// Stateful incremental engine of the adaptive mode. Owns a coarse
/// full-support tracker and a windowed fine engine; queries are served
/// from the fine engine's cached marginals, allocation-free, exactly
/// like [`PosteriorUpdater`].
#[derive(Debug, Clone)]
pub struct AdaptiveUpdater {
    shared: AdaptiveWhiteBox,
    coarse: PosteriorUpdater,
    fine_engine: WhiteBoxInference,
    fine: PosteriorUpdater,
    window_a: Window,
    window_b: Window,
    refinements: u64,
}

impl AdaptiveUpdater {
    /// Advances both trackers to the given cumulative counts, rebuilding
    /// the fine window first if the posterior escaped or outgrew it.
    ///
    /// # Panics
    ///
    /// Panics if the posterior vanishes everywhere (counts impossible
    /// under the prior).
    pub fn update_to(&mut self, counts: &JointCounts) {
        self.coarse.update_to(counts);
        if self.refresh_window(counts) {
            return; // the rebuild rebased the fine engine to `counts`
        }
        self.fine.update_to(counts);
    }

    /// Exact recompute of both trackers from total counts (the
    /// escape hatch for non-monotone count sequences; `update_to`
    /// delegates to the same path automatically in that case).
    pub fn rebase(&mut self, counts: &JointCounts) {
        self.coarse.rebase(counts);
        if self.refresh_window(counts) {
            return;
        }
        self.fine.rebase(counts);
    }

    /// Re-selects the desired window from the (already updated) coarse
    /// marginals and rebuilds the fine engine if the current window no
    /// longer fits. Returns `true` if a rebuild happened (the fine
    /// engine is then already at `counts`).
    fn refresh_window(&mut self, counts: &JointCounts) -> bool {
        let desired_a = self.shared.desired_window_a(&self.coarse);
        let desired_b = self.shared.desired_window_b(&self.coarse);
        let escaped = !self.window_a.contains(desired_a) || !self.window_b.contains(desired_b);
        // Rebuild when the posterior tightened enough that the fine
        // grid wastes more than half its cells (per axis) outside the
        // needed window; the factor-of-two hysteresis keeps refinements
        // logarithmic in the total tightening.
        let outgrown = desired_a.width() < 0.5 * self.window_a.width()
            || desired_b.width() < 0.5 * self.window_b.width();
        if !(escaped || outgrown) {
            return false;
        }
        let (fine_engine, fine) = self.shared.build_fine(desired_a, desired_b, counts);
        self.fine_engine = fine_engine;
        self.fine = fine;
        self.window_a = desired_a;
        self.window_b = desired_b;
        self.refinements += 1;
        true
    }

    /// The cumulative counts the posterior currently reflects.
    pub fn counts(&self) -> JointCounts {
        self.fine.counts()
    }

    /// Number of fine-window rebuilds since construction.
    pub fn refinements(&self) -> u64 {
        self.refinements
    }

    /// The current fine window of the `P_A` axis.
    pub fn window_a(&self) -> (f64, f64) {
        (self.window_a.lo, self.window_a.hi)
    }

    /// The current fine window of the `P_B` axis.
    pub fn window_b(&self) -> (f64, f64) {
        (self.window_b.lo, self.window_b.hi)
    }

    /// The windowed fine engine currently answering queries.
    pub fn fine_engine(&self) -> &WhiteBoxInference {
        &self.fine_engine
    }

    /// Borrowed fine-grid marginal of `P_A`; allocation-free.
    pub fn marginal_a(&self) -> MarginalView<'_> {
        self.fine.marginal_a()
    }

    /// Borrowed fine-grid marginal of `P_B`; allocation-free.
    pub fn marginal_b(&self) -> MarginalView<'_> {
        self.fine.marginal_b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario1() -> (ScaledBeta, ScaledBeta) {
        (
            ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
            ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
        )
    }

    fn fixed_updater() -> PosteriorUpdater {
        let (pa, pb) = scenario1();
        WhiteBoxInference::new(pa, pb, CoincidencePrior::IndifferenceUniform).updater()
    }

    fn adaptive_updater() -> AdaptiveUpdater {
        let (pa, pb) = scenario1();
        AdaptiveWhiteBox::new(
            pa,
            pb,
            CoincidencePrior::IndifferenceUniform,
            Resolution::adaptive(),
        )
        .updater()
    }

    /// One fixed default grid cell width of the B axis — the percentile
    /// tolerance of the accuracy contract.
    const B_CELL: f64 = 0.002 / 96.0;

    #[test]
    fn prior_state_matches_fixed_grid() {
        let adaptive = adaptive_updater();
        let fixed = fixed_updater();
        let (am, fm) = (adaptive.marginal_b(), fixed.marginal_b());
        assert!(
            (am.mean() - fm.mean()).abs() < B_CELL,
            "{} vs {}",
            am.mean(),
            fm.mean()
        );
        assert!((am.percentile(0.99) - fm.percentile(0.99)).abs() < B_CELL);
    }

    #[test]
    fn golden_tolerance_along_a_clean_run() {
        // The accuracy contract, pinned over a realistic monotone count
        // trajectory: percentiles within one default-grid cell,
        // confidence within 1 - mass_target plus discretisation slack.
        let mut adaptive = adaptive_updater();
        let mut fixed = fixed_updater();
        for n in [500u64, 2_000, 8_000, 30_000, 100_000] {
            let counts = JointCounts::from_raw(n, 0, n / 10_000, n / 20_000);
            adaptive.update_to(&counts);
            fixed.update_to(&counts);
            for (am, fm) in [
                (adaptive.marginal_a(), fixed.marginal_a()),
                (adaptive.marginal_b(), fixed.marginal_b()),
            ] {
                for c in [0.5, 0.9, 0.99] {
                    let (ap, fp) = (am.percentile(c), fm.percentile(c));
                    assert!(
                        (ap - fp).abs() <= B_CELL,
                        "n={n} c={c}: adaptive {ap} vs fixed {fp}"
                    );
                }
                let target = fm.percentile(0.95);
                assert!(
                    (am.confidence(target) - fm.confidence(target)).abs() <= 2e-2,
                    "n={n}: confidence mismatch at {target}"
                );
            }
        }
    }

    #[test]
    fn refinements_are_logarithmic_not_per_checkpoint() {
        let mut adaptive = adaptive_updater();
        let checkpoints = 40u64;
        for k in 1..=checkpoints {
            adaptive.update_to(&JointCounts::from_raw(k * 2_500, 0, 0, 0));
        }
        let r = adaptive.refinements();
        // The posterior tightens by orders of magnitude over 100k clean
        // demands, so at least one refinement must fire — but far fewer
        // than one per checkpoint.
        assert!(r >= 1, "no refinement over a long clean run");
        assert!(r <= 10, "{r} refinements for {checkpoints} checkpoints");
    }

    #[test]
    fn window_escape_triggers_rebuild_and_stays_accurate() {
        let mut adaptive = adaptive_updater();
        let mut fixed = fixed_updater();
        // Clean run tightens the window near zero...
        adaptive.update_to(&JointCounts::from_raw(50_000, 0, 0, 0));
        let before = adaptive.refinements();
        // ...then a failure burst moves B's mass sharply upwards,
        // escaping the tightened window.
        let burst = JointCounts::from_raw(51_000, 0, 0, 60);
        adaptive.update_to(&burst);
        fixed.update_to(&burst);
        assert!(adaptive.refinements() > before, "escape did not rebuild");
        let (ap, fp) = (
            adaptive.marginal_b().percentile(0.99),
            fixed.marginal_b().percentile(0.99),
        );
        assert!((ap - fp).abs() <= B_CELL, "{ap} vs {fp}");
    }

    #[test]
    fn steady_state_checkpoints_do_not_rebuild() {
        let mut adaptive = adaptive_updater();
        adaptive.update_to(&JointCounts::from_raw(10_000, 0, 0, 0));
        let settled = adaptive.refinements();
        // Small monotone increments keep the posterior where it is.
        for k in 1..=5u64 {
            adaptive.update_to(&JointCounts::from_raw(10_000 + k * 200, 0, 0, 0));
        }
        assert_eq!(adaptive.refinements(), settled);
    }

    #[test]
    fn non_monotone_counts_rebase() {
        let mut adaptive = adaptive_updater();
        adaptive.update_to(&JointCounts::from_raw(10_000, 0, 0, 2));
        // Fewer demands than before: the updaters must rebase, not panic.
        let back = JointCounts::from_raw(4_000, 0, 0, 1);
        adaptive.update_to(&back);
        assert_eq!(adaptive.counts(), back);
        let mut fixed = fixed_updater();
        fixed.update_to(&back);
        let (ap, fp) = (
            adaptive.marginal_b().percentile(0.9),
            fixed.marginal_b().percentile(0.9),
        );
        assert!((ap - fp).abs() <= B_CELL, "{ap} vs {fp}");
    }

    #[test]
    fn windows_cover_the_mass_and_live_inside_the_support() {
        let mut adaptive = adaptive_updater();
        adaptive.update_to(&JointCounts::from_raw(30_000, 0, 3, 5));
        for (lo, hi) in [adaptive.window_a(), adaptive.window_b()] {
            assert!(lo >= 0.0 && lo < hi && hi <= 0.002, "window ({lo}, {hi})");
        }
        // The fine marginal is normalised over the window.
        let total: f64 = adaptive.marginal_b().masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_full_support_reproduces_fixed_grid_bitwise() {
        // The keystone of the opt-in guarantee: a full-support window is
        // the fixed engine, bit for bit.
        let (pa, pb) = scenario1();
        let fixed = WhiteBoxInference::new(pa, pb, CoincidencePrior::IndifferenceUniform);
        let windowed = WhiteBoxInference::windowed(
            pa,
            pb,
            CoincidencePrior::IndifferenceUniform,
            Resolution::default(),
            (0.0, pa.range()),
            (0.0, pb.range()),
        );
        let counts = JointCounts::from_raw(5_000, 1, 2, 3);
        let (p1, p2) = (fixed.posterior(&counts), windowed.posterior(&counts));
        for (m1, m2) in [
            (p1.marginal_a(), p2.marginal_a()),
            (p1.marginal_b(), p2.marginal_b()),
        ] {
            let bits1: Vec<u64> = m1.masses().iter().map(|v| v.to_bits()).collect();
            let bits2: Vec<u64> = m2.masses().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits1, bits2);
        }
    }

    #[test]
    #[should_panic(expected = "mass_target")]
    fn rejects_bad_mass_target() {
        let (pa, pb) = scenario1();
        let mut cfg = Resolution::adaptive();
        cfg.mass_target = 0.3;
        let _ = AdaptiveWhiteBox::new(pa, pb, CoincidencePrior::IndifferenceUniform, cfg);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_inverted_window() {
        let (pa, pb) = scenario1();
        let _ = WhiteBoxInference::windowed(
            pa,
            pb,
            CoincidencePrior::IndifferenceUniform,
            Resolution::default(),
            (0.001, 0.0005),
            (0.0, 0.002),
        );
    }
}
