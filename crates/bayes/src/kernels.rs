//! Vectorized grid kernels for the white-box posterior hot path.
//!
//! The white-box updater sweeps ~300k grid cells per checkpoint. Every
//! sweep is one of four shapes, and this module implements each as an
//! explicitly lane-chunked kernel (a `[f64; LANES]` accumulator block
//! that LLVM lowers to packed SIMD) next to a plain [`scalar`] reference
//! implementation used for equivalence testing:
//!
//! * [`axpy`] — `w[i] += d·p[i]`;
//! * [`axpy_max`] — the same, fused with a running-max scan;
//! * [`fused_axpy_max`] — the multi-term update `w[i] += Σ_k d_k·p_k[i]`
//!   applied term-by-term per cell, fused with the max scan (one memory
//!   pass instead of one per event class);
//! * [`recompute_max`] — the batch recompute `w[i] = prior[i] +
//!   Σ_k d_k·p_k[i]` shared by `WhiteBoxInference::posterior` and
//!   `PosteriorUpdater::rebase`;
//! * [`exp_weights`] / [`exp_stride_sums`] — the exponentiation pass
//!   `x[i] = exp(w[i] − max)` (optionally fused with the marginal
//!   stride sums), with a branch that skips the `exp` call — and the
//!   `+= 0.0` that would follow — wherever the result provably
//!   underflows to exactly `0.0`.
//!
//! # Bit-compatibility contract
//!
//! Every kernel here is **bit-identical** to its [`scalar`] reference,
//! by construction, not by tolerance:
//!
//! * the element-wise kernels perform the identical per-cell operation
//!   sequence (each `+=` is a separately rounded f64 addition, in term
//!   order), so chunking over cells cannot change any result bit;
//! * the running max is associative and commutative for the values that
//!   occur here (finite reals and `-inf`; never `NaN`), so per-lane
//!   maxima folded after the sweep equal the sequential scan;
//! * `exp(v)` underflows to exactly `+0.0` for every `v ≤`
//!   [`EXP_UNDERFLOW`], and `acc += 0.0` leaves a non-negative `acc`
//!   bit-unchanged, so the skip branch removes work without touching
//!   results.
//!
//! Two further ingredients carry the exponentiation pass, which
//! dominates a checkpoint once the additive sweeps are fused:
//!
//! * [`fast_exp`] — a pure-Rust port of the table-driven `exp` from
//!   ARM's optimized-routines (the exact algorithm behind glibc's and
//!   musl's `exp` on this target), bit-identical to the platform libm
//!   on every input (verified exhaustively over the kernel's input
//!   range in `tests/kernel_properties.rs`), roughly twice as fast
//!   when compiled with the `fma` target feature (see
//!   `.cargo/config.toml`);
//! * the [`exp_stride_sums`] row interleave — every marginal
//!   accumulator is an element-wise serial chain in grid order (the
//!   association the committed `results/` artefacts pin), so instead of
//!   re-associating within a chain the kernel walks four independent
//!   grid rows in lockstep: four whole chains run concurrently, which
//!   breaks the serial addition dependency that otherwise stalls the
//!   sweep without moving a single rounding.
//!
//! [`sum4`] provides the matching lane-chunked flat reduction for
//! contexts where the association is free to change (the adaptive
//! coarse-to-fine mode's region selection).
//!
//! Dead cells (where the prior vanishes) are encoded as `-inf` in every
//! table, which keeps the kernels branch-free: `-inf + d·(-inf) = -inf`
//! for the non-zero deltas the callers pass, so dead cells stay dead
//! without a per-cell guard, and the exponentiation pass sees them as
//! ordinary underflow.

/// Lane width of the chunked kernels. Four f64 lanes fill one 256-bit
/// vector register and divide a 64-byte cache line exactly in half.
pub const LANES: usize = 4;

/// `exp(v)` is exactly `+0.0` for every `v` at or below this threshold
/// (the true cutoff is near `-745.2`; `-750` leaves a safety margin),
/// so the exponentiation kernels skip the call outright. Cells between
/// the threshold and the cutoff still go through `exp`, which keeps the
/// kernels bit-identical to the always-exp reference.
pub const EXP_UNDERFLOW: f64 = -750.0;

/// One additive term of a fused update: the per-cell log-probability
/// table of an event class and the (non-zero) count delta to apply.
pub type Term<'a> = (&'a [f64], f64);

// --- fast_exp: bit-identical table-driven exp ---------------------------
//
// A safe-Rust port of the `exp` algorithm from ARM's optimized-routines
// (MIT), which is also the implementation glibc ≥ 2.27 and musl ship on
// x86-64/aarch64 — so on these platforms `fast_exp(x) == x.exp()` bit
// for bit. The fast path covers 2^-54 ≤ |x| < 512, which is where the
// kernels' shifted log-weights live; anything outside (near-zero
// arguments, the deep-underflow band, non-finite input) delegates to
// the platform `exp`, keeping bit-identity trivially. `f64::mul_add` is
// correctly rounded whether or not the target has FMA hardware, so the
// result is the same everywhere; the `fma` target feature (enabled in
// `.cargo/config.toml`) only decides whether it compiles to a single
// instruction or a (slow) soft-float call.
//
// N = 128: exp(x) = 2^(k/N) · exp(r), with k an integer and
// |r| ≤ ln(2)/(2N). 2^(k/N) comes from EXP_TAB as a (tail, scale) pair
// of doubles; exp(r) is a degree-5 polynomial in r.

const INVLN2N: f64 = f64::from_bits(0x40671547652b82fe); // N/ln(2)
const NEGLN2HIN: f64 = f64::from_bits(0xbf762e42fefa0000); // -ln(2)/N, high
const NEGLN2LON: f64 = f64::from_bits(0xbd0cf79abc9e3b3a); // -ln(2)/N, low
const C2: f64 = f64::from_bits(0x3fdffffffffffdbd);
const C3: f64 = f64::from_bits(0x3fc555555555543c);
const C4: f64 = f64::from_bits(0x3fa55555cf172b91);
const C5: f64 = f64::from_bits(0x3f81111167a4d017);
/// 0x1.8p52: rounds-to-nearest-integer shift for |k| < 2^51.
const SHIFT: f64 = f64::from_bits(0x4338000000000000);

/// 128 (tail, scale-bits) pairs: `2^(i/128) = scale + tail` with
/// `scale` read as a double from the stored bits (the low exponent bits
/// double as the fractional part of k, cancelled by the `ki << 45`
/// shift in [`fast_exp`]).
#[rustfmt::skip]
const EXP_TAB: [u64; 256] = [
    0x0000000000000000, 0x3ff0000000000000, 0x3c9b3b4f1a88bf6e, 0x3feff63da9fb3335,
    0xbc7160139cd8dc5d, 0x3fefec9a3e778061, 0xbc905e7a108766d1, 0x3fefe315e86e7f85,
    0x3c8cd2523567f613, 0x3fefd9b0d3158574, 0xbc8bce8023f98efa, 0x3fefd06b29ddf6de,
    0x3c60f74e61e6c861, 0x3fefc74518759bc8, 0x3c90a3e45b33d399, 0x3fefbe3ecac6f383,
    0x3c979aa65d837b6d, 0x3fefb5586cf9890f, 0x3c8eb51a92fdeffc, 0x3fefac922b7247f7,
    0x3c3ebe3d702f9cd1, 0x3fefa3ec32d3d1a2, 0xbc6a033489906e0b, 0x3fef9b66affed31b,
    0xbc9556522a2fbd0e, 0x3fef9301d0125b51, 0xbc5080ef8c4eea55, 0x3fef8abdc06c31cc,
    0xbc91c923b9d5f416, 0x3fef829aaea92de0, 0x3c80d3e3e95c55af, 0x3fef7a98c8a58e51,
    0xbc801b15eaa59348, 0x3fef72b83c7d517b, 0xbc8f1ff055de323d, 0x3fef6af9388c8dea,
    0x3c8b898c3f1353bf, 0x3fef635beb6fcb75, 0xbc96d99c7611eb26, 0x3fef5be084045cd4,
    0x3c9aecf73e3a2f60, 0x3fef54873168b9aa, 0xbc8fe782cb86389d, 0x3fef4d5022fcd91d,
    0x3c8a6f4144a6c38d, 0x3fef463b88628cd6, 0x3c807a05b0e4047d, 0x3fef3f49917ddc96,
    0x3c968efde3a8a894, 0x3fef387a6e756238, 0x3c875e18f274487d, 0x3fef31ce4fb2a63f,
    0x3c80472b981fe7f2, 0x3fef2b4565e27cdd, 0xbc96b87b3f71085e, 0x3fef24dfe1f56381,
    0x3c82f7e16d09ab31, 0x3fef1e9df51fdee1, 0xbc3d219b1a6fbffa, 0x3fef187fd0dad990,
    0x3c8b3782720c0ab4, 0x3fef1285a6e4030b, 0x3c6e149289cecb8f, 0x3fef0cafa93e2f56,
    0x3c834d754db0abb6, 0x3fef06fe0a31b715, 0x3c864201e2ac744c, 0x3fef0170fc4cd831,
    0x3c8fdd395dd3f84a, 0x3feefc08b26416ff, 0xbc86a3803b8e5b04, 0x3feef6c55f929ff1,
    0xbc924aedcc4b5068, 0x3feef1a7373aa9cb, 0xbc9907f81b512d8e, 0x3feeecae6d05d866,
    0xbc71d1e83e9436d2, 0x3feee7db34e59ff7, 0xbc991919b3ce1b15, 0x3feee32dc313a8e5,
    0x3c859f48a72a4c6d, 0x3feedea64c123422, 0xbc9312607a28698a, 0x3feeda4504ac801c,
    0xbc58a78f4817895b, 0x3feed60a21f72e2a, 0xbc7c2c9b67499a1b, 0x3feed1f5d950a897,
    0x3c4363ed60c2ac11, 0x3feece086061892d, 0x3c9666093b0664ef, 0x3feeca41ed1d0057,
    0x3c6ecce1daa10379, 0x3feec6a2b5c13cd0, 0x3c93ff8e3f0f1230, 0x3feec32af0d7d3de,
    0x3c7690cebb7aafb0, 0x3feebfdad5362a27, 0x3c931dbdeb54e077, 0x3feebcb299fddd0d,
    0xbc8f94340071a38e, 0x3feeb9b2769d2ca7, 0xbc87deccdc93a349, 0x3feeb6daa2cf6642,
    0xbc78dec6bd0f385f, 0x3feeb42b569d4f82, 0xbc861246ec7b5cf6, 0x3feeb1a4ca5d920f,
    0x3c93350518fdd78e, 0x3feeaf4736b527da, 0x3c7b98b72f8a9b05, 0x3feead12d497c7fd,
    0x3c9063e1e21c5409, 0x3feeab07dd485429, 0x3c34c7855019c6ea, 0x3feea9268a5946b7,
    0x3c9432e62b64c035, 0x3feea76f15ad2148, 0xbc8ce44a6199769f, 0x3feea5e1b976dc09,
    0xbc8c33c53bef4da8, 0x3feea47eb03a5585, 0xbc845378892be9ae, 0x3feea34634ccc320,
    0xbc93cedd78565858, 0x3feea23882552225, 0x3c5710aa807e1964, 0x3feea155d44ca973,
    0xbc93b3efbf5e2228, 0x3feea09e667f3bcd, 0xbc6a12ad8734b982, 0x3feea012750bdabf,
    0xbc6367efb86da9ee, 0x3fee9fb23c651a2f, 0xbc80dc3d54e08851, 0x3fee9f7df9519484,
    0xbc781f647e5a3ecf, 0x3fee9f75e8ec5f74, 0xbc86ee4ac08b7db0, 0x3fee9f9a48a58174,
    0xbc8619321e55e68a, 0x3fee9feb564267c9, 0x3c909ccb5e09d4d3, 0x3feea0694fde5d3f,
    0xbc7b32dcb94da51d, 0x3feea11473eb0187, 0x3c94ecfd5467c06b, 0x3feea1ed0130c132,
    0x3c65ebe1abd66c55, 0x3feea2f336cf4e62, 0xbc88a1c52fb3cf42, 0x3feea427543e1a12,
    0xbc9369b6f13b3734, 0x3feea589994cce13, 0xbc805e843a19ff1e, 0x3feea71a4623c7ad,
    0xbc94d450d872576e, 0x3feea8d99b4492ed, 0x3c90ad675b0e8a00, 0x3feeaac7d98a6699,
    0x3c8db72fc1f0eab4, 0x3feeace5422aa0db, 0xbc65b6609cc5e7ff, 0x3feeaf3216b5448c,
    0x3c7bf68359f35f44, 0x3feeb1ae99157736, 0xbc93091fa71e3d83, 0x3feeb45b0b91ffc6,
    0xbc5da9b88b6c1e29, 0x3feeb737b0cdc5e5, 0xbc6c23f97c90b959, 0x3feeba44cbc8520f,
    0xbc92434322f4f9aa, 0x3feebd829fde4e50, 0xbc85ca6cd7668e4b, 0x3feec0f170ca07ba,
    0x3c71affc2b91ce27, 0x3feec49182a3f090, 0x3c6dd235e10a73bb, 0x3feec86319e32323,
    0xbc87c50422622263, 0x3feecc667b5de565, 0x3c8b1c86e3e231d5, 0x3feed09bec4a2d33,
    0xbc91bbd1d3bcbb15, 0x3feed503b23e255d, 0x3c90cc319cee31d2, 0x3feed99e1330b358,
    0x3c8469846e735ab3, 0x3feede6b5579fdbf, 0xbc82dfcd978e9db4, 0x3feee36bbfd3f37a,
    0x3c8c1a7792cb3387, 0x3feee89f995ad3ad, 0xbc907b8f4ad1d9fa, 0x3feeee07298db666,
    0xbc55c3d956dcaeba, 0x3feef3a2b84f15fb, 0xbc90a40e3da6f640, 0x3feef9728de5593a,
    0xbc68d6f438ad9334, 0x3feeff76f2fb5e47, 0xbc91eee26b588a35, 0x3fef05b030a1064a,
    0x3c74ffd70a5fddcd, 0x3fef0c1e904bc1d2, 0xbc91bdfbfa9298ac, 0x3fef12c25bd71e09,
    0x3c736eae30af0cb3, 0x3fef199bdd85529c, 0x3c8ee3325c9ffd94, 0x3fef20ab5fffd07a,
    0x3c84e08fd10959ac, 0x3fef27f12e57d14b, 0x3c63cdaf384e1a67, 0x3fef2f6d9406e7b5,
    0x3c676b2c6c921968, 0x3fef3720dcef9069, 0xbc808a1883ccb5d2, 0x3fef3f0b555dc3fa,
    0xbc8fad5d3ffffa6f, 0x3fef472d4a07897c, 0xbc900dae3875a949, 0x3fef4f87080d89f2,
    0x3c74a385a63d07a7, 0x3fef5818dcfba487, 0xbc82919e2040220f, 0x3fef60e316c98398,
    0x3c8e5a50d5c192ac, 0x3fef69e603db3285, 0x3c843a59ac016b4b, 0x3fef7321f301b460,
    0xbc82d52107b43e1f, 0x3fef7c97337b9b5f, 0xbc892ab93b470dc9, 0x3fef864614f5a129,
    0x3c74b604603a88d3, 0x3fef902ee78b3ff6, 0x3c83c5ec519d7271, 0x3fef9a51fbc74c83,
    0xbc8ff7128fd391f0, 0x3fefa4afa2a490da, 0xbc8dae98e223747d, 0x3fefaf482d8e67f1,
    0x3c8ec3bc41aa2008, 0x3fefba1bee615a27, 0x3c842b94c3a9eb32, 0x3fefc52b376bba97,
    0x3c8a64a931d185ee, 0x3fefd0765b6e4540, 0xbc8e37bae43be3ed, 0x3fefdbfdad9cbe14,
    0x3c77893b4d91cd9d, 0x3fefe7c1819e90d8, 0x3c5305c14160cc89, 0x3feff3c22b8f71f1,
];

/// `exp(x)`, bit-identical to the platform libm's `exp` (see the port
/// notes above). The fast path handles `2^-54 ≤ |x| < 512` — the range
/// the kernels' live shifted log-weights occupy — without a libm call.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    // Top 12 bits of |x|: the fast path accepts exponents in
    // [0x3c9, 0x407], i.e. 2^-54 ≤ |x| < 512. Everything else (tiny,
    // huge, subnormal-result band, inf/NaN) delegates to libm, which
    // implements the same algorithm's special cases.
    let abstop = (x.to_bits() >> 52) & 0x7ff;
    if abstop.wrapping_sub(0x3c9) >= 0x3f {
        return x.exp();
    }
    // k = round(x·N/ln2) via the shift trick; ki holds k in its low
    // bits while kd_shifted - SHIFT recovers k as a double exactly.
    let kd_shifted = x.mul_add(INVLN2N, SHIFT);
    let ki = kd_shifted.to_bits();
    let kd = kd_shifted - SHIFT;
    // r = x - k·ln2/N in two pieces for an exactly representable hi part.
    let r = kd.mul_add(NEGLN2HIN, x);
    let r = kd.mul_add(NEGLN2LON, r);
    // 2^(k/N) = scale + tail from the table; the k/128 integer part
    // lands in the exponent via the << 45 (= 52 - log2(128)) shift.
    let idx = ((ki & 127) * 2) as usize;
    let tail = f64::from_bits(EXP_TAB[idx]);
    let sbits = EXP_TAB[idx + 1].wrapping_add(ki.wrapping_shl(45));
    // exp(r) - 1 ≈ r + C2·r² + C3·r³ + C4·r⁴ + C5·r⁵, evaluated in the
    // exact operation order of the reference (Estrin-style splits).
    let c23 = r.mul_add(C3, C2);
    let t3 = tail + r;
    let r2 = r * r;
    let c45 = r.mul_add(C5, C4);
    let tmp1 = c23.mul_add(r2, t3);
    let r4 = r2 * r2;
    let tmp = r4.mul_add(c45, tmp1);
    let scale = f64::from_bits(sbits);
    scale.mul_add(tmp, scale)
}

/// Four [`fast_exp`] evaluations at once. When every lane is on the
/// fast path (the overwhelmingly common case for live grid cells) the
/// whole computation is branch-free straight-line lane arithmetic that
/// the compiler lowers to packed FMA; otherwise each lane falls back to
/// the scalar [`fast_exp`]. Each lane performs the identical operation
/// sequence either way, so the results are bit-identical to four
/// scalar calls.
#[inline]
pub fn fast_exp4(x: [f64; LANES]) -> [f64; LANES] {
    if !all_fast_path(x) {
        return x.map(fast_exp);
    }
    exp4_core(x)
}

/// `true` when every lane satisfies [`fast_exp`]'s fast-path range
/// check (`2^-54 ≤ |x| < 512`).
#[inline]
fn all_fast_path(x: [f64; LANES]) -> bool {
    let mut fast = true;
    for &v in &x {
        fast &= ((v.to_bits() >> 52) & 0x7ff).wrapping_sub(0x3c9) < 0x3f;
    }
    fast
}

/// The branch-free four-lane fast path. Callers must have checked
/// [`all_fast_path`] first.
#[inline]
fn exp4_core(x: [f64; LANES]) -> [f64; LANES] {
    let mut kd_shifted = [0.0f64; LANES];
    let mut kd = [0.0f64; LANES];
    let mut ki = [0u64; LANES];
    for l in 0..LANES {
        kd_shifted[l] = x[l].mul_add(INVLN2N, SHIFT);
        ki[l] = kd_shifted[l].to_bits();
        kd[l] = kd_shifted[l] - SHIFT;
    }
    let mut r = [0.0f64; LANES];
    for l in 0..LANES {
        r[l] = kd[l].mul_add(NEGLN2LON, kd[l].mul_add(NEGLN2HIN, x[l]));
    }
    let mut tail = [0.0f64; LANES];
    let mut scale = [0.0f64; LANES];
    for l in 0..LANES {
        let idx = ((ki[l] & 127) * 2) as usize;
        tail[l] = f64::from_bits(EXP_TAB[idx]);
        scale[l] = f64::from_bits(EXP_TAB[idx + 1].wrapping_add(ki[l].wrapping_shl(45)));
    }
    // One short lane loop per operation: each loop is an independent
    // 4-wide map the SLP vectorizer turns into a single packed op.
    let mut c23 = [0.0f64; LANES];
    let mut t3 = [0.0f64; LANES];
    let mut r2 = [0.0f64; LANES];
    let mut c45 = [0.0f64; LANES];
    for l in 0..LANES {
        c23[l] = r[l].mul_add(C3, C2);
    }
    for l in 0..LANES {
        t3[l] = tail[l] + r[l];
    }
    for l in 0..LANES {
        r2[l] = r[l] * r[l];
    }
    for l in 0..LANES {
        c45[l] = r[l].mul_add(C5, C4);
    }
    let mut tmp = [0.0f64; LANES];
    for l in 0..LANES {
        tmp[l] = c23[l].mul_add(r2[l], t3[l]);
    }
    for l in 0..LANES {
        tmp[l] = (r2[l] * r2[l]).mul_add(c45[l], tmp[l]);
    }
    let mut y = [0.0f64; LANES];
    for l in 0..LANES {
        y[l] = scale[l].mul_add(tmp[l], scale[l]);
    }
    y
}

/// Scalar reference implementations of every kernel, kept permanently
/// for equivalence testing (`tests/kernel_properties.rs` pins the
/// chunked kernels against these, bit for bit, in both debug and
/// release builds).
pub mod scalar {
    /// `w[i] += d·p[i]`. `d` must be non-zero and finite so that dead
    /// cells (`-inf`) stay dead instead of turning into `NaN`.
    pub fn axpy(w: &mut [f64], p: &[f64], d: f64) {
        for (w, &p) in w.iter_mut().zip(p) {
            *w += d * p;
        }
    }

    /// As [`axpy`], fused with a running-max scan over the updated
    /// values.
    pub fn axpy_max(w: &mut [f64], p: &[f64], d: f64) -> f64 {
        let mut max = f64::NEG_INFINITY;
        for (w, &p) in w.iter_mut().zip(p) {
            *w += d * p;
            if *w > max {
                max = *w;
            }
        }
        max
    }

    /// Multi-term fused update: per cell, each term is added as its own
    /// rounded `+=` in slice order, then the updated value feeds the
    /// running max.
    pub fn fused_axpy_max(w: &mut [f64], terms: &[super::Term<'_>]) -> f64 {
        assert!(
            (1..=4).contains(&terms.len()),
            "fused_axpy_max supports 1..=4 terms, got {}",
            terms.len()
        );
        let mut max = f64::NEG_INFINITY;
        for (i, w) in w.iter_mut().enumerate() {
            let mut v = *w;
            for &(p, d) in terms {
                v += d * p[i];
            }
            *w = v;
            if v > max {
                max = v;
            }
        }
        max
    }

    /// Batch recompute: `w[i] = prior[i] + Σ_k d_k·p_k[i]`, one rounded
    /// `+=` per term in slice order, with the running max of the
    /// result.
    pub fn recompute_max(w: &mut [f64], prior: &[f64], terms: &[super::Term<'_>]) -> f64 {
        assert!(
            terms.len() <= 4,
            "recompute_max supports 0..=4 terms, got {}",
            terms.len()
        );
        let mut max = f64::NEG_INFINITY;
        for (i, w) in w.iter_mut().enumerate() {
            let mut v = prior[i];
            for &(p, d) in terms {
                v += d * p[i];
            }
            *w = v;
            if v > max {
                max = v;
            }
        }
        max
    }

    /// `x[i] = exp(w[i] − max)`, with `0.0` for non-finite `w[i]`.
    pub fn exp_weights(w: &[f64], max: f64, x: &mut [f64]) {
        for (x, &w) in x.iter_mut().zip(w) {
            *x = if w.is_finite() { (w - max).exp() } else { 0.0 };
        }
    }

    /// The fused exponentiation + marginal accumulation pass: walks the
    /// `(a, b, q)` grid cell by cell in memory order and adds every
    /// exponential *element-wise* into the straddling `a` and `b`
    /// accumulators. Each accumulator is one serially-rounded chain in
    /// grid order — **the** marginal association; every marginal path
    /// (batch and incremental) must reproduce it. Uses the libm `exp`
    /// (no underflow skip), so equivalence tests against this reference
    /// also pin [`super::fast_exp`] to libm.
    pub fn exp_stride_sums(w: &[f64], max: f64, q: usize, a_sums: &mut [f64], b_sums: &mut [f64]) {
        a_sums.fill(0.0);
        b_sums.fill(0.0);
        let mut idx = 0;
        for a_slot in a_sums.iter_mut() {
            for b_slot in b_sums.iter_mut() {
                for &v in &w[idx..idx + q] {
                    let x = if v.is_finite() { (v - max).exp() } else { 0.0 };
                    *a_slot += x;
                    *b_slot += x;
                }
                idx += q;
            }
        }
    }

    /// Plain sequential sum.
    pub fn sum(xs: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &x in xs {
            acc += x;
        }
        acc
    }
}

/// Folds per-lane maxima into a running max with the same `>` predicate
/// the sequential scan uses.
#[inline]
fn fold_max(lanes: [f64; LANES], mut max: f64) -> f64 {
    for m in lanes {
        if m > max {
            max = m;
        }
    }
    max
}

/// `w[i] += d·p[i]`, lane-chunked. Bit-identical to [`scalar::axpy`].
///
/// `d` must be non-zero and finite (see the module docs on dead cells).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(w: &mut [f64], p: &[f64], d: f64) {
    assert_eq!(w.len(), p.len(), "axpy length mismatch");
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (pc, pt) = p.as_chunks::<LANES>();
    for (wl, pl) in wc.iter_mut().zip(pc) {
        for l in 0..LANES {
            wl[l] += d * pl[l];
        }
    }
    for (w, &p) in wt.iter_mut().zip(pt) {
        *w += d * p;
    }
}

/// As [`axpy`], fused with the running-max scan. Bit-identical to
/// [`scalar::axpy_max`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy_max(w: &mut [f64], p: &[f64], d: f64) -> f64 {
    assert_eq!(w.len(), p.len(), "axpy_max length mismatch");
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (pc, pt) = p.as_chunks::<LANES>();
    for (wl, pl) in wc.iter_mut().zip(pc) {
        for l in 0..LANES {
            let v = wl[l] + d * pl[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for (w, &p) in wt.iter_mut().zip(pt) {
        let v = *w + d * p;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

fn fused1(w: &mut [f64], (p0, d0): Term<'_>) -> f64 {
    assert_eq!(w.len(), p0.len(), "fused term length mismatch");
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (c0, t0) = p0.as_chunks::<LANES>();
    for (wl, a) in wc.iter_mut().zip(c0) {
        for l in 0..LANES {
            let v = wl[l] + d0 * a[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for (w, &a) in wt.iter_mut().zip(t0) {
        let v = *w + d0 * a;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

fn fused2(w: &mut [f64], (p0, d0): Term<'_>, (p1, d1): Term<'_>) -> f64 {
    assert!(
        w.len() == p0.len() && w.len() == p1.len(),
        "fused term length mismatch"
    );
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (c0, t0) = p0.as_chunks::<LANES>();
    let (c1, t1) = p1.as_chunks::<LANES>();
    for ((wl, a), b) in wc.iter_mut().zip(c0).zip(c1) {
        for l in 0..LANES {
            let mut v = wl[l];
            v += d0 * a[l];
            v += d1 * b[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for ((w, &a), &b) in wt.iter_mut().zip(t0).zip(t1) {
        let mut v = *w;
        v += d0 * a;
        v += d1 * b;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

fn fused3(w: &mut [f64], (p0, d0): Term<'_>, (p1, d1): Term<'_>, (p2, d2): Term<'_>) -> f64 {
    assert!(
        w.len() == p0.len() && w.len() == p1.len() && w.len() == p2.len(),
        "fused term length mismatch"
    );
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (c0, t0) = p0.as_chunks::<LANES>();
    let (c1, t1) = p1.as_chunks::<LANES>();
    let (c2, t2) = p2.as_chunks::<LANES>();
    for (((wl, a), b), c) in wc.iter_mut().zip(c0).zip(c1).zip(c2) {
        for l in 0..LANES {
            let mut v = wl[l];
            v += d0 * a[l];
            v += d1 * b[l];
            v += d2 * c[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for (((w, &a), &b), &c) in wt.iter_mut().zip(t0).zip(t1).zip(t2) {
        let mut v = *w;
        v += d0 * a;
        v += d1 * b;
        v += d2 * c;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

fn fused4(
    w: &mut [f64],
    (p0, d0): Term<'_>,
    (p1, d1): Term<'_>,
    (p2, d2): Term<'_>,
    (p3, d3): Term<'_>,
) -> f64 {
    assert!(
        w.len() == p0.len() && w.len() == p1.len() && w.len() == p2.len() && w.len() == p3.len(),
        "fused term length mismatch"
    );
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (c0, t0) = p0.as_chunks::<LANES>();
    let (c1, t1) = p1.as_chunks::<LANES>();
    let (c2, t2) = p2.as_chunks::<LANES>();
    let (c3, t3) = p3.as_chunks::<LANES>();
    for ((((wl, a), b), c), d) in wc.iter_mut().zip(c0).zip(c1).zip(c2).zip(c3) {
        for l in 0..LANES {
            let mut v = wl[l];
            v += d0 * a[l];
            v += d1 * b[l];
            v += d2 * c[l];
            v += d3 * d[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for ((((w, &a), &b), &c), &d) in wt.iter_mut().zip(t0).zip(t1).zip(t2).zip(t3) {
        let mut v = *w;
        v += d0 * a;
        v += d1 * b;
        v += d2 * c;
        v += d3 * d;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

/// Multi-term fused update `w[i] += Σ_k d_k·p_k[i]` with the running
/// max of the updated values, in one memory pass. Bit-identical to
/// [`scalar::fused_axpy_max`] (each term is its own rounded `+=`, in
/// term order). Supports 1–4 terms — one per Table 1 event class —
/// each dispatched to a monomorphic lane-chunked loop.
///
/// # Panics
///
/// Panics if `terms` is empty, longer than 4, or any term's length
/// differs from `w`.
pub fn fused_axpy_max(w: &mut [f64], terms: &[Term<'_>]) -> f64 {
    match *terms {
        [t0] => fused1(w, t0),
        [t0, t1] => fused2(w, t0, t1),
        [t0, t1, t2] => fused3(w, t0, t1, t2),
        [t0, t1, t2, t3] => fused4(w, t0, t1, t2, t3),
        _ => panic!("fused_axpy_max supports 1..=4 terms, got {}", terms.len()),
    }
}

fn recompute0(w: &mut [f64], prior: &[f64]) -> f64 {
    assert_eq!(w.len(), prior.len(), "prior length mismatch");
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (prc, prt) = prior.as_chunks::<LANES>();
    for (wl, pl) in wc.iter_mut().zip(prc) {
        for l in 0..LANES {
            let v = pl[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for (w, &v) in wt.iter_mut().zip(prt) {
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

fn recompute1(w: &mut [f64], prior: &[f64], (p0, d0): Term<'_>) -> f64 {
    assert!(
        w.len() == prior.len() && w.len() == p0.len(),
        "recompute length mismatch"
    );
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (prc, prt) = prior.as_chunks::<LANES>();
    let (c0, t0) = p0.as_chunks::<LANES>();
    for ((wl, pl), a) in wc.iter_mut().zip(prc).zip(c0) {
        for l in 0..LANES {
            let v = pl[l] + d0 * a[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for ((w, &pr), &a) in wt.iter_mut().zip(prt).zip(t0) {
        let v = pr + d0 * a;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

fn recompute2(w: &mut [f64], prior: &[f64], (p0, d0): Term<'_>, (p1, d1): Term<'_>) -> f64 {
    assert!(
        w.len() == prior.len() && w.len() == p0.len() && w.len() == p1.len(),
        "recompute length mismatch"
    );
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (prc, prt) = prior.as_chunks::<LANES>();
    let (c0, t0) = p0.as_chunks::<LANES>();
    let (c1, t1) = p1.as_chunks::<LANES>();
    for (((wl, pl), a), b) in wc.iter_mut().zip(prc).zip(c0).zip(c1) {
        for l in 0..LANES {
            let mut v = pl[l];
            v += d0 * a[l];
            v += d1 * b[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for (((w, &pr), &a), &b) in wt.iter_mut().zip(prt).zip(t0).zip(t1) {
        let mut v = pr;
        v += d0 * a;
        v += d1 * b;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

fn recompute3(
    w: &mut [f64],
    prior: &[f64],
    (p0, d0): Term<'_>,
    (p1, d1): Term<'_>,
    (p2, d2): Term<'_>,
) -> f64 {
    assert!(
        w.len() == prior.len() && w.len() == p0.len() && w.len() == p1.len() && w.len() == p2.len(),
        "recompute length mismatch"
    );
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (prc, prt) = prior.as_chunks::<LANES>();
    let (c0, t0) = p0.as_chunks::<LANES>();
    let (c1, t1) = p1.as_chunks::<LANES>();
    let (c2, t2) = p2.as_chunks::<LANES>();
    for ((((wl, pl), a), b), c) in wc.iter_mut().zip(prc).zip(c0).zip(c1).zip(c2) {
        for l in 0..LANES {
            let mut v = pl[l];
            v += d0 * a[l];
            v += d1 * b[l];
            v += d2 * c[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for ((((w, &pr), &a), &b), &c) in wt.iter_mut().zip(prt).zip(t0).zip(t1).zip(t2) {
        let mut v = pr;
        v += d0 * a;
        v += d1 * b;
        v += d2 * c;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

fn recompute4(
    w: &mut [f64],
    prior: &[f64],
    (p0, d0): Term<'_>,
    (p1, d1): Term<'_>,
    (p2, d2): Term<'_>,
    (p3, d3): Term<'_>,
) -> f64 {
    assert!(
        w.len() == prior.len()
            && w.len() == p0.len()
            && w.len() == p1.len()
            && w.len() == p2.len()
            && w.len() == p3.len(),
        "recompute length mismatch"
    );
    let mut maxl = [f64::NEG_INFINITY; LANES];
    let (wc, wt) = w.as_chunks_mut::<LANES>();
    let (prc, prt) = prior.as_chunks::<LANES>();
    let (c0, t0) = p0.as_chunks::<LANES>();
    let (c1, t1) = p1.as_chunks::<LANES>();
    let (c2, t2) = p2.as_chunks::<LANES>();
    let (c3, t3) = p3.as_chunks::<LANES>();
    for (((((wl, pl), a), b), c), d) in wc.iter_mut().zip(prc).zip(c0).zip(c1).zip(c2).zip(c3) {
        for l in 0..LANES {
            let mut v = pl[l];
            v += d0 * a[l];
            v += d1 * b[l];
            v += d2 * c[l];
            v += d3 * d[l];
            wl[l] = v;
            if v > maxl[l] {
                maxl[l] = v;
            }
        }
    }
    let mut max = fold_max(maxl, f64::NEG_INFINITY);
    for (((((w, &pr), &a), &b), &c), &d) in wt.iter_mut().zip(prt).zip(t0).zip(t1).zip(t2).zip(t3) {
        let mut v = pr;
        v += d0 * a;
        v += d1 * b;
        v += d2 * c;
        v += d3 * d;
        *w = v;
        if v > max {
            max = v;
        }
    }
    max
}

/// Batch recompute `w[i] = prior[i] + Σ_k d_k·p_k[i]` with the running
/// max, in one memory pass. Bit-identical to [`scalar::recompute_max`].
/// This is the one shared kernel behind both `WhiteBoxInference::
/// posterior` and `PosteriorUpdater::rebase`. Zero terms (the prior
/// itself) are allowed.
///
/// # Panics
///
/// Panics if `terms` is longer than 4 or any slice length differs from
/// `w`.
pub fn recompute_max(w: &mut [f64], prior: &[f64], terms: &[Term<'_>]) -> f64 {
    match *terms {
        [] => recompute0(w, prior),
        [t0] => recompute1(w, prior, t0),
        [t0, t1] => recompute2(w, prior, t0, t1),
        [t0, t1, t2] => recompute3(w, prior, t0, t1, t2),
        [t0, t1, t2, t3] => recompute4(w, prior, t0, t1, t2, t3),
        _ => panic!("recompute_max supports 0..=4 terms, got {}", terms.len()),
    }
}

/// `x[i] = exp(w[i] − max)`, skipping the `exp` call where the result
/// provably underflows to `+0.0`. Bit-identical to
/// [`scalar::exp_weights`], which also maps `-inf` — and every shifted
/// value at or below [`EXP_UNDERFLOW`] — to exactly `0.0`, only
/// through the full `exp`.
///
/// # Panics
///
/// Panics if the slice lengths differ or `max` is `NaN`-producing
/// (callers assert a finite max first).
pub fn exp_weights(w: &[f64], max: f64, x: &mut [f64]) {
    assert_eq!(w.len(), x.len(), "exp_weights length mismatch");
    let (xc, xt) = x.as_chunks_mut::<LANES>();
    let (wc, wt) = w.as_chunks::<LANES>();
    for (xl, wl) in xc.iter_mut().zip(wc) {
        let mut v = [0.0f64; LANES];
        for l in 0..LANES {
            v[l] = wl[l] - max;
        }
        if all_fast_path(v) {
            *xl = exp4_core(v);
        } else {
            for l in 0..LANES {
                xl[l] = if v[l] >= EXP_UNDERFLOW {
                    fast_exp(v[l])
                } else {
                    0.0
                };
            }
        }
    }
    for (x, &w) in xt.iter_mut().zip(wt) {
        let v = w - max;
        *x = if v >= EXP_UNDERFLOW { fast_exp(v) } else { 0.0 };
    }
}

/// Largest `q` the interleaved [`exp_stride_sums`] fast path buffers on
/// the stack; larger strides take the serial fallback (they only occur
/// for custom resolutions far off the paper's grid).
const QBUF: usize = 64;

/// Fused exponentiation + marginal stride sums, bit-identical to
/// [`scalar::exp_stride_sums`]: every marginal accumulator is a plain
/// *element-wise serial chain* in grid order — `a_sums[a]` adds its
/// row's `nb·q` exponentials left to right, `b_sums[b]` adds its
/// `na` blocks of `q` exponentials in `(a, k)` order — the association
/// the committed `results/` artefacts pin.
///
/// The chunking therefore interleaves four *independent rows* rather
/// than re-associating within a chain: lanes `l = 0..4` walk rows
/// `a₀..a₀+4` in lockstep, so each row's `a`-chain stays a single
/// serially-rounded chain while the four chains run concurrently (the
/// additions vectorize vertically and the `exp`s feed [`exp4_core`]
/// four at a time). Each lane's `q`-block is buffered and drained into
/// `b_sums[b]` in `(row, k)` order, reproducing the scalar `b`-chain
/// bit for bit. Underflowed cells contribute exactly `+0.0` — a
/// bit-exact no-op on the non-negative accumulators — so skipping
/// their `exp` changes nothing. Leftover rows (`na mod 4`) run the
/// scalar order directly.
///
/// `w` may be lane-padded beyond the structural cell count; only the
/// first `a_sums.len()·b_sums.len()·q` cells are read.
///
/// # Panics
///
/// Panics if `w` is shorter than the structural cell count.
pub fn exp_stride_sums(w: &[f64], max: f64, q: usize, a_sums: &mut [f64], b_sums: &mut [f64]) {
    let na = a_sums.len();
    let nb = b_sums.len();
    let row = nb * q;
    assert!(w.len() >= na * row, "weight buffer shorter than the grid");
    a_sums.fill(0.0);
    b_sums.fill(0.0);
    let mut a0 = 0;
    if q <= QBUF {
        let mut eb = [[0.0f64; QBUF]; LANES];
        while a0 + LANES <= na {
            let mut aacc = [0.0f64; LANES];
            let mut j = 0;
            for b_slot in b_sums.iter_mut() {
                for k in 0..q {
                    let mut v = [0.0f64; LANES];
                    for l in 0..LANES {
                        v[l] = w[(a0 + l) * row + j + k] - max;
                    }
                    let e = if all_fast_path(v) {
                        exp4_core(v)
                    } else {
                        let mut e = [0.0f64; LANES];
                        for l in 0..LANES {
                            if v[l] >= EXP_UNDERFLOW {
                                e[l] = fast_exp(v[l]);
                            }
                        }
                        e
                    };
                    for l in 0..LANES {
                        aacc[l] += e[l];
                        eb[l][k] = e[l];
                    }
                }
                // Drain in (row, k) order: lane 0's whole block before
                // lane 1's — the exact scalar b-chain.
                let mut acc = *b_slot;
                for lane in &eb {
                    for &e in &lane[..q] {
                        acc += e;
                    }
                }
                *b_slot = acc;
                j += q;
            }
            for (l, &acc) in aacc.iter().enumerate() {
                a_sums[a0 + l] = acc;
            }
            a0 += LANES;
        }
    }
    // Leftover rows (and the q > QBUF fallback): the scalar order, with
    // the same exp-skip for provably underflowed cells.
    let mut idx = a0 * row;
    for a_slot in a_sums.iter_mut().skip(a0) {
        for b_slot in b_sums.iter_mut() {
            for &wv in &w[idx..idx + q] {
                let v = wv - max;
                if v >= EXP_UNDERFLOW {
                    let e = fast_exp(v);
                    *a_slot += e;
                    *b_slot += e;
                }
            }
            idx += q;
        }
    }
}

/// Lane-chunked sum with four independent accumulators. This
/// re-associates the addition order, so it is reserved for paths whose
/// results are *not* byte-pinned by the committed artefacts (the
/// adaptive mode's coarse-region selection); everything on the default
/// fixed-grid path sums via [`scalar::sum`].
pub fn sum4(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let (chunks, tail) = xs.as_chunks::<LANES>();
    for c in chunks {
        for l in 0..LANES {
            acc[l] += c[l];
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &x in tail {
        total += x;
    }
    total
}

/// A 64-byte-aligned, lane-padded `f64` buffer.
///
/// The crate forbids `unsafe`, so alignment comes from over-allocating
/// by one cache line and slicing at the first aligned element; the
/// allocation is never resized, so the offset stays valid. The logical
/// content is padded up to a multiple of [`LANES`] with a caller-chosen
/// fill value (dead-cell `-inf` for log tables, `0.0` for probability
/// values), so chunked kernels can sweep whole lanes with empty tails.
#[derive(Debug)]
pub struct LaneBuf {
    storage: Box<[f64]>,
    offset: usize,
    padded: usize,
    len: usize,
    pad_value: f64,
}

/// Bytes per cache line (the alignment target of [`LaneBuf`]).
const CACHE_LINE: usize = 64;
const LINE_F64S: usize = CACHE_LINE / std::mem::size_of::<f64>();

impl LaneBuf {
    /// Builds a buffer holding `values`, padded to a lane multiple with
    /// `pad_value`.
    pub fn new(values: &[f64], pad_value: f64) -> LaneBuf {
        let len = values.len();
        let padded = len.div_ceil(LANES) * LANES;
        let mut storage = vec![pad_value; padded + LINE_F64S].into_boxed_slice();
        let offset = {
            let addr = storage.as_ptr() as usize;
            (CACHE_LINE - addr % CACHE_LINE) % CACHE_LINE / std::mem::size_of::<f64>()
        };
        storage[offset..offset + len].copy_from_slice(values);
        LaneBuf {
            storage,
            offset,
            padded,
            len,
            pad_value,
        }
    }

    /// A buffer of `len` logical elements, all set to `fill` (which is
    /// also the padding value).
    pub fn filled(len: usize, fill: f64) -> LaneBuf {
        LaneBuf::new(&vec![fill; len], fill)
    }

    /// Logical (unpadded) length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Padded length: the smallest lane multiple holding [`Self::len`].
    pub fn padded_len(&self) -> usize {
        self.padded
    }

    /// The full lane-padded slice (logical values then padding).
    pub fn padded(&self) -> &[f64] {
        &self.storage[self.offset..self.offset + self.padded]
    }

    /// Mutable lane-padded slice. Callers must preserve the padding
    /// invariant (padding cells keep the fill value).
    pub fn padded_mut(&mut self) -> &mut [f64] {
        &mut self.storage[self.offset..self.offset + self.padded]
    }

    /// The logical (unpadded) values.
    pub fn as_slice(&self) -> &[f64] {
        &self.storage[self.offset..self.offset + self.len]
    }
}

impl Clone for LaneBuf {
    fn clone(&self) -> LaneBuf {
        // Re-derive the aligned offset for the fresh allocation instead
        // of copying it: the clone's base address differs.
        LaneBuf::new(self.as_slice(), self.pad_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_buf_is_cache_aligned_and_padded() {
        for n in [0usize, 1, 3, 4, 5, 31, 32, 4096] {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let buf = LaneBuf::new(&values, f64::NEG_INFINITY);
            assert_eq!(buf.len(), n);
            assert_eq!(buf.padded_len() % LANES, 0);
            assert!(buf.padded_len() >= n && buf.padded_len() < n + LANES);
            assert_eq!(buf.padded().as_ptr() as usize % CACHE_LINE, 0);
            assert_eq!(buf.as_slice(), &values[..]);
            for &pad in &buf.padded()[n..] {
                assert_eq!(pad, f64::NEG_INFINITY);
            }
            let clone = buf.clone();
            assert_eq!(clone.padded().as_ptr() as usize % CACHE_LINE, 0);
            assert_eq!(clone.as_slice(), buf.as_slice());
            assert_eq!(clone.padded()[n..], buf.padded()[n..]);
        }
    }

    #[test]
    fn chunked_axpy_matches_scalar_bitwise() {
        let p: Vec<f64> = (0..103).map(|i| -(i as f64) * 0.37 - 0.01).collect();
        let mut w1: Vec<f64> = (0..103).map(|i| -(i as f64) * 1.7).collect();
        let mut w2 = w1.clone();
        axpy(&mut w1, &p, 13.0);
        scalar::axpy(&mut w2, &p, 13.0);
        assert_eq!(
            w1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            w2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn underflow_threshold_is_exact() {
        // exp must return exactly +0.0 at and below the threshold, so
        // the skip branch is invisible in the results.
        assert_eq!(EXP_UNDERFLOW.exp(), 0.0);
        assert_eq!((EXP_UNDERFLOW - 1.0).exp(), 0.0);
        assert_eq!((2.0 * EXP_UNDERFLOW).exp(), 0.0);
        assert!(EXP_UNDERFLOW.exp().is_sign_positive());
    }

    #[test]
    fn sum4_matches_scalar_closely() {
        let xs: Vec<f64> = (0..1001).map(|i| (i as f64) * 0.001).collect();
        let exact = scalar::sum(&xs);
        assert!((sum4(&xs) - exact).abs() <= 1e-9 * exact.abs());
    }

    #[test]
    #[should_panic(expected = "1..=4 terms")]
    fn fused_rejects_empty_terms() {
        let mut w = [0.0; 4];
        let _ = fused_axpy_max(&mut w, &[]);
    }

    #[test]
    #[should_panic(expected = "0..=4 terms")]
    fn recompute_rejects_too_many_terms() {
        let mut w = [0.0; 4];
        let p = [0.0; 4];
        let terms: Vec<Term<'_>> = (0..5).map(|_| (&p[..], 1.0)).collect();
        let _ = recompute_max(&mut w, &p, &terms);
    }
}
