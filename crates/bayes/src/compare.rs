//! Choosing between Web Services by confidence (paper Section 2.2).
//!
//! The paper's example: WS A has confidence 99% that its pfd is below
//! 1e-3 and 70% that it is below 1e-4; WS B has 95% and 90%
//! respectively. Which one to use *depends on the dependability
//! context*: A wins at the 1e-3 target, B at the stricter 1e-4. This
//! module implements exactly that selection over [`GridPosterior`]s.

use crate::posterior::GridPosterior;

/// A candidate service with its posterior over the pfd.
#[derive(Debug, Clone)]
pub struct Candidate<'a> {
    /// Display name.
    pub name: &'a str,
    /// Posterior over the candidate's pfd.
    pub posterior: &'a GridPosterior,
}

impl<'a> Candidate<'a> {
    /// Creates a candidate.
    pub fn new(name: &'a str, posterior: &'a GridPosterior) -> Candidate<'a> {
        Candidate { name, posterior }
    }
}

/// The outcome of a comparison at one target.
#[derive(Debug, Clone, PartialEq)]
pub struct Choice<'a> {
    /// The pfd target compared at.
    pub target: f64,
    /// The winning candidate's name.
    pub winner: &'a str,
    /// The winner's confidence at the target.
    pub confidence: f64,
}

/// Picks the candidate with the highest confidence of meeting `target`.
/// Ties go to the earlier candidate (stable).
///
/// Returns `None` for an empty candidate list.
///
/// # Panics
///
/// Panics if `target` is not finite.
pub fn choose_at<'a>(candidates: &[Candidate<'a>], target: f64) -> Option<Choice<'a>> {
    assert!(target.is_finite(), "target must be finite");
    let mut best: Option<Choice<'a>> = None;
    for candidate in candidates {
        let confidence = candidate.posterior.confidence(target);
        let better = match &best {
            Some(current) => confidence > current.confidence,
            None => true,
        };
        if better {
            best = Some(Choice {
                target,
                winner: candidate.name,
                confidence,
            });
        }
    }
    best
}

/// Evaluates the choice across several targets — the paper's point that
/// the preferred WS can flip as the target tightens.
pub fn choose_across<'a>(candidates: &[Candidate<'a>], targets: &[f64]) -> Vec<Choice<'a>> {
    targets
        .iter()
        .filter_map(|&t| choose_at(candidates, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posterior::GridPosterior;

    /// Builds a posterior over [0, 1e-3 * cells] whose mass profile we
    /// control per cell.
    fn posterior(weights: Vec<f64>) -> GridPosterior {
        let edges: Vec<f64> = (0..=weights.len()).map(|i| i as f64 * 1e-4).collect();
        GridPosterior::from_weights(edges, weights)
    }

    #[test]
    fn paper_example_flips_with_the_target() {
        // WS A: most mass just below 1e-3, little below 1e-4.
        //   cells of width 1e-4: [0,1e-4) gets 0.70, rest up to 1e-3
        //   gets 0.29, tail 0.01 -> conf(1e-4)=0.70, conf(1e-3)=0.99.
        let a = posterior(vec![
            0.70,
            0.29 / 9.0,
            0.29 / 9.0,
            0.29 / 9.0,
            0.29 / 9.0,
            0.29 / 9.0,
            0.29 / 9.0,
            0.29 / 9.0,
            0.29 / 9.0,
            0.29 / 9.0,
            0.01,
        ]);
        // WS B: conf(1e-4)=0.90, conf(1e-3)=0.95.
        let b = posterior(vec![
            0.90,
            0.05 / 9.0,
            0.05 / 9.0,
            0.05 / 9.0,
            0.05 / 9.0,
            0.05 / 9.0,
            0.05 / 9.0,
            0.05 / 9.0,
            0.05 / 9.0,
            0.05 / 9.0,
            0.05,
        ]);
        let candidates = [Candidate::new("A", &a), Candidate::new("B", &b)];

        let loose = choose_at(&candidates, 1e-3).unwrap();
        assert_eq!(loose.winner, "A");
        assert!((loose.confidence - 0.99).abs() < 1e-9);

        let strict = choose_at(&candidates, 1e-4).unwrap();
        assert_eq!(strict.winner, "B");
        assert!((strict.confidence - 0.90).abs() < 1e-9);
    }

    #[test]
    fn choose_across_reports_each_target() {
        let a = posterior(vec![0.5, 0.5]);
        let b = posterior(vec![0.6, 0.4]);
        let candidates = [Candidate::new("A", &a), Candidate::new("B", &b)];
        let choices = choose_across(&candidates, &[1e-4, 2e-4]);
        assert_eq!(choices.len(), 2);
        assert_eq!(choices[0].winner, "B");
        // At the full support both are certain; tie goes to A (stable).
        assert_eq!(choices[1].winner, "A");
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert!(choose_at(&[], 1e-3).is_none());
        assert!(choose_across(&[], &[1e-3]).is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_target_panics() {
        let a = posterior(vec![1.0]);
        let _ = choose_at(&[Candidate::new("A", &a)], f64::NAN);
    }
}
