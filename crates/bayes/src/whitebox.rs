//! White-box (trivariate) inference for two releases run side by side
//! (paper Section 5.1, eqs. (2)–(6)).
//!
//! When the managed upgrade runs the old release A and the new release B
//! in parallel, each demand is scored into one of the four events of
//! Table 1. The failure behaviour of the pair is described by three
//! probabilities — `P_A`, `P_B` and the coincident-failure probability
//! `P_AB` — with joint prior
//!
//! ```text
//! f(p_A, p_B, p_AB) = f_A(p_A) · f_B(p_B) · f(p_AB | p_A, p_B)
//! ```
//!
//! The paper's "indifference" choice makes `P_AB | P_A, P_B` uniform on
//! `[0, min(P_A, P_B)]` — a deliberately conservative prior (expected
//! coincidence = half the smaller marginal). The multinomial likelihood of
//! the observed counts `(r1, r2, r3, n−r1−r2−r3)` then updates the joint,
//! and the marginals of eqs. (3)–(5) fall out by summation over the grid.
//!
//! The joint is discretised on a `(p_A, p_B, q)` grid with
//! `p_AB = q · min(p_A, p_B)`; a uniform `q` on `[0, 1]` is *exactly* the
//! indifference prior, and other [`CoincidencePrior`] variants support the
//! prior-sensitivity ablation.

use std::sync::Arc;

use crate::beta::ScaledBeta;
use crate::counts::JointCounts;
use crate::kernels::{self, LaneBuf, Term};
use crate::posterior::{self, GridPosterior, MarginalView};

/// The conditional prior of the coincident-failure probability
/// `P_AB | P_A, P_B`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoincidencePrior {
    /// Uniform on `[0, min(P_A, P_B)]` — the paper's "indifference"
    /// assumption.
    IndifferenceUniform,
    /// Uniform on `[0, c·min(P_A, P_B)]` for `c` in `(0, 1]`; smaller `c`
    /// encodes optimism about coincident failures (ablation A4).
    ScaledUniform(f64),
    /// Deterministic `P_AB = f·min(P_A, P_B)`.
    FixedFraction(f64),
    /// Deterministic independence, `P_AB = P_A·P_B`.
    Independent,
}

impl CoincidencePrior {
    fn validate(self) {
        match self {
            CoincidencePrior::ScaledUniform(c) => {
                assert!(
                    c > 0.0 && c <= 1.0,
                    "ScaledUniform parameter {c} not in (0, 1]"
                );
            }
            CoincidencePrior::FixedFraction(f) => {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "FixedFraction parameter {f} not in [0, 1]"
                );
            }
            _ => {}
        }
    }

    /// Grid points of the mixing variable with their prior masses.
    fn q_grid(self, resolution: usize) -> Vec<(QPoint, f64)> {
        match self {
            CoincidencePrior::IndifferenceUniform => uniform_q(1.0, resolution),
            CoincidencePrior::ScaledUniform(c) => uniform_q(c, resolution),
            CoincidencePrior::FixedFraction(f) => vec![(QPoint::Fraction(f), 1.0)],
            CoincidencePrior::Independent => vec![(QPoint::Product, 1.0)],
        }
    }
}

/// One grid point of the coincidence mixing variable.
#[derive(Debug, Clone, Copy, PartialEq)]
enum QPoint {
    /// `P_AB = q · min(P_A, P_B)`.
    Fraction(f64),
    /// `P_AB = P_A · P_B`.
    Product,
}

impl QPoint {
    #[inline]
    fn p_ab(self, pa: f64, pb: f64) -> f64 {
        match self {
            QPoint::Fraction(q) => q * pa.min(pb),
            QPoint::Product => pa * pb,
        }
    }
}

fn uniform_q(upper: f64, resolution: usize) -> Vec<(QPoint, f64)> {
    let mass = 1.0 / resolution as f64;
    (0..resolution)
        .map(|k| {
            let q = upper * (k as f64 + 0.5) / resolution as f64;
            (QPoint::Fraction(q), mass)
        })
        .collect()
}

/// Grid resolution of the joint prior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Cells along the `P_A` axis.
    pub a_cells: usize,
    /// Cells along the `P_B` axis.
    pub b_cells: usize,
    /// Grid points of the coincidence mixing variable.
    pub q_cells: usize,
}

impl Default for Resolution {
    /// 96 × 96 × 32 — accurate to well under a grid cell for the paper's
    /// scenarios while keeping a posterior update around a millisecond in
    /// release builds.
    fn default() -> Resolution {
        Resolution {
            a_cells: 96,
            b_cells: 96,
            q_cells: 32,
        }
    }
}

impl Resolution {
    /// The default adaptive coarse-to-fine configuration: a 32×32×16
    /// coarse pass over the full prior support locates the posterior's
    /// high-mass region, and a fine grid at the default fixed resolution
    /// is spent only there. See [`crate::adaptive`] for the accuracy
    /// contract.
    pub fn adaptive() -> crate::adaptive::AdaptiveResolution {
        crate::adaptive::AdaptiveResolution::default()
    }
}

/// The precomputed grid tables — prior masses, per-cell event
/// log-probabilities, `p_AB` values and axis edges. Shared via [`Arc`]
/// between the engine, every posterior it produces and any incremental
/// updaters, so queries never copy the ~300k `f64` of tables.
///
/// The log tables live in cache-aligned, lane-padded [`LaneBuf`]s
/// (structure-of-arrays): each of the four event classes is its own
/// contiguous stream, padded with dead-cell `-inf` up to a lane
/// multiple, so the chunked kernels in [`crate::kernels`] sweep whole
/// lanes with no tail inside the per-term loops and no per-cell
/// liveness branch.
#[derive(Debug)]
pub(crate) struct GridTables {
    pub(crate) a_edges: Vec<f64>,
    pub(crate) b_edges: Vec<f64>,
    /// Per-cell log prior mass; NEG_INFINITY where the prior vanishes.
    ln_prior: LaneBuf,
    /// Per-cell `ln` of the four event probabilities (p11, p10, p01, p00).
    ln_p11: LaneBuf,
    ln_p10: LaneBuf,
    ln_p01: LaneBuf,
    ln_p00: LaneBuf,
    /// Per-cell `p_AB` values, for the coincidence marginal.
    p_ab: Vec<f64>,
    /// Number of q points actually used.
    pub(crate) q_points: usize,
    /// Support of the coincidence marginal, `min(range_A, range_B)`.
    pab_range: f64,
}

impl GridTables {
    pub(crate) fn cells(&self) -> usize {
        self.ln_prior.len()
    }

    /// Lane-padded cell count — the length of every padded table slice
    /// and of the `ln_w` buffers the kernels sweep.
    fn padded_cells(&self) -> usize {
        self.ln_prior.padded_len()
    }

    pub(crate) fn a_cells(&self) -> usize {
        self.a_edges.len() - 1
    }

    pub(crate) fn b_cells(&self) -> usize {
        self.b_edges.len() - 1
    }

    /// The live (count > 0) likelihood terms in the reference order
    /// `r1..r4`, as lane-padded table slices. Returns the filled prefix
    /// length; no allocation.
    fn live_terms<'a>(&'a self, deltas: [f64; 4]) -> ([Term<'a>; 4], usize) {
        let tables: [&'a [f64]; 4] = [
            self.ln_p11.padded(),
            self.ln_p10.padded(),
            self.ln_p01.padded(),
            self.ln_p00.padded(),
        ];
        let mut terms: [Term<'a>; 4] = [(&[], 0.0); 4];
        let mut n = 0;
        for (&d, &table) in deltas.iter().zip(&tables) {
            if d > 0.0 {
                terms[n] = (table, d);
                n += 1;
            }
        }
        (terms, n)
    }

    /// Recomputes `ln_w` (a lane-padded buffer) from total counts via
    /// the one shared batch kernel, returning the running maximum. The
    /// operation order — prior, then the `r1..r4` terms guarded on
    /// positive counts, each a separately rounded `+=` — is the
    /// reference order every other path must reproduce. Dead and
    /// padding cells come out `-inf` (`-inf + d·(-inf)` for the live
    /// deltas), exactly as they went in.
    ///
    /// This is the **single** recompute path: both
    /// [`WhiteBoxInference::posterior`] and [`PosteriorUpdater::rebase`]
    /// call it, which is what makes batch and rebased-incremental
    /// results bit-identical by construction.
    pub(crate) fn recompute_into(&self, counts: &JointCounts, ln_w: &mut [f64]) -> f64 {
        let deltas = [
            counts.both_failed() as f64,
            counts.only_a_failed() as f64,
            counts.only_b_failed() as f64,
            counts.both_succeeded() as f64,
        ];
        let (terms, n) = self.live_terms(deltas);
        kernels::recompute_max(ln_w, self.ln_prior.padded(), &terms[..n])
    }
}

/// White-box inference engine. Construction precomputes the prior masses
/// and the per-cell log-probabilities of the four Table 1 events, so each
/// posterior update is a single fused pass over the grid.
#[derive(Debug, Clone)]
pub struct WhiteBoxInference {
    prior_a: ScaledBeta,
    prior_b: ScaledBeta,
    coincidence: CoincidencePrior,
    resolution: Resolution,
    tables: Arc<GridTables>,
}

impl WhiteBoxInference {
    /// Creates an engine with the default resolution.
    pub fn new(
        prior_a: ScaledBeta,
        prior_b: ScaledBeta,
        coincidence: CoincidencePrior,
    ) -> WhiteBoxInference {
        WhiteBoxInference::with_resolution(prior_a, prior_b, coincidence, Resolution::default())
    }

    /// Creates an engine with an explicit grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if any resolution component is zero or a coincidence-prior
    /// parameter is out of range.
    pub fn with_resolution(
        prior_a: ScaledBeta,
        prior_b: ScaledBeta,
        coincidence: CoincidencePrior,
        resolution: Resolution,
    ) -> WhiteBoxInference {
        WhiteBoxInference::windowed(
            prior_a,
            prior_b,
            coincidence,
            resolution,
            (0.0, prior_a.range()),
            (0.0, prior_b.range()),
        )
    }

    /// Creates an engine whose grid covers only the given axis windows
    /// instead of the priors' full supports. This is the fine stage of
    /// the adaptive coarse-to-fine mode ([`crate::adaptive`]): spending
    /// the whole grid budget on the posterior's high-mass region. Prior
    /// mass outside the windows is simply not represented — queries
    /// against the resulting posteriors treat it as zero — so windows
    /// must cover essentially all posterior mass for accurate answers.
    ///
    /// With the full-support windows `(0, range)` this is exactly
    /// [`WhiteBoxInference::with_resolution`], bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if any resolution component is zero, a coincidence-prior
    /// parameter is out of range, or a window is empty, inverted or
    /// outside `[0, range]`.
    pub fn windowed(
        prior_a: ScaledBeta,
        prior_b: ScaledBeta,
        coincidence: CoincidencePrior,
        resolution: Resolution,
        a_window: (f64, f64),
        b_window: (f64, f64),
    ) -> WhiteBoxInference {
        assert!(
            resolution.a_cells > 0 && resolution.b_cells > 0 && resolution.q_cells > 0,
            "grid resolution components must be positive"
        );
        coincidence.validate();
        for (window, range) in [(a_window, prior_a.range()), (b_window, prior_b.range())] {
            assert!(
                window.0 >= 0.0 && window.0 < window.1 && window.1 <= range,
                "window {window:?} empty or outside the prior support [0, {range}]"
            );
        }
        let (na, nb) = (resolution.a_cells, resolution.b_cells);
        // `lo + (hi - lo)·i/n`: for the full-support window this reduces
        // to `0 + range·i/n`, reproducing the unwindowed edges exactly.
        let a_edges: Vec<f64> = (0..=na)
            .map(|i| a_window.0 + (a_window.1 - a_window.0) * i as f64 / na as f64)
            .collect();
        let b_edges: Vec<f64> = (0..=nb)
            .map(|j| b_window.0 + (b_window.1 - b_window.0) * j as f64 / nb as f64)
            .collect();
        let a_mass: Vec<f64> = (0..na)
            .map(|i| prior_a.mass(a_edges[i], a_edges[i + 1]))
            .collect();
        let b_mass: Vec<f64> = (0..nb)
            .map(|j| prior_b.mass(b_edges[j], b_edges[j + 1]))
            .collect();
        let q_grid = coincidence.q_grid(resolution.q_cells);
        let q_points = q_grid.len();

        let cells = na * nb * q_points;
        let mut ln_prior = Vec::with_capacity(cells);
        let mut ln_p11 = Vec::with_capacity(cells);
        let mut ln_p10 = Vec::with_capacity(cells);
        let mut ln_p01 = Vec::with_capacity(cells);
        let mut ln_p00 = Vec::with_capacity(cells);
        let mut p_ab_values = Vec::with_capacity(cells);

        for i in 0..na {
            let pa = 0.5 * (a_edges[i] + a_edges[i + 1]);
            for j in 0..nb {
                let pb = 0.5 * (b_edges[j] + b_edges[j + 1]);
                let base_mass = a_mass[i] * b_mass[j];
                for &(qp, q_mass) in &q_grid {
                    let p11 = qp.p_ab(pa, pb);
                    let p10 = pa - p11;
                    let p01 = pb - p11;
                    let p00 = 1.0 - pa - pb + p11;
                    let prior = base_mass * q_mass;
                    let valid = prior > 0.0 && p11 >= 0.0 && p10 >= 0.0 && p01 >= 0.0 && p00 > 0.0;
                    if valid {
                        ln_prior.push(prior.ln());
                        // ln(0) = -inf is fine: xlny handles zero counts.
                        ln_p11.push(p11.ln());
                        ln_p10.push(p10.ln());
                        ln_p01.push(p01.ln());
                        ln_p00.push(p00.ln());
                    } else {
                        ln_prior.push(f64::NEG_INFINITY);
                        ln_p11.push(f64::NEG_INFINITY);
                        ln_p10.push(f64::NEG_INFINITY);
                        ln_p01.push(f64::NEG_INFINITY);
                        ln_p00.push(f64::NEG_INFINITY);
                    }
                    p_ab_values.push(p11);
                }
            }
        }

        WhiteBoxInference {
            prior_a,
            prior_b,
            coincidence,
            resolution,
            tables: Arc::new(GridTables {
                a_edges,
                b_edges,
                // Pad with the dead-cell encoding so chunked sweeps can
                // cover the padding lanes without affecting any result.
                ln_prior: LaneBuf::new(&ln_prior, f64::NEG_INFINITY),
                ln_p11: LaneBuf::new(&ln_p11, f64::NEG_INFINITY),
                ln_p10: LaneBuf::new(&ln_p10, f64::NEG_INFINITY),
                ln_p01: LaneBuf::new(&ln_p01, f64::NEG_INFINITY),
                ln_p00: LaneBuf::new(&ln_p00, f64::NEG_INFINITY),
                p_ab: p_ab_values,
                q_points,
                pab_range: prior_a.range().min(prior_b.range()),
            }),
        }
    }

    /// The prior over the old release's pfd.
    pub fn prior_a(&self) -> ScaledBeta {
        self.prior_a
    }

    /// The prior over the new release's pfd.
    pub fn prior_b(&self) -> ScaledBeta {
        self.prior_b
    }

    /// The coincidence prior.
    pub fn coincidence(&self) -> CoincidencePrior {
        self.coincidence
    }

    /// The grid resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Computes the joint posterior given observed counts.
    ///
    /// A thin wrapper over the incremental engine's recompute kernel: the
    /// floating-point operation order is identical, so batch and
    /// incremental results agree bit-for-bit at the same totals.
    pub fn posterior(&self, counts: &JointCounts) -> WhiteBoxPosterior {
        let mut ln_w = vec![f64::NEG_INFINITY; self.tables.padded_cells()];
        let max = self.tables.recompute_into(counts, &mut ln_w);
        assert!(
            max.is_finite(),
            "posterior vanished everywhere: counts {counts} are impossible under the prior"
        );
        let mut weights = vec![0.0; self.tables.cells()];
        kernels::exp_weights(&ln_w[..self.tables.cells()], max, &mut weights);
        WhiteBoxPosterior {
            tables: Arc::clone(&self.tables),
            weights,
        }
    }

    /// The joint prior expressed as a posterior with no evidence.
    pub fn prior_posterior(&self) -> WhiteBoxPosterior {
        self.posterior(&JointCounts::new())
    }

    /// Creates an incremental updater positioned at the prior (zero
    /// counts). All scratch buffers are allocated here, once; steady-state
    /// [`PosteriorUpdater::update_to`] calls are allocation-free.
    pub fn updater(&self) -> PosteriorUpdater {
        let mut updater = PosteriorUpdater {
            tables: Arc::clone(&self.tables),
            counts: JointCounts::new(),
            ln_w: LaneBuf::filled(self.tables.cells(), f64::NEG_INFINITY),
            max: f64::NEG_INFINITY,
            a_weights: vec![0.0; self.tables.a_cells()],
            b_weights: vec![0.0; self.tables.b_cells()],
            a_masses: vec![0.0; self.tables.a_cells()],
            b_masses: vec![0.0; self.tables.b_cells()],
        };
        updater.rebase(&JointCounts::new());
        updater
    }
}

/// The (unnormalised) joint posterior on the grid, with marginalisation
/// queries (paper eqs. (3)–(5)). Holds only its own weights; the grid
/// tables are shared with the engine that produced it.
#[derive(Debug, Clone)]
pub struct WhiteBoxPosterior {
    tables: Arc<GridTables>,
    weights: Vec<f64>,
}

impl WhiteBoxPosterior {
    /// Marginal posterior of `P_A` (eq. (4)). Each sum is an
    /// element-wise serial chain in grid order — the one marginal
    /// association, shared with the incremental updater's fused pass
    /// ([`kernels::exp_stride_sums`]), so batch and incremental
    /// marginals agree bit for bit at equal weights.
    pub fn marginal_a(&self) -> GridPosterior {
        let t = &self.tables;
        let mut sums = vec![0.0; t.a_cells()];
        let mut idx = 0;
        for sum_i in sums.iter_mut() {
            for _ in 0..t.b_cells() * t.q_points {
                *sum_i += self.weights[idx];
                idx += 1;
            }
        }
        GridPosterior::from_weights(t.a_edges.clone(), sums)
    }

    /// Marginal posterior of `P_B` (eq. (5)); same element-wise serial
    /// chains as [`Self::marginal_a`].
    pub fn marginal_b(&self) -> GridPosterior {
        let t = &self.tables;
        let mut sums = vec![0.0; t.b_cells()];
        let mut idx = 0;
        for _ in 0..t.a_cells() {
            for sum_j in sums.iter_mut() {
                for _ in 0..t.q_points {
                    *sum_j += self.weights[idx];
                    idx += 1;
                }
            }
        }
        GridPosterior::from_weights(t.b_edges.clone(), sums)
    }

    /// Marginal posterior of the coincident-failure probability `P_AB`
    /// (eq. (3)), projected onto a uniform grid of `bins` cells over
    /// `[0, min(range_A, range_B)]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn marginal_ab(&self, bins: usize) -> GridPosterior {
        assert!(bins > 0, "need at least one bin");
        let range = self.tables.pab_range;
        let mut sums = vec![0.0; bins];
        for (c, &w) in self.weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let v = self.tables.p_ab[c];
            let bin = ((v / range) * bins as f64) as usize;
            sums[bin.min(bins - 1)] += w;
        }
        let edges: Vec<f64> = (0..=bins).map(|i| range * i as f64 / bins as f64).collect();
        GridPosterior::from_weights(edges, sums)
    }
}

/// Stateful incremental posterior engine (the hot path of the confidence
/// study). Owns all scratch it needs, so steady-state updates perform
/// **zero heap allocation**:
///
/// * `update_to` applies **delta counts** in place — `ln_w += Δr_i ·
///   ln p_i` — as **one** fused, lane-chunked pass over the grid
///   ([`kernels::fused_axpy_max`]): every event class whose count moved
///   is a term of the same sweep, with the running max for stable
///   renormalisation folded in, so a checkpoint touches the ~300k-cell
///   buffer once instead of once per class;
/// * one further fused pass ([`kernels::exp_stride_sums`])
///   exponentiates the grid and accumulates both marginal stride sums,
///   in the same order as the batch marginals — skipping the `exp` for
///   cells that provably underflow to exactly `0.0` — so at equal
///   `ln_w` the marginals agree bit-for-bit;
/// * [`PosteriorUpdater::marginal_a`]/[`PosteriorUpdater::marginal_b`]
///   return borrowed [`MarginalView`]s over the cached masses instead of
///   freshly allocated grids.
///
/// Counts normally grow monotonically; if a checkpoint moves any count
/// backwards the updater transparently **rebases** — an exact in-place
/// recompute from the new totals through [`GridTables::recompute_into`],
/// the same kernel call [`WhiteBoxInference::posterior`] makes, so the
/// two stay bit-identical by construction. Repeated counts are a no-op.
/// The accumulated delta path can drift from the batch result by a few
/// units in the last place of `ln_w` (one rounding per update);
/// `rebase` restores exact batch bits.
#[derive(Debug, Clone)]
pub struct PosteriorUpdater {
    tables: Arc<GridTables>,
    counts: JointCounts,
    ln_w: LaneBuf,
    max: f64,
    a_weights: Vec<f64>,
    b_weights: Vec<f64>,
    a_masses: Vec<f64>,
    b_masses: Vec<f64>,
}

impl PosteriorUpdater {
    /// Advances the posterior to the given cumulative counts.
    ///
    /// # Panics
    ///
    /// Panics if the posterior vanishes everywhere (counts impossible
    /// under the prior).
    pub fn update_to(&mut self, counts: &JointCounts) {
        let old = self.counts;
        let monotone = counts.both_failed() >= old.both_failed()
            && counts.only_a_failed() >= old.only_a_failed()
            && counts.only_b_failed() >= old.only_b_failed()
            && counts.both_succeeded() >= old.both_succeeded();
        if !monotone {
            self.rebase(counts);
            return;
        }
        let deltas = [
            (counts.both_failed() - old.both_failed()) as f64,
            (counts.only_a_failed() - old.only_a_failed()) as f64,
            (counts.only_b_failed() - old.only_b_failed()) as f64,
            (counts.both_succeeded() - old.both_succeeded()) as f64,
        ];
        if deltas.iter().all(|&d| d == 0.0) {
            return; // zero-delta checkpoint: nothing moved
        }
        let (terms, n) = self.tables.live_terms(deltas);
        self.max = kernels::fused_axpy_max(self.ln_w.padded_mut(), &terms[..n]);
        self.counts = *counts;
        self.finish_update();
    }

    /// Exact in-place recompute from total counts, restoring batch-path
    /// bits (also the escape hatch for non-monotone count sequences).
    pub fn rebase(&mut self, counts: &JointCounts) {
        self.max = self.tables.recompute_into(counts, self.ln_w.padded_mut());
        self.counts = *counts;
        self.finish_update();
    }

    fn finish_update(&mut self) {
        let counts = self.counts;
        assert!(
            self.max.is_finite(),
            "posterior vanished everywhere: counts {counts} are impossible under the prior"
        );
        self.refresh_marginals();
    }

    /// One fused pass: exponentiate every cell against the running max
    /// and accumulate both marginal stride sums in grid order (the exact
    /// addition order of the batch marginals), then normalise into the
    /// cached mass buffers. Cells whose shifted log-weight provably
    /// underflows to `0.0` skip both the `exp` and the no-op additions
    /// (bit-identical; see [`kernels::EXP_UNDERFLOW`]).
    fn refresh_marginals(&mut self) {
        kernels::exp_stride_sums(
            self.ln_w.padded(),
            self.max,
            self.tables.q_points,
            &mut self.a_weights,
            &mut self.b_weights,
        );
        posterior::normalize_into(&self.a_weights, &mut self.a_masses);
        posterior::normalize_into(&self.b_weights, &mut self.b_masses);
    }

    /// The cumulative counts the posterior currently reflects.
    pub fn counts(&self) -> JointCounts {
        self.counts
    }

    /// Borrowed marginal of `P_A` (eq. (4)); allocation-free.
    pub fn marginal_a(&self) -> MarginalView<'_> {
        MarginalView::new(&self.tables.a_edges, &self.a_masses)
    }

    /// Borrowed marginal of `P_B` (eq. (5)); allocation-free.
    pub fn marginal_b(&self) -> MarginalView<'_> {
        MarginalView::new(&self.tables.b_edges, &self.b_masses)
    }

    /// Owned marginal of `P_A`, bit-identical to
    /// `posterior(counts).marginal_a()` at the same `ln_w` (allocates).
    pub fn marginal_a_posterior(&self) -> GridPosterior {
        GridPosterior::from_weights(self.tables.a_edges.clone(), self.a_weights.clone())
    }

    /// Owned marginal of `P_B` (allocates).
    pub fn marginal_b_posterior(&self) -> GridPosterior {
        GridPosterior::from_weights(self.tables.b_edges.clone(), self.b_weights.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario1_engine(res: Resolution) -> WhiteBoxInference {
        let prior_a = ScaledBeta::new(20.0, 20.0, 0.002).unwrap();
        let prior_b = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        WhiteBoxInference::with_resolution(
            prior_a,
            prior_b,
            CoincidencePrior::IndifferenceUniform,
            res,
        )
    }

    fn small() -> Resolution {
        Resolution {
            a_cells: 40,
            b_cells: 40,
            q_cells: 12,
        }
    }

    #[test]
    fn prior_marginals_match_the_priors() {
        let engine = scenario1_engine(small());
        let prior = engine.prior_posterior();
        let ma = prior.marginal_a();
        let mb = prior.marginal_b();
        assert!((ma.mean() - 1e-3).abs() < 2e-5, "mean_a {}", ma.mean());
        assert!((mb.mean() - 0.8e-3).abs() < 2e-5, "mean_b {}", mb.mean());
        // 99th percentile of the A prior ~ mean + 2.33 sd.
        let exact = engine.prior_a().quantile(0.99);
        assert!(
            (ma.percentile(0.99) - exact).abs() < 5e-5,
            "{} vs {}",
            ma.percentile(0.99),
            exact
        );
    }

    #[test]
    fn indifference_prior_halves_the_smaller_marginal() {
        // E[P_AB | P_A, P_B] = min(P_A, P_B)/2 under indifference; so the
        // prior mean of P_AB should be E[min(P_A,P_B)]/2 < min of means/2.
        let engine = scenario1_engine(small());
        let mab = engine.prior_posterior().marginal_ab(64);
        let mean = mab.mean();
        assert!(mean > 0.0 && mean < 0.8e-3 / 2.0 + 1e-5, "mean {mean}");
    }

    #[test]
    fn clean_evidence_tightens_b() {
        let engine = scenario1_engine(small());
        let prior_p99 = engine.prior_posterior().marginal_b().percentile(0.99);
        let counts = JointCounts::from_raw(20_000, 0, 0, 0);
        let post_p99 = engine.posterior(&counts).marginal_b().percentile(0.99);
        assert!(post_p99 < prior_p99, "{post_p99} !< {prior_p99}");
    }

    #[test]
    fn failures_of_b_push_b_up_not_a() {
        let engine = scenario1_engine(small());
        let prior = engine.prior_posterior();
        // 30 B-only failures in 10_000 demands.
        let counts = JointCounts::from_raw(10_000, 0, 0, 30);
        let post = engine.posterior(&counts);
        assert!(post.marginal_b().mean() > prior.marginal_b().mean());
        // A's posterior should have *fallen* (10_000 clean demands for A).
        assert!(post.marginal_a().mean() < prior.marginal_a().mean());
    }

    #[test]
    fn posterior_concentrates_on_true_marginals() {
        // Large-sample check: posterior means approach the empirical rates.
        let engine = scenario1_engine(Resolution {
            a_cells: 80,
            b_cells: 80,
            q_cells: 16,
        });
        // pa = 1e-3, pb = 0.8e-3, pab = 0.3e-3 over 50_000 demands.
        let counts = JointCounts::from_raw(50_000, 15, 35, 25);
        let post = engine.posterior(&counts);
        let ma = post.marginal_a().mean();
        let mb = post.marginal_b().mean();
        assert!((ma - 1e-3).abs() < 2e-4, "ma {ma}");
        assert!((mb - 0.8e-3).abs() < 2e-4, "mb {mb}");
        let mab = post.marginal_ab(64).mean();
        assert!((mab - 0.3e-3).abs() < 1.5e-4, "mab {mab}");
    }

    #[test]
    fn coincident_failures_update_pab() {
        let engine = scenario1_engine(small());
        let prior_ab = engine.prior_posterior().marginal_ab(32).mean();
        let counts = JointCounts::from_raw(10_000, 20, 0, 0);
        let post_ab = engine.posterior(&counts).marginal_ab(32).mean();
        assert!(post_ab > prior_ab, "{post_ab} !< {prior_ab}");
    }

    #[test]
    fn independent_coincidence_prior_is_supported() {
        let prior = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        let engine = WhiteBoxInference::with_resolution(
            prior,
            prior,
            CoincidencePrior::Independent,
            small(),
        );
        // Under independence with pfds <= 0.002, P_AB <= 4e-6: all the
        // mass must land in the lowest projection bin.
        let mab = engine.prior_posterior().marginal_ab(32);
        let first_bin_width = 0.002 / 32.0;
        assert!(mab.confidence(first_bin_width) > 0.999);
        assert!(mab.mean() <= first_bin_width);
    }

    #[test]
    fn fixed_fraction_prior_is_supported() {
        let prior = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        let engine = WhiteBoxInference::with_resolution(
            prior,
            prior,
            CoincidencePrior::FixedFraction(0.5),
            small(),
        );
        let post = engine.posterior(&JointCounts::from_raw(1000, 1, 1, 1));
        assert!(post.marginal_a().mean() > 0.0);
    }

    #[test]
    fn scaled_uniform_is_less_conservative_than_indifference() {
        let prior_a = ScaledBeta::new(20.0, 20.0, 0.002).unwrap();
        let prior_b = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        let indiff = WhiteBoxInference::with_resolution(
            prior_a,
            prior_b,
            CoincidencePrior::IndifferenceUniform,
            small(),
        );
        let optimistic = WhiteBoxInference::with_resolution(
            prior_a,
            prior_b,
            CoincidencePrior::ScaledUniform(0.2),
            small(),
        );
        let ab_indiff = indiff.prior_posterior().marginal_ab(32).mean();
        let ab_opt = optimistic.prior_posterior().marginal_ab(32).mean();
        assert!(ab_opt < ab_indiff, "{ab_opt} !< {ab_indiff}");
    }

    #[test]
    fn marginals_are_normalised() {
        let engine = scenario1_engine(small());
        let post = engine.posterior(&JointCounts::from_raw(5_000, 2, 3, 1));
        for marg in [post.marginal_a(), post.marginal_b(), post.marginal_ab(16)] {
            let total: f64 = marg.masses().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "not in (0, 1]")]
    fn scaled_uniform_rejects_bad_parameter() {
        let prior = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        let _ = WhiteBoxInference::new(prior, prior, CoincidencePrior::ScaledUniform(0.0));
    }

    #[test]
    fn accessors_round_trip() {
        let engine = scenario1_engine(small());
        assert_eq!(engine.resolution(), small());
        assert_eq!(engine.coincidence(), CoincidencePrior::IndifferenceUniform);
        assert_eq!(engine.prior_a().alpha(), 20.0);
        assert_eq!(engine.prior_b().alpha(), 2.0);
    }
}
