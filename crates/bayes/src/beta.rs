//! Beta distributions on `[0, 1]` and on a scaled support `[0, R]`.
//!
//! The paper's priors are Beta distributions *defined on a restricted
//! range*: e.g. Scenario 1 puts `Beta(20, 20)` on `[0, 0.002]` for the old
//! release's pfd. [`ScaledBeta`] models exactly that: if `Y ~ Beta(α, β)`
//! then `X = R·Y` with density `f(x) = f_Y(x/R)/R` on `[0, R]`.

use std::fmt;

use crate::special::{betainc, ln_beta};

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: String,
}

impl ParamError {
    fn new(what: impl Into<String>) -> ParamError {
        ParamError { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

/// A Beta(α, β) distribution scaled to the support `[0, R]`.
///
/// # Example
///
/// ```
/// use wsu_bayes::beta::ScaledBeta;
///
/// // Scenario 1's prior for the old release: Beta(20, 20) on [0, 0.002].
/// let prior = ScaledBeta::new(20.0, 20.0, 0.002).unwrap();
/// assert!((prior.mean() - 1e-3).abs() < 1e-12);
/// assert!((prior.cdf(1e-3) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledBeta {
    alpha: f64,
    beta: f64,
    range: f64,
}

impl ScaledBeta {
    /// Creates a `Beta(alpha, beta)` scaled to `[0, range]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `alpha` or `beta` is not strictly
    /// positive, or `range` is not in `(0, 1]` (the support is a pfd).
    pub fn new(alpha: f64, beta: f64, range: f64) -> Result<ScaledBeta, ParamError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(ParamError::new(format!("alpha = {alpha}")));
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(ParamError::new(format!("beta = {beta}")));
        }
        if !(range.is_finite() && range > 0.0 && range <= 1.0) {
            return Err(ParamError::new(format!("range = {range}")));
        }
        Ok(ScaledBeta { alpha, beta, range })
    }

    /// A standard `Beta(alpha, beta)` on `[0, 1]`.
    ///
    /// # Errors
    ///
    /// As for [`ScaledBeta::new`].
    pub fn standard(alpha: f64, beta: f64) -> Result<ScaledBeta, ParamError> {
        ScaledBeta::new(alpha, beta, 1.0)
    }

    /// Shape parameter α.
    pub fn alpha(self) -> f64 {
        self.alpha
    }

    /// Shape parameter β.
    pub fn beta(self) -> f64 {
        self.beta
    }

    /// Upper end of the support.
    pub fn range(self) -> f64 {
        self.range
    }

    /// Mean `R·α/(α+β)`.
    pub fn mean(self) -> f64 {
        self.range * self.alpha / (self.alpha + self.beta)
    }

    /// Variance `R²·αβ/((α+β)²(α+β+1))`.
    pub fn variance(self) -> f64 {
        let s = self.alpha + self.beta;
        self.range * self.range * self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// Log of the density at `x` (`NEG_INFINITY` outside the support and,
    /// for α, β > 1, at the endpoints).
    pub fn ln_pdf(self, x: f64) -> f64 {
        if !(0.0..=self.range).contains(&x) {
            return f64::NEG_INFINITY;
        }
        let y = x / self.range;
        let ln_core = if y == 0.0 {
            if self.alpha < 1.0 {
                return f64::INFINITY;
            } else if self.alpha == 1.0 {
                0.0
            } else {
                return f64::NEG_INFINITY;
            }
        } else {
            (self.alpha - 1.0) * y.ln()
        };
        let ln_tail = if y == 1.0 {
            if self.beta < 1.0 {
                return f64::INFINITY;
            } else if self.beta == 1.0 {
                0.0
            } else {
                return f64::NEG_INFINITY;
            }
        } else {
            (self.beta - 1.0) * (1.0 - y).ln()
        };
        ln_core + ln_tail - ln_beta(self.alpha, self.beta) - self.range.ln()
    }

    /// Density at `x`.
    pub fn pdf(self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    /// CDF at `x`, clamped to `[0, 1]` outside the support.
    pub fn cdf(self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= self.range {
            1.0
        } else {
            betainc(self.alpha, self.beta, x / self.range)
        }
    }

    /// Probability mass in the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn mass(self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "mass requires lo <= hi");
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }

    /// Quantile (inverse CDF) via bisection, accurate to ~1e-12 of the
    /// support.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} not in [0, 1]");
        if q == 0.0 {
            return 0.0;
        }
        if q == 1.0 {
            return self.range;
        }
        let mut lo = 0.0;
        let mut hi = self.range;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

impl fmt::Display for ScaledBeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Beta({}, {}) on [0, {}]",
            self.alpha, self.beta, self.range
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_prior_moments() {
        let p = ScaledBeta::new(20.0, 20.0, 0.002).unwrap();
        assert!((p.mean() - 0.001).abs() < 1e-15);
        // sd of Beta(20,20) is ~0.078 -> scaled ~1.56e-4.
        assert!((p.variance().sqrt() - 0.078 * 0.002).abs() < 2e-6);
    }

    #[test]
    fn scenario2_prior_mean() {
        // Beta(1, 10) on [0, 0.01]: mean = 0.01/11 ~ 9.1e-4 (paper: ~1e-3).
        let p = ScaledBeta::new(1.0, 10.0, 0.01).unwrap();
        assert!((p.mean() - 0.01 / 11.0).abs() < 1e-15);
    }

    #[test]
    fn new_release_prior_mean() {
        // Beta(2, 3) on [0, 0.002]: mean 0.8e-3 as in the paper.
        let p = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        assert!((p.mean() - 0.8e-3).abs() < 1e-15);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let p = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        let n = 20_000;
        let w = 0.002 / n as f64;
        let integral: f64 = (0..n).map(|i| p.pdf((i as f64 + 0.5) * w) * w).sum();
        assert!((integral - 1.0).abs() < 1e-6, "integral {integral}");
    }

    #[test]
    fn cdf_matches_numeric_integration() {
        let p = ScaledBeta::new(2.0, 3.0, 1.0).unwrap();
        let n = 100_000;
        let mut acc = 0.0;
        let w = 0.4 / n as f64;
        for i in 0..n {
            acc += p.pdf((i as f64 + 0.5) * w) * w;
        }
        assert!((acc - p.cdf(0.4)).abs() < 1e-6);
    }

    #[test]
    fn cdf_boundaries() {
        let p = ScaledBeta::new(2.0, 3.0, 0.5).unwrap();
        assert_eq!(p.cdf(-1.0), 0.0);
        assert_eq!(p.cdf(0.0), 0.0);
        assert_eq!(p.cdf(0.5), 1.0);
        assert_eq!(p.cdf(2.0), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let p = ScaledBeta::new(20.0, 20.0, 0.002).unwrap();
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = p.quantile(q);
            assert!((p.cdf(x) - q).abs() < 1e-9, "q={q}");
        }
        assert_eq!(p.quantile(0.0), 0.0);
        assert_eq!(p.quantile(1.0), 0.002);
    }

    #[test]
    fn symmetric_beta_median_is_midpoint() {
        let p = ScaledBeta::new(20.0, 20.0, 0.002).unwrap();
        assert!((p.quantile(0.5) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn mass_sums_over_partition() {
        let p = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
        let parts = 7;
        let w = 0.01 / parts as f64;
        let total: f64 = (0..parts)
            .map(|i| p.mass(i as f64 * w, (i + 1) as f64 * w))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_special_case() {
        // Beta(1, 1) on [0, R] is uniform.
        let p = ScaledBeta::new(1.0, 1.0, 0.5).unwrap();
        assert!((p.pdf(0.25) - 2.0).abs() < 1e-10);
        assert!((p.cdf(0.25) - 0.5).abs() < 1e-12);
        assert!((p.quantile(0.4) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn ln_pdf_edge_cases() {
        let p = ScaledBeta::new(2.0, 3.0, 1.0).unwrap();
        assert_eq!(p.ln_pdf(-0.1), f64::NEG_INFINITY);
        assert_eq!(p.ln_pdf(1.1), f64::NEG_INFINITY);
        assert_eq!(p.ln_pdf(0.0), f64::NEG_INFINITY);
        assert_eq!(p.ln_pdf(1.0), f64::NEG_INFINITY);
        let uniform = ScaledBeta::new(1.0, 1.0, 1.0).unwrap();
        assert!((uniform.ln_pdf(0.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ScaledBeta::new(0.0, 1.0, 1.0).is_err());
        assert!(ScaledBeta::new(1.0, -1.0, 1.0).is_err());
        assert!(ScaledBeta::new(1.0, 1.0, 0.0).is_err());
        assert!(ScaledBeta::new(1.0, 1.0, 2.0).is_err());
        let err = ScaledBeta::new(f64::NAN, 1.0, 1.0).unwrap_err();
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn display_mentions_parameters() {
        let p = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        assert_eq!(p.to_string(), "Beta(2, 3) on [0, 0.002]");
    }
}
