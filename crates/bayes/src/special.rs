//! Special functions needed by the inference code.
//!
//! Self-contained implementations (no external numeric crates): Lanczos
//! log-gamma, the regularized incomplete beta function via Lentz's
//! continued fraction, and a numerically stable log-sum-exp.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, 9 coefficients; ~15 significant digits for x > 0).
///
/// # Panics
///
/// Panics if `x <= 0` (the inference code never needs the reflection
/// branch, so requesting it is a bug).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)` — the CDF of a
/// `Beta(a, b)` distribution at `x`.
///
/// Uses the continued-fraction expansion with the standard symmetry
/// transformation for fast convergence.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `x` is outside `[0, 1]`.
pub fn betainc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betainc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "betainc requires x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - (ln_front.exp() * beta_cf(b, a, 1.0 - x) / b)).clamp(0.0, 1.0)
    }
}

/// Lentz's algorithm for the incomplete-beta continued fraction.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Numerically stable `ln(Σ exp(xs))`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice or a slice of all
/// `NEG_INFINITY`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// `x * ln(y)` with the convention `0 * ln(0) = 0`, as needed by
/// multinomial log-likelihoods with zero counts.
pub fn xlny(x: f64, y: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x * y.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x).
        for &x in &[0.7, 1.3, 2.5, 10.0, 42.5] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn ln_beta_symmetry() {
        assert!((ln_beta(2.0, 3.0) - ln_beta(3.0, 2.0)).abs() < 1e-12);
        // B(1, 1) = 1.
        assert!(ln_beta(1.0, 1.0).abs() < 1e-12);
        // B(2, 3) = 1/12.
        assert!((ln_beta(2.0, 3.0) - (1.0f64 / 12.0).ln()).abs() < 1e-10);
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            assert!((betainc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn betainc_closed_forms() {
        // I_x(2, 2) = 3x^2 - 2x^3.
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.99] {
            let expect = 3.0 * x * x - 2.0 * x * x * x;
            assert!((betainc(2.0, 2.0, x) - expect).abs() < 1e-10, "x={x}");
        }
        // I_x(1, b) = 1 - (1-x)^b.
        for &x in &[0.01, 0.2, 0.6] {
            let expect = 1.0 - (1.0f64 - x).powi(10);
            assert!((betainc(1.0, 10.0, x) - expect).abs() < 1e-10);
        }
        // I_x(a, 1) = x^a.
        for &x in &[0.3, 0.8] {
            assert!((betainc(5.0, 1.0, x) - x.powi(5)).abs() < 1e-10);
        }
    }

    #[test]
    fn betainc_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        for &(a, b, x) in &[(2.0, 3.0, 0.2), (20.0, 20.0, 0.7), (0.5, 2.5, 0.4)] {
            let lhs = betainc(a, b, x);
            let rhs = 1.0 - betainc(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn betainc_monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = betainc(3.0, 7.0, x);
            assert!(v >= prev - 1e-14);
            prev = v;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn betainc_median_of_symmetric_beta() {
        assert!((betainc(20.0, 20.0, 0.5) - 0.5).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "x in [0, 1]")]
    fn betainc_rejects_out_of_range() {
        betainc(2.0, 2.0, 1.5);
    }

    #[test]
    fn log_sum_exp_basic() {
        let xs = [0.0, 0.0];
        assert!((log_sum_exp(&xs) - 2f64.ln()).abs() < 1e-12);
        // Invariance to shifts.
        let a = log_sum_exp(&[1000.0, 1000.0]);
        assert!((a - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_degenerate() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
        let xs = [f64::NEG_INFINITY, 0.0];
        assert!(log_sum_exp(&xs).abs() < 1e-12);
    }

    #[test]
    fn xlny_zero_convention() {
        assert_eq!(xlny(0.0, 0.0), 0.0);
        assert_eq!(xlny(2.0, 1.0), 0.0);
        assert!((xlny(2.0, std::f64::consts::E) - 2.0).abs() < 1e-12);
        assert_eq!(xlny(1.0, 0.0), f64::NEG_INFINITY);
    }
}
