//! Grid-based 1-D posteriors with percentile and confidence queries.
//!
//! Both inference modes ultimately reduce to a discrete distribution over
//! a grid of pfd values. [`GridPosterior`] stores cell masses and answers
//! the two queries the management subsystem needs:
//!
//! * `confidence(target)` — `P(pfd ≤ target)`, paper eq. (6);
//! * `percentile(c)` — the value `T_c` with `P(pfd ≤ T_c) = c`, the
//!   percentiles plotted in Figs. 7–8.

use std::fmt;

/// Sums unnormalised weights, validating each one.
///
/// Shared by [`GridPosterior::from_weights`] and the incremental updaters
/// so both normalise with bit-identical operations.
pub(crate) fn total_weight(weights: &[f64]) -> f64 {
    weights
        .iter()
        .inspect(|w| {
            assert!(w.is_finite() && **w >= 0.0, "invalid weight {w}");
        })
        .sum()
}

/// Normalises `weights` into the preallocated `masses` buffer without
/// allocating; the division order matches [`GridPosterior::from_weights`].
///
/// # Panics
///
/// Panics if any weight is invalid or the total is not positive.
pub(crate) fn normalize_into(weights: &[f64], masses: &mut [f64]) {
    let total = total_weight(weights);
    assert!(total > 0.0, "posterior weights sum to zero");
    for (m, w) in masses.iter_mut().zip(weights) {
        *m = w / total;
    }
}

/// Mean of a cell distribution given its edges and normalised masses.
pub(crate) fn mean_of(edges: &[f64], masses: &[f64]) -> f64 {
    edges
        .windows(2)
        .zip(masses)
        .map(|(w, m)| 0.5 * (w[0] + w[1]) * m)
        .sum()
}

/// `P(X ≤ target)` with linear interpolation in the straddling cell.
pub(crate) fn confidence_of(edges: &[f64], masses: &[f64], target: f64) -> f64 {
    if target < edges[0] {
        return 0.0;
    }
    let last = *edges.last().expect("non-empty edges");
    if target >= last {
        return 1.0;
    }
    let mut acc = 0.0;
    for (i, &m) in masses.iter().enumerate() {
        let lo = edges[i];
        let hi = edges[i + 1];
        if target >= hi {
            acc += m;
        } else {
            acc += m * (target - lo) / (hi - lo);
            break;
        }
    }
    acc.clamp(0.0, 1.0)
}

/// The `c`-percentile, linearly interpolated within the straddling cell.
///
/// # Panics
///
/// Panics if `c` is outside `[0, 1]`.
pub(crate) fn percentile_of(edges: &[f64], masses: &[f64], c: f64) -> f64 {
    assert!((0.0..=1.0).contains(&c), "percentile {c} not in [0, 1]");
    if c == 0.0 {
        return edges[0];
    }
    let mut acc = 0.0;
    for (i, &m) in masses.iter().enumerate() {
        if acc + m >= c {
            let lo = edges[i];
            let hi = edges[i + 1];
            if m == 0.0 {
                return lo;
            }
            return lo + (hi - lo) * ((c - acc) / m).clamp(0.0, 1.0);
        }
        acc += m;
    }
    *edges.last().expect("non-empty edges")
}

/// The queries the management subsystem needs from any posterior shape —
/// owned grids and borrowed views alike — so switch criteria and abort
/// policies work with either.
pub trait PosteriorQueries {
    /// Posterior mean.
    fn mean(&self) -> f64;
    /// `P(X ≤ target)`, paper eq. (6).
    fn confidence(&self, target: f64) -> f64;
    /// The value `T_c` with `P(X ≤ T_c) = c`.
    fn percentile(&self, c: f64) -> f64;
}

/// A borrowed, allocation-free view of a marginal posterior: cell edges
/// plus normalised masses cached inside an incremental updater.
///
/// Answers the same queries as [`GridPosterior`] with bit-identical
/// arithmetic (both delegate to the same kernels).
#[derive(Debug, Clone, Copy)]
pub struct MarginalView<'a> {
    edges: &'a [f64],
    masses: &'a [f64],
}

impl<'a> MarginalView<'a> {
    pub(crate) fn new(edges: &'a [f64], masses: &'a [f64]) -> MarginalView<'a> {
        debug_assert_eq!(edges.len(), masses.len() + 1);
        MarginalView { edges, masses }
    }

    /// Cell boundaries, one longer than the masses.
    pub fn edges(&self) -> &'a [f64] {
        self.edges
    }

    /// Normalised cell masses.
    pub fn masses(&self) -> &'a [f64] {
        self.masses
    }

    /// Posterior mean.
    pub fn mean(&self) -> f64 {
        mean_of(self.edges, self.masses)
    }

    /// `P(X ≤ target)` with linear interpolation inside the straddling
    /// cell.
    pub fn confidence(&self, target: f64) -> f64 {
        confidence_of(self.edges, self.masses, target)
    }

    /// The `c`-percentile, linearly interpolated.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside `[0, 1]`.
    pub fn percentile(&self, c: f64) -> f64 {
        percentile_of(self.edges, self.masses, c)
    }

    /// Materialises the view into an owned [`GridPosterior`].
    ///
    /// The masses are already normalised, so this is a plain copy.
    pub fn to_posterior(&self) -> GridPosterior {
        GridPosterior::from_weights(self.edges.to_vec(), self.masses.to_vec())
    }
}

impl PosteriorQueries for MarginalView<'_> {
    fn mean(&self) -> f64 {
        MarginalView::mean(self)
    }

    fn confidence(&self, target: f64) -> f64 {
        MarginalView::confidence(self, target)
    }

    fn percentile(&self, c: f64) -> f64 {
        MarginalView::percentile(self, c)
    }
}

/// A discrete distribution over an ordered grid of values.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPosterior {
    /// Cell midpoints, strictly increasing.
    xs: Vec<f64>,
    /// Cell boundaries, length `xs.len() + 1`.
    edges: Vec<f64>,
    /// Normalised cell masses (sum to 1).
    masses: Vec<f64>,
}

impl GridPosterior {
    /// Creates a posterior from cell edges and unnormalised weights.
    ///
    /// `edges` must be strictly increasing with `edges.len() ==
    /// weights.len() + 1`; weights must be non-negative with a positive
    /// sum.
    ///
    /// # Panics
    ///
    /// Panics if the invariants above are violated.
    pub fn from_weights(edges: Vec<f64>, weights: Vec<f64>) -> GridPosterior {
        assert!(
            edges.len() == weights.len() + 1,
            "edges ({}) must be one longer than weights ({})",
            edges.len(),
            weights.len()
        );
        assert!(!weights.is_empty(), "posterior needs at least one cell");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let total = total_weight(&weights);
        assert!(total > 0.0, "posterior weights sum to zero");
        let masses: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let xs = edges.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        GridPosterior { xs, edges, masses }
    }

    /// Builds a uniform grid of `cells` cells over `[0, range]` from a
    /// weight function evaluated per cell `(lo, hi, mid) -> weight`.
    ///
    /// # Panics
    ///
    /// As for [`GridPosterior::from_weights`].
    pub fn from_fn(
        range: f64,
        cells: usize,
        mut weight: impl FnMut(f64, f64, f64) -> f64,
    ) -> GridPosterior {
        assert!(range > 0.0 && cells > 0, "invalid grid spec");
        let w = range / cells as f64;
        let edges: Vec<f64> = (0..=cells).map(|i| i as f64 * w).collect();
        let weights: Vec<f64> = (0..cells)
            .map(|i| {
                let lo = edges[i];
                let hi = edges[i + 1];
                weight(lo, hi, 0.5 * (lo + hi))
            })
            .collect();
        GridPosterior::from_weights(edges, weights)
    }

    /// Cell midpoints.
    pub fn grid(&self) -> &[f64] {
        &self.xs
    }

    /// Normalised cell masses.
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Posterior mean.
    pub fn mean(&self) -> f64 {
        mean_of(&self.edges, &self.masses)
    }

    /// `P(X ≤ target)` with linear interpolation inside the cell that
    /// straddles `target`.
    pub fn confidence(&self, target: f64) -> f64 {
        confidence_of(&self.edges, &self.masses, target)
    }

    /// The `c`-percentile: smallest `x` with `P(X ≤ x) ≥ c`, linearly
    /// interpolated within the straddling cell.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside `[0, 1]`.
    pub fn percentile(&self, c: f64) -> f64 {
        percentile_of(&self.edges, &self.masses, c)
    }

    /// A borrowed view of this posterior, for query-shape-generic code.
    pub fn as_view(&self) -> MarginalView<'_> {
        MarginalView::new(&self.edges, &self.masses)
    }
}

impl PosteriorQueries for GridPosterior {
    fn mean(&self) -> f64 {
        GridPosterior::mean(self)
    }

    fn confidence(&self, target: f64) -> f64 {
        GridPosterior::confidence(self, target)
    }

    fn percentile(&self, c: f64) -> f64 {
        GridPosterior::percentile(self, c)
    }
}

impl fmt::Display for GridPosterior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid posterior: {} cells on [{:.3e}, {:.3e}], mean {:.3e}",
            self.masses.len(),
            self.edges[0],
            self.edges.last().unwrap(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(cells: usize) -> GridPosterior {
        GridPosterior::from_fn(1.0, cells, |_, _, _| 1.0)
    }

    #[test]
    fn uniform_grid_mean_and_percentiles() {
        let p = uniform(100);
        assert!((p.mean() - 0.5).abs() < 1e-12);
        assert!((p.percentile(0.5) - 0.5).abs() < 1e-12);
        assert!((p.percentile(0.99) - 0.99).abs() < 1e-12);
        assert!((p.confidence(0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn confidence_and_percentile_are_inverse() {
        let p = GridPosterior::from_fn(0.002, 64, |_, _, mid| (mid * 2000.0).powi(2));
        for &c in &[0.1, 0.5, 0.9, 0.99] {
            let x = p.percentile(c);
            assert!((p.confidence(x) - c).abs() < 1e-9, "c={c}");
        }
    }

    #[test]
    fn confidence_boundaries() {
        let p = uniform(10);
        assert_eq!(p.confidence(-0.1), 0.0);
        assert_eq!(p.confidence(1.0), 1.0);
        assert_eq!(p.confidence(99.0), 1.0);
        assert_eq!(p.percentile(0.0), 0.0);
        assert_eq!(p.percentile(1.0), 1.0);
    }

    #[test]
    fn point_mass_percentiles() {
        // All mass in one interior cell.
        let mut weights = vec![0.0; 10];
        weights[4] = 3.0;
        let edges: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let p = GridPosterior::from_weights(edges, weights);
        assert!(p.percentile(0.5) > 0.4 && p.percentile(0.5) < 0.5);
        assert_eq!(p.confidence(0.4), 0.0);
        assert_eq!(p.confidence(0.5), 1.0);
    }

    #[test]
    fn mean_of_linear_density() {
        // f(x) = 2x on [0,1] has mean 2/3.
        let p = GridPosterior::from_fn(1.0, 2000, |_, _, mid| mid);
        assert!((p.mean() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn zero_weights_rejected() {
        let _ = GridPosterior::from_fn(1.0, 4, |_, _, _| 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_edges_rejected() {
        let _ = GridPosterior::from_weights(vec![0.0, 0.0, 1.0], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "one longer")]
    fn mismatched_lengths_rejected() {
        let _ = GridPosterior::from_weights(vec![0.0, 1.0], vec![1.0, 1.0]);
    }

    #[test]
    fn display_is_informative() {
        let p = uniform(4);
        let text = p.to_string();
        assert!(text.contains("4 cells"));
    }
}
