//! Joint outcome bookkeeping for two releases run side by side.
//!
//! Table 1 of the paper scores each demand into one of four events:
//! both releases fail (α, count `r1`), only the old release fails
//! (β, `r2`), only the new release fails (γ, `r3`), or both succeed
//! (δ, `r4 = n − r1 − r2 − r3`). [`JointCounts`] accumulates these and is
//! the sufficient statistic for the white-box inference.

use std::fmt;
use std::ops::AddAssign;

/// Counts of the four joint outcomes over `n` demands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JointCounts {
    n: u64,
    both_failed: u64,
    only_a_failed: u64,
    only_b_failed: u64,
}

impl JointCounts {
    /// Creates an empty tally.
    pub fn new() -> JointCounts {
        JointCounts::default()
    }

    /// Creates a tally from explicit counts.
    ///
    /// # Panics
    ///
    /// Panics if the failure counts exceed `n`.
    pub fn from_raw(
        n: u64,
        both_failed: u64,
        only_a_failed: u64,
        only_b_failed: u64,
    ) -> JointCounts {
        assert!(
            both_failed + only_a_failed + only_b_failed <= n,
            "failure counts exceed demand count"
        );
        JointCounts {
            n,
            both_failed,
            only_a_failed,
            only_b_failed,
        }
    }

    /// Records one demand scored as `(a_failed, b_failed)`.
    pub fn record(&mut self, a_failed: bool, b_failed: bool) {
        self.n += 1;
        match (a_failed, b_failed) {
            (true, true) => self.both_failed += 1,
            (true, false) => self.only_a_failed += 1,
            (false, true) => self.only_b_failed += 1,
            (false, false) => {}
        }
    }

    /// Total demands `n`.
    pub fn demands(&self) -> u64 {
        self.n
    }

    /// `r1`: demands on which both releases failed.
    pub fn both_failed(&self) -> u64 {
        self.both_failed
    }

    /// `r2`: demands on which only release A (old) failed.
    pub fn only_a_failed(&self) -> u64 {
        self.only_a_failed
    }

    /// `r3`: demands on which only release B (new) failed.
    pub fn only_b_failed(&self) -> u64 {
        self.only_b_failed
    }

    /// `r4`: demands on which both releases succeeded.
    pub fn both_succeeded(&self) -> u64 {
        self.n - self.both_failed - self.only_a_failed - self.only_b_failed
    }

    /// Total failures of release A (`r1 + r2`).
    pub fn a_failures(&self) -> u64 {
        self.both_failed + self.only_a_failed
    }

    /// Total failures of release B (`r1 + r3`).
    pub fn b_failures(&self) -> u64 {
        self.both_failed + self.only_b_failed
    }

    /// Empirical estimate of `P_A` (0 when no demands yet).
    pub fn a_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.a_failures() as f64 / self.n as f64
        }
    }

    /// Empirical estimate of `P_B`.
    pub fn b_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.b_failures() as f64 / self.n as f64
        }
    }

    /// Empirical estimate of `P_AB`.
    pub fn coincidence_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.both_failed as f64 / self.n as f64
        }
    }
}

impl AddAssign for JointCounts {
    fn add_assign(&mut self, rhs: JointCounts) {
        self.n += rhs.n;
        self.both_failed += rhs.both_failed;
        self.only_a_failed += rhs.only_a_failed;
        self.only_b_failed += rhs.only_b_failed;
    }
}

impl fmt::Display for JointCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} r1={} r2={} r3={} r4={}",
            self.n,
            self.both_failed,
            self.only_a_failed,
            self.only_b_failed,
            self.both_succeeded()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_all_four_events() {
        let mut c = JointCounts::new();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        c.record(false, false);
        assert_eq!(c.demands(), 5);
        assert_eq!(c.both_failed(), 1);
        assert_eq!(c.only_a_failed(), 1);
        assert_eq!(c.only_b_failed(), 1);
        assert_eq!(c.both_succeeded(), 2);
    }

    #[test]
    fn marginal_failure_counts() {
        let c = JointCounts::from_raw(100, 5, 10, 3);
        assert_eq!(c.a_failures(), 15);
        assert_eq!(c.b_failures(), 8);
        assert!((c.a_rate() - 0.15).abs() < 1e-12);
        assert!((c.b_rate() - 0.08).abs() < 1e-12);
        assert!((c.coincidence_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let c = JointCounts::new();
        assert_eq!(c.a_rate(), 0.0);
        assert_eq!(c.b_rate(), 0.0);
        assert_eq!(c.coincidence_rate(), 0.0);
        assert_eq!(c.both_succeeded(), 0);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = JointCounts::from_raw(10, 1, 2, 3);
        let b = JointCounts::from_raw(20, 2, 0, 1);
        a += b;
        assert_eq!(a, JointCounts::from_raw(30, 3, 2, 4));
    }

    #[test]
    #[should_panic(expected = "exceed demand count")]
    fn from_raw_rejects_inconsistent_counts() {
        let _ = JointCounts::from_raw(3, 2, 2, 2);
    }

    #[test]
    fn display_shows_all_counts() {
        let c = JointCounts::from_raw(10, 1, 2, 3);
        assert_eq!(c.to_string(), "n=10 r1=1 r2=2 r3=3 r4=4");
    }
}
