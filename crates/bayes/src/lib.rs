//! Bayesian confidence-in-correctness inference.
//!
//! The paper's central measure is *confidence*: the posterior probability
//! that a release's probability of failure on demand (pfd) is at or below
//! a target. This crate implements both inference modes used in
//! Section 5.1:
//!
//! * [`blackbox`] — the release is a black box; successes/failures are
//!   counted and combined with a scaled-Beta prior via the binomial
//!   likelihood (paper eq. (1));
//! * [`whitebox`] — two releases run side by side; demands are scored
//!   jointly (Table 1's four outcomes) and a trivariate prior over
//!   (P_A, P_B, P_AB) is updated via the multinomial likelihood (paper
//!   eqs. (2)–(6)), yielding marginal posteriors for each release and for
//!   coincident failure.
//!
//! Supporting modules: [`special`] (log-gamma, regularized incomplete
//! beta, log-sum-exp), [`beta`] (Beta and scaled-Beta distributions),
//! [`counts`] (joint outcome bookkeeping), [`posterior`] (grid
//! marginals with percentile/confidence queries), [`kernels`] (the
//! vectorized structure-of-arrays grid kernels) and [`adaptive`]
//! (opt-in coarse-to-fine grid refinement).
//!
//! # Example: black-box confidence after observing 1000 clean demands
//!
//! ```
//! use wsu_bayes::beta::ScaledBeta;
//! use wsu_bayes::blackbox::BlackBoxInference;
//!
//! // Prior: pfd somewhere in [0, 0.01], expected ~1e-3 (paper scenario 2).
//! let prior = ScaledBeta::new(1.0, 10.0, 0.01).unwrap();
//! let inference = BlackBoxInference::new(prior, 512);
//! let posterior = inference.posterior(1000, 0);
//! // Confidence that pfd <= 1e-2 is essentially certain.
//! assert!(posterior.confidence(1e-2) > 0.999);
//! // And the posterior is tighter than the prior.
//! assert!(posterior.percentile(0.99) < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod beta;
pub mod blackbox;
pub mod compare;
pub mod counts;
pub mod kernels;
pub mod posterior;
pub mod special;
pub mod whitebox;

pub use adaptive::{AdaptiveResolution, AdaptiveUpdater, AdaptiveWhiteBox};
pub use beta::ScaledBeta;
pub use blackbox::{BlackBoxInference, BlackBoxUpdater};
pub use counts::JointCounts;
pub use posterior::{GridPosterior, MarginalView, PosteriorQueries};
pub use whitebox::{CoincidencePrior, PosteriorUpdater, WhiteBoxInference, WhiteBoxPosterior};
