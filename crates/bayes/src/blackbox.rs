//! Black-box inference (paper Section 5.1, eq. (1)).
//!
//! The WS is a black box: on each demand it either succeeds or fails
//! (Fig. 6). Given a scaled-Beta prior over the pfd and an observation of
//! `r` failures in `n` demands, the posterior is
//!
//! ```text
//! f(x | r, n) ∝ L(n, r | x) · f(x),   L(n, r | x) = C(n, r) xʳ (1−x)ⁿ⁻ʳ
//! ```
//!
//! computed here on a 1-D grid in log-space. When the prior support is the
//! whole unit interval the Beta prior is conjugate and the posterior is
//! `Beta(α+r, β+n−r)` exactly; the grid implementation is validated
//! against that closed form in the tests.

use std::sync::Arc;

use crate::beta::ScaledBeta;
use crate::posterior::{self, GridPosterior, MarginalView};

/// Black-box Bayesian inference for a single release's pfd.
///
/// # Example
///
/// ```
/// use wsu_bayes::beta::ScaledBeta;
/// use wsu_bayes::blackbox::BlackBoxInference;
///
/// let prior = ScaledBeta::standard(1.0, 1.0).unwrap(); // uniform
/// let inf = BlackBoxInference::new(prior, 1024);
/// let post = inf.posterior(10, 1);
/// // Conjugate answer: Beta(2, 10), mean 2/12.
/// assert!((post.mean() - 2.0 / 12.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct BlackBoxInference {
    prior: ScaledBeta,
    cells: usize,
    tables: Arc<BlackBoxTables>,
}

/// Precomputed per-cell tables, shared (via `Arc`) with any incremental
/// updaters so queries never copy them.
#[derive(Debug)]
struct BlackBoxTables {
    /// Per-cell prior masses, precomputed.
    prior_mass: Vec<f64>,
    /// Per-cell `ln(mid)` and `ln(1 − mid)` for the likelihood.
    ln_mid: Vec<f64>,
    ln_one_minus_mid: Vec<f64>,
    edges: Vec<f64>,
}

impl BlackBoxTables {
    /// Recomputes `ln_w` from total counts with the reference operation
    /// order of the batch posterior, returning nothing; the caller folds
    /// the max exactly as the batch path does.
    fn accumulate_ln_w(&self, demands: u64, failures: u64, ln_w: &mut [f64]) {
        let r = failures as f64;
        let s = (demands - failures) as f64;
        for (i, slot) in ln_w.iter_mut().enumerate() {
            let prior = self.prior_mass[i];
            *slot = if prior == 0.0 {
                f64::NEG_INFINITY
            } else {
                // xlny convention: a zero count contributes nothing even
                // when the log-probability is -inf at a grid endpoint.
                let like_fail = if r == 0.0 { 0.0 } else { r * self.ln_mid[i] };
                let like_ok = if s == 0.0 {
                    0.0
                } else {
                    s * self.ln_one_minus_mid[i]
                };
                prior.ln() + like_fail + like_ok
            };
        }
    }
}

impl BlackBoxInference {
    /// Creates an inference engine over a uniform grid of `cells` cells
    /// spanning the prior's support.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`.
    pub fn new(prior: ScaledBeta, cells: usize) -> BlackBoxInference {
        assert!(cells > 0, "need at least one grid cell");
        let range = prior.range();
        let w = range / cells as f64;
        let edges: Vec<f64> = (0..=cells).map(|i| i as f64 * w).collect();
        let mut prior_mass = Vec::with_capacity(cells);
        let mut ln_mid = Vec::with_capacity(cells);
        let mut ln_one_minus_mid = Vec::with_capacity(cells);
        for i in 0..cells {
            let lo = edges[i];
            let hi = edges[i + 1];
            let mid = 0.5 * (lo + hi);
            prior_mass.push(prior.mass(lo, hi));
            ln_mid.push(mid.ln());
            ln_one_minus_mid.push((1.0 - mid).ln());
        }
        BlackBoxInference {
            prior,
            cells,
            tables: Arc::new(BlackBoxTables {
                prior_mass,
                ln_mid,
                ln_one_minus_mid,
                edges,
            }),
        }
    }

    /// The prior this engine was built with.
    pub fn prior(&self) -> ScaledBeta {
        self.prior
    }

    /// Grid resolution.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Posterior over the pfd after observing `failures` failures in
    /// `demands` demands.
    ///
    /// # Panics
    ///
    /// Panics if `failures > demands`.
    pub fn posterior(&self, demands: u64, failures: u64) -> GridPosterior {
        assert!(
            failures <= demands,
            "failures ({failures}) exceed demands ({demands})"
        );
        let mut ln_w = vec![f64::NEG_INFINITY; self.cells];
        self.tables.accumulate_ln_w(demands, failures, &mut ln_w);
        let max = ln_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = ln_w
            .into_iter()
            .map(|w| if w.is_finite() { (w - max).exp() } else { 0.0 })
            .collect();
        GridPosterior::from_weights(self.tables.edges.clone(), weights)
    }

    /// The prior expressed on the same grid (posterior with no evidence).
    pub fn prior_on_grid(&self) -> GridPosterior {
        self.posterior(0, 0)
    }

    /// Creates an incremental updater positioned at the prior. All
    /// scratch is allocated here, once; steady-state
    /// [`BlackBoxUpdater::update_to`] calls are allocation-free.
    pub fn updater(&self) -> BlackBoxUpdater {
        let mut updater = BlackBoxUpdater {
            tables: Arc::clone(&self.tables),
            demands: 0,
            failures: 0,
            ln_w: vec![f64::NEG_INFINITY; self.cells],
            max: f64::NEG_INFINITY,
            weights: vec![0.0; self.cells],
            masses: vec![0.0; self.cells],
        };
        updater.rebase(0, 0);
        updater
    }
}

/// Incremental counterpart of [`BlackBoxInference::posterior`]: applies
/// delta counts in place (`ln_w += Δr·ln x + Δs·ln(1−x)`), keeps the
/// cached weights and normalised masses up to date, and answers queries
/// through a borrowed [`MarginalView`] — zero heap allocation in steady
/// state. Non-monotone count sequences transparently rebase (an exact
/// recompute with the batch operation order).
#[derive(Debug, Clone)]
pub struct BlackBoxUpdater {
    tables: Arc<BlackBoxTables>,
    demands: u64,
    failures: u64,
    ln_w: Vec<f64>,
    max: f64,
    weights: Vec<f64>,
    masses: Vec<f64>,
}

impl BlackBoxUpdater {
    /// Advances the posterior to the given cumulative evidence.
    ///
    /// # Panics
    ///
    /// Panics if `failures > demands`.
    pub fn update_to(&mut self, demands: u64, failures: u64) {
        assert!(
            failures <= demands,
            "failures ({failures}) exceed demands ({demands})"
        );
        let old_successes = self.demands - self.failures;
        let successes = demands - failures;
        if failures < self.failures || successes < old_successes {
            self.rebase(demands, failures);
            return;
        }
        let dr = (failures - self.failures) as f64;
        let ds = (successes - old_successes) as f64;
        if dr == 0.0 && ds == 0.0 {
            return;
        }
        if dr > 0.0 {
            for (w, &p) in self.ln_w.iter_mut().zip(&self.tables.ln_mid) {
                *w += dr * p;
            }
        }
        if ds > 0.0 {
            for (w, &p) in self.ln_w.iter_mut().zip(&self.tables.ln_one_minus_mid) {
                *w += ds * p;
            }
        }
        self.demands = demands;
        self.failures = failures;
        self.refresh();
    }

    /// Exact in-place recompute from total counts (batch-path bits).
    pub fn rebase(&mut self, demands: u64, failures: u64) {
        assert!(
            failures <= demands,
            "failures ({failures}) exceed demands ({demands})"
        );
        let tables = Arc::clone(&self.tables);
        tables.accumulate_ln_w(demands, failures, &mut self.ln_w);
        self.demands = demands;
        self.failures = failures;
        self.refresh();
    }

    fn refresh(&mut self) {
        self.max = self.ln_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let max = self.max;
        for (x, &w) in self.weights.iter_mut().zip(&self.ln_w) {
            *x = if w.is_finite() { (w - max).exp() } else { 0.0 };
        }
        posterior::normalize_into(&self.weights, &mut self.masses);
    }

    /// Demands reflected in the posterior.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Failures reflected in the posterior.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Borrowed view of the current posterior; allocation-free.
    pub fn posterior_view(&self) -> MarginalView<'_> {
        MarginalView::new(&self.tables.edges, &self.masses)
    }

    /// `P(pfd ≤ target)` from the cached posterior.
    pub fn confidence(&self, target: f64) -> f64 {
        self.posterior_view().confidence(target)
    }

    /// The `c`-percentile from the cached posterior.
    pub fn percentile(&self, c: f64) -> f64 {
        self.posterior_view().percentile(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With support [0, 1] the Beta prior is conjugate; the grid result
    /// must match `Beta(α+r, β+n−r)` percentiles closely.
    #[test]
    fn grid_matches_conjugate_posterior() {
        let prior = ScaledBeta::standard(2.0, 3.0).unwrap();
        let inf = BlackBoxInference::new(prior, 4096);
        let (n, r) = (50u64, 4u64);
        let grid = inf.posterior(n, r);
        let exact = ScaledBeta::standard(2.0 + r as f64, 3.0 + (n - r) as f64).unwrap();
        for &c in &[0.1, 0.5, 0.9, 0.99] {
            let g = grid.percentile(c);
            let e = exact.quantile(c);
            assert!((g - e).abs() < 2e-3, "c={c}: grid {g} vs exact {e}");
        }
        assert!((grid.mean() - exact.mean()).abs() < 1e-3);
    }

    #[test]
    fn no_evidence_returns_prior() {
        let prior = ScaledBeta::new(20.0, 20.0, 0.002).unwrap();
        let inf = BlackBoxInference::new(prior, 1024);
        let post = inf.prior_on_grid();
        assert!((post.mean() - prior.mean()).abs() < 1e-6);
        assert!((post.percentile(0.99) - prior.quantile(0.99)).abs() < 1e-5);
    }

    #[test]
    fn clean_run_tightens_the_posterior() {
        let prior = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        let inf = BlackBoxInference::new(prior, 1024);
        let p0 = inf.posterior(0, 0).percentile(0.99);
        let p1 = inf.posterior(1_000, 0).percentile(0.99);
        let p2 = inf.posterior(10_000, 0).percentile(0.99);
        assert!(p1 < p0, "{p1} !< {p0}");
        assert!(p2 < p1, "{p2} !< {p1}");
    }

    #[test]
    fn failures_push_posterior_up() {
        let prior = ScaledBeta::new(2.0, 3.0, 0.01).unwrap();
        let inf = BlackBoxInference::new(prior, 1024);
        let clean = inf.posterior(1_000, 0).mean();
        let dirty = inf.posterior(1_000, 8).mean();
        assert!(dirty > clean);
        // With 8/1000 observed, the posterior mean should approach 8e-3.
        assert!((dirty - 8e-3).abs() < 2e-3, "mean {dirty}");
    }

    #[test]
    fn confidence_grows_with_clean_evidence() {
        let prior = ScaledBeta::new(2.0, 3.0, 0.002).unwrap();
        let inf = BlackBoxInference::new(prior, 1024);
        let target = 1e-3;
        let c0 = inf.posterior(0, 0).confidence(target);
        let c1 = inf.posterior(2_000, 0).confidence(target);
        let c2 = inf.posterior(20_000, 0).confidence(target);
        assert!(c0 < c1 && c1 < c2, "{c0} {c1} {c2}");
        assert!(c2 > 0.99);
    }

    #[test]
    fn posterior_concentrates_on_true_rate() {
        // 100 failures in 100_000 demands -> pfd ~ 1e-3.
        let prior = ScaledBeta::new(1.0, 1.0, 0.01).unwrap();
        let inf = BlackBoxInference::new(prior, 2048);
        let post = inf.posterior(100_000, 100);
        assert!((post.mean() - 1e-3).abs() < 2e-4, "mean {}", post.mean());
        // 99% credible upper bound is near the Poisson upper bound (~1.25e-3).
        let ub = post.percentile(0.99);
        assert!(ub > 1e-3 && ub < 1.5e-3, "ub {ub}");
    }

    #[test]
    #[should_panic(expected = "exceed demands")]
    fn rejects_more_failures_than_demands() {
        let prior = ScaledBeta::standard(1.0, 1.0).unwrap();
        BlackBoxInference::new(prior, 16).posterior(1, 2);
    }

    #[test]
    fn accessors() {
        let prior = ScaledBeta::standard(1.0, 1.0).unwrap();
        let inf = BlackBoxInference::new(prior, 16);
        assert_eq!(inf.cells(), 16);
        assert_eq!(inf.prior(), prior);
    }
}
