//! Property-style tests of the workload generators.
//!
//! Originally written with `proptest`; rewritten as deterministic
//! seeded-loop checks (no external dev-dependencies — see the note in
//! `crates/simcore/tests/properties.rs`).

use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_workload::outcomes::{CorrelatedOutcomes, IndependentOutcomes, OutcomePairGen};
use wsu_workload::runs::{ConditionalTable, RunSpec};
use wsu_workload::scenario::FailureScenario;
use wsu_workload::timing::ExecTimeModel;
use wsu_wstack::outcome::{OutcomeProfile, ResponseClass};

fn rng_for(test: &str) -> StreamRng {
    MasterSeed::new(0x57_4F_52_4B_4C_4F_41_44).stream(test)
}

fn f64_in(rng: &mut StreamRng, lo: f64, hi: f64) -> f64 {
    let unit = rng.next_u64() as f64 / u64::MAX as f64;
    lo + unit * (hi - lo)
}

/// A symmetric conditional table's implied marginal is itself a valid
/// profile, and the diagonal dominance carries through.
#[test]
fn implied_marginal_is_valid() {
    let mut rng = rng_for("implied_marginal");
    for _ in 0..64 {
        let diag = f64_in(&mut rng, 0.34, 1.0);
        let table = ConditionalTable::symmetric(diag);
        let rel1 = OutcomeProfile::new(0.7, 0.15, 0.15);
        let implied = table.implied_marginal(rel1);
        let sum: f64 = implied.as_array().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // With a dominant diagonal, the implied distribution leans toward
        // rel1's dominant class.
        if diag > 0.5 {
            assert!(implied.correct() >= implied.evident());
        }
    }
}

/// Correlated generation produces agreement with probability exactly
/// the diagonal (for symmetric tables), independent of marginals.
#[test]
fn agreement_tracks_diagonal() {
    let mut rng = rng_for("agreement_diagonal");
    for _ in 0..8 {
        let diag = f64_in(&mut rng, 0.2, 1.0);
        let table = ConditionalTable::symmetric(diag);
        let gen = CorrelatedOutcomes::new(OutcomeProfile::new(0.6, 0.25, 0.15), table);
        let mut sample_rng = StreamRng::from_seed(rng.next_u64());
        let n = 20_000;
        let agree = (0..n)
            .filter(|_| {
                let (a, b) = gen.sample_pair(&mut sample_rng);
                a == b
            })
            .count();
        let rate = agree as f64 / n as f64;
        assert!((rate - diag).abs() < 0.03, "rate {rate} vs diag {diag}");
    }
}

/// Independent generation: each release's class frequencies match its
/// own marginals regardless of the partner.
#[test]
fn independent_marginals_hold() {
    let mut rng = rng_for("independent_marginals");
    for _ in 0..8 {
        let gen = IndependentOutcomes::new(
            OutcomeProfile::new(0.8, 0.1, 0.1),
            OutcomeProfile::new(0.4, 0.3, 0.3),
        );
        let mut sample_rng = StreamRng::from_seed(rng.next_u64());
        let n = 20_000;
        let mut cr1 = 0;
        let mut cr2 = 0;
        for _ in 0..n {
            let (a, b) = gen.sample_pair(&mut sample_rng);
            if a == ResponseClass::Correct {
                cr1 += 1;
            }
            if b == ResponseClass::Correct {
                cr2 += 1;
            }
        }
        assert!((cr1 as f64 / n as f64 - 0.8).abs() < 0.02);
        assert!((cr2 as f64 / n as f64 - 0.4).abs() < 0.02);
    }
}

/// Scenario truth: implied P_B and P_AB match their closed forms for
/// arbitrary parameters.
#[test]
fn scenario_implied_probabilities() {
    let mut rng = rng_for("scenario_probabilities");
    for _ in 0..64 {
        let p_a = f64_in(&mut rng, 0.0, 0.2);
        let p_b_fail = f64_in(&mut rng, 0.0, 1.0);
        let p_b_ok = f64_in(&mut rng, 0.0, 0.05);
        let scenario = FailureScenario::new(p_a, p_b_fail, p_b_ok);
        let expect_b = p_a * p_b_fail + (1.0 - p_a) * p_b_ok;
        assert!((scenario.p_b() - expect_b).abs() < 1e-12);
        assert!((scenario.p_ab() - p_a * p_b_fail).abs() < 1e-12);
        // P_AB can never exceed either marginal.
        assert!(scenario.p_ab() <= p_a + 1e-12);
        assert!(scenario.p_ab() <= scenario.p_b() + 1e-12);
    }
}

/// Execution-time pairs are both positive and share the demand's T1:
/// with constant T2 components the difference is exactly their gap.
#[test]
fn exec_times_share_t1() {
    use wsu_simcore::dist::DelayModel;
    let mut rng = rng_for("exec_times_t1");
    for _ in 0..64 {
        let t1 = f64_in(&mut rng, 0.01, 5.0);
        let t2a = f64_in(&mut rng, 0.0, 2.0);
        let t2b = f64_in(&mut rng, 0.0, 2.0);
        let model = ExecTimeModel::new(
            DelayModel::exponential(t1),
            DelayModel::constant(t2a),
            DelayModel::constant(t2b),
        );
        let mut sample_rng = StreamRng::from_seed(rng.next_u64());
        let (a, b) = model.sample_pair(&mut sample_rng);
        assert!(a.as_secs() > 0.0 || t2a == 0.0);
        assert!(((a.as_secs() - b.as_secs()) - (t2a - t2b)).abs() < 1e-9);
    }
}

/// Every run preset yields pair generators whose samples are valid
/// classes for either model.
#[test]
fn run_presets_sample_cleanly() {
    let mut rng = rng_for("run_presets");
    for run_idx in 0..4 {
        let spec = &RunSpec::all()[run_idx];
        let correlated = CorrelatedOutcomes::from_run(spec);
        let independent = IndependentOutcomes::from_run(spec);
        for _ in 0..4 {
            let mut sample_rng = StreamRng::from_seed(rng.next_u64());
            for _ in 0..100 {
                let (a, b) = correlated.sample_pair(&mut sample_rng);
                assert!(a.index() < 3 && b.index() < 3);
                let (c, d) = independent.sample_pair(&mut sample_rng);
                assert!(c.index() < 3 && d.index() < 3);
            }
        }
    }
}
