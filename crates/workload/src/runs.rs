//! The simulation parameter presets of Tables 3 and 4.
//!
//! Table 3 gives each release's marginal outcome probabilities per run;
//! Table 4 gives, per run, the conditional probabilities of the slower
//! release's outcome given the faster release's outcome, i.e.
//! `P(outcome Rel2 | outcome Rel1)`.

use wsu_wstack::outcome::{OutcomeProfile, ResponseClass};

use wsu_simcore::rng::StreamRng;

/// A 3×3 table of conditional outcome probabilities
/// `P(Rel2 = column | Rel1 = row)`, rows and columns ordered CR, ER, NER.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalTable {
    rows: [OutcomeProfile; 3],
}

impl ConditionalTable {
    /// Creates a table from three rows (given Rel1 = CR, ER, NER).
    pub fn new(
        given_correct: OutcomeProfile,
        given_evident: OutcomeProfile,
        given_non_evident: OutcomeProfile,
    ) -> ConditionalTable {
        ConditionalTable {
            rows: [given_correct, given_evident, given_non_evident],
        }
    }

    /// A symmetric table with `on_diagonal` on the diagonal and the rest
    /// split evenly — the construction used by every run of Table 4.
    ///
    /// # Panics
    ///
    /// Panics if `on_diagonal` is outside `(0, 1]`.
    pub fn symmetric(on_diagonal: f64) -> ConditionalTable {
        assert!(
            on_diagonal > 0.0 && on_diagonal <= 1.0,
            "diagonal probability {on_diagonal} not in (0, 1]"
        );
        let off = (1.0 - on_diagonal) / 2.0;
        let row = |i: usize| {
            let mut probs = [off; 3];
            probs[i] = on_diagonal;
            OutcomeProfile::new(probs[0], probs[1], probs[2])
        };
        ConditionalTable::new(row(0), row(1), row(2))
    }

    /// The conditional distribution of Rel2's outcome given Rel1's.
    pub fn given(&self, rel1: ResponseClass) -> OutcomeProfile {
        self.rows[rel1.index()]
    }

    /// `P(Rel2 = b | Rel1 = a)`.
    pub fn prob(&self, a: ResponseClass, b: ResponseClass) -> f64 {
        self.rows[a.index()].prob(b)
    }

    /// Samples Rel2's outcome given Rel1's.
    pub fn sample(&self, rel1: ResponseClass, rng: &mut StreamRng) -> ResponseClass {
        self.rows[rel1.index()].sample(rng)
    }

    /// The marginal outcome profile of Rel2 implied by this table and the
    /// given Rel1 marginals.
    pub fn implied_marginal(&self, rel1: OutcomeProfile) -> OutcomeProfile {
        let mut probs = [0.0; 3];
        for a in ResponseClass::ALL {
            for b in ResponseClass::ALL {
                probs[b.index()] += rel1.prob(a) * self.prob(a, b);
            }
        }
        OutcomeProfile::new(probs[0], probs[1], probs[2])
    }
}

/// One run of the paper's simulation study: the marginals of Table 3 and
/// the conditionals of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Run number, 1–4.
    pub run: usize,
    /// Release 1 marginals (Table 3).
    pub rel1: OutcomeProfile,
    /// Release 2 marginals (Table 3), used by the independence model.
    pub rel2: OutcomeProfile,
    /// Conditionals `P(Rel2 | Rel1)` (Table 4), used by the correlated
    /// model.
    pub conditional: ConditionalTable,
}

impl RunSpec {
    /// Run 1: both releases 0.70/0.15/0.15; correlation diagonal 0.90.
    pub fn run1() -> RunSpec {
        RunSpec {
            run: 1,
            rel1: OutcomeProfile::new(0.70, 0.15, 0.15),
            rel2: OutcomeProfile::new(0.70, 0.15, 0.15),
            conditional: ConditionalTable::symmetric(0.90),
        }
    }

    /// Run 2: Rel1 0.70/0.15/0.15, Rel2 0.60/0.20/0.20; diagonal 0.80.
    pub fn run2() -> RunSpec {
        RunSpec {
            run: 2,
            rel1: OutcomeProfile::new(0.70, 0.15, 0.15),
            rel2: OutcomeProfile::new(0.60, 0.20, 0.20),
            conditional: ConditionalTable::symmetric(0.80),
        }
    }

    /// Run 3: Rel1 0.70/0.15/0.15, Rel2 0.50/0.25/0.25; diagonal 0.70.
    pub fn run3() -> RunSpec {
        RunSpec {
            run: 3,
            rel1: OutcomeProfile::new(0.70, 0.15, 0.15),
            rel2: OutcomeProfile::new(0.50, 0.25, 0.25),
            conditional: ConditionalTable::symmetric(0.70),
        }
    }

    /// Run 4: Rel1 0.60/0.20/0.20, Rel2 0.40/0.30/0.30; diagonal 0.40.
    pub fn run4() -> RunSpec {
        RunSpec {
            run: 4,
            rel1: OutcomeProfile::new(0.60, 0.20, 0.20),
            rel2: OutcomeProfile::new(0.40, 0.30, 0.30),
            conditional: ConditionalTable::symmetric(0.40),
        }
    }

    /// All four runs in order.
    pub fn all() -> Vec<RunSpec> {
        vec![
            RunSpec::run1(),
            RunSpec::run2(),
            RunSpec::run3(),
            RunSpec::run4(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_rows_sum_to_one() {
        let t = ConditionalTable::symmetric(0.9);
        for a in ResponseClass::ALL {
            let row = t.given(a);
            let total: f64 = row.as_array().iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!((t.prob(a, a) - 0.9).abs() < 1e-12);
        }
    }

    #[test]
    fn run_presets_match_table3() {
        let runs = RunSpec::all();
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].rel1.correct(), 0.70);
        assert_eq!(runs[1].rel2.correct(), 0.60);
        assert_eq!(runs[2].rel2.correct(), 0.50);
        assert_eq!(runs[3].rel1.correct(), 0.60);
        assert_eq!(runs[3].rel2.correct(), 0.40);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.run, i + 1);
        }
    }

    #[test]
    fn run_presets_match_table4_diagonals() {
        assert!(
            (RunSpec::run1()
                .conditional
                .prob(ResponseClass::Correct, ResponseClass::Correct)
                - 0.9)
                .abs()
                < 1e-12
        );
        assert!(
            (RunSpec::run2()
                .conditional
                .prob(ResponseClass::EvidentFailure, ResponseClass::EvidentFailure)
                - 0.8)
                .abs()
                < 1e-12
        );
        assert!(
            (RunSpec::run3().conditional.prob(
                ResponseClass::NonEvidentFailure,
                ResponseClass::NonEvidentFailure
            ) - 0.7)
                .abs()
                < 1e-12
        );
        assert!(
            (RunSpec::run4()
                .conditional
                .prob(ResponseClass::Correct, ResponseClass::Correct)
                - 0.4)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn implied_marginal_matches_hand_computation() {
        // Run 1: P(Rel2 = CR) = 0.7*0.9 + 0.15*0.05 + 0.15*0.05 = 0.645.
        let run = RunSpec::run1();
        let implied = run.conditional.implied_marginal(run.rel1);
        assert!((implied.correct() - 0.645).abs() < 1e-12);
        // Run 4: P(Rel2 = CR) = 0.6*0.4 + 0.2*0.3 + 0.2*0.3 = 0.36.
        let run = RunSpec::run4();
        let implied = run.conditional.implied_marginal(run.rel1);
        assert!((implied.correct() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn conditional_sampling_matches_row() {
        let t = ConditionalTable::symmetric(0.8);
        let mut rng = StreamRng::from_seed(1);
        let n = 100_000;
        let same = (0..n)
            .filter(|_| {
                t.sample(ResponseClass::EvidentFailure, &mut rng) == ResponseClass::EvidentFailure
            })
            .count();
        assert!((same as f64 / n as f64 - 0.8).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "not in (0, 1]")]
    fn symmetric_rejects_bad_diagonal() {
        let _ = ConditionalTable::symmetric(0.0);
    }
}
