//! The execution-time model of paper eq. (7).
//!
//! Each release's execution time on a demand is
//!
//! ```text
//! ExTime(Release(i)) = T1 + T2(i)
//! ```
//!
//! where `T1` models the computational difficulty of the demand (shared by
//! both releases) and `T2(i)` is release-specific. All components are
//! exponentially distributed; the paper's parameters are
//! `T1Mean = 0.7 s`, `T2Mean1 = T2Mean2 = 0.7 s`.

use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::SimDuration;

/// Execution-time model for a pair of releases sharing a demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecTimeModel {
    t1: DelayModel,
    t2: [DelayModel; 2],
}

impl ExecTimeModel {
    /// Creates a model from the shared and the per-release components.
    pub fn new(t1: DelayModel, t2_rel1: DelayModel, t2_rel2: DelayModel) -> ExecTimeModel {
        ExecTimeModel {
            t1,
            t2: [t2_rel1, t2_rel2],
        }
    }

    /// The paper's parameters: `T1Mean = 0.7`, `T2Mean1 = T2Mean2 = 0.7`,
    /// all exponential.
    pub fn paper() -> ExecTimeModel {
        ExecTimeModel::new(
            DelayModel::exponential(0.7),
            DelayModel::exponential(0.7),
            DelayModel::exponential(0.7),
        )
    }

    /// A calibrated variant whose *unconditional* per-release mean
    /// execution time (~1.0 s) matches the MET values reported in the
    /// paper's Tables 5–6 (the documented parameters give mean 1.4 s; see
    /// EXPERIMENTS.md for the discrepancy note).
    pub fn calibrated() -> ExecTimeModel {
        ExecTimeModel::new(
            DelayModel::exponential(0.7),
            DelayModel::exponential(0.3),
            DelayModel::exponential(0.3),
        )
    }

    /// Mean execution time of release `i` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn mean(&self, i: usize) -> f64 {
        assert!(i < 2, "release index {i} out of range");
        self.t1.mean() + self.t2[i].mean()
    }

    /// Samples one demand's execution-time pair. The `T1` component is
    /// drawn once and shared, inducing positive correlation between the
    /// releases' times, exactly as eq. (7) prescribes.
    pub fn sample_pair(&self, rng: &mut StreamRng) -> (SimDuration, SimDuration) {
        let t1 = self.t1.sample(rng);
        let t2a = self.t2[0].sample(rng);
        let t2b = self.t2[1].sample(rng);
        (t1 + t2a, t1 + t2b)
    }
}

impl Default for ExecTimeModel {
    /// The paper's parameters.
    fn default() -> ExecTimeModel {
        ExecTimeModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_means() {
        let m = ExecTimeModel::paper();
        assert!((m.mean(0) - 1.4).abs() < 1e-12);
        assert!((m.mean(1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn calibrated_means() {
        let m = ExecTimeModel::calibrated();
        assert!((m.mean(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_means_converge() {
        let m = ExecTimeModel::paper();
        let mut rng = StreamRng::from_seed(1);
        let n = 100_000;
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        for _ in 0..n {
            let (a, b) = m.sample_pair(&mut rng);
            sum_a += a.as_secs();
            sum_b += b.as_secs();
        }
        assert!((sum_a / n as f64 - 1.4).abs() < 0.02);
        assert!((sum_b / n as f64 - 1.4).abs() < 0.02);
    }

    #[test]
    fn shared_t1_induces_positive_correlation() {
        let m = ExecTimeModel::paper();
        let mut rng = StreamRng::from_seed(2);
        let n = 50_000;
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let (a, b) = m.sample_pair(&mut rng);
                (a.as_secs(), b.as_secs())
            })
            .collect();
        let mean_a: f64 = pairs.iter().map(|p| p.0).sum::<f64>() / n as f64;
        let mean_b: f64 = pairs.iter().map(|p| p.1).sum::<f64>() / n as f64;
        let cov: f64 = pairs
            .iter()
            .map(|p| (p.0 - mean_a) * (p.1 - mean_b))
            .sum::<f64>()
            / n as f64;
        // Cov = Var(T1) = 0.49; correlation = 0.49 / (0.49 + 0.49) = 0.5.
        assert!((cov - 0.49).abs() < 0.03, "cov {cov}");
    }

    #[test]
    fn constant_components_are_deterministic() {
        let m = ExecTimeModel::new(
            DelayModel::constant(0.5),
            DelayModel::constant(0.1),
            DelayModel::constant(0.2),
        );
        let mut rng = StreamRng::from_seed(3);
        let (a, b) = m.sample_pair(&mut rng);
        assert!((a.as_secs() - 0.6).abs() < 1e-12);
        assert!((b.as_secs() - 0.7).abs() < 1e-12);
        assert_eq!(m.mean(1), 0.7);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ExecTimeModel::default(), ExecTimeModel::paper());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mean_rejects_bad_index() {
        let _ = ExecTimeModel::paper().mean(2);
    }
}
