//! Demand streams: requests plus per-release planned responses.
//!
//! The middleware simulation needs, for each demand, a request envelope
//! and the jointly sampled behaviour of both releases: outcome classes
//! (from an [`OutcomePairGen`]) and execution times (from an
//! [`ExecTimeModel`]). [`DemandPlanner`] bundles the two; the experiment
//! harness feeds each half of the plan into a scripted endpoint or
//! directly into the middleware.

use wsu_simcore::rng::StreamRng;
use wsu_wstack::endpoint::PlannedResponse;
use wsu_wstack::message::Envelope;

use crate::outcomes::OutcomePairGen;
use crate::timing::ExecTimeModel;

/// One fully planned demand.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedDemand {
    /// Sequence number, from 0.
    pub seq: u64,
    /// The consumer's request.
    pub request: Envelope,
    /// Release 1's planned behaviour.
    pub rel1: PlannedResponse,
    /// Release 2's planned behaviour.
    pub rel2: PlannedResponse,
}

/// Plans demands by jointly sampling outcomes and execution times.
pub struct DemandPlanner<'a> {
    outcomes: &'a dyn OutcomePairGen,
    timing: ExecTimeModel,
    operation: String,
    next_seq: u64,
}

impl<'a> DemandPlanner<'a> {
    /// Creates a planner issuing requests against `operation`.
    pub fn new(
        outcomes: &'a dyn OutcomePairGen,
        timing: ExecTimeModel,
        operation: impl Into<String>,
    ) -> DemandPlanner<'a> {
        DemandPlanner {
            outcomes,
            timing,
            operation: operation.into(),
            next_seq: 0,
        }
    }

    /// Plans the next demand.
    pub fn plan(&mut self, rng: &mut StreamRng) -> PlannedDemand {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (class1, class2) = self.outcomes.sample_pair(rng);
        let (t1, t2) = self.timing.sample_pair(rng);
        PlannedDemand {
            seq,
            request: Envelope::request(self.operation.clone()).with_part("seq", seq as i64),
            rel1: PlannedResponse {
                class: class1,
                exec_time: t1,
            },
            rel2: PlannedResponse {
                class: class2,
                exec_time: t2,
            },
        }
    }

    /// Plans a batch of `n` demands.
    pub fn plan_batch(&mut self, n: usize, rng: &mut StreamRng) -> Vec<PlannedDemand> {
        (0..n).map(|_| self.plan(rng)).collect()
    }

    /// Demands planned so far.
    pub fn planned(&self) -> u64 {
        self.next_seq
    }
}

impl std::fmt::Debug for DemandPlanner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DemandPlanner")
            .field("outcomes", &self.outcomes.label())
            .field("timing", &self.timing)
            .field("operation", &self.operation)
            .field("planned", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcomes::CorrelatedOutcomes;
    use crate::runs::RunSpec;
    use wsu_wstack::message::Value;
    use wsu_wstack::outcome::ResponseClass;

    #[test]
    fn plans_are_sequenced_and_tagged() {
        let run = RunSpec::run1();
        let outcomes = CorrelatedOutcomes::from_run(&run);
        let mut planner = DemandPlanner::new(&outcomes, ExecTimeModel::paper(), "invoke");
        let mut rng = StreamRng::from_seed(1);
        let d0 = planner.plan(&mut rng);
        let d1 = planner.plan(&mut rng);
        assert_eq!(d0.seq, 0);
        assert_eq!(d1.seq, 1);
        assert_eq!(d0.request.operation(), "invoke");
        assert_eq!(d0.request.part("seq").and_then(Value::as_int), Some(0));
        assert_eq!(planner.planned(), 2);
    }

    #[test]
    fn batch_planning() {
        let run = RunSpec::run1();
        let outcomes = CorrelatedOutcomes::from_run(&run);
        let mut planner = DemandPlanner::new(&outcomes, ExecTimeModel::paper(), "invoke");
        let mut rng = StreamRng::from_seed(2);
        let batch = planner.plan_batch(100, &mut rng);
        assert_eq!(batch.len(), 100);
        assert_eq!(batch[99].seq, 99);
    }

    #[test]
    fn planned_outcomes_follow_generator() {
        let run = RunSpec::run1();
        let outcomes = CorrelatedOutcomes::from_run(&run);
        let mut planner = DemandPlanner::new(&outcomes, ExecTimeModel::paper(), "invoke");
        let mut rng = StreamRng::from_seed(3);
        let n = 50_000;
        let batch = planner.plan_batch(n, &mut rng);
        let rel1_correct = batch
            .iter()
            .filter(|d| d.rel1.class == ResponseClass::Correct)
            .count();
        assert!((rel1_correct as f64 / n as f64 - 0.70).abs() < 0.01);
        // Agreement should track the run-1 diagonal (0.9).
        let agree = batch
            .iter()
            .filter(|d| d.rel1.class == d.rel2.class)
            .count();
        assert!((agree as f64 / n as f64 - 0.9).abs() < 0.01);
    }

    #[test]
    fn exec_times_are_positive_and_distinct() {
        let run = RunSpec::run1();
        let outcomes = CorrelatedOutcomes::from_run(&run);
        let mut planner = DemandPlanner::new(&outcomes, ExecTimeModel::paper(), "invoke");
        let mut rng = StreamRng::from_seed(4);
        let d = planner.plan(&mut rng);
        assert!(d.rel1.exec_time.as_secs() > 0.0);
        assert!(d.rel2.exec_time.as_secs() > 0.0);
        assert_ne!(d.rel1.exec_time, d.rel2.exec_time);
    }

    #[test]
    fn debug_format_mentions_label() {
        let run = RunSpec::run1();
        let outcomes = CorrelatedOutcomes::from_run(&run);
        let planner = DemandPlanner::new(&outcomes, ExecTimeModel::paper(), "invoke");
        assert!(format!("{planner:?}").contains("correlated"));
    }
}
