//! Joint outcome generators for two releases.
//!
//! The paper's simulation model assumes "a degree of correlation between
//! the types of responses … modelled through a set of conditional
//! probabilities `P(slower response is X | faster response is Y)`"
//! (eq. (9)). [`CorrelatedOutcomes`] implements exactly that; for
//! reference the paper also reports an (admittedly unrealistic)
//! independence variant, [`IndependentOutcomes`].

use wsu_simcore::rng::StreamRng;
use wsu_wstack::outcome::{OutcomeProfile, ResponseClass};

use crate::runs::{ConditionalTable, RunSpec};

/// A generator of joint `(Rel1, Rel2)` response outcomes.
pub trait OutcomePairGen {
    /// Samples one demand's pair of response classes.
    fn sample_pair(&self, rng: &mut StreamRng) -> (ResponseClass, ResponseClass);

    /// A short label for reports.
    fn label(&self) -> String;
}

/// Correlated outcomes: Rel1 from its marginals, Rel2 from the
/// conditional table given Rel1's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedOutcomes {
    rel1: OutcomeProfile,
    conditional: ConditionalTable,
}

impl CorrelatedOutcomes {
    /// Creates a correlated generator.
    pub fn new(rel1: OutcomeProfile, conditional: ConditionalTable) -> CorrelatedOutcomes {
        CorrelatedOutcomes { rel1, conditional }
    }

    /// The generator for one of the paper's runs (Table 5 columns).
    pub fn from_run(run: &RunSpec) -> CorrelatedOutcomes {
        CorrelatedOutcomes::new(run.rel1, run.conditional.clone())
    }

    /// Rel1's marginal profile.
    pub fn rel1_marginal(&self) -> OutcomeProfile {
        self.rel1
    }

    /// Rel2's implied marginal profile.
    pub fn rel2_marginal(&self) -> OutcomeProfile {
        self.conditional.implied_marginal(self.rel1)
    }
}

impl OutcomePairGen for CorrelatedOutcomes {
    fn sample_pair(&self, rng: &mut StreamRng) -> (ResponseClass, ResponseClass) {
        let a = self.rel1.sample(rng);
        let b = self.conditional.sample(a, rng);
        (a, b)
    }

    fn label(&self) -> String {
        "correlated".to_owned()
    }
}

/// Independent outcomes: each release samples its own marginals
/// (Table 6's reference model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndependentOutcomes {
    rel1: OutcomeProfile,
    rel2: OutcomeProfile,
}

impl IndependentOutcomes {
    /// Creates an independent generator.
    pub fn new(rel1: OutcomeProfile, rel2: OutcomeProfile) -> IndependentOutcomes {
        IndependentOutcomes { rel1, rel2 }
    }

    /// The generator for one of the paper's runs (Table 6 columns).
    pub fn from_run(run: &RunSpec) -> IndependentOutcomes {
        IndependentOutcomes::new(run.rel1, run.rel2)
    }

    /// Rel1's marginal profile.
    pub fn rel1_marginal(&self) -> OutcomeProfile {
        self.rel1
    }

    /// Rel2's marginal profile.
    pub fn rel2_marginal(&self) -> OutcomeProfile {
        self.rel2
    }
}

impl OutcomePairGen for IndependentOutcomes {
    fn sample_pair(&self, rng: &mut StreamRng) -> (ResponseClass, ResponseClass) {
        (self.rel1.sample(rng), self.rel2.sample(rng))
    }

    fn label(&self) -> String {
        "independent".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(gen: &dyn OutcomePairGen, n: usize, seed: u64) -> ([f64; 3], [f64; 3], f64) {
        let mut rng = StreamRng::from_seed(seed);
        let mut a_counts = [0u32; 3];
        let mut b_counts = [0u32; 3];
        let mut agree = 0u32;
        for _ in 0..n {
            let (a, b) = gen.sample_pair(&mut rng);
            a_counts[a.index()] += 1;
            b_counts[b.index()] += 1;
            if a == b {
                agree += 1;
            }
        }
        let to_freq = |c: [u32; 3]| {
            [
                c[0] as f64 / n as f64,
                c[1] as f64 / n as f64,
                c[2] as f64 / n as f64,
            ]
        };
        (
            to_freq(a_counts),
            to_freq(b_counts),
            agree as f64 / n as f64,
        )
    }

    #[test]
    fn correlated_preserves_rel1_marginals() {
        let gen = CorrelatedOutcomes::from_run(&RunSpec::run1());
        let (a, _, _) = frequencies(&gen, 100_000, 1);
        assert!((a[0] - 0.70).abs() < 0.01);
        assert!((a[1] - 0.15).abs() < 0.005);
    }

    #[test]
    fn correlated_rel2_matches_implied_marginal() {
        let gen = CorrelatedOutcomes::from_run(&RunSpec::run1());
        let implied = gen.rel2_marginal();
        // Hand value from the paper's parameters: 0.645 for CR.
        assert!((implied.correct() - 0.645).abs() < 1e-12);
        let (_, b, _) = frequencies(&gen, 100_000, 2);
        assert!((b[0] - 0.645).abs() < 0.01);
    }

    #[test]
    fn correlated_agreement_rate_tracks_diagonal() {
        // With diagonal 0.9, P(agree) = sum_a P(a) * 0.9 = 0.9.
        let gen = CorrelatedOutcomes::from_run(&RunSpec::run1());
        let (_, _, agree) = frequencies(&gen, 100_000, 3);
        assert!((agree - 0.9).abs() < 0.01, "agree {agree}");
    }

    #[test]
    fn independent_marginals_match_table3() {
        let gen = IndependentOutcomes::from_run(&RunSpec::run3());
        let (a, b, _) = frequencies(&gen, 100_000, 4);
        assert!((a[0] - 0.70).abs() < 0.01);
        assert!((b[0] - 0.50).abs() < 0.01);
        assert_eq!(gen.rel1_marginal().correct(), 0.70);
        assert_eq!(gen.rel2_marginal().correct(), 0.50);
    }

    #[test]
    fn independent_agreement_is_product_based() {
        // Run 1 independent: P(agree) = 0.7^2 + 0.15^2 + 0.15^2 = 0.535.
        let gen = IndependentOutcomes::from_run(&RunSpec::run1());
        let (_, _, agree) = frequencies(&gen, 100_000, 5);
        assert!((agree - 0.535).abs() < 0.01, "agree {agree}");
    }

    #[test]
    fn labels() {
        assert_eq!(
            CorrelatedOutcomes::from_run(&RunSpec::run1()).label(),
            "correlated"
        );
        assert_eq!(
            IndependentOutcomes::from_run(&RunSpec::run1()).label(),
            "independent"
        );
    }

    #[test]
    fn correlated_generator_accessors() {
        let gen = CorrelatedOutcomes::from_run(&RunSpec::run2());
        assert_eq!(gen.rel1_marginal().correct(), 0.70);
    }
}
