//! Workload generation for the managed-upgrade experiments.
//!
//! Two distinct workload models drive the paper's evaluation:
//!
//! * the **middleware simulation** (Section 5.2, Tables 3–6) needs joint
//!   response outcomes for two releases — either correlated through the
//!   conditional probabilities of Table 4 or independent — plus the
//!   two-component execution-time model of eq. (7);
//! * the **Bayesian study** (Section 5.1, Table 2, Figs. 7–8) needs
//!   binary failure outcomes for two releases with a controlled
//!   coincident-failure probability (Scenarios 1 and 2).
//!
//! Modules:
//!
//! * [`runs`] — the parameter presets of Tables 3 and 4 (runs 1–4);
//! * [`outcomes`] — correlated and independent outcome generators;
//! * [`timing`] — the `T1 + T2(i)` execution-time model;
//! * [`scenario`] — Scenarios 1–2 with their priors;
//! * [`demand`] — demand streams combining outcomes and timing into
//!   per-release planned responses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
pub mod outcomes;
pub mod runs;
pub mod scenario;
pub mod timing;

pub use demand::{DemandPlanner, PlannedDemand};
pub use outcomes::{CorrelatedOutcomes, IndependentOutcomes, OutcomePairGen};
pub use runs::{ConditionalTable, RunSpec};
pub use scenario::{FailureScenario, ScenarioPriors};
pub use timing::ExecTimeModel;
