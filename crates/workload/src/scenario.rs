//! The Bayesian-study scenarios of paper Section 5.1.1.1.
//!
//! Each scenario fixes the *true* (unknown to the assessor) failure
//! behaviour of the two releases — `P_A`, `P(B fails | A failed)` and
//! `P(B fails | A succeeded)` — plus the assessor's prior distributions.
//! 50,000 demands are Monte-Carlo simulated from the truth, scored by a
//! failure detector, and fed to the white-box inference.

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::whitebox::CoincidencePrior;
use wsu_detect::oracle::DemandOutcome;
use wsu_simcore::rng::StreamRng;

/// The true failure behaviour of the release pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureScenario {
    /// `P_A`: probability the old release fails on a demand.
    pub p_a: f64,
    /// `P(B fails | A failed)`.
    pub p_b_given_a_failed: f64,
    /// `P(B fails | A succeeded)`.
    pub p_b_given_a_ok: f64,
}

impl FailureScenario {
    /// Creates a scenario.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(p_a: f64, p_b_given_a_failed: f64, p_b_given_a_ok: f64) -> FailureScenario {
        for p in [p_a, p_b_given_a_failed, p_b_given_a_ok] {
            assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        }
        FailureScenario {
            p_a,
            p_b_given_a_failed,
            p_b_given_a_ok,
        }
    }

    /// Scenario 1's truth: `P_A = 1e-3`, `P(B|A fail) = 0.3`,
    /// `P(B|A ok) = 0.5e-3` — hence `P_B = 0.8e-3`, `P_AB = 0.3e-3`.
    pub fn scenario1() -> FailureScenario {
        FailureScenario::new(1e-3, 0.3, 0.5e-3)
    }

    /// Scenario 2's truth: `P_A = 5e-3` (far worse than the prior mean),
    /// `P(B|A fail) = 0.1`, `P(B|A ok) = 0` — hence `P_B = 0.5e-3`, an
    /// order of magnitude better than the old release.
    pub fn scenario2() -> FailureScenario {
        FailureScenario::new(5e-3, 0.1, 0.0)
    }

    /// The implied marginal failure probability of the new release,
    /// `P_B = P_A·P(B|A fail) + (1−P_A)·P(B|A ok)`.
    pub fn p_b(self) -> f64 {
        self.p_a * self.p_b_given_a_failed + (1.0 - self.p_a) * self.p_b_given_a_ok
    }

    /// The implied coincident-failure probability,
    /// `P_AB = P_A·P(B|A fail)`.
    pub fn p_ab(self) -> f64 {
        self.p_a * self.p_b_given_a_failed
    }

    /// Samples one demand's true outcome.
    pub fn sample(self, rng: &mut StreamRng) -> DemandOutcome {
        let a_failed = rng.bernoulli(self.p_a);
        let p_b = if a_failed {
            self.p_b_given_a_failed
        } else {
            self.p_b_given_a_ok
        };
        DemandOutcome::new(a_failed, rng.bernoulli(p_b))
    }
}

/// The assessor's prior knowledge in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioPriors {
    /// Prior over the old release's pfd.
    pub prior_a: ScaledBeta,
    /// Prior over the new release's pfd.
    pub prior_b: ScaledBeta,
    /// Conditional prior of the coincident-failure probability.
    pub coincidence: CoincidencePrior,
}

impl ScenarioPriors {
    /// Scenario 1's priors: the old release is precisely known
    /// (`Beta(20,20)` on `[0, 0.002]`, mean `1e-3`, low uncertainty), the
    /// new release is believed slightly better but with high uncertainty
    /// (`Beta(2,3)` on `[0, 0.002]`, mean `0.8e-3`); indifference prior on
    /// coincident failures.
    pub fn scenario1() -> ScenarioPriors {
        ScenarioPriors {
            prior_a: ScaledBeta::new(20.0, 20.0, 0.002).expect("valid scenario-1 prior A"),
            prior_b: ScaledBeta::new(2.0, 3.0, 0.002).expect("valid scenario-1 prior B"),
            coincidence: CoincidencePrior::IndifferenceUniform,
        }
    }

    /// Scenario 2's priors: the old release has seen little use
    /// (`Beta(1,10)` on `[0, 0.01]`, mean `~1e-3`, high uncertainty); the
    /// new release is conservatively considered worse (`Beta(2,3)` on the
    /// same `[0, 0.01]` range, mean `4e-3`); indifference prior on
    /// coincident failures.
    pub fn scenario2() -> ScenarioPriors {
        ScenarioPriors {
            prior_a: ScaledBeta::new(1.0, 10.0, 0.01).expect("valid scenario-2 prior A"),
            prior_b: ScaledBeta::new(2.0, 3.0, 0.01).expect("valid scenario-2 prior B"),
            coincidence: CoincidencePrior::IndifferenceUniform,
        }
    }
}

/// A full scenario: truth plus priors, with the paper's presets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Display number (1 or 2 for the paper's presets).
    pub number: usize,
    /// The simulated truth.
    pub truth: FailureScenario,
    /// The assessor's priors.
    pub priors: ScenarioPriors,
}

impl Scenario {
    /// The paper's Scenario 1.
    pub fn one() -> Scenario {
        Scenario {
            number: 1,
            truth: FailureScenario::scenario1(),
            priors: ScenarioPriors::scenario1(),
        }
    }

    /// The paper's Scenario 2.
    pub fn two() -> Scenario {
        Scenario {
            number: 2,
            truth: FailureScenario::scenario2(),
            priors: ScenarioPriors::scenario2(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_implied_marginals_match_paper() {
        let s = FailureScenario::scenario1();
        assert!((s.p_b() - 0.7998e-3).abs() < 1e-6); // ~0.8e-3
        assert!((s.p_ab() - 0.3e-3).abs() < 1e-12);
    }

    #[test]
    fn scenario2_implied_marginals_match_paper() {
        let s = FailureScenario::scenario2();
        assert!((s.p_b() - 0.5e-3).abs() < 1e-12);
        assert!((s.p_ab() - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_marginals() {
        let s = FailureScenario::scenario1();
        let mut rng = StreamRng::from_seed(1);
        let n = 2_000_000;
        let mut a = 0u32;
        let mut b = 0u32;
        let mut ab = 0u32;
        for _ in 0..n {
            let o = s.sample(&mut rng);
            if o.a_failed {
                a += 1;
            }
            if o.b_failed {
                b += 1;
            }
            if o.is_coincident() {
                ab += 1;
            }
        }
        assert!((a as f64 / n as f64 - 1e-3).abs() < 1e-4);
        assert!((b as f64 / n as f64 - 0.8e-3).abs() < 1e-4);
        assert!((ab as f64 / n as f64 - 0.3e-3).abs() < 6e-5);
    }

    #[test]
    fn priors_match_paper_parameters() {
        let p1 = ScenarioPriors::scenario1();
        assert!((p1.prior_a.mean() - 1e-3).abs() < 1e-12);
        assert!((p1.prior_b.mean() - 0.8e-3).abs() < 1e-12);
        let p2 = ScenarioPriors::scenario2();
        assert!((p2.prior_a.mean() - 0.01 / 11.0).abs() < 1e-12);
        assert_eq!(p2.prior_b.range(), 0.01);
    }

    #[test]
    fn scenario_presets() {
        assert_eq!(Scenario::one().number, 1);
        assert_eq!(Scenario::two().number, 2);
        assert_eq!(Scenario::one().truth, FailureScenario::scenario1());
    }

    #[test]
    fn conditional_failure_structure() {
        // With p_b_given_a_ok = 0, B never fails alone.
        let s = FailureScenario::scenario2();
        let mut rng = StreamRng::from_seed(2);
        for _ in 0..500_000 {
            let o = s.sample(&mut rng);
            if o.b_failed {
                assert!(o.a_failed, "B failed without A in scenario 2");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn rejects_bad_probability() {
        let _ = FailureScenario::new(1.5, 0.0, 0.0);
    }
}
