//! The fault-plan language: *when* to strike and *what* to do.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultClause`]s. Each clause
//! pairs a [`FaultTrigger`] (a predicate over the demand index, the
//! virtual-time clock or a private random stream) with a [`FaultAction`]
//! (the perturbation applied to the wrapped endpoint's invocation).
//! Plans are plain data — deterministic given a
//! [`MasterSeed`](wsu_simcore::rng::MasterSeed) — so a campaign over a
//! matrix of plans is reproducible bit for bit.
//!
//! Correlation between releases falls out of the seeding discipline:
//! two probabilistic clauses naming the **same** stream draw the same
//! Bernoulli sequence and therefore fire on exactly the same demand
//! indices (coincident faults); distinct stream names give independent
//! draws. [`FaultScenario::coincident`] builds on this.

/// When a clause fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTrigger {
    /// Fires for demand indices in the half-open window `[from, to)`.
    /// Indices are 0-based and local to the injector (its own
    /// invocation counter).
    DemandWindow {
        /// First demand index affected.
        from: u64,
        /// One past the last demand index affected.
        to: u64,
    },
    /// Fires while the injector's virtual-time clock is in the half-open
    /// window `[from_secs, to_secs)`. The clock is driven by the
    /// middleware through
    /// [`ServiceEndpoint::advance_clock`](wsu_wstack::endpoint::ServiceEndpoint::advance_clock).
    TimeWindow {
        /// Window start, in virtual seconds.
        from_secs: f64,
        /// Window end, in virtual seconds.
        to_secs: f64,
    },
    /// Fires on every demand index `i` with `i % n == phase`.
    EveryNth {
        /// The period (must be positive).
        n: u64,
        /// The offset within the period (must be `< n`).
        phase: u64,
    },
    /// Fires with probability `p` on every demand, drawn from a private
    /// [`MasterSeed`](wsu_simcore::rng::MasterSeed) stream of the given
    /// name. Same stream name ⇒ same draws ⇒ coincident firing across
    /// injectors; distinct names ⇒ independent.
    Probabilistic {
        /// The per-demand firing probability, in `[0, 1]`.
        p: f64,
        /// The seed-stream name the draws come from.
        stream: String,
    },
}

impl FaultTrigger {
    /// Validates the trigger's parameters.
    ///
    /// # Panics
    ///
    /// Panics on an empty or inverted window, `n == 0`, `phase >= n`, or
    /// a probability outside `[0, 1]`.
    pub fn validate(&self) {
        match self {
            FaultTrigger::DemandWindow { from, to } => {
                assert!(from < to, "demand window [{from}, {to}) is empty");
            }
            FaultTrigger::TimeWindow { from_secs, to_secs } => {
                assert!(
                    from_secs < to_secs,
                    "time window [{from_secs}, {to_secs}) is empty"
                );
            }
            FaultTrigger::EveryNth { n, phase } => {
                assert!(*n > 0, "every-nth period must be positive");
                assert!(phase < n, "every-nth phase {phase} not below period {n}");
            }
            FaultTrigger::Probabilistic { p, .. } => {
                assert!(
                    (0.0..=1.0).contains(p),
                    "firing probability {p} not in [0, 1]"
                );
            }
        }
    }

    /// Closed-form expected number of firings over `demands` demands,
    /// where one exists: exact for demand windows and every-nth, the
    /// binomial mean `p · demands` for probabilistic clauses, and `None`
    /// for time windows (their count depends on the clock trajectory).
    pub fn expected_fires(&self, demands: u64) -> Option<f64> {
        match self {
            FaultTrigger::DemandWindow { from, to } => {
                Some(to.min(&demands).saturating_sub(*from.min(&demands)) as f64)
            }
            FaultTrigger::TimeWindow { .. } => None,
            FaultTrigger::EveryNth { n, phase } => {
                if demands <= *phase {
                    Some(0.0)
                } else {
                    Some(((demands - phase) as f64 / *n as f64).ceil())
                }
            }
            FaultTrigger::Probabilistic { p, .. } => Some(p * demands as f64),
        }
    }
}

/// What a firing clause does to the invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// The endpoint is down: the request is never served and no response
    /// ever arrives (the middleware's timeout scores it NRDT).
    Crash,
    /// The endpoint serves the request but takes `delay_secs` longer
    /// than it would have — set it beyond the timeout to model a hung
    /// release whose work is lost.
    Hang {
        /// Extra delay added to the execution time, in seconds.
        delay_secs: f64,
    },
    /// The response carries a wrong value: evidently wrong (a SOAP
    /// fault) or non-evidently wrong (plausible but incorrect).
    WrongValue {
        /// `true` for an evident failure, `false` for a non-evident one.
        evident: bool,
    },
    /// A latency spike: the response is delayed by `extra_secs` but is
    /// otherwise untouched. May or may not cross the timeout.
    LatencySpike {
        /// Extra latency, in seconds.
        extra_secs: f64,
    },
    /// The response arrives just past the middleware's timeout — the
    /// boundary case the timeout-scoring logic must get right.
    TimeoutBoundary {
        /// The middleware timeout being straddled, in seconds.
        timeout_secs: f64,
        /// How far past the timeout the response lands, in seconds.
        margin_secs: f64,
    },
    /// The transport drops the response *after* the service executed:
    /// the ground-truth class is preserved but the consumer never sees
    /// it (observationally an NRDT).
    DropResponse,
    /// The transport duplicates the request: the service executes twice
    /// and the first response is delivered (the duplicate is discarded
    /// by the middleware's correlation layer).
    DuplicateRequest,
    /// The transport corrupts the message: the service executed but what
    /// arrives is garbage, surfacing as an evident failure.
    CorruptMessage,
    /// The release flaps: alternating up/down phases of `period` demands
    /// while the trigger holds. Down phases behave like [`Crash`];
    /// up phases pass through unperturbed (and count nothing).
    ///
    /// [`Crash`]: FaultAction::Crash
    Flap {
        /// Length of each up/down phase, in demands (must be positive).
        period: u64,
    },
}

impl FaultAction {
    /// The stable kind label used in metrics
    /// (`wsu_fault_injected_total{kind=...}`), traces and tables.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultAction::Crash => "crash",
            FaultAction::Hang { .. } => "hang",
            FaultAction::WrongValue { evident: true } => "wrong-evident",
            FaultAction::WrongValue { evident: false } => "wrong-non-evident",
            FaultAction::LatencySpike { .. } => "latency-spike",
            FaultAction::TimeoutBoundary { .. } => "timeout-boundary",
            FaultAction::DropResponse => "drop",
            FaultAction::DuplicateRequest => "duplicate",
            FaultAction::CorruptMessage => "corrupt",
            FaultAction::Flap { .. } => "flap",
        }
    }

    /// Validates the action's parameters.
    ///
    /// # Panics
    ///
    /// Panics on negative delays or a zero flap period.
    pub fn validate(&self) {
        match self {
            FaultAction::Hang { delay_secs } => {
                assert!(*delay_secs >= 0.0, "hang delay must be non-negative");
            }
            FaultAction::LatencySpike { extra_secs } => {
                assert!(*extra_secs >= 0.0, "latency spike must be non-negative");
            }
            FaultAction::TimeoutBoundary {
                timeout_secs,
                margin_secs,
            } => {
                assert!(*timeout_secs > 0.0, "timeout must be positive");
                assert!(*margin_secs > 0.0, "boundary margin must be positive");
            }
            FaultAction::Flap { period } => {
                assert!(*period > 0, "flap period must be positive");
            }
            _ => {}
        }
    }
}

/// One trigger/action pair with a display name.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultClause {
    /// Label used in trace events and reports.
    pub name: String,
    /// When the clause fires.
    pub trigger: FaultTrigger,
    /// What it does when it fires.
    pub action: FaultAction,
}

impl FaultClause {
    /// Creates a validated clause.
    ///
    /// # Panics
    ///
    /// Panics if the trigger or action parameters are invalid.
    pub fn new(name: impl Into<String>, trigger: FaultTrigger, action: FaultAction) -> FaultClause {
        trigger.validate();
        action.validate();
        FaultClause {
            name: name.into(),
            trigger,
            action,
        }
    }
}

/// An ordered list of clauses for one endpoint.
///
/// When several clauses fire on the same demand, the **first** one (in
/// plan order) applies — so with pairwise-disjoint triggers, per-clause
/// firing counts equal per-clause trigger counts exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    clauses: Vec<FaultClause>,
}

impl FaultPlan {
    /// An empty plan (nothing is ever perturbed).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends a clause (builder style).
    pub fn with_clause(mut self, clause: FaultClause) -> FaultPlan {
        self.clauses.push(clause);
        self
    }

    /// Appends a clause in place.
    pub fn push(&mut self, clause: FaultClause) {
        self.clauses.push(clause);
    }

    /// The clauses, in priority order.
    pub fn clauses(&self) -> &[FaultClause] {
        &self.clauses
    }

    /// `true` when the plan has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }
}

/// A named two-release fault scenario: one plan per release.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScenario {
    /// Scenario label (used as the campaign row name).
    pub name: String,
    /// The plan injected into the old release.
    pub old: FaultPlan,
    /// The plan injected into the new release.
    pub new: FaultPlan,
}

impl FaultScenario {
    /// An empty scenario with the given name.
    pub fn new(name: impl Into<String>) -> FaultScenario {
        FaultScenario {
            name: name.into(),
            old: FaultPlan::new(),
            new: FaultPlan::new(),
        }
    }

    /// Adds a clause to the old release's plan.
    pub fn old_clause(mut self, clause: FaultClause) -> FaultScenario {
        self.old.push(clause);
        self
    }

    /// Adds a clause to the new release's plan.
    pub fn new_clause(mut self, clause: FaultClause) -> FaultScenario {
        self.new.push(clause);
        self
    }

    /// Adds the *same* clause to both plans — a correlated two-release
    /// fault. With a deterministic trigger (window, every-nth) the
    /// firings coincide by construction; with a probabilistic trigger
    /// they coincide because both injectors derive the same seed stream
    /// from the shared stream name.
    pub fn coincident(mut self, clause: FaultClause) -> FaultScenario {
        self.old.push(clause.clone());
        self.new.push(clause);
        self
    }
}

/// A named N-release fleet fault scenario: one plan per release, in
/// deployment order. The fleet analogue of [`FaultScenario`], used by
/// canary-chain campaigns where the fault axis is (fleet size ×
/// recovery strategy).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetFaultScenario {
    /// Scenario label (used as the campaign row name).
    pub name: String,
    /// One fault plan per release, indexed by deployment order.
    pub plans: Vec<FaultPlan>,
}

impl FleetFaultScenario {
    /// An empty scenario with the given name and one empty plan per
    /// release.
    pub fn new(name: impl Into<String>, releases: usize) -> FleetFaultScenario {
        FleetFaultScenario {
            name: name.into(),
            plans: vec![FaultPlan::new(); releases],
        }
    }

    /// Number of releases the scenario covers.
    pub fn releases(&self) -> usize {
        self.plans.len()
    }

    /// Adds a clause to release `index`'s plan.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn release_clause(mut self, index: usize, clause: FaultClause) -> FleetFaultScenario {
        self.plans[index].push(clause);
        self
    }

    /// Adds the *same* clause to every release's plan — a correlated
    /// fleet-wide fault. As with [`FaultScenario::coincident`],
    /// probabilistic triggers naming the same stream fire on the same
    /// demand indices across all releases.
    pub fn coincident(mut self, clause: FaultClause) -> FleetFaultScenario {
        for plan in &mut self.plans {
            plan.push(clause.clone());
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_expected_fires_clips_to_demands() {
        let t = FaultTrigger::DemandWindow { from: 100, to: 300 };
        assert_eq!(t.expected_fires(1_000), Some(200.0));
        assert_eq!(t.expected_fires(150), Some(50.0));
        assert_eq!(t.expected_fires(50), Some(0.0));
    }

    #[test]
    fn every_nth_expected_fires() {
        let t = FaultTrigger::EveryNth { n: 7, phase: 3 };
        // Indices 3, 10, 17, ..., below 100: ceil((100-3)/7) = 14.
        assert_eq!(t.expected_fires(100), Some(14.0));
        assert_eq!(t.expected_fires(3), Some(0.0));
        assert_eq!(t.expected_fires(4), Some(1.0));
    }

    #[test]
    fn probabilistic_expected_is_binomial_mean() {
        let t = FaultTrigger::Probabilistic {
            p: 0.25,
            stream: "s".into(),
        };
        assert_eq!(t.expected_fires(400), Some(100.0));
    }

    #[test]
    fn time_window_has_no_demand_closed_form() {
        let t = FaultTrigger::TimeWindow {
            from_secs: 1.0,
            to_secs: 2.0,
        };
        assert_eq!(t.expected_fires(100), None);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn inverted_window_rejected() {
        FaultClause::new(
            "bad",
            FaultTrigger::DemandWindow { from: 5, to: 5 },
            FaultAction::Crash,
        );
    }

    #[test]
    #[should_panic(expected = "phase")]
    fn bad_phase_rejected() {
        FaultClause::new(
            "bad",
            FaultTrigger::EveryNth { n: 3, phase: 3 },
            FaultAction::Crash,
        );
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn bad_probability_rejected() {
        FaultClause::new(
            "bad",
            FaultTrigger::Probabilistic {
                p: 1.5,
                stream: "s".into(),
            },
            FaultAction::Crash,
        );
    }

    #[test]
    #[should_panic(expected = "flap period")]
    fn zero_flap_period_rejected() {
        FaultClause::new(
            "bad",
            FaultTrigger::DemandWindow { from: 0, to: 1 },
            FaultAction::Flap { period: 0 },
        );
    }

    #[test]
    fn kind_labels_are_stable() {
        let kinds: Vec<&str> = [
            FaultAction::Crash,
            FaultAction::Hang { delay_secs: 1.0 },
            FaultAction::WrongValue { evident: true },
            FaultAction::WrongValue { evident: false },
            FaultAction::LatencySpike { extra_secs: 0.5 },
            FaultAction::TimeoutBoundary {
                timeout_secs: 2.0,
                margin_secs: 0.1,
            },
            FaultAction::DropResponse,
            FaultAction::DuplicateRequest,
            FaultAction::CorruptMessage,
            FaultAction::Flap { period: 10 },
        ]
        .iter()
        .map(FaultAction::kind)
        .collect();
        assert_eq!(
            kinds,
            [
                "crash",
                "hang",
                "wrong-evident",
                "wrong-non-evident",
                "latency-spike",
                "timeout-boundary",
                "drop",
                "duplicate",
                "corrupt",
                "flap"
            ]
        );
    }

    #[test]
    fn scenario_builder_shares_coincident_clauses() {
        let clause = FaultClause::new(
            "burst",
            FaultTrigger::Probabilistic {
                p: 0.1,
                stream: "burst".into(),
            },
            FaultAction::Crash,
        );
        let scenario = FaultScenario::new("s")
            .old_clause(FaultClause::new(
                "old-only",
                FaultTrigger::EveryNth { n: 5, phase: 0 },
                FaultAction::WrongValue { evident: true },
            ))
            .coincident(clause.clone());
        assert_eq!(scenario.old.len(), 2);
        assert_eq!(scenario.new.len(), 1);
        assert_eq!(scenario.new.clauses()[0], clause);
        assert_eq!(scenario.old.clauses()[1], clause);
    }

    #[test]
    fn fleet_scenario_targets_releases_and_shares_coincident_clauses() {
        let burst = FaultClause::new(
            "burst",
            FaultTrigger::Probabilistic {
                p: 0.05,
                stream: "burst".into(),
            },
            FaultAction::Crash,
        );
        let scenario = FleetFaultScenario::new("fleet", 3)
            .release_clause(
                2,
                FaultClause::new(
                    "canary-only",
                    FaultTrigger::DemandWindow { from: 10, to: 20 },
                    FaultAction::WrongValue { evident: true },
                ),
            )
            .coincident(burst.clone());
        assert_eq!(scenario.releases(), 3);
        assert_eq!(scenario.plans[0].len(), 1);
        assert_eq!(scenario.plans[1].len(), 1);
        assert_eq!(scenario.plans[2].len(), 2);
        for plan in &scenario.plans {
            assert_eq!(plan.clauses().last().unwrap(), &burst);
        }
    }
}
