//! The [`FaultInjector`] endpoint wrapper.
//!
//! Follows the same composable-wrapper pattern as
//! [`TransportLink`](wsu_wstack::transport::TransportLink) and
//! [`RetryingEndpoint`](wsu_wstack::RetryingEndpoint): the injector *is*
//! a [`ServiceEndpoint`], so it can sit anywhere in an endpoint stack —
//! between the middleware and a release, or around a transport link.
//!
//! All randomness comes from per-clause
//! [`MasterSeed`](wsu_simcore::rng::MasterSeed) streams derived at
//! construction, so a run is reproducible bit for bit and two injectors
//! sharing a probabilistic stream name fire coincidentally.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use wsu_obs::{CounterId, Recorder, SharedRecorder, SharedRegistry, TraceEvent};
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_simcore::time::SimDuration;
use wsu_wstack::endpoint::{Invocation, ServiceEndpoint};
use wsu_wstack::message::{Envelope, Fault, FaultCode};
use wsu_wstack::outcome::ResponseClass;

use crate::plan::{FaultAction, FaultClause, FaultPlan, FaultTrigger};

/// An execution time no middleware timeout will ever accept — the same
/// "response never arrives" sentinel the transport layer uses (about one
/// year of virtual time).
const NEVER_SECS: f64 = 3.15e7;

#[derive(Debug, Default)]
struct TallyInner {
    by_kind: BTreeMap<&'static str, u64>,
    by_clause: Vec<u64>,
    total: u64,
}

/// A cloneable handle onto an injector's running counts, usable after
/// the injector itself has been moved into a middleware.
#[derive(Debug, Clone, Default)]
pub struct InjectionTally {
    inner: Rc<RefCell<TallyInner>>,
}

impl InjectionTally {
    fn new(clauses: usize) -> InjectionTally {
        InjectionTally {
            inner: Rc::new(RefCell::new(TallyInner {
                by_kind: BTreeMap::new(),
                by_clause: vec![0; clauses],
                total: 0,
            })),
        }
    }

    fn bump(&self, clause: usize, kind: &'static str) {
        let mut inner = self.inner.borrow_mut();
        *inner.by_kind.entry(kind).or_insert(0) += 1;
        inner.by_clause[clause] += 1;
        inner.total += 1;
    }

    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.inner.borrow().total
    }

    /// Per-kind injection counts, sorted by kind label.
    pub fn by_kind(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .borrow()
            .by_kind
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Faults injected by the clause at `index` (plan order).
    pub fn fired(&self, index: usize) -> u64 {
        self.inner
            .borrow()
            .by_clause
            .get(index)
            .copied()
            .unwrap_or(0)
    }
}

/// One armed clause: the plan clause plus its private random stream.
#[derive(Debug)]
struct ArmedClause {
    clause: FaultClause,
    rng: Option<StreamRng>,
}

/// A fault-injecting wrapper around any [`ServiceEndpoint`].
///
/// # Example
///
/// ```
/// use wsu_faults::inject::FaultInjector;
/// use wsu_faults::plan::{FaultAction, FaultClause, FaultPlan, FaultTrigger};
/// use wsu_simcore::rng::MasterSeed;
/// use wsu_wstack::endpoint::{ServiceEndpoint, SyntheticService};
/// use wsu_wstack::message::Envelope;
/// use wsu_wstack::outcome::ResponseClass;
///
/// let plan = FaultPlan::new().with_clause(FaultClause::new(
///     "early-crash",
///     FaultTrigger::DemandWindow { from: 0, to: 2 },
///     FaultAction::Crash,
/// ));
/// let svc = SyntheticService::builder("S", "1.0").build();
/// let mut inj = FaultInjector::new(svc, plan, MasterSeed::new(7));
/// let mut rng = MasterSeed::new(7).stream("demo");
/// let first = inj.invoke(&Envelope::request("invoke"), &mut rng);
/// assert!(first.exec_time.as_secs() > 1e6); // crashed: never answers
/// let _ = inj.invoke(&Envelope::request("invoke"), &mut rng);
/// let third = inj.invoke(&Envelope::request("invoke"), &mut rng);
/// assert_eq!(third.class, ResponseClass::Correct); // window over
/// assert_eq!(inj.tally().total(), 2);
/// ```
pub struct FaultInjector<S> {
    endpoint: S,
    release: String,
    clauses: Vec<ArmedClause>,
    index: u64,
    virtual_time: f64,
    tally: InjectionTally,
    recorder: Option<SharedRecorder>,
    metrics: Option<SharedRegistry>,
    /// Resolved `wsu_fault_injected_total{kind,release}` ids, one per
    /// distinct kind seen, so repeat injections don't re-render labels.
    injected_ids: Vec<(&'static str, CounterId)>,
}

impl<S: ServiceEndpoint> FaultInjector<S> {
    /// Arms `plan` around `endpoint`. Probabilistic clauses draw from
    /// `seed.stream(stream_name)` — share or separate the stream names
    /// to correlate or decorrelate injectors built from the same seed.
    pub fn new(endpoint: S, plan: FaultPlan, seed: MasterSeed) -> FaultInjector<S> {
        let release = endpoint.describe().release().to_owned();
        let clauses: Vec<ArmedClause> = plan
            .clauses()
            .iter()
            .map(|clause| ArmedClause {
                rng: match &clause.trigger {
                    FaultTrigger::Probabilistic { stream, .. } => Some(seed.stream(stream)),
                    _ => None,
                },
                clause: clause.clone(),
            })
            .collect();
        let tally = InjectionTally::new(clauses.len());
        FaultInjector {
            endpoint,
            release,
            clauses,
            index: 0,
            virtual_time: 0.0,
            tally,
            recorder: None,
            metrics: None,
            injected_ids: Vec::new(),
        }
    }

    /// Emits a [`TraceEvent::FaultInjected`] per injection (builder).
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Counts injections into `wsu_fault_injected_total{kind,release}`
    /// (builder).
    pub fn with_metrics(mut self, metrics: SharedRegistry) -> Self {
        self.metrics = Some(metrics);
        self.injected_ids.clear();
        self
    }

    /// A handle onto the injection counts that stays readable after the
    /// injector is moved into a middleware.
    pub fn tally(&self) -> InjectionTally {
        self.tally.clone()
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.tally.total()
    }

    /// Demands seen so far (the injector-local index).
    pub fn demands_seen(&self) -> u64 {
        self.index
    }

    /// The injector's current virtual-time clock, in seconds.
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }

    /// Access to the wrapped endpoint.
    pub fn endpoint(&self) -> &S {
        &self.endpoint
    }

    /// Mutable access to the wrapped endpoint.
    pub fn endpoint_mut(&mut self) -> &mut S {
        &mut self.endpoint
    }

    /// Unwraps the injector, returning the endpoint.
    pub fn into_inner(self) -> S {
        self.endpoint
    }

    /// Evaluates every clause's trigger for the demand at `index`,
    /// returning the first match. Every probabilistic clause draws
    /// exactly once per demand — matched or not — so each clause's
    /// firing pattern depends only on its own stream and the demand
    /// index, never on the other clauses.
    fn matched_clause(&mut self, index: u64) -> Option<usize> {
        let now = self.virtual_time;
        let mut matched = None;
        for (i, armed) in self.clauses.iter_mut().enumerate() {
            let hit = match &armed.clause.trigger {
                FaultTrigger::DemandWindow { from, to } => index >= *from && index < *to,
                FaultTrigger::TimeWindow { from_secs, to_secs } => {
                    now >= *from_secs && now < *to_secs
                }
                FaultTrigger::EveryNth { n, phase } => index % *n == *phase,
                FaultTrigger::Probabilistic { p, .. } => armed
                    .rng
                    .as_mut()
                    .expect("probabilistic clause armed")
                    .bernoulli(*p),
            };
            if hit && matched.is_none() {
                matched = Some(i);
            }
        }
        matched
    }

    /// A response that never reaches the consumer: ground-truth `class`,
    /// an execution time beyond any timeout and a fault envelope.
    fn never_arrives(operation: &str, class: ResponseClass, reason: &str) -> Invocation {
        let mut invocation =
            Invocation::from_class(operation, class, SimDuration::from_secs(NEVER_SECS));
        invocation.response = std::rc::Rc::new(Envelope::fault(
            operation,
            Fault::new(FaultCode::Timeout, reason),
        ));
        invocation
    }

    fn record_injection(&mut self, clause_index: usize, kind: &'static str, demand: u64) {
        self.tally.bump(clause_index, kind);
        if let Some(metrics) = &self.metrics {
            let id = match self.injected_ids.iter().find(|(k, _)| *k == kind) {
                Some(&(_, id)) => id,
                None => {
                    let id = metrics.counter_id(
                        "wsu_fault_injected_total",
                        &[("kind", kind), ("release", &self.release)],
                    );
                    self.injected_ids.push((kind, id));
                    id
                }
            };
            metrics.inc_counter_id(id);
        }
        if let Some(recorder) = &self.recorder {
            recorder.clone().record(TraceEvent::FaultInjected {
                t: self.virtual_time,
                demand,
                release: self.release.clone(),
                clause: self.clauses[clause_index].clause.name.clone(),
                kind: kind.to_string(),
            });
        }
    }
}

impl<S: ServiceEndpoint> ServiceEndpoint for FaultInjector<S> {
    fn describe(&self) -> &wsu_wstack::wsdl::ServiceDescription {
        self.endpoint.describe()
    }

    fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> Invocation {
        let index = self.index;
        self.index += 1;
        let demand = index + 1;
        let Some(i) = self.matched_clause(index) else {
            return self.endpoint.invoke(request, rng);
        };
        let action = self.clauses[i].clause.action.clone();
        let op = request.operation().to_owned();
        let invocation = match &action {
            FaultAction::Crash => {
                // Down: the request is never served.
                Self::never_arrives(&op, ResponseClass::EvidentFailure, "endpoint crashed")
            }
            FaultAction::Hang { delay_secs } => {
                let mut inv = self.endpoint.invoke(request, rng);
                inv.exec_time += SimDuration::from_secs(*delay_secs);
                inv
            }
            FaultAction::WrongValue { evident } => {
                let inner = self.endpoint.invoke(request, rng);
                let class = if *evident {
                    ResponseClass::EvidentFailure
                } else {
                    ResponseClass::NonEvidentFailure
                };
                Invocation::from_class(&op, class, inner.exec_time)
            }
            FaultAction::LatencySpike { extra_secs } => {
                let mut inv = self.endpoint.invoke(request, rng);
                inv.exec_time += SimDuration::from_secs(*extra_secs);
                inv
            }
            FaultAction::TimeoutBoundary {
                timeout_secs,
                margin_secs,
            } => {
                let mut inv = self.endpoint.invoke(request, rng);
                inv.exec_time = SimDuration::from_secs(timeout_secs + margin_secs);
                inv
            }
            FaultAction::DropResponse => {
                // The service executed — its ground-truth class is
                // preserved — but the response is lost on the way back.
                let inner = self.endpoint.invoke(request, rng);
                Self::never_arrives(&op, inner.class, "response dropped in transit")
            }
            FaultAction::DuplicateRequest => {
                // The request is delivered twice; the first response is
                // used and the duplicate's discarded.
                let first = self.endpoint.invoke(request, rng);
                let _duplicate = self.endpoint.invoke(request, rng);
                first
            }
            FaultAction::CorruptMessage => {
                let inner = self.endpoint.invoke(request, rng);
                let mut inv =
                    Invocation::from_class(&op, ResponseClass::EvidentFailure, inner.exec_time);
                inv.response = std::rc::Rc::new(Envelope::fault(
                    &op,
                    Fault::new(FaultCode::Sender, "message corrupted in transit"),
                ));
                inv
            }
            FaultAction::Flap { period } => {
                if (index / period) % 2 == 1 {
                    Self::never_arrives(&op, ResponseClass::EvidentFailure, "release flapped down")
                } else {
                    // Up phase: unperturbed, and not counted as injected.
                    return self.endpoint.invoke(request, rng);
                }
            }
        };
        self.record_injection(i, action.kind(), demand);
        invocation
    }

    fn advance_clock(&mut self, now_secs: f64) {
        self.virtual_time = now_secs;
        self.endpoint.advance_clock(now_secs);
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for FaultInjector<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("endpoint", &self.endpoint)
            .field("clauses", &self.clauses.len())
            .field("demands_seen", &self.index)
            .field("injected", &self.tally.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_wstack::endpoint::SyntheticService;

    const SEED: MasterSeed = MasterSeed::new(0xFA_0175);

    fn service() -> SyntheticService {
        SyntheticService::builder("S", "1.0")
            .exec_time(wsu_simcore::dist::DelayModel::constant(0.5))
            .build()
    }

    fn drive(injector: &mut FaultInjector<SyntheticService>, n: u64) -> Vec<Invocation> {
        let mut rng = SEED.stream("drive");
        let req = Envelope::request("invoke");
        (0..n).map(|_| injector.invoke(&req, &mut rng)).collect()
    }

    fn one_clause(trigger: FaultTrigger, action: FaultAction) -> FaultPlan {
        FaultPlan::new().with_clause(FaultClause::new("c", trigger, action))
    }

    #[test]
    fn crash_window_counts_exactly() {
        let plan = one_clause(
            FaultTrigger::DemandWindow { from: 3, to: 7 },
            FaultAction::Crash,
        );
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let invs = drive(&mut inj, 10);
        assert_eq!(inj.injected(), 4);
        for (i, inv) in invs.iter().enumerate() {
            let crashed = (3..7).contains(&i);
            assert_eq!(inv.exec_time.as_secs() > 1e6, crashed, "demand {i}");
            if crashed {
                assert!(inv.response.is_fault());
            }
        }
    }

    #[test]
    fn wrong_values_keep_inner_timing() {
        let plan = one_clause(
            FaultTrigger::EveryNth { n: 2, phase: 0 },
            FaultAction::WrongValue { evident: false },
        );
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let invs = drive(&mut inj, 4);
        assert_eq!(invs[0].class, ResponseClass::NonEvidentFailure);
        assert!(!invs[0].response.is_fault(), "NER looks valid on the wire");
        assert_eq!(invs[0].exec_time.as_secs(), 0.5);
        assert_eq!(invs[1].class, ResponseClass::Correct);
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn timeout_boundary_lands_just_past_the_timeout() {
        let plan = one_clause(
            FaultTrigger::DemandWindow { from: 0, to: 1 },
            FaultAction::TimeoutBoundary {
                timeout_secs: 2.0,
                margin_secs: 0.05,
            },
        );
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let invs = drive(&mut inj, 1);
        assert!((invs[0].exec_time.as_secs() - 2.05).abs() < 1e-12);
        assert_eq!(invs[0].class, ResponseClass::Correct);
    }

    #[test]
    fn latency_spike_and_hang_add_delay() {
        for (action, extra) in [
            (FaultAction::LatencySpike { extra_secs: 1.25 }, 1.25),
            (FaultAction::Hang { delay_secs: 30.0 }, 30.0),
        ] {
            let plan = one_clause(FaultTrigger::DemandWindow { from: 0, to: 1 }, action);
            let mut inj = FaultInjector::new(service(), plan, SEED);
            let invs = drive(&mut inj, 1);
            assert!((invs[0].exec_time.as_secs() - (0.5 + extra)).abs() < 1e-12);
        }
    }

    #[test]
    fn drop_preserves_ground_truth_class() {
        let plan = one_clause(
            FaultTrigger::DemandWindow { from: 0, to: 1 },
            FaultAction::DropResponse,
        );
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let invs = drive(&mut inj, 1);
        // The service executed correctly; the consumer never learns.
        assert_eq!(invs[0].class, ResponseClass::Correct);
        assert!(invs[0].exec_time.as_secs() > 1e6);
        assert!(invs[0].response.is_fault());
        assert_eq!(inj.endpoint().invocations(), 1);
    }

    #[test]
    fn duplicate_executes_inner_twice() {
        let plan = one_clause(
            FaultTrigger::DemandWindow { from: 0, to: 1 },
            FaultAction::DuplicateRequest,
        );
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let invs = drive(&mut inj, 3);
        assert_eq!(inj.endpoint().invocations(), 4); // 1 duplicated + 2 normal
        assert_eq!(invs[0].class, ResponseClass::Correct);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn corrupt_becomes_evident_failure() {
        let plan = one_clause(
            FaultTrigger::DemandWindow { from: 0, to: 1 },
            FaultAction::CorruptMessage,
        );
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let invs = drive(&mut inj, 1);
        assert_eq!(invs[0].class, ResponseClass::EvidentFailure);
        assert!(invs[0].response.is_fault());
        assert_eq!(invs[0].exec_time.as_secs(), 0.5);
    }

    #[test]
    fn flap_alternates_phases() {
        let plan = one_clause(
            FaultTrigger::DemandWindow { from: 0, to: 40 },
            FaultAction::Flap { period: 10 },
        );
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let invs = drive(&mut inj, 40);
        for (i, inv) in invs.iter().enumerate() {
            let down = (i / 10) % 2 == 1;
            assert_eq!(inv.exec_time.as_secs() > 1e6, down, "demand {i}");
        }
        assert_eq!(inj.injected(), 20); // only down phases count
    }

    #[test]
    fn time_window_follows_the_clock() {
        let plan = one_clause(
            FaultTrigger::TimeWindow {
                from_secs: 10.0,
                to_secs: 20.0,
            },
            FaultAction::Crash,
        );
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let mut rng = SEED.stream("clock");
        let req = Envelope::request("invoke");
        for (now, expect_crash) in [(0.0, false), (10.0, true), (19.9, true), (20.0, false)] {
            inj.advance_clock(now);
            let inv = inj.invoke(&req, &mut rng);
            assert_eq!(inv.exec_time.as_secs() > 1e6, expect_crash, "t={now}");
        }
        assert_eq!(inj.virtual_time(), 20.0);
    }

    #[test]
    fn first_matching_clause_wins() {
        let plan = FaultPlan::new()
            .with_clause(FaultClause::new(
                "first",
                FaultTrigger::DemandWindow { from: 0, to: 5 },
                FaultAction::WrongValue { evident: true },
            ))
            .with_clause(FaultClause::new(
                "second",
                FaultTrigger::DemandWindow { from: 0, to: 10 },
                FaultAction::Crash,
            ));
        let mut inj = FaultInjector::new(service(), plan, SEED);
        let tally = inj.tally();
        drive(&mut inj, 10);
        assert_eq!(tally.fired(0), 5);
        assert_eq!(tally.fired(1), 5);
        assert_eq!(tally.total(), 10);
        assert_eq!(tally.by_kind(), vec![("crash", 5), ("wrong-evident", 5)]);
    }

    #[test]
    fn obs_hooks_record_injections() {
        let recorder = SharedRecorder::new();
        let registry = SharedRegistry::new();
        let plan = one_clause(
            FaultTrigger::DemandWindow { from: 1, to: 3 },
            FaultAction::Crash,
        );
        let mut inj = FaultInjector::new(service(), plan, SEED)
            .with_recorder(recorder.clone())
            .with_metrics(registry.clone());
        inj.advance_clock(4.5);
        drive(&mut inj, 3);
        let events = recorder.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "FaultInjected");
        assert_eq!(events[0].demand(), 2);
        assert_eq!(events[0].virtual_time(), 4.5);
        let json = events[0].to_json();
        assert!(json.contains("\"kind\":\"FaultInjected\""), "{json}");
        assert!(json.contains("\"fault\":\"crash\""), "{json}");
        registry.with(|r| {
            assert_eq!(
                r.counter(
                    "wsu_fault_injected_total",
                    &[("kind", "crash"), ("release", "1.0")]
                ),
                2
            );
        });
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut plain = service();
        let mut inj = FaultInjector::new(service(), FaultPlan::new(), SEED);
        let req = Envelope::request("invoke");
        let mut rng_a = SEED.stream("x");
        let mut rng_b = SEED.stream("x");
        for _ in 0..20 {
            assert_eq!(plain.invoke(&req, &mut rng_a), inj.invoke(&req, &mut rng_b));
        }
        assert_eq!(inj.injected(), 0);
        assert_eq!(inj.demands_seen(), 20);
        assert_eq!(inj.describe().service(), "S");
    }

    #[test]
    fn accessors_and_debug() {
        let inj = FaultInjector::new(service(), FaultPlan::new(), SEED);
        assert_eq!(inj.endpoint().describe().release(), "1.0");
        let mut inj = inj;
        let _ = inj.endpoint_mut();
        assert!(format!("{inj:?}").contains("FaultInjector"));
        let svc = inj.into_inner();
        assert_eq!(svc.describe().service(), "S");
    }
}
