//! Deterministic, seed-driven fault injection for the managed-upgrade
//! middleware.
//!
//! A [`FaultPlan`](plan::FaultPlan) is an ordered list of
//! [`FaultClause`](plan::FaultClause)s — each a *trigger* (demand-index
//! window, virtual-time window, every-Nth, or probabilistic with its own
//! seed stream) paired with an *action* (crash, hang, wrong values,
//! latency spikes, timeout-boundary delays, transport drop/duplicate/
//! corrupt, flapping). The [`FaultInjector`](inject::FaultInjector)
//! wrapper arms a plan around any
//! [`ServiceEndpoint`](wsu_wstack::endpoint::ServiceEndpoint), so the
//! injected ground truth flows through the middleware's monitoring
//! subsystem into the detection audit unchanged.
//!
//! Every random decision derives from a named
//! [`MasterSeed`](wsu_simcore::rng::MasterSeed) stream, so campaigns are
//! reproducible bit for bit and probabilistic clauses on two releases
//! can share a stream to model coincident faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod plan;

pub use inject::{FaultInjector, InjectionTally};
pub use plan::{
    FaultAction, FaultClause, FaultPlan, FaultScenario, FaultTrigger, FleetFaultScenario,
};
