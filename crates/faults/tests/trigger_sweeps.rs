//! Seeded-sweep property tests for the fault-plan triggers.
//!
//! In the deterministic-sweep style the repo's property tests use, each
//! claim is checked across 32 derived seeds: injected-fault counts must
//! match the closed-form expectations of
//! [`FaultTrigger::expected_fires`], disjoint clauses must never
//! overlap, and probabilistic clauses must be exactly reproducible from
//! their stream name.

use wsu_faults::{FaultAction, FaultClause, FaultInjector, FaultPlan, FaultTrigger};
use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::MasterSeed;
use wsu_wstack::endpoint::{Invocation, ServiceEndpoint, SyntheticService};
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::ResponseClass;

const SWEEP: MasterSeed = MasterSeed::new(0x7319_5EED);
const SEEDS: u64 = 32;
const DEMANDS: u64 = 2_000;

fn seeds() -> impl Iterator<Item = MasterSeed> {
    (0..SEEDS).map(|i| {
        let mut rng = SWEEP.indexed_stream("trigger-sweep", i);
        MasterSeed::new(rng.next_u64())
    })
}

fn always_correct() -> SyntheticService {
    SyntheticService::builder("S", "1.0")
        .exec_time(DelayModel::constant(0.25))
        .build()
}

/// Runs `plan` for [`DEMANDS`] demands and returns the invocations.
fn run_plan(
    plan: FaultPlan,
    seed: MasterSeed,
) -> (FaultInjector<SyntheticService>, Vec<Invocation>) {
    let mut injector = FaultInjector::new(always_correct(), plan, seed);
    let mut rng = seed.stream("sweep/demands");
    let request = Envelope::request("invoke");
    let invocations = (0..DEMANDS)
        .map(|_| injector.invoke(&request, &mut rng))
        .collect();
    (injector, invocations)
}

#[test]
fn window_counts_match_closed_form_across_seeds() {
    for seed in seeds() {
        // Window bounds vary per seed but stay inside the run.
        let mut pick = seed.stream("window-bounds");
        let from = pick.next_below(DEMANDS / 2);
        let to = from + 1 + pick.next_below(DEMANDS / 2);
        let trigger = FaultTrigger::DemandWindow { from, to };
        let expected = trigger.expected_fires(DEMANDS).unwrap();
        let plan = FaultPlan::new().with_clause(FaultClause::new("w", trigger, FaultAction::Crash));
        let (injector, _) = run_plan(plan, seed);
        assert_eq!(injector.injected() as f64, expected, "window [{from},{to})");
    }
}

#[test]
fn every_nth_counts_match_closed_form_across_seeds() {
    for seed in seeds() {
        let mut pick = seed.stream("nth-params");
        let n = 2 + pick.next_below(30);
        let phase = pick.next_below(n);
        let trigger = FaultTrigger::EveryNth { n, phase };
        let expected = trigger.expected_fires(DEMANDS).unwrap();
        let plan = FaultPlan::new().with_clause(FaultClause::new(
            "nth",
            trigger,
            FaultAction::WrongValue { evident: true },
        ));
        let (injector, invocations) = run_plan(plan, seed);
        assert_eq!(
            injector.injected() as f64,
            expected,
            "every {n} phase {phase}"
        );
        // And the firing pattern is exactly i % n == phase.
        for (i, inv) in invocations.iter().enumerate() {
            let fired = inv.class == ResponseClass::EvidentFailure;
            assert_eq!(
                fired,
                i as u64 % n == phase,
                "demand {i}, n={n}, phase={phase}"
            );
        }
    }
}

#[test]
fn probabilistic_counts_track_expectation_across_seeds() {
    let p = 0.1;
    let mut total = 0u64;
    for seed in seeds() {
        let trigger = FaultTrigger::Probabilistic {
            p,
            stream: "sweep/p".into(),
        };
        let expected = trigger.expected_fires(DEMANDS).unwrap();
        let plan = FaultPlan::new().with_clause(FaultClause::new("p", trigger, FaultAction::Crash));
        let (injector, _) = run_plan(plan, seed);
        let count = injector.injected();
        total += count;
        // Per-seed: within 5 standard deviations of the binomial mean.
        let sd = (DEMANDS as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (count as f64 - expected).abs() < 5.0 * sd,
            "count {count} vs expected {expected} (sd {sd})"
        );
    }
    // Aggregated over all 32 seeds the average is much tighter.
    let mean = total as f64 / SEEDS as f64;
    let expected = p * DEMANDS as f64;
    assert!((mean - expected).abs() < expected * 0.05, "mean {mean}");
}

#[test]
fn probabilistic_clause_is_reproducible_from_its_stream() {
    for seed in seeds() {
        let make_plan = || {
            FaultPlan::new().with_clause(FaultClause::new(
                "p",
                FaultTrigger::Probabilistic {
                    p: 0.2,
                    stream: "sweep/repro".into(),
                },
                FaultAction::Crash,
            ))
        };
        let (_, first) = run_plan(make_plan(), seed);
        let (_, second) = run_plan(make_plan(), seed);
        assert_eq!(first, second, "same seed and stream must replay exactly");
    }
}

#[test]
fn shared_stream_clauses_fire_coincidentally() {
    // Two injectors armed from the same seed with the same stream name
    // model correlated faults: they crash on exactly the same demands.
    // Distinct stream names decorrelate them.
    for seed in seeds() {
        let clause = |stream: &str| {
            FaultPlan::new().with_clause(FaultClause::new(
                "corr",
                FaultTrigger::Probabilistic {
                    p: 0.15,
                    stream: stream.into(),
                },
                FaultAction::Crash,
            ))
        };
        let (_, old) = run_plan(clause("burst"), seed);
        let (_, new) = run_plan(clause("burst"), seed);
        let (_, other) = run_plan(clause("solo"), seed);
        let crashes = |invs: &[Invocation]| -> Vec<bool> {
            invs.iter().map(|i| i.exec_time.as_secs() > 1e6).collect()
        };
        assert_eq!(crashes(&old), crashes(&new), "shared stream must coincide");
        assert_ne!(crashes(&old), crashes(&other), "distinct streams must not");
    }
}

#[test]
fn disjoint_clauses_never_overlap() {
    // Three disjoint window/every-Nth clauses with distinguishable
    // actions: per-clause counts are exactly their closed forms and sum
    // to the total, proving no demand matched two clauses.
    for seed in seeds() {
        let w1 = FaultTrigger::DemandWindow { from: 100, to: 300 };
        let w2 = FaultTrigger::DemandWindow { from: 500, to: 650 };
        // Fires where i % 4 == 1; windows starting at even offsets with
        // even lengths contain such demands, so guard by disjoint ranges
        // instead: restrict the nth clause to a plan position after the
        // windows (first match wins; overlap would siphon its count).
        let nth = FaultTrigger::EveryNth { n: 400, phase: 399 };
        let expected: f64 = [&w1, &w2, &nth]
            .iter()
            .map(|t| t.expected_fires(DEMANDS).unwrap())
            .sum();
        let plan = FaultPlan::new()
            .with_clause(FaultClause::new("w1", w1, FaultAction::Crash))
            .with_clause(FaultClause::new("w2", w2, FaultAction::Crash))
            .with_clause(FaultClause::new("nth", nth, FaultAction::Crash));
        let (injector, _) = run_plan(plan, seed);
        let tally = injector.tally();
        assert_eq!(tally.fired(0), 200);
        assert_eq!(tally.fired(1), 150);
        assert_eq!(tally.fired(2), DEMANDS / 400);
        assert_eq!(tally.total() as f64, expected);
    }
}

#[test]
fn overlapping_clauses_resolve_first_match_without_losing_draws() {
    // A window shadowing a probabilistic clause: the probabilistic
    // clause still consumes one draw per demand, so its firing pattern
    // outside the window is identical to a run without the window.
    for seed in seeds() {
        let prob = || {
            FaultClause::new(
                "p",
                FaultTrigger::Probabilistic {
                    p: 0.3,
                    stream: "shadow".into(),
                },
                FaultAction::WrongValue { evident: true },
            )
        };
        let shadow = FaultClause::new(
            "w",
            FaultTrigger::DemandWindow { from: 0, to: 500 },
            FaultAction::Crash,
        );
        let (_, alone) = run_plan(FaultPlan::new().with_clause(prob()), seed);
        let (_, shadowed) = run_plan(
            FaultPlan::new().with_clause(shadow).with_clause(prob()),
            seed,
        );
        for i in 500..DEMANDS as usize {
            assert_eq!(
                alone[i], shadowed[i],
                "post-window behaviour diverged at demand {i}"
            );
        }
        for (i, inv) in shadowed.iter().take(500).enumerate() {
            assert!(inv.exec_time.as_secs() > 1e6, "window must win at {i}");
        }
    }
}
