//! Asserts the zero-steady-state-allocation contract of the demand
//! loop: a closed-loop simulation — engine, middleware, monitor — with
//! a trace recorder *and* a metrics registry attached (quantile
//! sketches and SLO window included), and a live `/metrics` exporter
//! serving in the background, must not touch the heap once warm.
//!
//! The warm-up phase routes every outcome pattern the measured window
//! replays (all response classes per release, timeouts, every system
//! verdict), so all metric series are resolved, all scratch buffers
//! have grown to size, every calendar-queue bucket has been visited,
//! and the recorder's backing storage is pre-reserved.
//!
//! A counting `#[global_allocator]` wraps the system allocator. The
//! counter is a const-initialised thread-local, so allocations made by
//! the libtest harness threads (which run concurrently with the test
//! thread) never pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use wsu_core::middleware::{MiddlewareConfig, UpgradeMiddleware};
use wsu_core::monitor::MonitoringSubsystem;
use wsu_obs::{http_get, MetricsExporter, SharedRecorder, SharedRegistry, SloConfig};
use wsu_simcore::engine::{Engine, Handler};
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_simcore::time::{SimDuration, SimTime};
use wsu_wstack::endpoint::{PlannedResponse, ScriptedEndpoint};
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::ResponseClass;

thread_local! {
    // `const` initialisation: reading or bumping the counter never
    // allocates, so the allocator hooks cannot recurse.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts an allocation on the current thread. `try_with` tolerates
/// the TLS destructor window during thread teardown.
fn count_allocation() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// plain thread-local increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_allocation();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_allocation();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_allocation();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

const WARMUP: u64 = 200;
const MEASURED: u64 = 1200;
const TIMEOUT_SECS: f64 = 2.0;

/// Deterministic outcome pattern for demand `i`. Every branch fires
/// within the first `WARMUP` demands, so the measured window only
/// replays series and code paths the warm-up has already visited.
fn planned_pair(i: u64) -> ((ResponseClass, f64), (ResponseClass, f64)) {
    use ResponseClass::{Correct, EvidentFailure, NonEvidentFailure};
    if i % 29 == 28 {
        ((Correct, 0.4), (Correct, 9.0)) // release 2 times out
    } else if i % 23 == 22 {
        ((Correct, 0.4), (EvidentFailure, 0.3))
    } else if i % 19 == 18 {
        ((NonEvidentFailure, 0.5), (NonEvidentFailure, 0.6)) // NER verdict
    } else if i % 17 == 16 {
        ((EvidentFailure, 0.3), (EvidentFailure, 0.4)) // ER verdict
    } else if i % 13 == 12 {
        ((Correct, 9.0), (Correct, 9.5)) // both late: unavailable
    } else if i % 11 == 10 {
        ((Correct, 9.0), (Correct, 0.5)) // release 1 times out
    } else if i % 7 == 6 {
        ((Correct, 0.5), (NonEvidentFailure, 0.8)) // random selection
    } else if i % 5 == 4 {
        ((EvidentFailure, 0.3), (Correct, 0.7))
    } else {
        ((Correct, 0.4), (Correct, 0.6))
    }
}

fn planned(class: ResponseClass, secs: f64) -> PlannedResponse {
    PlannedResponse {
        class,
        exec_time: SimDuration::from_secs(secs),
    }
}

/// The closed-loop demand event.
#[derive(Debug)]
struct NextDemand;

struct World {
    middleware: UpgradeMiddleware,
    monitor: MonitoringSubsystem,
    remaining: u64,
    request: Envelope,
    mw_rng: StreamRng,
    mon_rng: StreamRng,
}

impl Handler<NextDemand> for World {
    fn handle(&mut self, engine: &mut Engine<NextDemand>, _event: NextDemand) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.middleware.set_virtual_time(engine.now().as_secs());
        let record = self
            .middleware
            .process(&self.request, &mut self.mw_rng)
            .expect("releases deployed");
        let wait = record.system.response_time;
        self.monitor.observe(&record, &mut self.mon_rng);
        self.middleware.recycle(record);
        if self.remaining > 0 {
            engine.schedule_in(wait, NextDemand);
        }
    }
}

#[test]
fn steady_state_demand_loop_does_not_allocate() {
    let mut rel1 = ScriptedEndpoint::new("Component", "1.0");
    let mut rel2 = ScriptedEndpoint::new("Component", "1.1");
    for i in 0..WARMUP + MEASURED {
        let (a, b) = planned_pair(i);
        rel1.push(planned(a.0, a.1));
        rel2.push(planned(b.0, b.1));
    }

    let mut middleware = UpgradeMiddleware::new(MiddlewareConfig::paper(TIMEOUT_SECS));
    middleware.deploy(rel1);
    middleware.deploy(rel2);
    let recorder = SharedRecorder::new();
    middleware.set_recorder(recorder.clone());
    let registry = SharedRegistry::new();
    let mut monitor = MonitoringSubsystem::new(0);
    monitor.set_metrics(registry.clone());
    // Short windows so the measured run cycles the SLO ring many times:
    // slot reuse must be allocation-free too.
    monitor.configure_slo(SloConfig {
        window_secs: 10.0,
        windows: 16,
        latency_threshold: TIMEOUT_SECS,
    });

    // A live exporter serving on its own thread. Its allocations land on
    // that thread's counter; the demand loop must stay at zero with the
    // server running.
    let exporter = MetricsExporter::bind("127.0.0.1:0").expect("bind exporter");
    exporter.publish_metrics("# warming up\n");

    let seed = MasterSeed::new(97);
    let mut world = World {
        middleware,
        monitor,
        remaining: WARMUP,
        request: Envelope::request("invoke"),
        mw_rng: seed.stream("alloc/middleware"),
        mon_rng: seed.stream("alloc/monitor"),
    };
    let mut engine = Engine::new();
    engine.schedule_at(SimTime::ZERO, NextDemand);
    engine.run(&mut world);
    assert_eq!(world.remaining, 0, "warm-up drained");

    // Room for the measured window's trace events (at most 5 per
    // demand: dispatch, two responses/timeouts, verdict, span).
    recorder.reserve(5 * MEASURED as usize + 16);

    let before = allocation_count();
    world.remaining = MEASURED;
    engine.schedule_in(SimDuration::from_secs(0.1), NextDemand);
    engine.run(&mut world);
    let allocs = allocation_count() - before;

    assert_eq!(world.remaining, 0, "measured window drained");
    assert_eq!(
        allocs, 0,
        "steady-state demand loop allocated {allocs} times over {MEASURED} demands"
    );

    // The loop really did the work it claims to have measured.
    assert_eq!(world.middleware.demands(), WARMUP + MEASURED);
    assert_eq!(world.monitor.demands(), WARMUP + MEASURED);
    assert_eq!(recorder.len(), 5 * (WARMUP + MEASURED) as usize);
    registry.with(|r| {
        assert_eq!(r.counter("wsu_demands_total", &[]), WARMUP + MEASURED);
        assert_eq!(
            r.sketch("wsu_response_time_quantiles", &[])
                .unwrap()
                .count(),
            WARMUP + MEASURED
        );
    });
    let snap = world.monitor.dependability_snapshot();
    assert_eq!(snap.demands, WARMUP + MEASURED);
    assert!(world.monitor.slo().complete_windows() > 0, "{snap:?}");

    // The exporter serves the rendered snapshot byte for byte.
    let rendered = registry.with(|r| r.snapshot());
    exporter.publish_metrics(&rendered);
    exporter.publish_snapshot(&snap.to_json());
    let addr = exporter.local_addr();
    let resp = http_get(addr, "/metrics").expect("GET /metrics");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.body, rendered,
        "served /metrics must match in-process rendering"
    );
    let resp = http_get(addr, "/snapshot").expect("GET /snapshot");
    assert_eq!(resp.body, snap.to_json());
    exporter.shutdown();
}

/// The weighted-fleet demand path must be allocation-free too: routing
/// draws one uniform and walks the pre-computed cumulative-weight
/// table — no per-demand `Vec`, no rebuilt state. Four releases at
/// 40/30/20/10 weights, with timeouts mixed in so both verdict
/// branches replay in the measured window.
#[test]
fn weighted_fleet_demand_loop_does_not_allocate() {
    use wsu_core::modes::OperatingMode;
    use wsu_core::release::ReleaseId;

    const FLEET: usize = 4;
    let mut middleware = UpgradeMiddleware::new(MiddlewareConfig {
        mode: OperatingMode::WeightedFleet,
        ..MiddlewareConfig::paper(TIMEOUT_SECS)
    });
    let weights = [0.4, 0.3, 0.2, 0.1];
    for (index, weight) in weights.iter().enumerate() {
        let mut endpoint = ScriptedEndpoint::new("Component", &format!("1.{index}"));
        for i in 0..WARMUP + MEASURED {
            // Every 13th routed invocation hangs past the timeout, so
            // the unavailable branch is warm before measurement.
            let secs = if i % 13 == 12 { 9.0 } else { 0.4 };
            endpoint.push(planned(ResponseClass::Correct, secs));
        }
        let id = middleware.deploy(endpoint);
        // Weight writes (and the cumulative-table rebuild they trigger)
        // happen before the measured window only.
        middleware
            .releases_mut()
            .set_weight(id, *weight)
            .expect("weight is valid");
    }
    let registry = SharedRegistry::new();
    let mut monitor = MonitoringSubsystem::new(0);
    monitor.set_metrics(registry.clone());

    let seed = MasterSeed::new(98);
    let mut rng = seed.stream("alloc/fleet");
    let mut mon_rng = seed.stream("alloc/fleet-monitor");
    let request = Envelope::request("invoke");
    let mut counts = [0u64; FLEET];
    let mut clock = 0.0;
    let mut run = |middleware: &mut UpgradeMiddleware,
                   monitor: &mut MonitoringSubsystem,
                   counts: &mut [u64; FLEET],
                   clock: &mut f64,
                   demands: u64| {
        for _ in 0..demands {
            middleware.set_virtual_time(*clock);
            let record = middleware
                .process(&request, &mut rng)
                .expect("fleet serves");
            if let Some(source) = record.system.source {
                counts[source.index()] += 1;
            }
            *clock += record.system.response_time.as_secs();
            monitor.observe(&record, &mut mon_rng);
            middleware.recycle(record);
        }
    };
    run(
        &mut middleware,
        &mut monitor,
        &mut counts,
        &mut clock,
        WARMUP,
    );

    let before = allocation_count();
    run(
        &mut middleware,
        &mut monitor,
        &mut counts,
        &mut clock,
        MEASURED,
    );
    let allocs = allocation_count() - before;
    assert_eq!(
        allocs, 0,
        "weighted-fleet demand loop allocated {allocs} times over {MEASURED} demands"
    );

    assert_eq!(middleware.demands(), WARMUP + MEASURED);
    // Every release of the fleet took traffic, heaviest first.
    assert!(counts.iter().all(|&c| c > 0), "counts: {counts:?}");
    assert!(counts[0] > counts[3], "counts: {counts:?}");
    // The cumulative table still matches the configured weights.
    let releases = middleware.releases();
    for (index, weight) in weights.iter().enumerate() {
        assert_eq!(releases.weight(ReleaseId::new(index)), Ok(*weight));
    }
    registry.with(|r| {
        assert_eq!(r.counter("wsu_demands_total", &[]), WARMUP + MEASURED);
    });
}
