//! Property-based tests of the middleware's per-demand invariants under
//! arbitrary release behaviours, modes and timeouts.

use proptest::prelude::*;

use wsu_core::adjudicate::SystemVerdict;
use wsu_core::middleware::{MiddlewareConfig, UpgradeMiddleware};
use wsu_core::modes::{OperatingMode, SequentialOrder};
use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::SimDuration;
use wsu_wstack::endpoint::{PlannedResponse, ScriptedEndpoint};
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::ResponseClass;

fn arb_class() -> impl Strategy<Value = ResponseClass> {
    prop_oneof![
        Just(ResponseClass::Correct),
        Just(ResponseClass::EvidentFailure),
        Just(ResponseClass::NonEvidentFailure),
    ]
}

fn arb_mode() -> impl Strategy<Value = OperatingMode> {
    prop_oneof![
        Just(OperatingMode::ParallelReliability),
        Just(OperatingMode::ParallelResponsiveness),
        (1usize..4).prop_map(|quorum| OperatingMode::ParallelDynamic { quorum }),
        Just(OperatingMode::Sequential {
            order: SequentialOrder::Deployment
        }),
        Just(OperatingMode::Sequential {
            order: SequentialOrder::Random
        }),
    ]
}

proptest! {
    /// Per-demand invariants hold for any pair behaviour, mode and
    /// timeout.
    #[test]
    fn demand_record_invariants(
        class_a in arb_class(),
        class_b in arb_class(),
        time_a in 0.01f64..6.0,
        time_b in 0.01f64..6.0,
        timeout in 0.5f64..4.0,
        mode in arb_mode(),
        seed in any::<u64>(),
    ) {
        let mut config = MiddlewareConfig::paper(timeout);
        config.mode = mode;
        let dt = config.adjudication_delay;
        let mut mw = UpgradeMiddleware::new(config);
        let mut a = ScriptedEndpoint::new("Svc", "1.0");
        a.push(PlannedResponse { class: class_a, exec_time: SimDuration::from_secs(time_a) });
        let mut b = ScriptedEndpoint::new("Svc", "1.1");
        b.push(PlannedResponse { class: class_b, exec_time: SimDuration::from_secs(time_b) });
        mw.deploy(a);
        mw.deploy(b);

        let mut rng = StreamRng::from_seed(seed);
        let record = mw.process(&Envelope::request("invoke"), &mut rng).unwrap();

        // Responders equals the within-timeout observations.
        let within = record.per_release.iter().filter(|o| o.within_timeout).count();
        if mode == OperatingMode::ParallelReliability {
            prop_assert_eq!(record.system.responders, within);
        } else {
            prop_assert!(record.system.responders <= within.max(record.per_release.len()));
        }

        // Verdict consistency with the observations.
        match record.system.verdict {
            SystemVerdict::Unavailable => {
                prop_assert_eq!(within, 0, "unavailable despite responses");
            }
            SystemVerdict::Response(class) => {
                if class.is_valid() {
                    prop_assert!(
                        record
                            .per_release
                            .iter()
                            .any(|o| o.within_timeout && o.class == class),
                        "forwarded class {class:?} nobody produced"
                    );
                }
            }
        }

        // Source, when present, points at an invoked release with the
        // forwarded class.
        if let (SystemVerdict::Response(class), Some(source)) =
            (record.system.verdict, record.system.source)
        {
            prop_assert!(record
                .per_release
                .iter()
                .any(|o| o.release == source && o.class == class));
        }

        // Timing bounds: parallel modes answer within timeout + dT; the
        // sequential mode within (#attempts * timeout) + dT.
        let bound = match mode {
            OperatingMode::Sequential { .. } => {
                timeout * record.per_release.len() as f64 + dt.as_secs()
            }
            _ => timeout + dt.as_secs(),
        };
        prop_assert!(
            record.system.response_time.as_secs() <= bound + 1e-9,
            "response time {} exceeds bound {bound}",
            record.system.response_time.as_secs()
        );
        // And it always includes the adjudication delay.
        prop_assert!(record.system.response_time >= dt);
    }

    /// Sequential mode never invokes a second release after a valid
    /// first response.
    #[test]
    fn sequential_short_circuits(
        class_b in arb_class(),
        seed in any::<u64>(),
    ) {
        let mut config = MiddlewareConfig::paper(2.0);
        config.mode = OperatingMode::Sequential { order: SequentialOrder::Deployment };
        let mut mw = UpgradeMiddleware::new(config);
        let mut a = ScriptedEndpoint::new("Svc", "1.0");
        a.push(PlannedResponse {
            class: ResponseClass::Correct,
            exec_time: SimDuration::from_secs(0.5),
        });
        let mut b = ScriptedEndpoint::new("Svc", "1.1");
        b.push(PlannedResponse { class: class_b, exec_time: SimDuration::from_secs(0.5) });
        mw.deploy(a);
        mw.deploy(b);
        let mut rng = StreamRng::from_seed(seed);
        let record = mw.process(&Envelope::request("invoke"), &mut rng).unwrap();
        prop_assert_eq!(record.per_release.len(), 1);
        prop_assert!(record.system.verdict.is_correct());
    }

    /// Processing is deterministic in (inputs, seed) for every mode.
    #[test]
    fn processing_is_deterministic(
        class_a in arb_class(),
        class_b in arb_class(),
        mode in arb_mode(),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut config = MiddlewareConfig::paper(2.0);
            config.mode = mode;
            let mut mw = UpgradeMiddleware::new(config);
            let mut a = ScriptedEndpoint::new("Svc", "1.0");
            a.push(PlannedResponse {
                class: class_a,
                exec_time: SimDuration::from_secs(0.4),
            });
            let mut b = ScriptedEndpoint::new("Svc", "1.1");
            b.push(PlannedResponse {
                class: class_b,
                exec_time: SimDuration::from_secs(0.6),
            });
            mw.deploy(a);
            mw.deploy(b);
            let mut rng = StreamRng::from_seed(seed);
            mw.process(&Envelope::request("invoke"), &mut rng).unwrap()
        };
        prop_assert_eq!(run(), run());
    }
}
