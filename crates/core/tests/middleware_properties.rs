//! Property-style tests of the middleware's per-demand invariants under
//! arbitrary release behaviours, modes and timeouts.
//!
//! Originally written with `proptest`; rewritten as deterministic
//! seeded-loop checks (no external dev-dependencies — see the note in
//! `crates/simcore/tests/properties.rs`).

use wsu_core::adjudicate::SystemVerdict;
use wsu_core::middleware::{MiddlewareConfig, UpgradeMiddleware};
use wsu_core::modes::{OperatingMode, SequentialOrder};
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_simcore::time::SimDuration;
use wsu_wstack::endpoint::{PlannedResponse, ScriptedEndpoint};
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::ResponseClass;

fn rng_for(test: &str) -> StreamRng {
    MasterSeed::new(0x4D_49_44_44_4C_45_50_52).stream(test)
}

fn f64_in(rng: &mut StreamRng, lo: f64, hi: f64) -> f64 {
    let unit = rng.next_u64() as f64 / u64::MAX as f64;
    lo + unit * (hi - lo)
}

fn arb_class(rng: &mut StreamRng) -> ResponseClass {
    match rng.next_below(3) {
        0 => ResponseClass::Correct,
        1 => ResponseClass::EvidentFailure,
        _ => ResponseClass::NonEvidentFailure,
    }
}

fn arb_mode(rng: &mut StreamRng) -> OperatingMode {
    match rng.next_below(5) {
        0 => OperatingMode::ParallelReliability,
        1 => OperatingMode::ParallelResponsiveness,
        2 => OperatingMode::ParallelDynamic {
            quorum: 1 + rng.next_below(3) as usize,
        },
        3 => OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        },
        _ => OperatingMode::Sequential {
            order: SequentialOrder::Random,
        },
    }
}

/// Per-demand invariants hold for any pair behaviour, mode and timeout.
#[test]
fn demand_record_invariants() {
    let mut rng = rng_for("demand_invariants");
    for _ in 0..128 {
        let class_a = arb_class(&mut rng);
        let class_b = arb_class(&mut rng);
        let time_a = f64_in(&mut rng, 0.01, 6.0);
        let time_b = f64_in(&mut rng, 0.01, 6.0);
        let timeout = f64_in(&mut rng, 0.5, 4.0);
        let mode = arb_mode(&mut rng);
        let seed = rng.next_u64();

        let mut config = MiddlewareConfig::paper(timeout);
        config.mode = mode;
        let dt = config.adjudication_delay;
        let mut mw = UpgradeMiddleware::new(config);
        let mut a = ScriptedEndpoint::new("Svc", "1.0");
        a.push(PlannedResponse {
            class: class_a,
            exec_time: SimDuration::from_secs(time_a),
        });
        let mut b = ScriptedEndpoint::new("Svc", "1.1");
        b.push(PlannedResponse {
            class: class_b,
            exec_time: SimDuration::from_secs(time_b),
        });
        mw.deploy(a);
        mw.deploy(b);

        let mut demand_rng = StreamRng::from_seed(seed);
        let record = mw
            .process(&Envelope::request("invoke"), &mut demand_rng)
            .unwrap();

        // Responders equals the within-timeout observations.
        let within = record
            .per_release
            .iter()
            .filter(|o| o.within_timeout)
            .count();
        if mode == OperatingMode::ParallelReliability {
            assert_eq!(record.system.responders, within);
        } else {
            assert!(record.system.responders <= within.max(record.per_release.len()));
        }

        // Verdict consistency with the observations.
        match record.system.verdict {
            SystemVerdict::Unavailable => {
                assert_eq!(within, 0, "unavailable despite responses");
            }
            SystemVerdict::Response(class) => {
                if class.is_valid() {
                    assert!(
                        record
                            .per_release
                            .iter()
                            .any(|o| o.within_timeout && o.class == class),
                        "forwarded class {class:?} nobody produced"
                    );
                }
            }
        }

        // Source, when present, points at an invoked release with the
        // forwarded class.
        if let (SystemVerdict::Response(class), Some(source)) =
            (record.system.verdict, record.system.source)
        {
            assert!(record
                .per_release
                .iter()
                .any(|o| o.release == source && o.class == class));
        }

        // Timing bounds: parallel modes answer within timeout + dT; the
        // sequential mode within (#attempts * timeout) + dT.
        let bound = match mode {
            OperatingMode::Sequential { .. } => {
                timeout * record.per_release.len() as f64 + dt.as_secs()
            }
            _ => timeout + dt.as_secs(),
        };
        assert!(
            record.system.response_time.as_secs() <= bound + 1e-9,
            "response time {} exceeds bound {bound}",
            record.system.response_time.as_secs()
        );
        // And it always includes the adjudication delay.
        assert!(record.system.response_time >= dt);
    }
}

/// Sequential mode never invokes a second release after a valid first
/// response.
#[test]
fn sequential_short_circuits() {
    let mut rng = rng_for("sequential_short_circuit");
    for _ in 0..64 {
        let class_b = arb_class(&mut rng);
        let seed = rng.next_u64();
        let mut config = MiddlewareConfig::paper(2.0);
        config.mode = OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        };
        let mut mw = UpgradeMiddleware::new(config);
        let mut a = ScriptedEndpoint::new("Svc", "1.0");
        a.push(PlannedResponse {
            class: ResponseClass::Correct,
            exec_time: SimDuration::from_secs(0.5),
        });
        let mut b = ScriptedEndpoint::new("Svc", "1.1");
        b.push(PlannedResponse {
            class: class_b,
            exec_time: SimDuration::from_secs(0.5),
        });
        mw.deploy(a);
        mw.deploy(b);
        let mut demand_rng = StreamRng::from_seed(seed);
        let record = mw
            .process(&Envelope::request("invoke"), &mut demand_rng)
            .unwrap();
        assert_eq!(record.per_release.len(), 1);
        assert!(record.system.verdict.is_correct());
    }
}

/// Processing is deterministic in (inputs, seed) for every mode.
#[test]
fn processing_is_deterministic() {
    let mut rng = rng_for("processing_deterministic");
    for _ in 0..64 {
        let class_a = arb_class(&mut rng);
        let class_b = arb_class(&mut rng);
        let mode = arb_mode(&mut rng);
        let seed = rng.next_u64();
        let run = || {
            let mut config = MiddlewareConfig::paper(2.0);
            config.mode = mode;
            let mut mw = UpgradeMiddleware::new(config);
            let mut a = ScriptedEndpoint::new("Svc", "1.0");
            a.push(PlannedResponse {
                class: class_a,
                exec_time: SimDuration::from_secs(0.4),
            });
            let mut b = ScriptedEndpoint::new("Svc", "1.1");
            b.push(PlannedResponse {
                class: class_b,
                exec_time: SimDuration::from_secs(0.6),
            });
            mw.deploy(a);
            mw.deploy(b);
            let mut demand_rng = StreamRng::from_seed(seed);
            mw.process(&Envelope::request("invoke"), &mut demand_rng)
                .unwrap()
        };
        assert_eq!(run(), run());
    }
}
