//! Response adjudication (paper Section 5.2.1).
//!
//! After the middleware has collected the responses that arrived within
//! the timeout, the adjudicator produces the single response returned to
//! the consumer, following the paper's rules:
//!
//! 1. if **all** collected responses are evidently incorrect, the
//!    middleware raises an exception (the adjudicated response is itself
//!    evidently incorrect);
//! 2. if all releases returned the **same** response (correct or
//!    non-evidently incorrect), that response is returned;
//! 3. if **all collected responses are valid** (none evidently
//!    incorrect) but differ, a [`SelectionPolicy`] picks one — the paper
//!    selects **at random**, so a correct response may lose to a
//!    non-evident failure;
//! 4. if a **single valid** response was collected, it is returned (it
//!    may be non-evidently incorrect);
//! 5. if **no** response was collected, the middleware reports
//!    "Web Service unavailable".

use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::SimDuration;
use wsu_wstack::outcome::ResponseClass;

use crate::release::ReleaseId;

/// One response collected from a release within the timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectedResponse {
    /// Which release produced it.
    pub release: ReleaseId,
    /// Ground-truth class of the response (used for *scoring*; the
    /// adjudicator itself may only distinguish evident failures).
    pub class: ResponseClass,
    /// The release's execution time.
    pub exec_time: SimDuration,
}

/// The adjudicated outcome presented to the consumer of the WS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemVerdict {
    /// A response was returned; its ground-truth class is recorded.
    Response(ResponseClass),
    /// No response was collected within the timeout.
    Unavailable,
}

impl SystemVerdict {
    /// Ground-truth class of the returned response, if any.
    pub fn class(self) -> Option<ResponseClass> {
        match self {
            SystemVerdict::Response(c) => Some(c),
            SystemVerdict::Unavailable => None,
        }
    }

    /// Returns `true` if the consumer received a correct response.
    pub fn is_correct(self) -> bool {
        self.class() == Some(ResponseClass::Correct)
    }

    /// A short label for traces and metrics, matching the paper's table
    /// headings: `CR`, `ER`, `NER`, or `NRDT` for unavailability.
    pub fn label(self) -> &'static str {
        match self {
            SystemVerdict::Response(class) => class.abbrev(),
            SystemVerdict::Unavailable => "NRDT",
        }
    }
}

/// The result of adjudication: the verdict plus which release's response
/// was forwarded (when one was).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adjudication {
    /// The verdict presented to the consumer.
    pub verdict: SystemVerdict,
    /// The release whose response was forwarded, if a specific one was.
    pub source: Option<ReleaseId>,
}

/// How to pick among several *valid but differing* responses (rule 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionPolicy {
    /// Pick uniformly at random — the paper's middleware.
    Random,
    /// Pick the response that arrived first.
    Fastest,
    /// Pick the class held by the majority of valid responses, breaking
    /// ties at random among the majority classes; with two releases this
    /// behaves like `Random` unless responses agree.
    Majority,
}

/// The adjudicator: rules 1–5 parameterised by a selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adjudicator {
    policy: SelectionPolicy,
}

impl Adjudicator {
    /// Creates an adjudicator with the given selection policy.
    pub fn new(policy: SelectionPolicy) -> Adjudicator {
        Adjudicator { policy }
    }

    /// The paper's adjudicator: random selection among valid responses.
    pub fn paper() -> Adjudicator {
        Adjudicator::new(SelectionPolicy::Random)
    }

    /// The selection policy.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Adjudicates the collected responses.
    pub fn adjudicate(&self, collected: &[CollectedResponse], rng: &mut StreamRng) -> Adjudication {
        // Rule 5: nothing collected.
        if collected.is_empty() {
            return Adjudication {
                verdict: SystemVerdict::Unavailable,
                source: None,
            };
        }
        // The valid subset is visited through filtered iterators rather
        // than collected into a `Vec`, keeping adjudication allocation
        // free; `filter(..).nth(idx)` selects the same element the old
        // materialised slice indexed, so RNG draws line up draw for draw.
        let mut valid = collected.iter().filter(|r| r.class.is_valid());
        let first_valid = match valid.next() {
            // Rule 1: all evidently incorrect -> exception.
            None => {
                return Adjudication {
                    verdict: SystemVerdict::Response(ResponseClass::EvidentFailure),
                    source: None,
                };
            }
            Some(r) => r,
        };
        let valid_count = 1 + valid.clone().count();
        // Rule 4: a single valid response.
        if valid_count == 1 {
            return Adjudication {
                verdict: SystemVerdict::Response(first_valid.class),
                source: Some(first_valid.release),
            };
        }
        // Rule 2: all valid responses identical. Correct responses are
        // identical by definition; coincident non-evident failures are
        // conservatively assumed identical (the paper's back-to-back
        // assumption).
        let first_class = first_valid.class;
        if valid.clone().all(|r| r.class == first_class) {
            // Attribute to the fastest of the agreeing responses.
            let fastest = std::iter::once(first_valid)
                .chain(valid)
                .min_by(|a, b| a.exec_time.cmp(&b.exec_time))
                .expect("non-empty valid set");
            return Adjudication {
                verdict: SystemVerdict::Response(first_class),
                source: Some(fastest.release),
            };
        }
        // Rule 3: several valid, differing responses.
        let chosen = match self.policy {
            SelectionPolicy::Random => {
                let idx = rng.next_below(valid_count as u64) as usize;
                collected
                    .iter()
                    .filter(|r| r.class.is_valid())
                    .nth(idx)
                    .expect("index below valid count")
            }
            SelectionPolicy::Fastest => std::iter::once(first_valid)
                .chain(valid)
                .min_by(|a, b| a.exec_time.cmp(&b.exec_time))
                .expect("non-empty valid set"),
            SelectionPolicy::Majority => {
                let mut counts = [0usize; 3];
                for r in collected.iter().filter(|r| r.class.is_valid()) {
                    counts[r.class.index()] += 1;
                }
                let best = *counts.iter().max().expect("three classes");
                let tied = collected
                    .iter()
                    .filter(|r| r.class.is_valid() && counts[r.class.index()] == best)
                    .count();
                let idx = rng.next_below(tied as u64) as usize;
                collected
                    .iter()
                    .filter(|r| r.class.is_valid() && counts[r.class.index()] == best)
                    .nth(idx)
                    .expect("index below tie count")
            }
        };
        Adjudication {
            verdict: SystemVerdict::Response(chosen.class),
            source: Some(chosen.release),
        }
    }
}

impl Default for Adjudicator {
    /// The paper's adjudicator.
    fn default() -> Adjudicator {
        Adjudicator::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(release: usize, class: ResponseClass, secs: f64) -> CollectedResponse {
        CollectedResponse {
            release: ReleaseId::new(release),
            class,
            exec_time: SimDuration::from_secs(secs),
        }
    }

    #[test]
    fn rule5_empty_is_unavailable() {
        let adj = Adjudicator::paper();
        let mut rng = StreamRng::from_seed(1);
        let a = adj.adjudicate(&[], &mut rng);
        assert_eq!(a.verdict, SystemVerdict::Unavailable);
        assert_eq!(a.source, None);
        assert_eq!(a.verdict.class(), None);
    }

    #[test]
    fn rule1_all_evident_raises_exception() {
        let adj = Adjudicator::paper();
        let mut rng = StreamRng::from_seed(2);
        let a = adj.adjudicate(
            &[
                resp(0, ResponseClass::EvidentFailure, 0.5),
                resp(1, ResponseClass::EvidentFailure, 0.6),
            ],
            &mut rng,
        );
        assert_eq!(
            a.verdict,
            SystemVerdict::Response(ResponseClass::EvidentFailure)
        );
        assert_eq!(a.source, None);
    }

    #[test]
    fn rule4_single_valid_passes_through() {
        let adj = Adjudicator::paper();
        let mut rng = StreamRng::from_seed(3);
        let a = adj.adjudicate(
            &[
                resp(0, ResponseClass::EvidentFailure, 0.2),
                resp(1, ResponseClass::NonEvidentFailure, 0.9),
            ],
            &mut rng,
        );
        assert_eq!(
            a.verdict,
            SystemVerdict::Response(ResponseClass::NonEvidentFailure)
        );
        assert_eq!(a.source, Some(ReleaseId::new(1)));
    }

    #[test]
    fn rule2_agreement_returns_the_class() {
        let adj = Adjudicator::paper();
        let mut rng = StreamRng::from_seed(4);
        let a = adj.adjudicate(
            &[
                resp(0, ResponseClass::Correct, 0.8),
                resp(1, ResponseClass::Correct, 0.3),
            ],
            &mut rng,
        );
        assert!(a.verdict.is_correct());
        // Attributed to the faster source.
        assert_eq!(a.source, Some(ReleaseId::new(1)));
    }

    #[test]
    fn rule3_random_picks_each_side_roughly_half() {
        let adj = Adjudicator::paper();
        let mut rng = StreamRng::from_seed(5);
        let collected = [
            resp(0, ResponseClass::Correct, 0.5),
            resp(1, ResponseClass::NonEvidentFailure, 0.4),
        ];
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| adj.adjudicate(&collected, &mut rng).verdict.is_correct())
            .count();
        assert!((correct as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn fastest_policy_prefers_quickest_valid() {
        let adj = Adjudicator::new(SelectionPolicy::Fastest);
        let mut rng = StreamRng::from_seed(6);
        let a = adj.adjudicate(
            &[
                resp(0, ResponseClass::Correct, 0.5),
                resp(1, ResponseClass::NonEvidentFailure, 0.4),
            ],
            &mut rng,
        );
        assert_eq!(
            a.verdict,
            SystemVerdict::Response(ResponseClass::NonEvidentFailure)
        );
        assert_eq!(a.source, Some(ReleaseId::new(1)));
    }

    #[test]
    fn majority_policy_with_three_releases() {
        let adj = Adjudicator::new(SelectionPolicy::Majority);
        let mut rng = StreamRng::from_seed(7);
        let a = adj.adjudicate(
            &[
                resp(0, ResponseClass::Correct, 0.5),
                resp(1, ResponseClass::Correct, 0.6),
                resp(2, ResponseClass::NonEvidentFailure, 0.1),
            ],
            &mut rng,
        );
        assert!(a.verdict.is_correct());
    }

    #[test]
    fn majority_policy_tie_breaks_randomly() {
        let adj = Adjudicator::new(SelectionPolicy::Majority);
        let mut rng = StreamRng::from_seed(8);
        let collected = [
            resp(0, ResponseClass::Correct, 0.5),
            resp(1, ResponseClass::NonEvidentFailure, 0.4),
        ];
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| adj.adjudicate(&collected, &mut rng).verdict.is_correct())
            .count();
        assert!((correct as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn evident_failures_never_win_when_a_valid_exists() {
        for policy in [
            SelectionPolicy::Random,
            SelectionPolicy::Fastest,
            SelectionPolicy::Majority,
        ] {
            let adj = Adjudicator::new(policy);
            let mut rng = StreamRng::from_seed(9);
            let a = adj.adjudicate(
                &[
                    resp(0, ResponseClass::EvidentFailure, 0.1),
                    resp(1, ResponseClass::Correct, 0.9),
                ],
                &mut rng,
            );
            assert!(a.verdict.is_correct(), "policy {policy:?}");
        }
    }

    #[test]
    fn defaults_and_accessors() {
        assert_eq!(Adjudicator::default().policy(), SelectionPolicy::Random);
        assert!(SystemVerdict::Response(ResponseClass::Correct).is_correct());
        assert!(!SystemVerdict::Unavailable.is_correct());
    }

    #[test]
    fn verdict_labels_match_table_headings() {
        assert_eq!(
            SystemVerdict::Response(ResponseClass::Correct).label(),
            "CR"
        );
        assert_eq!(
            SystemVerdict::Response(ResponseClass::EvidentFailure).label(),
            "ER"
        );
        assert_eq!(
            SystemVerdict::Response(ResponseClass::NonEvidentFailure).label(),
            "NER"
        );
        assert_eq!(SystemVerdict::Unavailable.label(), "NRDT");
    }
}
