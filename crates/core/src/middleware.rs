//! The upgrading middleware (paper Sections 4.1 and 5.2.1).
//!
//! [`UpgradeMiddleware`] intercepts each consumer request, relays it to
//! the deployed releases according to the configured
//! [`modes::OperatingMode`](crate::modes::OperatingMode) and collects responses
//! that arrive within the timeout, adjudicates them, and returns a single
//! response to the consumer — while recording everything the monitoring
//! subsystem needs.
//!
//! ## Timing model
//!
//! Virtual time within one demand follows the paper's eq. (8):
//!
//! ```text
//! ExTime(WS) = min(TimeOut, max(ExTime(Release(i)))) + dT
//! ```
//!
//! where `dT` is the middleware's own adjudication delay. Responses whose
//! execution time exceeds the timeout are *not collected* (the release is
//! scored "no response received within TimeOut" — NRDT in the tables).

use wsu_obs::{NullRecorder, Recorder, TraceEvent};
use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::SimDuration;
use wsu_wstack::endpoint::ServiceEndpoint;
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::ResponseClass;

use crate::adjudicate::{Adjudicator, CollectedResponse, SystemVerdict};
use crate::error::CoreError;
use crate::modes::{OperatingMode, SequentialOrder};
use crate::release::{ReleaseId, ReleaseInfo, ReleaseSet};

/// Middleware configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiddlewareConfig {
    /// Operating mode (Section 4.2). Default: parallel for maximum
    /// reliability, the mode of the paper's simulation study.
    pub mode: OperatingMode,
    /// How long the middleware waits for release responses.
    pub timeout: SimDuration,
    /// `dT`: the middleware's adjudication delay (paper: 0.1 s).
    pub adjudication_delay: SimDuration,
    /// The adjudicator applied to collected responses.
    pub adjudicator: Adjudicator,
}

impl MiddlewareConfig {
    /// The paper's simulation configuration with the given timeout:
    /// parallel-reliability mode, `dT = 0.1 s`, random-valid adjudication.
    pub fn paper(timeout_secs: f64) -> MiddlewareConfig {
        MiddlewareConfig {
            mode: OperatingMode::ParallelReliability,
            timeout: SimDuration::from_secs(timeout_secs),
            adjudication_delay: SimDuration::from_secs(0.1),
            adjudicator: Adjudicator::paper(),
        }
    }
}

impl Default for MiddlewareConfig {
    /// The paper's configuration with the middle timeout (2.0 s).
    fn default() -> MiddlewareConfig {
        MiddlewareConfig::paper(2.0)
    }
}

/// What the middleware observed of one release on one demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleaseObservation {
    /// The release.
    pub release: ReleaseId,
    /// Ground-truth class of its response.
    pub class: ResponseClass,
    /// Its execution time (even if it exceeded the timeout).
    pub exec_time: SimDuration,
    /// Whether the response arrived within the timeout (`false` counts
    /// as NRDT for this release).
    pub within_timeout: bool,
}

/// What the consumer of the composite WS experienced on one demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemObservation {
    /// The adjudicated verdict.
    pub verdict: SystemVerdict,
    /// How long the consumer waited (includes `dT`).
    pub response_time: SimDuration,
    /// The release whose response was forwarded, if a specific one.
    pub source: Option<ReleaseId>,
    /// How many responses were collected within the timeout.
    pub responders: usize,
}

/// The full record of one demand, for monitoring and logging.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandRecord {
    /// Demand sequence number (assigned by the middleware).
    pub seq: u64,
    /// Dispatch instant in virtual time, in seconds (the middleware's
    /// clock when the demand arrived) — what windowed trackers key on.
    pub t: f64,
    /// Per-release observations, in the order releases were invoked.
    /// Sequential mode only contains entries for releases actually tried.
    pub per_release: Vec<ReleaseObservation>,
    /// The consumer-visible outcome.
    pub system: SystemObservation,
}

impl DemandRecord {
    /// The observation for a given release, if it was invoked.
    pub fn observation(&self, release: ReleaseId) -> Option<&ReleaseObservation> {
        self.per_release.iter().find(|o| o.release == release)
    }
}

/// The upgrading middleware.
pub struct UpgradeMiddleware {
    releases: ReleaseSet,
    config: MiddlewareConfig,
    demands: u64,
    /// Trace sink. The default [`NullRecorder`] keeps the hot path at
    /// one `enabled()` check per demand — no events are constructed.
    recorder: Box<dyn Recorder>,
    /// Virtual instant stamped on the next demand's trace events. The
    /// caller (orchestrator or simulation driver) owns the clock.
    clock: f64,
    /// Scratch buffers reused across demands so the steady-state path
    /// does not allocate: the active-release snapshot, arrival order
    /// (indices into `per_release`), adjudication input, and the
    /// sequential visit order.
    active_scratch: Vec<ReleaseId>,
    arrived_scratch: Vec<usize>,
    collected_scratch: Vec<CollectedResponse>,
    order_scratch: Vec<ReleaseId>,
    /// Recycled `per_release` buffers, returned via [`recycle`].
    ///
    /// [`recycle`]: UpgradeMiddleware::recycle
    record_pool: Vec<Vec<ReleaseObservation>>,
}

impl UpgradeMiddleware {
    /// Creates a middleware with no releases deployed.
    pub fn new(config: MiddlewareConfig) -> UpgradeMiddleware {
        UpgradeMiddleware {
            releases: ReleaseSet::new(),
            config,
            demands: 0,
            recorder: Box::new(NullRecorder),
            clock: 0.0,
            active_scratch: Vec::new(),
            arrived_scratch: Vec::new(),
            collected_scratch: Vec::new(),
            order_scratch: Vec::new(),
            record_pool: Vec::new(),
        }
    }

    /// Attaches a trace recorder; subsequent demands emit
    /// [`TraceEvent`]s (dispatch, per-release responses or timeouts, and
    /// the adjudicated verdict), all stamped with the demand's dispatch
    /// instant in virtual time.
    pub fn set_recorder(&mut self, recorder: impl Recorder + 'static) {
        self.recorder = Box::new(recorder);
    }

    /// Sets the virtual time stamped on subsequent trace events.
    pub fn set_virtual_time(&mut self, t: f64) {
        self.clock = t;
    }

    /// The virtual time that will stamp the next demand's events.
    pub fn virtual_time(&self) -> f64 {
        self.clock
    }

    /// Deploys a release behind the interface; returns its id.
    pub fn deploy(&mut self, endpoint: impl ServiceEndpoint + 'static) -> ReleaseId {
        self.releases.deploy(endpoint)
    }

    /// Deploys a boxed release.
    pub fn deploy_boxed(&mut self, endpoint: Box<dyn ServiceEndpoint>) -> ReleaseId {
        self.releases.deploy_boxed(endpoint)
    }

    /// The current configuration.
    pub fn config(&self) -> MiddlewareConfig {
        self.config
    }

    /// Reconfigures the middleware (mode, timeout, adjudicator — the
    /// run-time knobs of the paper's test harness, Section 6.1).
    pub fn set_config(&mut self, config: MiddlewareConfig) {
        self.config = config;
    }

    /// Access to the release set (lifecycle operations).
    pub fn releases(&self) -> &ReleaseSet {
        &self.releases
    }

    /// Mutable access to the release set.
    pub fn releases_mut(&mut self) -> &mut ReleaseSet {
        &mut self.releases
    }

    /// Release metadata, convenience for `releases().infos()`.
    pub fn release_infos(&self) -> Vec<ReleaseInfo> {
        self.releases.infos()
    }

    /// Demands processed so far.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Processes one consumer request end to end.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoActiveReleases`] if nothing is deployed and
    /// active.
    pub fn process(
        &mut self,
        request: &Envelope,
        rng: &mut StreamRng,
    ) -> Result<DemandRecord, CoreError> {
        let mut active = std::mem::take(&mut self.active_scratch);
        active.clear();
        active.extend_from_slice(self.releases.active_slice());
        if active.is_empty() {
            self.active_scratch = active;
            return Err(CoreError::NoActiveReleases);
        }
        // Clock-aware endpoints (fault injectors with time windows) see
        // the dispatch instant before the demand reaches them.
        self.releases.advance_clock(self.clock);
        let seq = self.demands;
        self.demands += 1;
        let result = match self.config.mode {
            OperatingMode::Sequential { order } => {
                self.process_sequential(seq, request, &active, order, rng)
            }
            OperatingMode::WeightedFleet => self.process_weighted(seq, request, rng),
            _ => self.process_parallel(seq, request, &active, rng),
        };
        let releases = active.len();
        self.active_scratch = active;
        let record = result?;
        if self.recorder.enabled() {
            self.emit_trace(&record, releases);
        }
        Ok(record)
    }

    /// Processes one demand whose per-release outcomes were prepared
    /// elsewhere — the commit half of the sharded prepare/commit
    /// pipeline (`wsu_simcore::shard::shard_pipeline`). Shard workers
    /// resolve each release's response class and execution time from
    /// plan data without touching this middleware; the sequential
    /// committer then calls this with the prepared observations so
    /// that sequence numbers, adjudication RNG draws, traces, and
    /// float accumulation happen in exactly the serial order.
    ///
    /// Draw-for-draw identical to [`process`](UpgradeMiddleware::process)
    /// for the parallel modes when `per_release` matches what the invoke
    /// loop would have produced (entries in active-release order, with
    /// `within_timeout = exec_time <= config.timeout`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoActiveReleases`] if `per_release` is empty.
    ///
    /// # Panics
    ///
    /// Panics for the sequential and weighted-fleet modes: those draw
    /// RNG *during* dispatch (visit order, traffic routing), so their
    /// outcomes cannot be prepared ahead of the commit point.
    pub fn process_prepared(
        &mut self,
        per_release: Vec<ReleaseObservation>,
        rng: &mut StreamRng,
    ) -> Result<DemandRecord, CoreError> {
        assert!(
            !matches!(
                self.config.mode,
                OperatingMode::Sequential { .. } | OperatingMode::WeightedFleet
            ),
            "process_prepared supports the parallel modes only: \
             sequential and weighted-fleet draw RNG during dispatch"
        );
        if per_release.is_empty() {
            return Err(CoreError::NoActiveReleases);
        }
        self.releases.advance_clock(self.clock);
        let releases = per_release.len();
        let seq = self.demands;
        self.demands += 1;
        let record = self.collect_parallel(seq, per_release, rng);
        if self.recorder.enabled() {
            self.emit_trace(&record, releases);
        }
        Ok(record)
    }

    /// Returns a processed record's per-release buffer to the pool so a
    /// later demand can reuse it instead of allocating. Closed-loop
    /// drivers call this once the record has been fully observed.
    pub fn recycle(&mut self, record: DemandRecord) {
        let mut buf = record.per_release;
        buf.clear();
        if self.record_pool.len() < 64 {
            self.record_pool.push(buf);
        }
    }

    /// Emits the demand's trace events, all stamped with the dispatch
    /// instant (so an ordered trace has non-decreasing timestamps;
    /// per-event latencies travel in the payloads).
    fn emit_trace(&mut self, record: &DemandRecord, releases: usize) {
        let t = self.clock;
        let demand = record.seq;
        self.recorder.record(TraceEvent::DemandDispatched {
            t,
            demand,
            releases,
            mode: self.config.mode.label(),
        });
        for obs in &record.per_release {
            if obs.within_timeout {
                self.recorder.record(TraceEvent::ResponseCollected {
                    t,
                    demand,
                    release: obs.release.index(),
                    class: obs.class.abbrev().into(),
                    exec_time: obs.exec_time.as_secs(),
                });
            } else {
                self.recorder.record(TraceEvent::Timeout {
                    t,
                    demand,
                    release: obs.release.index(),
                    timeout: self.config.timeout.as_secs(),
                });
            }
        }
        self.recorder.record(TraceEvent::Adjudicated {
            t,
            demand,
            verdict: record.system.verdict.label().into(),
            source: record.system.source.map(|r| r.index()),
            responders: record.system.responders,
            response_time: record.system.response_time.as_secs(),
        });
        // The demand's virtual-time cost, attributed per phase: under
        // eq. (8) the consumer's wait is transport (release execution,
        // capped by the timeout) plus the adjudication delay `dT`;
        // detection, Bayes updates and recovery run between demands and
        // cost zero virtual seconds. All-numeric payload — no
        // allocation on the per-demand path.
        let dt = self.config.adjudication_delay.as_secs();
        let response_time = record.system.response_time.as_secs();
        self.recorder.record(TraceEvent::SpanClosed {
            t,
            demand,
            transport: (response_time - dt).max(0.0),
            detection: 0.0,
            adjudication: dt,
            bayes: 0.0,
            recovery: 0.0,
        });
    }

    /// Parallel modes: invoke everyone, then collect per the mode.
    fn process_parallel(
        &mut self,
        seq: u64,
        request: &Envelope,
        active: &[ReleaseId],
        rng: &mut StreamRng,
    ) -> Result<DemandRecord, CoreError> {
        let timeout = self.config.timeout;
        let mut per_release = self.record_pool.pop().unwrap_or_default();
        per_release.clear();
        per_release.reserve(active.len());
        for &id in active {
            let inv = self.releases.invoke(id, request, rng)?;
            per_release.push(ReleaseObservation {
                release: id,
                class: inv.class,
                exec_time: inv.exec_time,
                within_timeout: inv.exec_time <= timeout,
            });
        }
        Ok(self.collect_parallel(seq, per_release, rng))
    }

    /// The post-invoke half of the parallel modes: arrival ordering,
    /// collection per the mode, adjudication, and the eq. (8) wait.
    /// Shared between [`process_parallel`](UpgradeMiddleware::process_parallel)
    /// (which invokes the releases first) and
    /// [`process_prepared`](UpgradeMiddleware::process_prepared)
    /// (whose observations were prepared by shard workers).
    fn collect_parallel(
        &mut self,
        seq: u64,
        per_release: Vec<ReleaseObservation>,
        rng: &mut StreamRng,
    ) -> DemandRecord {
        let timeout = self.config.timeout;
        let dt = self.config.adjudication_delay;

        // Responses in arrival order, truncated to the timeout. Indices
        // into `per_release`; the (exec_time, index) key reproduces the
        // stable sort a plain sort-by-exec-time would give.
        let mut arrived = std::mem::take(&mut self.arrived_scratch);
        arrived.clear();
        arrived.extend((0..per_release.len()).filter(|&i| per_release[i].within_timeout));
        arrived.sort_unstable_by_key(|&i| (per_release[i].exec_time, i));

        let mut collected = std::mem::take(&mut self.collected_scratch);
        collected.clear();

        let system = match self.config.mode {
            OperatingMode::ParallelReliability => {
                collected.extend(arrived.iter().map(|&i| {
                    let o = &per_release[i];
                    CollectedResponse {
                        release: o.release,
                        class: o.class,
                        exec_time: o.exec_time,
                    }
                }));
                let adj = self.config.adjudicator.adjudicate(&collected, rng);
                // Wait for everyone or the timeout, whichever first.
                let all_in = per_release.iter().all(|o| o.within_timeout);
                let wait = if all_in {
                    per_release
                        .iter()
                        .map(|o| o.exec_time)
                        .fold(SimDuration::ZERO, SimDuration::max)
                } else {
                    timeout
                };
                SystemObservation {
                    verdict: adj.verdict,
                    response_time: wait + dt,
                    source: adj.source,
                    responders: collected.len(),
                }
            }
            OperatingMode::ParallelResponsiveness => {
                // Return the first valid response as soon as it arrives.
                match arrived
                    .iter()
                    .map(|&i| &per_release[i])
                    .find(|o| o.class.is_valid())
                {
                    Some(first_valid) => SystemObservation {
                        verdict: SystemVerdict::Response(first_valid.class),
                        response_time: first_valid.exec_time + dt,
                        source: Some(first_valid.release),
                        responders: arrived.len(),
                    },
                    None if !arrived.is_empty() => SystemObservation {
                        // Only evident failures arrived; the middleware
                        // learns this for sure when the timeout expires.
                        verdict: SystemVerdict::Response(ResponseClass::EvidentFailure),
                        response_time: timeout + dt,
                        source: None,
                        responders: arrived.len(),
                    },
                    None => SystemObservation {
                        verdict: SystemVerdict::Unavailable,
                        response_time: timeout + dt,
                        source: None,
                        responders: 0,
                    },
                }
            }
            OperatingMode::ParallelDynamic { quorum } => {
                let quorum = quorum.max(1);
                collected.extend(arrived.iter().take(quorum).map(|&i| {
                    let o = &per_release[i];
                    CollectedResponse {
                        release: o.release,
                        class: o.class,
                        exec_time: o.exec_time,
                    }
                }));
                let adj = self.config.adjudicator.adjudicate(&collected, rng);
                let wait = if arrived.len() >= quorum {
                    collected
                        .iter()
                        .map(|c| c.exec_time)
                        .fold(SimDuration::ZERO, SimDuration::max)
                } else {
                    // Quorum never reached: the timeout expires first.
                    timeout
                };
                SystemObservation {
                    verdict: adj.verdict,
                    response_time: wait + dt,
                    source: adj.source,
                    responders: collected.len(),
                }
            }
            OperatingMode::Sequential { .. } | OperatingMode::WeightedFleet => {
                unreachable!("handled by process_sequential/process_weighted")
            }
        };

        collected.clear();
        self.collected_scratch = collected;
        arrived.clear();
        self.arrived_scratch = arrived;

        DemandRecord {
            seq,
            t: self.clock,
            per_release,
            system,
        }
    }

    /// Weighted-fleet mode: a single uniform draw routes the demand to
    /// exactly one active release in proportion to the traffic weights
    /// (canary chains). The chosen release's response is forwarded as
    /// is — there is nothing to adjudicate against — so the consumer's
    /// wait is that release's execution time (bounded by the timeout)
    /// plus `dT`.
    fn process_weighted(
        &mut self,
        seq: u64,
        request: &Envelope,
        rng: &mut StreamRng,
    ) -> Result<DemandRecord, CoreError> {
        let timeout = self.config.timeout;
        let dt = self.config.adjudication_delay;
        let u = rng.next_f64();
        let id = self.releases.route(u).ok_or(CoreError::NoActiveReleases)?;
        let inv = self.releases.invoke(id, request, rng)?;
        let within = inv.exec_time <= timeout;
        let mut per_release = self.record_pool.pop().unwrap_or_default();
        per_release.clear();
        per_release.push(ReleaseObservation {
            release: id,
            class: inv.class,
            exec_time: inv.exec_time,
            within_timeout: within,
        });
        let system = if within {
            SystemObservation {
                verdict: SystemVerdict::Response(inv.class),
                response_time: inv.exec_time + dt,
                source: Some(id),
                responders: 1,
            }
        } else {
            SystemObservation {
                verdict: SystemVerdict::Unavailable,
                response_time: timeout + dt,
                source: None,
                responders: 0,
            }
        };
        Ok(DemandRecord {
            seq,
            t: self.clock,
            per_release,
            system,
        })
    }

    /// Mode 4: one release at a time; each attempt is bounded by the
    /// timeout; attempt durations accumulate into the consumer's wait.
    fn process_sequential(
        &mut self,
        seq: u64,
        request: &Envelope,
        active: &[ReleaseId],
        order: SequentialOrder,
        rng: &mut StreamRng,
    ) -> Result<DemandRecord, CoreError> {
        let timeout = self.config.timeout;
        let dt = self.config.adjudication_delay;
        let mut order_ids = std::mem::take(&mut self.order_scratch);
        order_ids.clear();
        order_ids.extend_from_slice(active);
        if order == SequentialOrder::Random {
            // Fisher–Yates with the demand's RNG stream.
            for i in (1..order_ids.len()).rev() {
                let j = rng.next_below((i + 1) as u64) as usize;
                order_ids.swap(i, j);
            }
        }
        let mut per_release = self.record_pool.pop().unwrap_or_default();
        per_release.clear();
        let mut waited = SimDuration::ZERO;
        let mut any_evident_collected = false;
        let mut outcome: Option<(SystemVerdict, Option<ReleaseId>)> = None;
        for &id in &order_ids {
            let inv = self.releases.invoke(id, request, rng)?;
            let within = inv.exec_time <= timeout;
            per_release.push(ReleaseObservation {
                release: id,
                class: inv.class,
                exec_time: inv.exec_time,
                within_timeout: within,
            });
            waited += inv.exec_time.min(timeout);
            if !within {
                // Timed out: try the next release.
                continue;
            }
            if inv.class.is_valid() {
                outcome = Some((SystemVerdict::Response(inv.class), Some(id)));
                break;
            }
            any_evident_collected = true;
        }
        let (verdict, source) = outcome.unwrap_or({
            if any_evident_collected {
                (SystemVerdict::Response(ResponseClass::EvidentFailure), None)
            } else {
                (SystemVerdict::Unavailable, None)
            }
        });
        order_ids.clear();
        self.order_scratch = order_ids;
        let responders = per_release.iter().filter(|o| o.within_timeout).count();
        Ok(DemandRecord {
            seq,
            t: self.clock,
            per_release,
            system: SystemObservation {
                verdict,
                response_time: waited + dt,
                source,
                responders,
            },
        })
    }
}

impl std::fmt::Debug for UpgradeMiddleware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpgradeMiddleware")
            .field("config", &self.config)
            .field("releases", &self.releases)
            .field("demands", &self.demands)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_simcore::dist::DelayModel;
    use wsu_wstack::endpoint::{PlannedResponse, ScriptedEndpoint, SyntheticService};
    use wsu_wstack::outcome::OutcomeProfile;

    fn planned(class: ResponseClass, secs: f64) -> PlannedResponse {
        PlannedResponse {
            class,
            exec_time: SimDuration::from_secs(secs),
        }
    }

    fn scripted(version: &str, plan: &[(ResponseClass, f64)]) -> ScriptedEndpoint {
        let mut ep = ScriptedEndpoint::new("Svc", version);
        ep.extend(plan.iter().map(|&(c, t)| planned(c, t)));
        ep
    }

    fn run_one(mw: &mut UpgradeMiddleware, seed: u64) -> DemandRecord {
        let mut rng = StreamRng::from_seed(seed);
        mw.process(&Envelope::request("invoke"), &mut rng).unwrap()
    }

    #[test]
    fn no_releases_is_an_error() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::default());
        let mut rng = StreamRng::from_seed(1);
        assert_eq!(
            mw.process(&Envelope::request("invoke"), &mut rng),
            Err(CoreError::NoActiveReleases)
        );
    }

    #[test]
    fn parallel_reliability_waits_for_slower_release() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 0.4)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 0.9)]));
        let rec = run_one(&mut mw, 2);
        assert!(rec.system.verdict.is_correct());
        // max(0.4, 0.9) + dT = 1.0.
        assert!((rec.system.response_time.as_secs() - 1.0).abs() < 1e-12);
        assert_eq!(rec.system.responders, 2);
        assert_eq!(rec.per_release.len(), 2);
    }

    #[test]
    fn late_response_is_not_collected() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 0.4)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 2.5)]));
        let rec = run_one(&mut mw, 3);
        assert!(rec.system.verdict.is_correct());
        assert_eq!(rec.system.responders, 1);
        // One release straggled: the middleware waits out the timeout.
        assert!((rec.system.response_time.as_secs() - 1.6).abs() < 1e-12);
        let slow = rec.observation(ReleaseId::new(1)).unwrap();
        assert!(!slow.within_timeout);
    }

    #[test]
    fn both_late_is_unavailable() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 9.0)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 9.0)]));
        let rec = run_one(&mut mw, 4);
        assert_eq!(rec.system.verdict, SystemVerdict::Unavailable);
        assert_eq!(rec.system.responders, 0);
    }

    #[test]
    fn all_evident_raises_exception() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        mw.deploy(scripted("1.0", &[(ResponseClass::EvidentFailure, 0.4)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::EvidentFailure, 0.5)]));
        let rec = run_one(&mut mw, 5);
        assert_eq!(
            rec.system.verdict,
            SystemVerdict::Response(ResponseClass::EvidentFailure)
        );
    }

    #[test]
    fn single_valid_wins_over_evident() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        mw.deploy(scripted("1.0", &[(ResponseClass::EvidentFailure, 0.4)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::NonEvidentFailure, 0.5)]));
        let rec = run_one(&mut mw, 6);
        assert_eq!(
            rec.system.verdict,
            SystemVerdict::Response(ResponseClass::NonEvidentFailure)
        );
        assert_eq!(rec.system.source, Some(ReleaseId::new(1)));
    }

    #[test]
    fn responsiveness_returns_fastest_valid() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::ParallelResponsiveness;
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 1.2)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 0.3)]));
        let rec = run_one(&mut mw, 7);
        assert!(rec.system.verdict.is_correct());
        assert_eq!(rec.system.source, Some(ReleaseId::new(1)));
        // 0.3 + dT.
        assert!((rec.system.response_time.as_secs() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn responsiveness_skips_evident_failure() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::ParallelResponsiveness;
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::EvidentFailure, 0.1)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 0.8)]));
        let rec = run_one(&mut mw, 8);
        assert!(rec.system.verdict.is_correct());
        assert!((rec.system.response_time.as_secs() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn dynamic_quorum_one_behaves_like_responsiveness_timing() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::ParallelDynamic { quorum: 1 };
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 1.2)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 0.3)]));
        let rec = run_one(&mut mw, 9);
        assert!(rec.system.verdict.is_correct());
        assert!((rec.system.response_time.as_secs() - 0.4).abs() < 1e-12);
        assert_eq!(rec.system.responders, 1);
    }

    #[test]
    fn dynamic_quorum_two_waits_for_both() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::ParallelDynamic { quorum: 2 };
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 1.2)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 0.3)]));
        let rec = run_one(&mut mw, 10);
        assert!((rec.system.response_time.as_secs() - 1.3).abs() < 1e-12);
        assert_eq!(rec.system.responders, 2);
    }

    #[test]
    fn dynamic_quorum_unreached_waits_for_timeout() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::ParallelDynamic { quorum: 2 };
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 0.3)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 5.0)]));
        let rec = run_one(&mut mw, 11);
        assert!(rec.system.verdict.is_correct());
        assert!((rec.system.response_time.as_secs() - 1.6).abs() < 1e-12);
        assert_eq!(rec.system.responders, 1);
    }

    #[test]
    fn sequential_stops_at_first_valid() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        };
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 0.4)]));
        // Would fail, but must never be invoked.
        mw.deploy(scripted("1.1", &[]));
        let rec = run_one(&mut mw, 12);
        assert!(rec.system.verdict.is_correct());
        assert_eq!(rec.per_release.len(), 1);
        assert!((rec.system.response_time.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sequential_tries_next_on_evident_failure() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        };
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::EvidentFailure, 0.4)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 0.6)]));
        let rec = run_one(&mut mw, 13);
        assert!(rec.system.verdict.is_correct());
        assert_eq!(rec.per_release.len(), 2);
        // 0.4 + 0.6 + dT.
        assert!((rec.system.response_time.as_secs() - 1.1).abs() < 1e-12);
        assert_eq!(rec.system.source, Some(ReleaseId::new(1)));
    }

    #[test]
    fn sequential_timeout_counts_and_moves_on() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        };
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 99.0)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 0.6)]));
        let rec = run_one(&mut mw, 14);
        assert!(rec.system.verdict.is_correct());
        // Capped first attempt (1.5) + 0.6 + dT.
        assert!((rec.system.response_time.as_secs() - 2.2).abs() < 1e-12);
        assert!(!rec.per_release[0].within_timeout);
    }

    #[test]
    fn sequential_all_evident_is_exception() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        };
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::EvidentFailure, 0.4)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::EvidentFailure, 0.4)]));
        let rec = run_one(&mut mw, 15);
        assert_eq!(
            rec.system.verdict,
            SystemVerdict::Response(ResponseClass::EvidentFailure)
        );
    }

    #[test]
    fn sequential_all_timed_out_is_unavailable() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        };
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 9.0)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 9.0)]));
        let rec = run_one(&mut mw, 16);
        assert_eq!(rec.system.verdict, SystemVerdict::Unavailable);
    }

    #[test]
    fn weighted_fleet_routes_each_demand_to_one_release() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::WeightedFleet;
        let mut mw = UpgradeMiddleware::new(config);
        let a = mw.deploy(
            SyntheticService::builder("Svc", "1.0")
                .outcomes(OutcomeProfile::always_correct())
                .exec_time(DelayModel::constant(0.3))
                .build(),
        );
        let b = mw.deploy(
            SyntheticService::builder("Svc", "1.1")
                .outcomes(OutcomeProfile::always_correct())
                .exec_time(DelayModel::constant(0.2))
                .build(),
        );
        mw.releases_mut().set_weight(a, 0.9).unwrap();
        mw.releases_mut().set_weight(b, 0.1).unwrap();
        let mut rng = StreamRng::from_seed(20);
        let mut counts = [0u32; 2];
        for _ in 0..500 {
            let rec = mw.process(&Envelope::request("invoke"), &mut rng).unwrap();
            assert_eq!(rec.per_release.len(), 1);
            assert_eq!(rec.system.responders, 1);
            assert!(rec.system.verdict.is_correct());
            let source = rec.system.source.unwrap();
            assert_eq!(source, rec.per_release[0].release);
            counts[source.index()] += 1;
            // Single-release wait: that release's exec time + dT.
            let expected = rec.per_release[0].exec_time.as_secs() + 0.1;
            assert!((rec.system.response_time.as_secs() - expected).abs() < 1e-12);
            mw.recycle(rec);
        }
        // 90/10 split: the heavy release must dominate.
        assert!(counts[0] > 400, "counts: {counts:?}");
        assert!(counts[1] > 10, "counts: {counts:?}");
    }

    #[test]
    fn weighted_fleet_timeout_is_unavailable() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::WeightedFleet;
        let mut mw = UpgradeMiddleware::new(config);
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 9.0)]));
        let rec = run_one(&mut mw, 21);
        assert_eq!(rec.system.verdict, SystemVerdict::Unavailable);
        assert_eq!(rec.system.responders, 0);
        assert_eq!(rec.system.source, None);
        // Timeout + dT.
        assert!((rec.system.response_time.as_secs() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn suspended_release_is_not_invoked() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        let a = mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 0.4)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 0.5)]));
        mw.releases_mut().suspend(a).unwrap();
        let rec = run_one(&mut mw, 17);
        assert_eq!(rec.per_release.len(), 1);
        assert_eq!(rec.per_release[0].release, ReleaseId::new(1));
    }

    #[test]
    fn trace_events_cover_the_demand() {
        use wsu_obs::SharedRecorder;
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 0.4)]));
        mw.deploy(scripted("1.1", &[(ResponseClass::Correct, 2.5)]));
        let recorder = SharedRecorder::new();
        mw.set_recorder(recorder.clone());
        mw.set_virtual_time(10.5);
        assert_eq!(mw.virtual_time(), 10.5);
        let rec = run_one(&mut mw, 3);
        let events = recorder.snapshot();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "DemandDispatched",
                "ResponseCollected",
                "Timeout",
                "Adjudicated",
                "SpanClosed"
            ]
        );
        assert_eq!(rec.t, 10.5);
        assert!(events.iter().all(|e| e.virtual_time() == 10.5));
        assert!(events.iter().all(|e| e.demand() == rec.seq));
        match &events[3] {
            wsu_obs::TraceEvent::Adjudicated {
                verdict,
                responders,
                response_time,
                ..
            } => {
                assert_eq!(verdict, "CR");
                assert_eq!(*responders, 1);
                assert!((response_time - rec.system.response_time.as_secs()).abs() < 1e-12);
            }
            other => panic!("expected Adjudicated, got {other:?}"),
        }
    }

    #[test]
    fn null_recorder_emits_nothing_by_default() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        mw.deploy(scripted("1.0", &[(ResponseClass::Correct, 0.4)]));
        // No recorder attached: processing works and no trace exists.
        let rec = run_one(&mut mw, 2);
        assert!(rec.system.verdict.is_correct());
    }

    #[test]
    fn process_prepared_matches_process_draw_for_draw() {
        // The commit half must reproduce the serial path exactly:
        // same records, same RNG consumption, same demand counter.
        let plans = [
            [(ResponseClass::Correct, 0.4), (ResponseClass::Correct, 0.9)],
            [
                (ResponseClass::NonEvidentFailure, 0.2),
                (ResponseClass::Correct, 2.5),
            ],
            [
                (ResponseClass::EvidentFailure, 0.3),
                (ResponseClass::EvidentFailure, 0.7),
            ],
            [(ResponseClass::Correct, 9.0), (ResponseClass::Correct, 9.0)],
        ];
        for mode in [
            OperatingMode::ParallelReliability,
            OperatingMode::ParallelResponsiveness,
            OperatingMode::ParallelDynamic { quorum: 2 },
        ] {
            let mut config = MiddlewareConfig::paper(1.5);
            config.mode = mode;
            let timeout = config.timeout;

            let mut serial = UpgradeMiddleware::new(config);
            let r0: Vec<_> = plans.iter().map(|p| p[0]).collect();
            let r1: Vec<_> = plans.iter().map(|p| p[1]).collect();
            serial.deploy(scripted("1.0", &r0));
            serial.deploy(scripted("1.1", &r1));

            let mut prepared = UpgradeMiddleware::new(config);

            let mut rng_a = StreamRng::from_seed(42);
            let mut rng_b = StreamRng::from_seed(42);
            for plan in &plans {
                let a = serial
                    .process(&Envelope::request("invoke"), &mut rng_a)
                    .unwrap();
                let obs: Vec<ReleaseObservation> = plan
                    .iter()
                    .enumerate()
                    .map(|(i, &(class, secs))| {
                        let exec_time = SimDuration::from_secs(secs);
                        ReleaseObservation {
                            release: ReleaseId::new(i),
                            class,
                            exec_time,
                            within_timeout: exec_time <= timeout,
                        }
                    })
                    .collect();
                let b = prepared.process_prepared(obs, &mut rng_b).unwrap();
                assert_eq!(a, b, "mode {mode:?}");
                serial.recycle(a);
                prepared.recycle(b);
            }
            // Identical draw counts: the streams stay in lockstep.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "mode {mode:?}");
            assert_eq!(serial.demands(), prepared.demands());
        }
    }

    #[test]
    fn process_prepared_empty_is_an_error() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::default());
        let mut rng = StreamRng::from_seed(1);
        assert_eq!(
            mw.process_prepared(Vec::new(), &mut rng),
            Err(CoreError::NoActiveReleases)
        );
    }

    #[test]
    #[should_panic(expected = "parallel modes only")]
    fn process_prepared_rejects_weighted_fleet() {
        let mut config = MiddlewareConfig::paper(1.5);
        config.mode = OperatingMode::WeightedFleet;
        let mut mw = UpgradeMiddleware::new(config);
        let mut rng = StreamRng::from_seed(1);
        let obs = vec![ReleaseObservation {
            release: ReleaseId::new(0),
            class: ResponseClass::Correct,
            exec_time: SimDuration::from_secs(0.1),
            within_timeout: true,
        }];
        let _ = mw.process_prepared(obs, &mut rng);
    }

    #[test]
    fn demand_counter_and_reconfig() {
        let mut mw = UpgradeMiddleware::new(MiddlewareConfig::paper(1.5));
        mw.deploy(
            SyntheticService::builder("Svc", "1.0")
                .outcomes(OutcomeProfile::always_correct())
                .exec_time(DelayModel::constant(0.1))
                .build(),
        );
        let mut rng = StreamRng::from_seed(18);
        for _ in 0..3 {
            mw.process(&Envelope::request("invoke"), &mut rng).unwrap();
        }
        assert_eq!(mw.demands(), 3);
        let mut cfg = mw.config();
        cfg.timeout = SimDuration::from_secs(3.0);
        mw.set_config(cfg);
        assert_eq!(mw.config().timeout.as_secs(), 3.0);
        assert_eq!(mw.release_infos().len(), 1);
    }
}
