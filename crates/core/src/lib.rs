//! Managed-upgrade middleware for composite Web Services.
//!
//! This crate is the paper's primary contribution: an architecture that
//! keeps several releases of a component WS operational behind one
//! interface, adjudicates their responses, measures per-release
//! dependability (including Bayesian *confidence in correctness*), and
//! switches the composite service to the new release only when a
//! switching criterion is met — so that "the composite service
//! dependability will not deteriorate as a result of the switch".
//!
//! The architecture of Section 4.1 maps onto modules as follows:
//!
//! * the **upgrading middleware** — [`middleware::UpgradeMiddleware`],
//!   with the operating modes of Section 4.2 in [`modes`] and the
//!   adjudication rules of Section 5.2.1 in [`adjudicate`];
//! * the **monitoring tool** — [`monitor::MonitoringSubsystem`], which
//!   tracks per-release outcome counts, execution times, availability and
//!   the joint failure counts feeding the white-box Bayesian inference;
//! * the **management tool** — [`manage::ManagementSubsystem`], which
//!   owns the switching criteria of Section 5.1.1.2, reconfiguration and
//!   release recovery;
//! * the **releases** themselves — [`release`];
//! * **confidence publishing** (Section 6.2) — [`confidence_pub`];
//! * the **orchestrator** gluing everything into a deployable managed
//!   upgrade — [`upgrade::ManagedUpgrade`], the programmatic equivalent
//!   of the paper's test harness (Section 6.1).
//!
//! # Example: a complete managed upgrade
//!
//! ```
//! use wsu_core::manage::SwitchCriterion;
//! use wsu_core::upgrade::{ManagedUpgrade, UpgradeConfig};
//! use wsu_simcore::rng::MasterSeed;
//! use wsu_wstack::endpoint::SyntheticService;
//! use wsu_wstack::outcome::OutcomeProfile;
//! use wsu_workload::scenario::ScenarioPriors;
//!
//! let old = SyntheticService::builder("Quote", "1.0")
//!     .outcomes(OutcomeProfile::new(0.999, 0.0005, 0.0005))
//!     .build();
//! let new = SyntheticService::builder("Quote", "1.1")
//!     .outcomes(OutcomeProfile::new(0.9995, 0.00025, 0.00025))
//!     .build();
//! let priors = ScenarioPriors::scenario2();
//! let mut upgrade = ManagedUpgrade::new(
//!     old,
//!     new,
//!     UpgradeConfig::default()
//!         .with_priors(priors.prior_a, priors.prior_b)
//!         .with_criterion(SwitchCriterion::better_than_old(0.9)),
//!     MasterSeed::new(7),
//! );
//! for _ in 0..200 {
//!     upgrade.run_demand();
//! }
//! assert_eq!(upgrade.demands(), 200);
//! // Confidence in the new release is already quantified.
//! let conf = upgrade.confidence_report();
//! assert!(conf.new_release_p99 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod adjudicate;
pub mod composite;
pub mod confidence_pub;
pub mod error;
pub mod fleet;
pub mod log;
pub mod manage;
pub mod middleware;
pub mod modes;
pub mod monitor;
pub mod release;
pub mod serve;
pub mod single_release;
pub mod upgrade;

pub use adjudicate::{Adjudicator, SelectionPolicy, SystemVerdict};
pub use composite::CompositeService;
pub use error::CoreError;
pub use fleet::{
    FleetDemand, FleetOrchestrator, FleetPlan, FleetStats, FleetStatus, ProbeRule, PromotionRule,
    RollbackRule, SubstitutePool, WeightRamp,
};
pub use manage::{
    Assessment, AssessmentView, ManagementSubsystem, SwitchCriterion, SwitchDecision,
};
pub use middleware::{DemandRecord, MiddlewareConfig, UpgradeMiddleware};
pub use modes::OperatingMode;
pub use monitor::MonitoringSubsystem;
pub use release::{ReleaseId, ReleaseInfo, ReleaseState};
pub use serve::{DemandOutcome, DemandWorker, ReleaseSpec, ServeSpec};
pub use single_release::SingleReleaseTracker;
pub use upgrade::{ManagedUpgrade, UpgradeConfig, UpgradePhase};
