//! A `Send`-able serving facade over the upgrade middleware.
//!
//! The middleware itself is deliberately not `Send`: endpoints hand
//! out `Rc`-pooled response envelopes and the whole demand loop is
//! single-threaded by design. A real HTTP front, however, runs one
//! serving thread per core. This module bridges the two worlds the
//! same way the parallel replication runner does:
//!
//! * [`ServeSpec`] is a plain-data **blueprint** of a deployment
//!   (middleware config + per-release outcome/latency models + master
//!   seed). It is `Send + Sync`, so it can be shared across worker
//!   threads.
//! * [`DemandWorker`] is the **per-worker instantiation**: each
//!   serving thread builds its own middleware, endpoints and RNG
//!   stream from the shared spec (`spec.worker(index)`), so the
//!   steady-state demand path touches no cross-thread state at all —
//!   no locks, no atomics, no sharing. Worker `i`'s random stream is
//!   derived as `MasterSeed::indexed_stream("serve-worker", i)`, so a
//!   fleet of workers is deterministic given (seed, worker index,
//!   demand index) regardless of request interleaving across workers.
//!
//! [`DemandOutcome`] is the `Copy` summary a front returns to its
//! client: the same fields the middleware's `DemandRecord` carries,
//! minus the per-release buffer (which is recycled straight back into
//! the middleware's pool, keeping the loop allocation-free).

use wsu_simcore::dist::DelayModel;
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_wstack::endpoint::SyntheticService;
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::OutcomeProfile;

use crate::adjudicate::SystemVerdict;
use crate::error::CoreError;
use crate::middleware::{MiddlewareConfig, UpgradeMiddleware};

/// Blueprint of one deployed release: everything needed to rebuild its
/// synthetic endpoint on any worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleaseSpec {
    /// Service name (e.g. `"Quote"`).
    pub service: String,
    /// Release string (e.g. `"1.0"`).
    pub release: String,
    /// Outcome probabilities the release samples from.
    pub outcomes: OutcomeProfile,
    /// Execution-time model.
    pub exec_time: DelayModel,
    /// Traffic weight share under
    /// [`OperatingMode::WeightedFleet`](crate::modes::OperatingMode::WeightedFleet);
    /// ignored by the parallel/sequential modes.
    pub weight: f64,
}

impl ReleaseSpec {
    /// Creates a release blueprint at the default weight `1.0`.
    pub fn new(
        service: &str,
        release: &str,
        outcomes: OutcomeProfile,
        exec_time: DelayModel,
    ) -> ReleaseSpec {
        ReleaseSpec {
            service: service.to_string(),
            release: release.to_string(),
            outcomes,
            exec_time,
            weight: 1.0,
        }
    }

    /// Sets the weighted-fleet traffic share (builder style).
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> ReleaseSpec {
        self.weight = weight;
        self
    }
}

/// A `Send + Sync` blueprint of a served deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Middleware configuration (mode, timeout, adjudicator).
    pub middleware: MiddlewareConfig,
    /// The releases deployed behind the interface, in deploy order.
    pub releases: Vec<ReleaseSpec>,
    /// Master seed; each worker derives an independent stream from it.
    pub seed: u64,
    /// Operation name stamped on the request envelope.
    pub operation: String,
    /// Sharded serving: demand randomness is keyed by a fleet-global
    /// demand index (`indexed_stream("serve-demand", n)`) instead of
    /// one sequential per-worker stream, so a demand's outcome depends
    /// only on `(seed, n)` — not on which worker served it or how
    /// requests interleaved. Fronts claim `n` atomically and call
    /// [`DemandWorker::demand_indexed`]; this is the `--shards`
    /// determinism contract applied to live serving, letting a front
    /// scale its worker fleet without changing a single outcome.
    pub sharded: bool,
}

impl ServeSpec {
    /// A spec with no releases; push [`ReleaseSpec`]s before serving.
    pub fn new(middleware: MiddlewareConfig, seed: u64) -> ServeSpec {
        ServeSpec {
            middleware,
            releases: Vec::new(),
            seed,
            operation: "invoke".to_string(),
            sharded: false,
        }
    }

    /// Adds a release (builder style).
    #[must_use]
    pub fn with_release(mut self, release: ReleaseSpec) -> ServeSpec {
        self.releases.push(release);
        self
    }

    /// Switches the spec to sharded serving (builder style); see the
    /// [`sharded`](ServeSpec::sharded) field.
    #[must_use]
    pub fn with_sharding(mut self) -> ServeSpec {
        self.sharded = true;
        self
    }

    /// The paper's two-release upgrade scenario: release 1.0 and a
    /// slightly more reliable 1.1 running in parallel-reliability mode
    /// behind the default 2 s timeout.
    pub fn paper(seed: u64) -> ServeSpec {
        ServeSpec::new(MiddlewareConfig::default(), seed)
            .with_release(ReleaseSpec::new(
                "Quote",
                "1.0",
                OutcomeProfile::new(0.999, 0.0005, 0.0005),
                DelayModel::exponential(0.3),
            ))
            .with_release(ReleaseSpec::new(
                "Quote",
                "1.1",
                OutcomeProfile::new(0.9995, 0.00025, 0.00025),
                DelayModel::exponential(0.25),
            ))
    }

    /// A fully deterministic two-release deployment — every demand is
    /// answered correctly with constant execution times, so round-trip
    /// smoke tests can assert exact outcomes.
    pub fn deterministic(seed: u64) -> ServeSpec {
        ServeSpec::new(MiddlewareConfig::default(), seed)
            .with_release(ReleaseSpec::new(
                "Quote",
                "1.0",
                OutcomeProfile::always_correct(),
                DelayModel::constant(0.05),
            ))
            .with_release(ReleaseSpec::new(
                "Quote",
                "1.1",
                OutcomeProfile::always_correct(),
                DelayModel::constant(0.04),
            ))
    }

    /// A three-release staged canary fleet: a stable 1.0 carrying 70%
    /// of the traffic, a 1.1 canary at 20% and a 1.2 canary at 10%,
    /// all deterministic (always correct, constant execution times) so
    /// round-trip tests can pin exact counter agreement across a
    /// mid-run [`DemandWorker::promote`].
    pub fn canary_fleet(seed: u64) -> ServeSpec {
        let middleware = MiddlewareConfig {
            mode: crate::modes::OperatingMode::WeightedFleet,
            ..MiddlewareConfig::default()
        };
        ServeSpec::new(middleware, seed)
            .with_release(
                ReleaseSpec::new(
                    "Quote",
                    "1.0",
                    OutcomeProfile::always_correct(),
                    DelayModel::constant(0.05),
                )
                .with_weight(0.7),
            )
            .with_release(
                ReleaseSpec::new(
                    "Quote",
                    "1.1",
                    OutcomeProfile::always_correct(),
                    DelayModel::constant(0.04),
                )
                .with_weight(0.2),
            )
            .with_release(
                ReleaseSpec::new(
                    "Quote",
                    "1.2",
                    OutcomeProfile::always_correct(),
                    DelayModel::constant(0.03),
                )
                .with_weight(0.1),
            )
    }

    /// Builds worker `index`'s private demand loop: its own
    /// middleware, endpoints and RNG stream. Call once per serving
    /// thread, from that thread.
    pub fn worker(&self, index: u64) -> DemandWorker {
        let mut middleware = UpgradeMiddleware::new(self.middleware);
        for release in &self.releases {
            let id = middleware.deploy(
                SyntheticService::builder(&release.service, &release.release)
                    .outcomes(release.outcomes)
                    .exec_time(release.exec_time)
                    .build(),
            );
            middleware
                .releases_mut()
                .set_weight(id, release.weight)
                .expect("spec weights are finite and non-negative");
        }
        let master = MasterSeed::new(self.seed);
        DemandWorker {
            middleware,
            rng: master.indexed_stream("serve-worker", index),
            master,
            request: Envelope::request(&self.operation),
            clock: 0.0,
            worker: index,
        }
    }
}

/// The consumer-visible outcome of one served demand (`Copy`, so
/// fronts can hand it around without touching the record pool).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandOutcome {
    /// Worker-local demand sequence number.
    pub seq: u64,
    /// The worker that served it.
    pub worker: u64,
    /// Virtual dispatch instant (worker-local virtual clock), seconds.
    pub t: f64,
    /// The adjudicated verdict.
    pub verdict: SystemVerdict,
    /// The consumer's virtual wait, in seconds (includes `dT`).
    pub response_time: f64,
    /// How many releases responded within the timeout.
    pub responders: usize,
    /// Index of the release whose response was forwarded, if one was.
    pub source: Option<usize>,
}

impl DemandOutcome {
    /// The verdict's table label (`CR`, `ER`, `NER`, `NRDT`).
    pub fn verdict_label(&self) -> &'static str {
        self.verdict.label()
    }
}

/// One worker thread's private demand loop over the shared blueprint.
///
/// Not `Send` (and doesn't need to be): build it *on* the serving
/// thread via [`ServeSpec::worker`].
#[derive(Debug)]
pub struct DemandWorker {
    middleware: UpgradeMiddleware,
    rng: StreamRng,
    master: MasterSeed,
    request: Envelope,
    clock: f64,
    worker: u64,
}

impl DemandWorker {
    /// Serves one demand end to end on this worker's middleware and
    /// advances its virtual clock by the consumer's wait. The demand
    /// record's buffer is recycled immediately, so the steady-state
    /// path allocates nothing.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoActiveReleases`] if the spec deployed nothing.
    pub fn demand(&mut self) -> Result<DemandOutcome, CoreError> {
        self.middleware.set_virtual_time(self.clock);
        let record = self.middleware.process(&self.request, &mut self.rng)?;
        Ok(self.finish(record))
    }

    /// Serves one demand whose randomness is keyed by a fleet-global
    /// demand index: the draw stream is
    /// `indexed_stream("serve-demand", global)`, so the outcome
    /// depends only on `(spec.seed, global)` — identical no matter
    /// which worker serves it or how requests interleave across the
    /// fleet. Fronts serving a [sharded](ServeSpec::sharded) spec
    /// claim `global` atomically and call this instead of
    /// [`demand`](DemandWorker::demand).
    ///
    /// # Errors
    ///
    /// [`CoreError::NoActiveReleases`] if the spec deployed nothing.
    pub fn demand_indexed(&mut self, global: u64) -> Result<DemandOutcome, CoreError> {
        let mut rng = self.master.indexed_stream("serve-demand", global);
        self.middleware.set_virtual_time(self.clock);
        let record = self.middleware.process(&self.request, &mut rng)?;
        Ok(self.finish(record))
    }

    /// Folds a processed record into the worker's clock and outcome
    /// summary, recycling the record's buffer.
    fn finish(&mut self, record: crate::middleware::DemandRecord) -> DemandOutcome {
        let outcome = DemandOutcome {
            seq: record.seq,
            worker: self.worker,
            t: record.t,
            verdict: record.system.verdict,
            response_time: record.system.response_time.as_secs(),
            responders: record.system.responders,
            source: record.system.source.map(|r| r.index()),
        };
        self.clock += outcome.response_time;
        self.middleware.recycle(record);
        outcome
    }

    /// Demands served by this worker so far.
    pub fn demands(&self) -> u64 {
        self.middleware.demands()
    }

    /// This worker's index within the fleet.
    pub fn worker_index(&self) -> u64 {
        self.worker
    }

    /// The worker's virtual clock (sum of served response times).
    pub fn virtual_time(&self) -> f64 {
        self.clock
    }

    /// The middleware's configured timeout, in seconds — an upper
    /// bound (plus `dT`) on any single demand's virtual wait.
    pub fn timeout_secs(&self) -> f64 {
        self.middleware.config().timeout.as_secs()
    }

    /// Mid-run promotion for a weighted fleet: routes **all**
    /// subsequent traffic to `release` (weight `1.0`) and none to the
    /// other deployed releases (weight `0.0`). Idempotent; demands
    /// already served are unaffected, demands served afterwards go to
    /// the promoted release — none are dropped or double-counted.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownRelease`] if `release` is out of range.
    pub fn promote(&mut self, release: usize) -> Result<(), CoreError> {
        use crate::release::ReleaseId;
        let target = ReleaseId::new(release);
        let releases = self.middleware.releases_mut();
        // Validate the target before touching any weight.
        releases.weight(target)?;
        for index in 0..releases.len() {
            let id = ReleaseId::new(index);
            let weight = if id == target { 1.0 } else { 0.0 };
            releases.set_weight(id, weight)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_wstack::outcome::ResponseClass;

    /// The whole point of the facade: the blueprint crosses threads.
    #[test]
    fn serve_spec_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeSpec>();
        assert_send_sync::<ReleaseSpec>();
        assert_send_sync::<DemandOutcome>();
    }

    #[test]
    fn deterministic_spec_serves_correct_demands() {
        let spec = ServeSpec::deterministic(7);
        let mut worker = spec.worker(0);
        for seq in 0..10 {
            let outcome = worker.demand().expect("demand");
            assert_eq!(outcome.seq, seq);
            assert_eq!(outcome.worker, 0);
            assert_eq!(
                outcome.verdict,
                SystemVerdict::Response(ResponseClass::Correct)
            );
            assert_eq!(outcome.responders, 2);
            // max(0.05, 0.04) + dT = 0.15.
            assert!((outcome.response_time - 0.15).abs() < 1e-12);
        }
        assert_eq!(worker.demands(), 10);
        assert!((worker.virtual_time() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn virtual_clock_stamps_dispatch_instants() {
        let spec = ServeSpec::deterministic(7);
        let mut worker = spec.worker(3);
        let first = worker.demand().expect("demand");
        let second = worker.demand().expect("demand");
        assert_eq!(first.t, 0.0);
        assert!((second.t - first.response_time).abs() < 1e-12);
        assert_eq!(worker.worker_index(), 3);
    }

    #[test]
    fn workers_draw_independent_deterministic_streams() {
        let spec = ServeSpec::paper(42);
        // Same worker index twice: identical outcome sequence.
        let run = |index: u64| -> Vec<(u64, String, f64)> {
            let mut worker = spec.worker(index);
            (0..50)
                .map(|_| {
                    let o = worker.demand().expect("demand");
                    (o.seq, o.verdict_label().to_string(), o.response_time)
                })
                .collect()
        };
        assert_eq!(run(0), run(0));
        assert_eq!(run(5), run(5));
        // Distinct indices: distinct streams (response times differ).
        let a = run(0);
        let b = run(1);
        assert!(a.iter().zip(&b).any(|(x, y)| x.2 != y.2));
    }

    #[test]
    fn indexed_demands_depend_only_on_seed_and_global_index() {
        let spec = ServeSpec::paper(42).with_sharding();
        assert!(spec.sharded);
        let outcomes = |worker: u64| -> Vec<(String, f64)> {
            let mut w = spec.worker(worker);
            (0..40)
                .map(|g| {
                    let o = w.demand_indexed(g).expect("demand");
                    (o.verdict_label().to_string(), o.response_time)
                })
                .collect()
        };
        // Any worker serving global demand `g` sees the same outcome.
        let a = outcomes(0);
        assert_eq!(a, outcomes(1));
        // Interleaving demands across two workers changes nothing.
        let mut w2 = spec.worker(2);
        let mut w3 = spec.worker(3);
        let mut c = Vec::new();
        for g in 0..40u64 {
            let w = if g % 2 == 0 { &mut w2 } else { &mut w3 };
            let o = w.demand_indexed(g).expect("demand");
            c.push((o.verdict_label().to_string(), o.response_time));
        }
        assert_eq!(a, c);
        // The paper spec actually varies (exponential latencies).
        assert!(a.iter().any(|(_, t)| *t != a[0].1));
    }

    #[test]
    fn empty_spec_reports_no_active_releases() {
        let spec = ServeSpec::new(MiddlewareConfig::default(), 1);
        let mut worker = spec.worker(0);
        assert_eq!(worker.demand(), Err(CoreError::NoActiveReleases));
    }

    #[test]
    fn timeout_bound_is_exposed() {
        let spec = ServeSpec::deterministic(1);
        let worker = spec.worker(0);
        assert_eq!(worker.timeout_secs(), 2.0);
    }

    #[test]
    fn canary_fleet_routes_by_weight_to_one_release_per_demand() {
        let spec = ServeSpec::canary_fleet(9);
        let mut worker = spec.worker(0);
        let mut counts = [0u64; 3];
        for _ in 0..2_000 {
            let outcome = worker.demand().expect("demand");
            assert_eq!(outcome.responders, 1);
            counts[outcome.source.expect("weighted routing forwards")] += 1;
        }
        // 70/20/10 split, with slack for sampling noise.
        assert!(counts[0] > 1_250, "counts: {counts:?}");
        assert!(counts[1] > 250, "counts: {counts:?}");
        assert!(counts[2] > 100, "counts: {counts:?}");
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn promotion_redirects_all_traffic_without_losing_demands() {
        let spec = ServeSpec::canary_fleet(10);
        let mut worker = spec.worker(0);
        for _ in 0..100 {
            worker.demand().expect("demand");
        }
        worker.promote(2).expect("release 2 is deployed");
        for _ in 0..100 {
            let outcome = worker.demand().expect("demand");
            assert_eq!(outcome.source, Some(2));
        }
        // No demand was dropped or double-counted across the cutover.
        assert_eq!(worker.demands(), 200);
        assert_eq!(
            worker.promote(7),
            Err(CoreError::UnknownRelease(crate::release::ReleaseId::new(7)))
        );
    }
}
