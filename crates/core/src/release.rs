//! Deployed releases and their lifecycle.
//!
//! The middleware manages a set of releases of the same service — in the
//! paper's study two (WS 1.0 and WS 1.1), but the architecture allows
//! more ("one or more old releases being kept operational"). Each release
//! is a [`ServiceEndpoint`] with a lifecycle state the management
//! subsystem drives: `Active → Suspended → Active` (recovery) and
//! `Active → PhasedOut` (after the switch).

use std::fmt;

use wsu_simcore::rng::StreamRng;
use wsu_wstack::endpoint::{Invocation, ServiceEndpoint};
use wsu_wstack::message::Envelope;

use crate::error::CoreError;

/// Identifies one deployed release within a middleware instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReleaseId(usize);

impl ReleaseId {
    /// Creates an id (indices are assigned by the [`ReleaseSet`]).
    pub fn new(index: usize) -> ReleaseId {
        ReleaseId(index)
    }

    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ReleaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "release#{}", self.0)
    }
}

/// Lifecycle state of a deployed release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReleaseState {
    /// Serving demands.
    Active,
    /// Temporarily out of rotation (e.g. after repeated evident
    /// failures); can be restarted.
    Suspended,
    /// Permanently removed from rotation after the switch.
    PhasedOut,
}

impl ReleaseState {
    /// Returns `true` if the release should receive demands.
    pub fn is_serving(self) -> bool {
        self == ReleaseState::Active
    }
}

/// Metadata about a deployed release.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseInfo {
    /// The release's id in the set.
    pub id: ReleaseId,
    /// The service name from the release's description.
    pub service: String,
    /// The release string from the description (e.g. `"1.1"`).
    pub version: String,
    /// Current lifecycle state.
    pub state: ReleaseState,
}

/// One deployed release: endpoint plus state.
struct Deployed {
    endpoint: Box<dyn ServiceEndpoint>,
    state: ReleaseState,
    consecutive_evident_failures: u32,
    /// Relative traffic weight for weighted-fleet routing. Ignored by
    /// the parallel/sequential modes, which dispatch to every active
    /// release regardless of weight.
    weight: f64,
}

/// The set of deployed releases behind one middleware instance.
pub struct ReleaseSet {
    releases: Vec<Deployed>,
    /// Ids of serving releases, in deployment order. Maintained on every
    /// lifecycle transition so the per-demand path can borrow it instead
    /// of rebuilding a fresh `Vec`.
    active: Vec<ReleaseId>,
    /// Cumulative weights parallel to `active` (`cum_weights[i]` is the
    /// sum of the first `i + 1` active releases' weights). Rebuilt only
    /// on lifecycle/weight changes, so weighted routing is a single
    /// multiply plus a short scan — no per-demand allocation.
    cum_weights: Vec<f64>,
}

impl ReleaseSet {
    /// Creates an empty set.
    pub fn new() -> ReleaseSet {
        ReleaseSet {
            releases: Vec::new(),
            active: Vec::new(),
            cum_weights: Vec::new(),
        }
    }

    fn rebuild_active(&mut self) {
        self.active.clear();
        self.active.extend(
            self.releases
                .iter()
                .enumerate()
                .filter(|(_, d)| d.state.is_serving())
                .map(|(i, _)| ReleaseId(i)),
        );
        self.rebuild_cum_weights();
    }

    fn rebuild_cum_weights(&mut self) {
        self.cum_weights.clear();
        let mut total = 0.0;
        for id in &self.active {
            total += self.releases[id.0].weight;
            self.cum_weights.push(total);
        }
    }

    /// Deploys a release, returning its id. New releases start `Active`
    /// with weight 1.0.
    pub fn deploy(&mut self, endpoint: impl ServiceEndpoint + 'static) -> ReleaseId {
        self.deploy_boxed(Box::new(endpoint))
    }

    /// Deploys a boxed release.
    pub fn deploy_boxed(&mut self, endpoint: Box<dyn ServiceEndpoint>) -> ReleaseId {
        let id = ReleaseId(self.releases.len());
        self.releases.push(Deployed {
            endpoint,
            state: ReleaseState::Active,
            consecutive_evident_failures: 0,
            weight: 1.0,
        });
        self.active.push(id);
        self.cum_weights
            .push(self.cum_weights.last().copied().unwrap_or(0.0) + 1.0);
        id
    }

    /// Number of deployed releases (any state).
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Propagates the current virtual time to every deployed endpoint
    /// (whatever its state), so clock-aware wrappers such as fault
    /// injectors with virtual-time windows stay in sync with the
    /// middleware.
    pub fn advance_clock(&mut self, now_secs: f64) {
        for deployed in &mut self.releases {
            deployed.endpoint.advance_clock(now_secs);
        }
    }

    /// Returns `true` if no releases are deployed.
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// Ids of releases currently serving demands, in deployment order.
    pub fn active_ids(&self) -> Vec<ReleaseId> {
        self.active.clone()
    }

    /// Borrowed view of the serving releases, in deployment order. The
    /// per-demand hot path uses this to avoid allocating a fresh list.
    pub fn active_slice(&self) -> &[ReleaseId] {
        &self.active
    }

    /// Metadata for every deployed release.
    pub fn infos(&self) -> Vec<ReleaseInfo> {
        self.releases
            .iter()
            .enumerate()
            .map(|(i, d)| ReleaseInfo {
                id: ReleaseId(i),
                service: d.endpoint.describe().service().to_owned(),
                version: d.endpoint.describe().release().to_owned(),
                state: d.state,
            })
            .collect()
    }

    /// Current state of a release.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRelease`] for an unknown id.
    pub fn state(&self, id: ReleaseId) -> Result<ReleaseState, CoreError> {
        self.releases
            .get(id.0)
            .map(|d| d.state)
            .ok_or(CoreError::UnknownRelease(id))
    }

    /// Invokes a release, updating its consecutive-evident-failure count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRelease`] for an unknown id and
    /// [`CoreError::InvalidReleaseState`] if the release is not active.
    pub fn invoke(
        &mut self,
        id: ReleaseId,
        request: &Envelope,
        rng: &mut StreamRng,
    ) -> Result<Invocation, CoreError> {
        let deployed = self
            .releases
            .get_mut(id.0)
            .ok_or(CoreError::UnknownRelease(id))?;
        if !deployed.state.is_serving() {
            return Err(CoreError::InvalidReleaseState {
                release: id,
                operation: "invoked",
            });
        }
        let invocation = deployed.endpoint.invoke(request, rng);
        if invocation.class == wsu_wstack::outcome::ResponseClass::EvidentFailure {
            deployed.consecutive_evident_failures += 1;
        } else {
            deployed.consecutive_evident_failures = 0;
        }
        Ok(invocation)
    }

    /// Sets a release's traffic weight (weighted-fleet routing only).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRelease`] for an unknown id and
    /// [`CoreError::InvalidWeight`] unless the weight is finite and
    /// non-negative.
    pub fn set_weight(&mut self, id: ReleaseId, weight: f64) -> Result<(), CoreError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(CoreError::InvalidWeight { release: id });
        }
        let deployed = self
            .releases
            .get_mut(id.0)
            .ok_or(CoreError::UnknownRelease(id))?;
        deployed.weight = weight;
        self.rebuild_cum_weights();
        Ok(())
    }

    /// A release's current traffic weight.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRelease`] for an unknown id.
    pub fn weight(&self, id: ReleaseId) -> Result<f64, CoreError> {
        self.releases
            .get(id.0)
            .map(|d| d.weight)
            .ok_or(CoreError::UnknownRelease(id))
    }

    /// Sum of the active releases' weights.
    pub fn total_active_weight(&self) -> f64 {
        self.cum_weights.last().copied().unwrap_or(0.0)
    }

    /// Routes a uniform draw `u ∈ [0, 1)` to one active release in
    /// proportion to the weights. Returns `None` when nothing is active;
    /// when every active weight is zero the first active release takes
    /// the demand (the fleet must still answer).
    pub fn route(&self, u: f64) -> Option<ReleaseId> {
        let total = self.total_active_weight();
        if self.active.is_empty() {
            return None;
        }
        if total <= 0.0 {
            return Some(self.active[0]);
        }
        let target = u * total;
        for (i, cum) in self.cum_weights.iter().enumerate() {
            if target < *cum {
                return Some(self.active[i]);
            }
        }
        // u == 1.0 - ε rounding: fall back to the last active release.
        self.active.last().copied()
    }

    /// Consecutive evident failures of a release (for recovery policies).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRelease`] for an unknown id.
    pub fn consecutive_evident_failures(&self, id: ReleaseId) -> Result<u32, CoreError> {
        self.releases
            .get(id.0)
            .map(|d| d.consecutive_evident_failures)
            .ok_or(CoreError::UnknownRelease(id))
    }

    /// Suspends an active release (takes it out of rotation).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRelease`] or
    /// [`CoreError::InvalidReleaseState`] if it is not active.
    pub fn suspend(&mut self, id: ReleaseId) -> Result<(), CoreError> {
        self.transition(
            id,
            ReleaseState::Active,
            ReleaseState::Suspended,
            "suspended",
        )
    }

    /// Restarts a suspended release (recovery of a failed release,
    /// Section 4.1). Resets the failure counter.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRelease`] or
    /// [`CoreError::InvalidReleaseState`] if it is not suspended.
    pub fn restart(&mut self, id: ReleaseId) -> Result<(), CoreError> {
        self.transition(
            id,
            ReleaseState::Suspended,
            ReleaseState::Active,
            "restarted",
        )?;
        self.releases[id.0].consecutive_evident_failures = 0;
        Ok(())
    }

    /// Permanently phases a release out of the composite service.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRelease`]; phasing out is allowed from
    /// any state except `PhasedOut` itself.
    pub fn phase_out(&mut self, id: ReleaseId) -> Result<(), CoreError> {
        let deployed = self
            .releases
            .get_mut(id.0)
            .ok_or(CoreError::UnknownRelease(id))?;
        if deployed.state == ReleaseState::PhasedOut {
            return Err(CoreError::InvalidReleaseState {
                release: id,
                operation: "phased out",
            });
        }
        deployed.state = ReleaseState::PhasedOut;
        self.rebuild_active();
        Ok(())
    }

    fn transition(
        &mut self,
        id: ReleaseId,
        from: ReleaseState,
        to: ReleaseState,
        operation: &'static str,
    ) -> Result<(), CoreError> {
        let deployed = self
            .releases
            .get_mut(id.0)
            .ok_or(CoreError::UnknownRelease(id))?;
        if deployed.state != from {
            return Err(CoreError::InvalidReleaseState {
                release: id,
                operation,
            });
        }
        deployed.state = to;
        self.rebuild_active();
        Ok(())
    }
}

impl Default for ReleaseSet {
    fn default() -> ReleaseSet {
        ReleaseSet::new()
    }
}

impl fmt::Debug for ReleaseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.infos()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_wstack::endpoint::SyntheticService;
    use wsu_wstack::outcome::OutcomeProfile;

    fn service(version: &str) -> SyntheticService {
        SyntheticService::builder("Svc", version).build()
    }

    #[test]
    fn deploy_assigns_sequential_ids() {
        let mut set = ReleaseSet::new();
        let a = set.deploy(service("1.0"));
        let b = set.deploy(service("1.1"));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.active_ids(), vec![a, b]);
        assert_eq!(set.active_slice(), &[a, b]);
    }

    #[test]
    fn infos_reflect_descriptions() {
        let mut set = ReleaseSet::new();
        set.deploy(service("1.0"));
        set.deploy(service("1.1"));
        let infos = set.infos();
        assert_eq!(infos[0].version, "1.0");
        assert_eq!(infos[1].version, "1.1");
        assert_eq!(infos[0].service, "Svc");
        assert_eq!(infos[0].state, ReleaseState::Active);
    }

    #[test]
    fn lifecycle_transitions() {
        let mut set = ReleaseSet::new();
        let id = set.deploy(service("1.0"));
        set.suspend(id).unwrap();
        assert_eq!(set.state(id).unwrap(), ReleaseState::Suspended);
        assert!(set.active_ids().is_empty());
        assert!(set.active_slice().is_empty());
        set.restart(id).unwrap();
        assert_eq!(set.state(id).unwrap(), ReleaseState::Active);
        assert_eq!(set.active_slice(), &[id]);
        set.phase_out(id).unwrap();
        assert_eq!(set.state(id).unwrap(), ReleaseState::PhasedOut);
        assert!(set.active_slice().is_empty());
    }

    #[test]
    fn invalid_transitions_error() {
        let mut set = ReleaseSet::new();
        let id = set.deploy(service("1.0"));
        assert!(set.restart(id).is_err()); // not suspended
        set.phase_out(id).unwrap();
        assert!(set.suspend(id).is_err());
        assert!(set.phase_out(id).is_err()); // already phased out
    }

    #[test]
    fn unknown_ids_error() {
        let mut set = ReleaseSet::new();
        let ghost = ReleaseId::new(42);
        assert_eq!(set.state(ghost), Err(CoreError::UnknownRelease(ghost)));
        assert!(set.suspend(ghost).is_err());
        assert!(set.consecutive_evident_failures(ghost).is_err());
        let mut rng = StreamRng::from_seed(1);
        assert!(set
            .invoke(ghost, &Envelope::request("invoke"), &mut rng)
            .is_err());
    }

    #[test]
    fn invoking_suspended_release_errors() {
        let mut set = ReleaseSet::new();
        let id = set.deploy(service("1.0"));
        set.suspend(id).unwrap();
        let mut rng = StreamRng::from_seed(2);
        let err = set
            .invoke(id, &Envelope::request("invoke"), &mut rng)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidReleaseState { .. }));
    }

    #[test]
    fn evident_failure_counter_tracks_streaks() {
        let mut set = ReleaseSet::new();
        let id = set.deploy(
            SyntheticService::builder("Svc", "1.0")
                .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
                .build(),
        );
        let mut rng = StreamRng::from_seed(3);
        for expected in 1..=3u32 {
            set.invoke(id, &Envelope::request("invoke"), &mut rng)
                .unwrap();
            assert_eq!(set.consecutive_evident_failures(id).unwrap(), expected);
        }
        // Recovery resets the counter.
        set.suspend(id).unwrap();
        set.restart(id).unwrap();
        assert_eq!(set.consecutive_evident_failures(id).unwrap(), 0);
    }

    #[test]
    fn successful_invocation_resets_counter() {
        let mut set = ReleaseSet::new();
        let id = set.deploy(service("1.0")); // always correct
        let mut rng = StreamRng::from_seed(4);
        set.invoke(id, &Envelope::request("invoke"), &mut rng)
            .unwrap();
        assert_eq!(set.consecutive_evident_failures(id).unwrap(), 0);
    }

    #[test]
    fn weights_default_to_one_and_route_proportionally() {
        let mut set = ReleaseSet::new();
        let a = set.deploy(service("1.0"));
        let b = set.deploy(service("1.1"));
        assert_eq!(set.weight(a).unwrap(), 1.0);
        assert_eq!(set.total_active_weight(), 2.0);
        set.set_weight(a, 0.75).unwrap();
        set.set_weight(b, 0.25).unwrap();
        assert_eq!(set.total_active_weight(), 1.0);
        assert_eq!(set.route(0.0), Some(a));
        assert_eq!(set.route(0.74), Some(a));
        assert_eq!(set.route(0.76), Some(b));
        assert_eq!(set.route(0.999_999), Some(b));
    }

    #[test]
    fn routing_skips_non_serving_releases() {
        let mut set = ReleaseSet::new();
        let a = set.deploy(service("1.0"));
        let b = set.deploy(service("1.1"));
        let c = set.deploy(service("1.2"));
        set.set_weight(a, 0.5).unwrap();
        set.set_weight(b, 0.3).unwrap();
        set.set_weight(c, 0.2).unwrap();
        set.suspend(b).unwrap();
        // Remaining mass is 0.7: a covers [0, 5/7), c covers [5/7, 1).
        assert_eq!(set.route(0.5), Some(a));
        assert_eq!(set.route(0.8), Some(c));
        set.restart(b).unwrap();
        assert_eq!(set.route(0.6), Some(b));
    }

    #[test]
    fn routing_with_zero_total_weight_uses_first_active() {
        let mut set = ReleaseSet::new();
        let a = set.deploy(service("1.0"));
        let b = set.deploy(service("1.1"));
        set.set_weight(a, 0.0).unwrap();
        set.set_weight(b, 0.0).unwrap();
        assert_eq!(set.route(0.5), Some(a));
        set.suspend(a).unwrap();
        assert_eq!(set.route(0.5), Some(b));
    }

    #[test]
    fn routing_empty_set_returns_none() {
        let set = ReleaseSet::new();
        assert_eq!(set.route(0.5), None);
        let mut set = ReleaseSet::new();
        let a = set.deploy(service("1.0"));
        set.suspend(a).unwrap();
        assert_eq!(set.route(0.5), None);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let mut set = ReleaseSet::new();
        let a = set.deploy(service("1.0"));
        assert_eq!(
            set.set_weight(a, -0.1),
            Err(CoreError::InvalidWeight { release: a })
        );
        assert!(set.set_weight(a, f64::NAN).is_err());
        assert!(set.set_weight(a, f64::INFINITY).is_err());
        assert!(set.set_weight(ReleaseId::new(9), 1.0).is_err());
        assert!(set.weight(ReleaseId::new(9)).is_err());
        // The rejected weight left the table untouched.
        assert_eq!(set.weight(a).unwrap(), 1.0);
        assert_eq!(set.total_active_weight(), 1.0);
    }

    #[test]
    fn display_and_debug() {
        let mut set = ReleaseSet::new();
        let id = set.deploy(service("1.0"));
        assert_eq!(id.to_string(), "release#0");
        assert!(format!("{set:?}").contains("1.0"));
        assert!(ReleaseState::Active.is_serving());
        assert!(!ReleaseState::PhasedOut.is_serving());
    }
}
