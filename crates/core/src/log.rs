//! A bounded structured event log.
//!
//! The management subsystem "is also responsible … for logging the
//! information which may be needed for further analysis" (Section 4.1).
//! [`EventLog`] is a ring buffer of timestamped entries the orchestrator
//! writes decisions and reconfigurations into.

use std::collections::VecDeque;
use std::fmt;

/// Severity / kind of a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogLevel {
    /// Routine information.
    Info,
    /// Something unusual (e.g. a release suspended).
    Warning,
    /// A management decision (e.g. the switch to the new release).
    Decision,
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The demand count when the entry was written.
    pub demand: u64,
    /// Severity.
    pub level: LogLevel,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[demand {}] {:?}: {}",
            self.demand, self.level, self.message
        )
    }
}

/// A bounded, append-only log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Creates a log holding at most `capacity` entries (0 disables
    /// retention but still counts writes).
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            entries: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry.
    pub fn push(&mut self, demand: u64, level: LogLevel, message: impl Into<String>) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(LogEntry {
            demand,
            level,
            message: message.into(),
        });
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Retained entries of a given level.
    pub fn entries_at(&self, level: LogLevel) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.level == level)
    }

    /// Entries evicted (or never retained) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut log = EventLog::new(10);
        log.push(1, LogLevel::Info, "started");
        log.push(2, LogLevel::Decision, "switched");
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        let messages: Vec<&str> = log.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(messages, vec!["started", "switched"]);
        assert_eq!(log.entries_at(LogLevel::Decision).count(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = EventLog::new(2);
        for i in 0..5 {
            log.push(i, LogLevel::Info, format!("e{i}"));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let demands: Vec<u64> = log.entries().map(|e| e.demand).collect();
        assert_eq!(demands, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut log = EventLog::new(0);
        log.push(1, LogLevel::Warning, "x");
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn entry_display() {
        let entry = LogEntry {
            demand: 7,
            level: LogLevel::Decision,
            message: "switch".into(),
        };
        assert_eq!(entry.to_string(), "[demand 7] Decision: switch");
    }
}
