//! A bounded structured event log (compatibility shim).
//!
//! The management subsystem "is also responsible … for logging the
//! information which may be needed for further analysis" (Section 4.1).
//! That responsibility now lives in `wsu-obs`: the orchestrator emits
//! typed [`wsu_obs::TraceEvent`]s through a [`wsu_obs::Recorder`].
//! [`EventLog`] remains as a thin, deprecated view over a bounded
//! [`TraceRing`] of `Log` events, so existing callers (and the paper's
//! "bounded log" framing) keep working unchanged.

use std::fmt;

use wsu_obs::recorder::Recorder;
use wsu_obs::{TraceEvent, TraceRing};

/// Severity / kind of a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogLevel {
    /// Routine information.
    Info,
    /// Something unusual (e.g. a release suspended).
    Warning,
    /// A management decision (e.g. the switch to the new release).
    Decision,
}

impl LogLevel {
    /// The canonical label (`Info`, `Warning`, `Decision`).
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Info => "Info",
            LogLevel::Warning => "Warning",
            LogLevel::Decision => "Decision",
        }
    }

    /// Parses a canonical label back into a level.
    pub fn from_label(label: &str) -> Option<LogLevel> {
        match label {
            "Info" => Some(LogLevel::Info),
            "Warning" => Some(LogLevel::Warning),
            "Decision" => Some(LogLevel::Decision),
            _ => None,
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The demand count when the entry was written.
    pub demand: u64,
    /// Severity.
    pub level: LogLevel,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[demand {}] {}: {}",
            self.demand, self.level, self.message
        )
    }
}

/// A bounded, append-only log — now a view over the structured tracer.
///
/// Prefer emitting typed [`TraceEvent`]s through a
/// [`wsu_obs::Recorder`]; this shim stores each pushed message as a
/// [`TraceEvent::Log`] in a bounded [`TraceRing`] and converts back to
/// [`LogEntry`] on read.
#[deprecated(
    since = "0.1.0",
    note = "use wsu_obs::Recorder / TraceEvent for structured tracing; EventLog remains as a bounded compatibility view"
)]
#[derive(Debug, Clone)]
pub struct EventLog {
    ring: TraceRing,
    /// `EventLog::new(0)` historically retained nothing but counted
    /// writes; `TraceRing` clamps capacity to 1, so track that case here.
    zero_capacity: bool,
    zero_dropped: u64,
}

#[allow(deprecated)]
impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new(1024)
    }
}

#[allow(deprecated)]
impl EventLog {
    /// Creates a log holding at most `capacity` entries (0 disables
    /// retention but still counts writes).
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            ring: TraceRing::new(capacity.max(1)),
            zero_capacity: capacity == 0,
            zero_dropped: 0,
        }
    }

    /// Appends an entry (with no virtual timestamp; see
    /// [`push_at`](EventLog::push_at)).
    pub fn push(&mut self, demand: u64, level: LogLevel, message: impl Into<String>) {
        self.push_at(0.0, demand, level, message);
    }

    /// Appends an entry stamped with the caller's virtual clock.
    pub fn push_at(&mut self, t: f64, demand: u64, level: LogLevel, message: impl Into<String>) {
        if self.zero_capacity {
            self.zero_dropped += 1;
            return;
        }
        self.ring.record(TraceEvent::Log {
            t,
            demand,
            level: level.as_str().to_string(),
            message: message.into(),
        });
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.ring.iter().filter_map(entry_of).collect()
    }

    /// Retained entries of a given level.
    pub fn entries_at(&self, level: LogLevel) -> Vec<LogEntry> {
        self.ring
            .iter()
            .filter_map(entry_of)
            .filter(|e| e.level == level)
            .collect()
    }

    /// The retained trace events backing this log.
    pub fn trace(&self) -> &TraceRing {
        &self.ring
    }

    /// Entries evicted (or never retained) so far.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped() + self.zero_dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        if self.zero_capacity {
            0
        } else {
            self.ring.len()
        }
    }

    /// Returns `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Converts a retained trace event back into the legacy entry shape.
fn entry_of(event: &TraceEvent) -> Option<LogEntry> {
    match event {
        TraceEvent::Log {
            demand,
            level,
            message,
            ..
        } => Some(LogEntry {
            demand: *demand,
            level: LogLevel::from_label(level).unwrap_or(LogLevel::Info),
            message: message.clone(),
        }),
        _ => None,
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut log = EventLog::new(10);
        log.push(1, LogLevel::Info, "started");
        log.push(2, LogLevel::Decision, "switched");
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        let entries = log.entries();
        let messages: Vec<&str> = entries.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(messages, vec!["started", "switched"]);
        assert_eq!(log.entries_at(LogLevel::Decision).len(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = EventLog::new(2);
        for i in 0..5 {
            log.push(i, LogLevel::Info, format!("e{i}"));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let demands: Vec<u64> = log.entries().iter().map(|e| e.demand).collect();
        assert_eq!(demands, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut log = EventLog::new(0);
        log.push(1, LogLevel::Warning, "x");
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn entry_display() {
        let entry = LogEntry {
            demand: 7,
            level: LogLevel::Decision,
            message: "switch".into(),
        };
        assert_eq!(entry.to_string(), "[demand 7] Decision: switch");
    }

    #[test]
    fn level_display_and_labels_round_trip() {
        for level in [LogLevel::Info, LogLevel::Warning, LogLevel::Decision] {
            assert_eq!(level.to_string(), level.as_str());
            assert_eq!(LogLevel::from_label(level.as_str()), Some(level));
        }
        assert_eq!(LogLevel::from_label("Nope"), None);
    }

    #[test]
    fn entries_are_backed_by_trace_events() {
        let mut log = EventLog::new(4);
        log.push_at(3.5, 9, LogLevel::Decision, "switch");
        let ring = log.trace();
        assert_eq!(ring.len(), 1);
        let event = ring.iter().next().unwrap();
        assert_eq!(event.kind(), "Log");
        assert_eq!(event.virtual_time(), 3.5);
        assert_eq!(event.demand(), 9);
    }
}
