//! Publishing confidence in Web Services (paper Section 6.2).
//!
//! The paper describes several ways a provider (or broker) can expose the
//! confidence in a WS to its consumers:
//!
//! 1. extend the operation's response with a confidence part —
//!    [`augment_response`] (message level) together with
//!    [`extend_response_with_confidence`] (description level);
//! 2. publish a separate `OperationConf` operation —
//!    [`ConfidenceDirectory::handle_conf_request`];
//! 3. publish a *paired* `<op>Conf` operation carrying both result and
//!    confidence — [`paired_response`]; backward compatible;
//! 4. transparent **protocol handlers** that attach/strip the confidence
//!    on each message — [`ProtocolHandler`];
//! 5. a dedicated trusted **mediator** WS that proxies all traffic,
//!    measures confidence itself and republishes it —
//!    [`MediatorService`].
//!
//! [`extend_response_with_confidence`]:
//! wsu_wstack::wsdl::ServiceDescription::extend_response_with_confidence

use std::collections::HashMap;

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::{BlackBoxInference, BlackBoxUpdater};
use wsu_simcore::rng::StreamRng;
use wsu_wstack::endpoint::ServiceEndpoint;
use wsu_wstack::message::{Envelope, Fault, FaultCode, Value};
use wsu_wstack::outcome::ResponseClass;
use wsu_wstack::registry::{PublishedConfidence, Registry, RegistryError, ServiceKey};

use crate::error::CoreError;

/// The message part name used for attached confidence values.
pub const CONFIDENCE_PART: &str = "Conf";

/// Option 1 at the message level: returns a copy of `response` with the
/// confidence attached as a trailing `<Op>Conf` double part.
pub fn augment_response(response: &Envelope, confidence: f64) -> Envelope {
    let mut augmented = response.clone();
    let part = format!("{}{CONFIDENCE_PART}", capitalize(response.operation()));
    augmented.set_part(part, confidence);
    augmented
}

/// Option 3 at the message level: a response to the paired `<op>Conf`
/// operation, carrying the original parts plus the confidence.
pub fn paired_response(response: &Envelope, confidence: f64) -> Envelope {
    let mut paired = Envelope::response(format!("{}{CONFIDENCE_PART}", response.operation()));
    for (name, value) in response.parts() {
        paired.set_part(name.clone(), value.clone());
    }
    paired.set_part(
        format!("{}{CONFIDENCE_PART}", capitalize(response.operation())),
        confidence,
    );
    paired
}

/// Extracts an attached confidence from a response, if present.
pub fn extract_confidence(response: &Envelope) -> Option<f64> {
    response
        .parts()
        .iter()
        .rev()
        .find(|(name, _)| name.ends_with(CONFIDENCE_PART))
        .and_then(|(_, value)| value.as_double())
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Option 2: a per-operation confidence store answering `OperationConf`
/// requests.
#[derive(Debug, Clone, Default)]
pub struct ConfidenceDirectory {
    per_operation: HashMap<String, f64>,
}

impl ConfidenceDirectory {
    /// Creates an empty directory.
    pub fn new() -> ConfidenceDirectory {
        ConfidenceDirectory::default()
    }

    /// Publishes (or updates) the confidence for an operation.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is outside `[0, 1]`.
    pub fn publish(&mut self, operation: impl Into<String>, confidence: f64) {
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence {confidence} not in [0, 1]"
        );
        self.per_operation.insert(operation.into(), confidence);
    }

    /// Reads the confidence for an operation.
    pub fn confidence(&self, operation: &str) -> Option<f64> {
        self.per_operation.get(operation).copied()
    }

    /// Handles an `OperationConf` request (`operation` string parameter)
    /// and produces the response envelope.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchOperation`] if the request has no
    /// `operation` parameter or the operation is unknown.
    pub fn handle_conf_request(&self, request: &Envelope) -> Result<Envelope, CoreError> {
        let op = request
            .part("operation")
            .and_then(Value::as_str)
            .ok_or_else(|| CoreError::NoSuchOperation("<missing operation parameter>".into()))?;
        let confidence = self
            .confidence(op)
            .ok_or_else(|| CoreError::NoSuchOperation(op.to_owned()))?;
        Ok(Envelope::response("OperationConf").with_part("OpConf", confidence))
    }
}

/// Option 4: transparent protocol handlers.
///
/// The service-side handler attaches the current confidence to every
/// outgoing response; the client-side handler strips it off and hands the
/// application the original message plus the confidence. A client
/// without a handler keeps functioning — the extra part is simply
/// ignored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolHandler;

impl ProtocolHandler {
    /// Service side: attach the confidence.
    pub fn attach(response: &Envelope, confidence: f64) -> Envelope {
        augment_response(response, confidence)
    }

    /// Client side: strip the confidence, returning the application
    /// payload and the confidence (if one was attached).
    pub fn strip(response: &Envelope) -> (Envelope, Option<f64>) {
        let confidence = extract_confidence(response);
        if confidence.is_none() {
            return (response.clone(), None);
        }
        let mut stripped = Envelope::response(response.operation());
        for (name, value) in response.parts() {
            if !name.ends_with(CONFIDENCE_PART) {
                stripped.set_part(name.clone(), value.clone());
            }
        }
        (stripped, confidence)
    }
}

/// Option 5: a trusted mediator WS proxying all traffic to an upstream
/// service, measuring the confidence in its correctness from the traffic
/// it sees, and republishing it (to consumers and to a registry).
///
/// The mediator judges correctness like a consumer would: evident
/// failures are visible on the wire; non-evident failures are counted
/// only if the mediator's own oracle catches them (here: ground truth is
/// available in the simulated invocation, so the mediator is a perfect
/// judge — imperfect judging is modelled by the detectors in
/// `wsu-detect`).
pub struct MediatorService<S> {
    upstream: S,
    /// Incremental posterior over the upstream's pfd: each proxied demand
    /// is folded in as a delta, so confidence queries are allocation-free
    /// reads of the cached marginal.
    updater: BlackBoxUpdater,
    pfd_target: f64,
}

impl<S: ServiceEndpoint> MediatorService<S> {
    /// Creates a mediator with a prior over the upstream's pfd and the
    /// pfd target it publishes confidence against.
    ///
    /// # Panics
    ///
    /// Panics if `pfd_target` is outside `(0, 1)`.
    pub fn new(upstream: S, prior: ScaledBeta, pfd_target: f64) -> MediatorService<S> {
        assert!(
            pfd_target > 0.0 && pfd_target < 1.0,
            "pfd target {pfd_target} not in (0, 1)"
        );
        MediatorService {
            upstream,
            updater: BlackBoxInference::new(prior, 512).updater(),
            pfd_target,
        }
    }

    /// Proxies one request, returning the upstream response with the
    /// current confidence attached.
    pub fn mediate(&mut self, request: &Envelope, rng: &mut StreamRng) -> Envelope {
        let invocation = self.upstream.invoke(request, rng);
        let failed = invocation.class != ResponseClass::Correct;
        self.updater.update_to(
            self.updater.demands() + 1,
            self.updater.failures() + u64::from(failed),
        );
        let confidence = self.current_confidence();
        if invocation.response.is_fault() {
            // Faults pass through unmodified; confidence goes with data
            // responses only.
            let fault = invocation
                .response
                .fault_info()
                .cloned()
                .unwrap_or_else(|| Fault::new(FaultCode::Receiver, "unknown"));
            return Envelope::fault(request.operation(), fault);
        }
        augment_response(&invocation.response, confidence)
    }

    /// The mediator's current confidence that the upstream's pfd is at or
    /// below the configured target.
    pub fn current_confidence(&self) -> f64 {
        self.updater.confidence(self.pfd_target)
    }

    /// Demands proxied.
    pub fn demands(&self) -> u64 {
        self.updater.demands()
    }

    /// Failures observed.
    pub fn failures(&self) -> u64 {
        self.updater.failures()
    }

    /// Publishes the current confidence to a registry record.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistryError`] for an unknown key.
    pub fn publish_to_registry(
        &self,
        registry: &mut Registry,
        key: ServiceKey,
    ) -> Result<(), RegistryError> {
        registry.publish_confidence(
            key,
            PublishedConfidence::new(self.pfd_target, self.current_confidence()),
        )
    }

    /// Access to the upstream endpoint.
    pub fn upstream(&self) -> &S {
        &self.upstream
    }
}

impl<S> std::fmt::Debug for MediatorService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediatorService")
            .field("demands", &self.updater.demands())
            .field("failures", &self.updater.failures())
            .field("pfd_target", &self.pfd_target)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_wstack::endpoint::SyntheticService;
    use wsu_wstack::outcome::OutcomeProfile;
    use wsu_wstack::registry::ServiceRecord;
    use wsu_wstack::wsdl::ServiceDescription;

    #[test]
    fn augment_adds_trailing_conf_part() {
        let resp = Envelope::response("operation1").with_part("Op1Result", "ok");
        let augmented = augment_response(&resp, 0.97);
        assert_eq!(
            augmented.part("Operation1Conf").and_then(Value::as_double),
            Some(0.97)
        );
        assert_eq!(
            augmented.part("Op1Result").and_then(Value::as_str),
            Some("ok")
        );
        assert_eq!(extract_confidence(&augmented), Some(0.97));
    }

    #[test]
    fn paired_response_carries_both() {
        let resp = Envelope::response("operation1").with_part("Op1Result", "ok");
        let paired = paired_response(&resp, 0.9);
        assert_eq!(paired.operation(), "operation1Conf");
        assert_eq!(paired.part("Op1Result").and_then(Value::as_str), Some("ok"));
        assert_eq!(extract_confidence(&paired), Some(0.9));
    }

    #[test]
    fn extract_from_plain_response_is_none() {
        let resp = Envelope::response("op").with_part("result", "ok");
        assert_eq!(extract_confidence(&resp), None);
    }

    #[test]
    fn directory_publishes_and_answers() {
        let mut dir = ConfidenceDirectory::new();
        dir.publish("operation1", 0.95);
        assert_eq!(dir.confidence("operation1"), Some(0.95));
        assert_eq!(dir.confidence("other"), None);
        let request = Envelope::request("OperationConf").with_part("operation", "operation1");
        let response = dir.handle_conf_request(&request).unwrap();
        assert_eq!(
            response.part("OpConf").and_then(Value::as_double),
            Some(0.95)
        );
    }

    #[test]
    fn directory_errors_on_unknown_operation() {
        let dir = ConfidenceDirectory::new();
        let request = Envelope::request("OperationConf").with_part("operation", "ghost");
        assert!(matches!(
            dir.handle_conf_request(&request),
            Err(CoreError::NoSuchOperation(_))
        ));
        let no_param = Envelope::request("OperationConf");
        assert!(dir.handle_conf_request(&no_param).is_err());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn directory_rejects_bad_confidence() {
        ConfidenceDirectory::new().publish("op", 1.2);
    }

    #[test]
    fn protocol_handlers_round_trip() {
        let resp = Envelope::response("op").with_part("result", 7i64);
        let wire = ProtocolHandler::attach(&resp, 0.8);
        let (stripped, conf) = ProtocolHandler::strip(&wire);
        assert_eq!(conf, Some(0.8));
        assert_eq!(stripped, resp);
    }

    #[test]
    fn strip_without_handler_content_passes_through() {
        let resp = Envelope::response("op").with_part("result", 7i64);
        let (same, conf) = ProtocolHandler::strip(&resp);
        assert_eq!(conf, None);
        assert_eq!(same, resp);
    }

    #[test]
    fn mediator_attaches_growing_confidence() {
        let upstream = SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::always_correct())
            .build();
        let prior = ScaledBeta::new(1.0, 1.0, 0.1).unwrap();
        let mut mediator = MediatorService::new(upstream, prior, 0.01);
        let mut rng = StreamRng::from_seed(1);
        let c0 = mediator.current_confidence();
        let mut last = Envelope::response("noop");
        for _ in 0..500 {
            last = mediator.mediate(&Envelope::request("invoke"), &mut rng);
        }
        let c1 = mediator.current_confidence();
        assert!(c1 > c0, "{c1} !> {c0}");
        assert_eq!(extract_confidence(&last), Some(c1));
        assert_eq!(mediator.demands(), 500);
        assert_eq!(mediator.failures(), 0);
        assert_eq!(mediator.upstream().describe().release(), "1.0");
    }

    #[test]
    fn mediator_counts_failures_and_passes_faults() {
        let upstream = SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
            .build();
        let prior = ScaledBeta::new(1.0, 1.0, 1.0).unwrap();
        let mut mediator = MediatorService::new(upstream, prior, 0.5);
        let mut rng = StreamRng::from_seed(2);
        let resp = mediator.mediate(&Envelope::request("invoke"), &mut rng);
        assert!(resp.is_fault());
        assert_eq!(mediator.failures(), 1);
    }

    #[test]
    fn mediator_publishes_to_registry() {
        let upstream = SyntheticService::builder("Svc", "1.0").build();
        let prior = ScaledBeta::new(1.0, 1.0, 0.1).unwrap();
        let mut mediator = MediatorService::new(upstream, prior, 0.01);
        let mut rng = StreamRng::from_seed(3);
        for _ in 0..100 {
            mediator.mediate(&Envelope::request("invoke"), &mut rng);
        }
        let mut registry = Registry::new();
        let key = registry.publish(ServiceRecord::new(
            "Svc",
            "http://node/svc",
            "test",
            ServiceDescription::new("Svc", "1.0"),
        ));
        mediator.publish_to_registry(&mut registry, key).unwrap();
        let published = registry.get(key).unwrap().confidence.unwrap();
        assert_eq!(published.pfd_target, 0.01);
        assert!(published.confidence > 0.0);
    }

    #[test]
    #[should_panic(expected = "pfd target")]
    fn mediator_rejects_bad_target() {
        let upstream = SyntheticService::builder("Svc", "1.0").build();
        let prior = ScaledBeta::new(1.0, 1.0, 0.1).unwrap();
        let _ = MediatorService::new(upstream, prior, 0.0);
    }
}
