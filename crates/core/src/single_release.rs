//! Third-party upgrade with a **single** operational release
//! (paper Section 3.2).
//!
//! When the provider keeps only the newest release deployed, the
//! composite's options are limited: if releases are at least
//! *distinguishable* (the release string is visible), the consumer can
//! detect the swap and adjust the confidence it publishes. The paper's
//! conservative rule:
//!
//! > "A conservative view when calculating the impact of the upgrade …
//! > would be treating the upgraded component WS as if it were no
//! > better than the old release, i.e. the confidence in its
//! > dependability is no higher than the confidence in the old
//! > release."
//!
//! [`SingleReleaseTracker`] implements that: per release it runs a
//! black-box inference from the release's own evidence, and the
//! *reported* confidence is capped by the confidence the previous
//! release had accumulated at the moment of the swap.

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::BlackBoxInference;
use wsu_bayes::posterior::GridPosterior;

/// Evidence accumulated for one release generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseEpoch {
    /// The release identifier observed (e.g. `"1.1"`).
    pub release: String,
    /// Demands served by this release.
    pub demands: u64,
    /// Failures observed.
    pub failures: u64,
}

/// Tracks confidence across undetectable-in-advance release swaps.
#[derive(Debug, Clone)]
pub struct SingleReleaseTracker {
    inference: BlackBoxInference,
    current: Option<ReleaseEpoch>,
    /// Posterior of the previous release at the swap, kept as the
    /// conservative cap for the current release.
    cap: Option<GridPosterior>,
    history: Vec<ReleaseEpoch>,
}

impl SingleReleaseTracker {
    /// Creates a tracker with the consumer's prior over any release's
    /// pfd and a grid of `cells` cells.
    pub fn new(prior: ScaledBeta, cells: usize) -> SingleReleaseTracker {
        SingleReleaseTracker {
            inference: BlackBoxInference::new(prior, cells),
            current: None,
            cap: None,
            history: Vec::new(),
        }
    }

    /// Records one demand against the release identified by `release`.
    /// A change of identifier is the (only) upgrade signal; it archives
    /// the old epoch and installs its posterior as the new cap.
    ///
    /// Returns `true` if this demand detected an upgrade.
    pub fn observe(&mut self, release: &str, failed: bool) -> bool {
        let mut swapped = false;
        match &mut self.current {
            Some(epoch) if epoch.release == release => {}
            current => {
                // First observation or a swap.
                if let Some(previous) = current.take() {
                    self.cap = Some(
                        self.inference
                            .posterior(previous.demands, previous.failures),
                    );
                    self.history.push(previous);
                    swapped = true;
                }
                *current = Some(ReleaseEpoch {
                    release: release.to_owned(),
                    demands: 0,
                    failures: 0,
                });
            }
        }
        let epoch = self.current.as_mut().expect("epoch installed above");
        epoch.demands += 1;
        if failed {
            epoch.failures += 1;
        }
        swapped
    }

    /// The release currently observed, if any demand has been seen.
    pub fn current_release(&self) -> Option<&str> {
        self.current.as_ref().map(|e| e.release.as_str())
    }

    /// The current epoch's evidence.
    pub fn current_epoch(&self) -> Option<&ReleaseEpoch> {
        self.current.as_ref()
    }

    /// Archived epochs of previous releases, oldest first.
    pub fn history(&self) -> &[ReleaseEpoch] {
        &self.history
    }

    /// Confidence from the current release's **own evidence only**
    /// (prior + this epoch's observations).
    pub fn fresh_confidence(&self, target: f64) -> f64 {
        match &self.current {
            Some(epoch) => self
                .inference
                .posterior(epoch.demands, epoch.failures)
                .confidence(target),
            None => self.inference.prior_on_grid().confidence(target),
        }
    }

    /// The conservative confidence the consumer should *publish*
    /// (Section 3.2): the fresh confidence, capped by the previous
    /// release's confidence at the swap — the new release is treated as
    /// no better than the old one until its own evidence says otherwise
    /// ... which, under this rule, can only *lower* the report.
    pub fn reported_confidence(&self, target: f64) -> f64 {
        let fresh = self.fresh_confidence(target);
        match &self.cap {
            Some(cap) => fresh.min(cap.confidence(target)),
            None => fresh,
        }
    }

    /// The conservative percentile bound at confidence `c`: the *larger*
    /// (worse) of the fresh and capped percentiles.
    pub fn reported_percentile(&self, c: f64) -> f64 {
        let fresh = match &self.current {
            Some(epoch) => self
                .inference
                .posterior(epoch.demands, epoch.failures)
                .percentile(c),
            None => self.inference.prior_on_grid().percentile(c),
        };
        match &self.cap {
            Some(cap) => fresh.max(cap.percentile(c)),
            None => fresh,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> SingleReleaseTracker {
        SingleReleaseTracker::new(ScaledBeta::new(1.0, 9.0, 0.05).unwrap(), 512)
    }

    #[test]
    fn no_observations_reports_the_prior() {
        let t = tracker();
        assert_eq!(t.current_release(), None);
        let prior_conf = t.fresh_confidence(1e-2);
        assert!(prior_conf > 0.0 && prior_conf < 1.0);
        assert_eq!(t.reported_confidence(1e-2), prior_conf);
    }

    #[test]
    fn clean_demands_grow_confidence() {
        let mut t = tracker();
        for _ in 0..100 {
            assert!(!t.observe("1.0", false));
        }
        let c100 = t.reported_confidence(1e-2);
        for _ in 0..900 {
            t.observe("1.0", false);
        }
        let c1000 = t.reported_confidence(1e-2);
        assert!(c1000 > c100);
        assert_eq!(t.current_release(), Some("1.0"));
        assert_eq!(t.current_epoch().unwrap().demands, 1000);
    }

    #[test]
    fn swap_is_detected_and_archived() {
        let mut t = tracker();
        for _ in 0..500 {
            t.observe("1.0", false);
        }
        assert!(t.observe("1.1", false), "swap must be flagged");
        assert_eq!(t.current_release(), Some("1.1"));
        assert_eq!(t.history().len(), 1);
        assert_eq!(t.history()[0].release, "1.0");
        assert_eq!(t.history()[0].demands, 500);
        assert_eq!(t.current_epoch().unwrap().demands, 1);
    }

    #[test]
    fn new_release_confidence_is_capped_by_old() {
        let mut t = tracker();
        // Old release: modest evidence, some failures.
        for i in 0..1_000 {
            t.observe("1.0", i % 200 == 0); // 5 failures in 1000
        }
        let old_conf = t.reported_confidence(1e-2);
        t.observe("1.1", false);
        // A long clean run on 1.1: the fresh posterior alone would give
        // higher confidence than the old release ever had, but the
        // conservative report stays capped.
        for _ in 0..50_000 {
            t.observe("1.1", false);
        }
        let fresh = t.fresh_confidence(1e-2);
        let reported = t.reported_confidence(1e-2);
        assert!(fresh > old_conf, "fresh {fresh} vs old {old_conf}");
        assert!(
            (reported - reported.min(old_conf)).abs() < 1e-12,
            "reported {reported} must not exceed the old cap {old_conf}"
        );
    }

    #[test]
    fn bad_new_release_lowers_the_report_below_the_cap() {
        let mut t = tracker();
        for _ in 0..10_000 {
            t.observe("1.0", false);
        }
        // New release fails a lot: its own evidence dominates downward.
        for i in 0..2_000 {
            t.observe("1.1", i % 20 == 0); // 5% failures
        }
        let reported = t.reported_confidence(1e-2);
        assert!(reported < 0.5, "reported {reported}");
    }

    #[test]
    fn reported_percentile_is_conservative() {
        let mut t = tracker();
        for _ in 0..5_000 {
            t.observe("1.0", false);
        }
        let old_p99 = t.reported_percentile(0.99);
        for _ in 0..100_000 {
            t.observe("1.1", false);
        }
        // Even with overwhelming clean evidence the reported bound does
        // not drop below what the old release had established.
        assert!(t.reported_percentile(0.99) >= old_p99 - 1e-12);
    }

    #[test]
    fn multiple_swaps_accumulate_history() {
        let mut t = tracker();
        for release in ["1.0", "1.1", "2.0"] {
            for _ in 0..10 {
                t.observe(release, false);
            }
        }
        assert_eq!(t.history().len(), 2);
        assert_eq!(t.current_release(), Some("2.0"));
    }
}
