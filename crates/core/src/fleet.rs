//! Staged canary fleets: N concurrent releases with weighted routing,
//! ramped promotion, automatic rollback and pluggable recovery.
//!
//! The paper's architecture explicitly allows "one or more old releases
//! being kept operational". This module generalises the two-release
//! managed upgrade ([`crate::upgrade::ManagedUpgrade`]) to an N-release
//! **canary chain**: a stable release serves most of the traffic while
//! one in-flight canary takes a small weighted slice
//! ([`crate::modes::OperatingMode::WeightedFleet`]); the canary's pfd
//! posterior (black-box Bayes, [`wsu_bayes::blackbox`]) gates a weight
//! ramp, and reaching full weight **promotes** it to stable — at which
//! point the next pending stage is deployed as the new canary.
//!
//! When a canary degrades instead — an evident-failure streak or a
//! windowed fault rate past the rollback rule — the configured
//! [`RecoveryStrategy`] decides what happens:
//!
//! * **restart-in-place** — the paper's own recovery: suspend, restart,
//!   keep ramping (cheap, but a persistent fault re-opens the incident);
//! * **demote-and-rollback** — phase the canary out permanently and
//!   restore the stable release's full weight (the chain halts);
//! * **substitute** — phase the canary out and bind a
//!   functionally-equivalent stand-in from the service registry
//!   ([`SubstitutePool`]) as a replacement canary for the same stage —
//!   atomic replacement, à la Saboohi & Kareem.
//!
//! Every incident opens a **recovery probe** over the next
//! [`ProbeRule::window`] demands; the incident counts as *recovered* iff
//! the probe's availability reaches the threshold and no further
//! incident lands inside the probe. `recovered / incidents` is the
//! recovery probability the `fleetstudy` experiment tabulates per
//! (fleet size × recovery strategy) cell.
//!
//! Determinism contract: given a [`MasterSeed`], a fleet run is
//! bit-reproducible — demands draw from one derived stream, promotion
//! and rollback decisions are pure functions of observed counts, and
//! substitution picks registry candidates in key order.

use std::collections::VecDeque;

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::blackbox::{BlackBoxInference, BlackBoxUpdater};
use wsu_obs::fleet::FleetGauges;
use wsu_obs::{NullRecorder, Recorder, SharedRegistry, TraceEvent};
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_wstack::endpoint::ServiceEndpoint;
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::ResponseClass;
use wsu_wstack::registry::{Registry, ServiceKey, ServiceRecord};

use crate::adjudicate::SystemVerdict;
use crate::manage::RecoveryStrategy;
use crate::middleware::{MiddlewareConfig, UpgradeMiddleware};
use crate::modes::OperatingMode;
use crate::release::{ReleaseId, ReleaseInfo, ReleaseState};

/// How a canary's traffic weight grows while it proves itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightRamp {
    /// The canary's starting weight share (e.g. `0.1`).
    pub initial: f64,
    /// Weight added on each passing assessment.
    pub step: f64,
    /// The share at which the canary is promoted to stable.
    pub full: f64,
}

impl Default for WeightRamp {
    /// 10% initial, +15% per passing assessment, promote at 100%.
    fn default() -> WeightRamp {
        WeightRamp {
            initial: 0.1,
            step: 0.15,
            full: 1.0,
        }
    }
}

/// When a canary's assessment passes: confidence that its pfd is at or
/// below `target_pfd` must reach `confidence`, with at least
/// `min_demands` canary demands observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionRule {
    /// The pfd target the canary must meet (e.g. `1e-2`).
    pub target_pfd: f64,
    /// Required posterior confidence `P(pfd ≤ target) ≥ confidence`.
    pub confidence: f64,
    /// Minimum canary demands before any assessment can pass.
    pub min_demands: u64,
}

impl Default for PromotionRule {
    /// `P(pfd ≤ 0.02) ≥ 0.9` after at least 50 canary demands.
    fn default() -> PromotionRule {
        PromotionRule {
            target_pfd: 0.02,
            confidence: 0.9,
            min_demands: 50,
        }
    }
}

/// When a canary is forcibly recovered: its fault rate over the last
/// `window` canary demands exceeds `max_fault_rate` (checked once the
/// window has filled), or its evident-failure streak reaches the
/// orchestrator's `suspend_after`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollbackRule {
    /// Size of the sliding canary-demand window.
    pub window: u64,
    /// Fault-rate threshold over the window.
    pub max_fault_rate: f64,
}

impl Default for RollbackRule {
    /// More than 25% faults over the last 40 canary demands.
    fn default() -> RollbackRule {
        RollbackRule {
            window: 40,
            max_fault_rate: 0.25,
        }
    }
}

/// How an incident's recovery is judged: over the `window` demands after
/// the recovery action, system availability must reach
/// `min_availability` and no further incident may land.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRule {
    /// Probe length, in demands.
    pub window: u64,
    /// Required availability inside the probe.
    pub min_availability: f64,
}

impl Default for ProbeRule {
    /// 95% availability over the 50 demands after the incident.
    fn default() -> ProbeRule {
        ProbeRule {
            window: 50,
            min_availability: 0.95,
        }
    }
}

/// The full description of a staged canary chain: middleware settings,
/// ramp/promotion/rollback rules, the recovery strategy and the
/// assessment cadence. Endpoints are supplied separately to
/// [`FleetOrchestrator::new`] (they are not `Clone`).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Middleware settings; the mode is forced to
    /// [`OperatingMode::WeightedFleet`].
    pub middleware: MiddlewareConfig,
    /// Demands between canary assessments.
    pub assess_interval: u64,
    /// The canary weight ramp.
    pub ramp: WeightRamp,
    /// The per-stage promotion criterion.
    pub promotion: PromotionRule,
    /// The canary rollback rule.
    pub rollback: RollbackRule,
    /// The recovery probe rule.
    pub probe: ProbeRule,
    /// What to do with a degraded canary.
    pub strategy: RecoveryStrategy,
    /// Suspend any release after this many consecutive evident failures
    /// (the paper's recovery threshold, applied fleet-wide).
    pub suspend_after: u32,
    /// Phase the demoted stable out on promotion instead of keeping it
    /// as a zero-weight hot standby.
    pub retire_on_promote: bool,
    /// Grid cells for the canary's black-box posterior.
    pub posterior_cells: usize,
}

impl Default for FleetPlan {
    fn default() -> FleetPlan {
        FleetPlan {
            middleware: MiddlewareConfig {
                mode: OperatingMode::WeightedFleet,
                ..MiddlewareConfig::default()
            },
            assess_interval: 100,
            ramp: WeightRamp::default(),
            promotion: PromotionRule::default(),
            rollback: RollbackRule::default(),
            probe: ProbeRule::default(),
            strategy: RecoveryStrategy::RestartInPlace,
            suspend_after: 10,
            retire_on_promote: false,
            posterior_cells: 400,
        }
    }
}

impl FleetPlan {
    /// The default plan with the given recovery strategy.
    pub fn with_strategy(strategy: RecoveryStrategy) -> FleetPlan {
        FleetPlan {
            strategy,
            ..FleetPlan::default()
        }
    }
}

/// A pool of functionally-equivalent stand-in releases, backed by the
/// UDDI-like registry: each candidate is a published [`ServiceRecord`]
/// *plus* the live endpoint to bind if it is acquired. Acquisition
/// consults [`Registry::find_equivalent`] — same category, different
/// service name, key order — so substitution is deterministic.
#[derive(Default)]
pub struct SubstitutePool {
    registry: Registry,
    stash: Vec<(ServiceKey, Box<dyn ServiceEndpoint>)>,
}

impl SubstitutePool {
    /// An empty pool.
    pub fn new() -> SubstitutePool {
        SubstitutePool::default()
    }

    /// Publishes a candidate record and stashes its endpoint.
    pub fn register(
        &mut self,
        record: ServiceRecord,
        endpoint: Box<dyn ServiceEndpoint>,
    ) -> ServiceKey {
        let key = self.registry.publish(record);
        self.stash.push((key, endpoint));
        key
    }

    /// The backing registry (for lookups and confidence publishing).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Candidates still available.
    pub fn available(&self) -> usize {
        self.stash.len()
    }

    /// Acquires the first (key-ordered) equivalent candidate: same
    /// `category`, service name differing from `exclude_name`. The
    /// record is withdrawn from the registry and the endpoint handed to
    /// the caller.
    pub fn acquire(
        &mut self,
        category: &str,
        exclude_name: &str,
    ) -> Option<(ServiceRecord, Box<dyn ServiceEndpoint>)> {
        let key = self
            .registry
            .find_equivalent(category, exclude_name)
            .iter()
            .map(|(k, _)| *k)
            .find(|k| self.stash.iter().any(|(sk, _)| sk == k))?;
        let record = self.registry.withdraw(key).expect("candidate is published");
        let at = self
            .stash
            .iter()
            .position(|(sk, _)| *sk == key)
            .expect("stash tracks published candidates");
        let (_, endpoint) = self.stash.remove(at);
        Some((record, endpoint))
    }
}

impl std::fmt::Debug for SubstitutePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubstitutePool")
            .field("available", &self.available())
            .finish()
    }
}

/// Fleet-level counters, snapshotable at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Demands served.
    pub demands: u64,
    /// Demands answered within the timeout.
    pub available: u64,
    /// Demands answered correctly.
    pub correct: u64,
    /// Incidents declared (streak or windowed fault rate).
    pub incidents: u64,
    /// Incidents whose recovery probe succeeded.
    pub recovered: u64,
    /// Canary promotions.
    pub promotions: u64,
    /// Canary demotions (rollbacks), including substitute fallbacks.
    pub rollbacks: u64,
    /// Atomic substitutions bound.
    pub substitutions: u64,
}

impl FleetStats {
    /// Fraction of demands answered within the timeout.
    pub fn availability(&self) -> f64 {
        if self.demands == 0 {
            return 1.0;
        }
        self.available as f64 / self.demands as f64
    }

    /// `recovered / incidents`; `None` when no incident was declared.
    /// Probes still open when the run ends count as not recovered.
    pub fn recovery_probability(&self) -> Option<f64> {
        if self.incidents == 0 {
            return None;
        }
        Some(self.recovered as f64 / self.incidents as f64)
    }
}

/// The canary's public state within a [`FleetStatus`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanaryStatus {
    /// The canary's release id.
    pub id: ReleaseId,
    /// Its chain stage (the initial stable release is stage 0).
    pub stage: usize,
    /// Its current traffic weight share.
    pub weight: f64,
    /// Demands routed to it so far.
    pub demands: u64,
    /// Failures (any non-correct outcome or timeout) among those.
    pub failures: u64,
}

/// A snapshot of the whole fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStatus {
    /// The current stable release.
    pub stable: ReleaseId,
    /// The stable release's traffic weight share.
    pub stable_weight: f64,
    /// The in-flight canary, if any.
    pub canary: Option<CanaryStatus>,
    /// Stages not yet deployed.
    pub pending_stages: usize,
    /// `true` once a rollback has halted the chain.
    pub chain_halted: bool,
    /// Fleet counters.
    pub stats: FleetStats,
    /// Per-release metadata, in deployment order.
    pub releases: Vec<ReleaseInfo>,
    /// Virtual time, in seconds.
    pub virtual_time: f64,
}

/// The consumer-visible outcome of one fleet demand (`Copy`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetDemand {
    /// Demand sequence number.
    pub seq: u64,
    /// The release the demand was routed to.
    pub release: ReleaseId,
    /// The adjudicated verdict.
    pub verdict: SystemVerdict,
    /// `true` if the routed release's response counted as a failure
    /// (non-correct class or timeout).
    pub failed: bool,
    /// The consumer's virtual wait, in seconds.
    pub response_time: f64,
}

/// Private per-canary tracking: its posterior updater and the sliding
/// fault window (a fixed ring, allocated once per canary).
struct Canary {
    id: ReleaseId,
    stage: usize,
    weight: f64,
    updater: BlackBoxUpdater,
    demands: u64,
    failures: u64,
    window: Vec<bool>,
    cursor: usize,
    filled: usize,
    window_fails: u64,
}

impl Canary {
    fn observe(&mut self, failed: bool) {
        self.demands += 1;
        if failed {
            self.failures += 1;
        }
        let len = self.window.len();
        if len == 0 {
            return;
        }
        if self.filled == len {
            if self.window[self.cursor] {
                self.window_fails -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.window[self.cursor] = failed;
        if failed {
            self.window_fails += 1;
        }
        self.cursor = (self.cursor + 1) % len;
    }

    fn reset_window(&mut self) {
        self.cursor = 0;
        self.filled = 0;
        self.window_fails = 0;
    }

    fn window_rate(&self) -> Option<f64> {
        if self.filled < self.window.len() || self.window.is_empty() {
            return None;
        }
        Some(self.window_fails as f64 / self.filled as f64)
    }
}

/// An open recovery probe.
struct Probe {
    remaining: u64,
    demands: u64,
    available: u64,
}

/// Per-release running tallies.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    demands: u64,
    failures: u64,
}

/// The fleet orchestrator: drives a staged canary chain demand by
/// demand, mirroring [`crate::upgrade::ManagedUpgrade`]'s closed loop
/// (virtual time advances by each consumer wait; assessments run on a
/// demand cadence at zero virtual cost).
pub struct FleetOrchestrator {
    middleware: UpgradeMiddleware,
    plan: FleetPlan,
    inference: BlackBoxInference,
    demand_rng: StreamRng,
    request: Envelope,
    virtual_time: f64,
    stable: ReleaseId,
    stable_weight: f64,
    canary: Option<Canary>,
    pending: VecDeque<Box<dyn ServiceEndpoint>>,
    substitutes: SubstitutePool,
    /// Registry category + service name used for equivalence lookups.
    category: String,
    service_name: String,
    tallies: Vec<Tally>,
    stats: FleetStats,
    probe: Option<Probe>,
    next_stage: usize,
    chain_halted: bool,
    recorder: Box<dyn Recorder>,
    gauges: Option<FleetGauges>,
}

impl FleetOrchestrator {
    /// Creates an orchestrator serving `stable` (stage 0 at full
    /// weight). Push canary stages with
    /// [`push_stage`](FleetOrchestrator::push_stage); the first pending
    /// stage deploys on the next demand.
    pub fn new(
        stable: impl ServiceEndpoint + 'static,
        plan: FleetPlan,
        seed: MasterSeed,
    ) -> FleetOrchestrator {
        let mut config = plan.middleware;
        config.mode = OperatingMode::WeightedFleet;
        let mut middleware = UpgradeMiddleware::new(config);
        let description = stable.describe();
        let service_name = description.service().to_owned();
        let stable_id = middleware.deploy(stable);
        // An indifference prior over the full pfd range: the canary
        // must *earn* its confidence from canary traffic.
        let prior = ScaledBeta::standard(1.0, 1.0).expect("uniform prior is valid");
        let inference = BlackBoxInference::new(prior, plan.posterior_cells);
        FleetOrchestrator {
            middleware,
            plan,
            inference,
            demand_rng: seed.stream("fleet/demands"),
            request: Envelope::request("invoke"),
            virtual_time: 0.0,
            stable: stable_id,
            stable_weight: 1.0,
            canary: None,
            pending: VecDeque::new(),
            substitutes: SubstitutePool::new(),
            category: "equivalent".to_owned(),
            service_name,
            tallies: vec![Tally::default()],
            stats: FleetStats::default(),
            probe: None,
            next_stage: 1,
            chain_halted: false,
            recorder: Box::new(NullRecorder),
            gauges: None,
        }
    }

    /// Queues the next chain stage; it deploys as the in-flight canary
    /// as soon as no canary is ahead of it.
    pub fn push_stage(&mut self, endpoint: impl ServiceEndpoint + 'static) {
        self.pending.push_back(Box::new(endpoint));
    }

    /// Supplies the substitute pool and the registry category used for
    /// equivalence lookups (see [`RecoveryStrategy::Substitute`]).
    pub fn set_substitutes(&mut self, pool: SubstitutePool, category: &str) {
        self.substitutes = pool;
        self.category = category.to_owned();
    }

    /// Attaches a trace recorder to the orchestrator *and* its
    /// middleware (both append to one sink).
    pub fn attach_recorder<R: Recorder + Clone + 'static>(&mut self, recorder: R) {
        self.middleware.set_recorder(recorder.clone());
        self.recorder = Box::new(recorder);
    }

    /// Publishes fleet gauges into a shared metrics registry.
    pub fn attach_metrics(&mut self, registry: &SharedRegistry) {
        let gauges = FleetGauges::new(registry.clone());
        gauges.set_weight(self.stable.index(), self.stable_weight);
        gauges.set_stage(self.stable.index(), 0);
        self.gauges = Some(gauges);
    }

    /// The middleware (e.g. for deploying fault-injecting endpoints in
    /// tests before the run starts).
    pub fn middleware(&self) -> &UpgradeMiddleware {
        &self.middleware
    }

    /// A snapshot of the fleet's state.
    pub fn status(&self) -> FleetStatus {
        FleetStatus {
            stable: self.stable,
            stable_weight: self.stable_weight,
            canary: self.canary.as_ref().map(|c| CanaryStatus {
                id: c.id,
                stage: c.stage,
                weight: c.weight,
                demands: c.demands,
                failures: c.failures,
            }),
            pending_stages: self.pending.len(),
            chain_halted: self.chain_halted,
            stats: self.stats,
            releases: self.middleware.release_infos(),
            virtual_time: self.virtual_time,
        }
    }

    /// Fleet counters so far.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Demands served.
    pub fn demands(&self) -> u64 {
        self.stats.demands
    }

    /// The virtual clock, in seconds.
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }

    /// Runs `n` demands.
    pub fn run_demands(&mut self, n: u64) {
        for _ in 0..n {
            self.run_demand();
        }
    }

    /// Serves one demand end to end: deploy a due canary, route, score,
    /// detect incidents, recover per the strategy, and (on the
    /// assessment cadence) ramp or promote the canary.
    ///
    /// # Panics
    ///
    /// Panics if the release set has been emptied externally — the
    /// orchestrator itself never strands the fleet (the zero-active
    /// sweep restarts suspended releases first).
    pub fn run_demand(&mut self) -> FleetDemand {
        self.deploy_due_canary();
        self.ensure_serving();
        self.middleware.set_virtual_time(self.virtual_time);
        let record = self
            .middleware
            .process(&self.request, &mut self.demand_rng)
            .expect("fleet keeps at least one active release");
        let obs = record.per_release[0];
        let id = obs.release;
        let failed = !obs.within_timeout || obs.class != ResponseClass::Correct;
        let available = record.system.verdict != SystemVerdict::Unavailable;
        let correct = record.system.verdict.is_correct();
        let outcome = FleetDemand {
            seq: record.seq,
            release: id,
            verdict: record.system.verdict,
            failed,
            response_time: record.system.response_time.as_secs(),
        };
        self.virtual_time += outcome.response_time;
        self.middleware.recycle(record);

        self.stats.demands += 1;
        if available {
            self.stats.available += 1;
        }
        if correct {
            self.stats.correct += 1;
        }
        if id.index() >= self.tallies.len() {
            self.tallies.resize(id.index() + 1, Tally::default());
        }
        self.tallies[id.index()].demands += 1;
        if failed {
            self.tallies[id.index()].failures += 1;
        }
        if let Some(canary) = &mut self.canary {
            if canary.id == id {
                canary.observe(failed);
            }
        }
        if let Some(probe) = &mut self.probe {
            probe.demands += 1;
            if available {
                probe.available += 1;
            }
            probe.remaining -= 1;
            if probe.remaining == 0 {
                let rate = probe.available as f64 / probe.demands as f64;
                if rate >= self.plan.probe.min_availability {
                    self.stats.recovered += 1;
                    if let Some(gauges) = &self.gauges {
                        gauges.recovered(self.plan.strategy.label());
                    }
                }
                self.probe = None;
            }
        }

        self.detect_and_recover();

        if self.stats.demands.is_multiple_of(self.plan.assess_interval) {
            self.assess_canary();
        }
        outcome
    }

    /// Deploys the next pending stage as the in-flight canary when no
    /// canary is ahead of it (at most one canary per stage is in
    /// flight) and the chain has not halted.
    fn deploy_due_canary(&mut self) {
        if self.canary.is_some() || self.chain_halted {
            return;
        }
        let Some(endpoint) = self.pending.pop_front() else {
            return;
        };
        let stage = self.next_stage;
        self.next_stage += 1;
        self.bind_canary(endpoint, stage);
    }

    /// Deploys `endpoint` as the canary for `stage` at the ramp's
    /// initial weight.
    fn bind_canary(&mut self, endpoint: Box<dyn ServiceEndpoint>, stage: usize) {
        let id = self.middleware.deploy_boxed(endpoint);
        let weight = self.plan.ramp.initial.min(self.plan.ramp.full);
        self.canary = Some(Canary {
            id,
            stage,
            weight,
            updater: self.inference.updater(),
            demands: 0,
            failures: 0,
            window: vec![false; self.plan.rollback.window as usize],
            cursor: 0,
            filled: 0,
            window_fails: 0,
        });
        self.stable_weight = (1.0 - weight).max(0.0);
        self.apply_weights();
        if let Some(gauges) = &self.gauges {
            gauges.set_stage(id.index(), stage);
        }
    }

    /// Writes the stable/canary weight split into the release set and
    /// the gauges.
    fn apply_weights(&mut self) {
        let releases = self.middleware.releases_mut();
        releases
            .set_weight(self.stable, self.stable_weight)
            .expect("stable release is deployed");
        if let Some(canary) = &self.canary {
            releases
                .set_weight(canary.id, canary.weight)
                .expect("canary release is deployed");
        }
        if let Some(gauges) = &self.gauges {
            gauges.set_weight(self.stable.index(), self.stable_weight);
            if let Some(canary) = &self.canary {
                gauges.set_weight(canary.id.index(), canary.weight);
            }
        }
    }

    /// Streak/window incident detection and the zero-active safety
    /// sweep — the fleet generalisation of
    /// [`crate::manage::ManagementSubsystem::apply_recovery`].
    fn detect_and_recover(&mut self) {
        // Streak incidents, in deployment order (deterministic).
        let len = self.middleware.releases().len();
        for index in 0..len {
            let id = ReleaseId::new(index);
            let releases = self.middleware.releases();
            if releases.state(id) != Ok(ReleaseState::Active) {
                continue;
            }
            let streak = releases
                .consecutive_evident_failures(id)
                .expect("release is deployed");
            if streak < self.plan.suspend_after {
                continue;
            }
            self.declare_incident(id);
        }
        // Windowed canary fault rate.
        if let Some(canary) = &self.canary {
            let id = canary.id;
            let over = canary
                .window_rate()
                .is_some_and(|rate| rate > self.plan.rollback.max_fault_rate);
            let still_active = self.middleware.releases().state(id) == Ok(ReleaseState::Active);
            if over && still_active {
                self.declare_incident(id);
            }
        }
        // Zero-active safety: a correlated burst may have suspended the
        // whole fleet; restart everything suspended, in deployment
        // order, so the next demand can be served. No release is
        // favoured — all of them come back.
        if self.middleware.releases().active_slice().is_empty() {
            self.restart_all_suspended();
        }
    }

    /// Restarts every suspended release, in deployment order.
    fn restart_all_suspended(&mut self) {
        let len = self.middleware.releases().len();
        for index in 0..len {
            let id = ReleaseId::new(index);
            if self.middleware.releases().state(id) == Ok(ReleaseState::Suspended) {
                self.middleware
                    .releases_mut()
                    .restart(id)
                    .expect("suspended release restarts");
                self.emit_release_event(id, "restarted");
            }
        }
    }

    /// Declares an incident on `id` and applies the recovery strategy.
    /// Stable (non-canary) releases always restart in place — the
    /// strategy governs the *canary*.
    fn declare_incident(&mut self, id: ReleaseId) {
        self.stats.incidents += 1;
        if let Some(gauges) = &self.gauges {
            gauges.incident(self.plan.strategy.label());
        }
        // A new incident inside an open probe fails that probe.
        self.probe = Some(Probe {
            remaining: self.plan.probe.window.max(1),
            demands: 0,
            available: 0,
        });
        let is_canary = self.canary.as_ref().is_some_and(|c| c.id == id);
        if !is_canary || self.plan.strategy == RecoveryStrategy::RestartInPlace {
            self.restart_in_place(id);
            return;
        }
        match self.plan.strategy {
            RecoveryStrategy::DemoteAndRollback => self.demote_canary("rollback"),
            RecoveryStrategy::Substitute => self.substitute_canary(),
            RecoveryStrategy::RestartInPlace => unreachable!("handled above"),
        }
    }

    /// Suspend + immediate restart (the paper's recovery), resetting
    /// the canary's window so one burst is not counted twice.
    fn restart_in_place(&mut self, id: ReleaseId) {
        self.middleware
            .releases_mut()
            .suspend(id)
            .expect("active release suspends");
        self.emit_release_event(id, "suspended");
        self.middleware
            .releases_mut()
            .restart(id)
            .expect("suspended release restarts");
        self.emit_release_event(id, "restarted");
        if let Some(canary) = &mut self.canary {
            if canary.id == id {
                canary.reset_window();
            }
        }
    }

    /// Phases the canary out and restores the stable release's full
    /// weight. The chain halts.
    fn demote_canary(&mut self, decision: &str) {
        let Some(canary) = self.canary.take() else {
            return;
        };
        let releases = self.middleware.releases_mut();
        releases
            .set_weight(canary.id, 0.0)
            .expect("canary is deployed");
        releases.phase_out(canary.id).expect("canary phases out");
        self.stable_weight = 1.0;
        self.apply_weights();
        if let Some(gauges) = &self.gauges {
            gauges.set_weight(canary.id.index(), 0.0);
            gauges.rollback();
        }
        self.chain_halted = true;
        self.stats.rollbacks += 1;
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::SwitchDecision {
                t: self.virtual_time,
                demand: self.stats.demands,
                decision: decision.to_string(),
                reason: format!(
                    "canary stage {} demoted after {} demands",
                    canary.stage, canary.demands
                ),
            });
        }
    }

    /// Phases the canary out and binds a functionally-equivalent
    /// stand-in from the pool as the stage's replacement canary. Falls
    /// back to demote-and-rollback when the pool has no candidate.
    fn substitute_canary(&mut self) {
        let Some((record, endpoint)) = self.substitutes.acquire(&self.category, &self.service_name)
        else {
            self.demote_canary("rollback-no-substitute");
            return;
        };
        let Some(canary) = self.canary.take() else {
            return;
        };
        let stage = canary.stage;
        let releases = self.middleware.releases_mut();
        releases
            .set_weight(canary.id, 0.0)
            .expect("canary is deployed");
        releases.phase_out(canary.id).expect("canary phases out");
        if let Some(gauges) = &self.gauges {
            gauges.set_weight(canary.id.index(), 0.0);
            gauges.substitution();
        }
        self.stats.substitutions += 1;
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::SwitchDecision {
                t: self.virtual_time,
                demand: self.stats.demands,
                decision: "substitute".to_string(),
                reason: format!(
                    "stage {stage} canary replaced by registry stand-in `{}`",
                    record.name
                ),
            });
        }
        self.bind_canary(endpoint, stage);
    }

    /// Promotes the canary to stable: full weight for the canary, the
    /// old stable demoted to a zero-weight hot standby (or phased out
    /// under `retire_on_promote`), and the next pending stage deploys
    /// on the next demand.
    fn promote_canary(&mut self) {
        let Some(canary) = self.canary.take() else {
            return;
        };
        let old_stable = self.stable;
        self.stable = canary.id;
        self.stable_weight = 1.0;
        let releases = self.middleware.releases_mut();
        releases
            .set_weight(old_stable, 0.0)
            .expect("old stable is deployed");
        if self.plan.retire_on_promote {
            releases
                .phase_out(old_stable)
                .expect("old stable phases out");
        }
        self.apply_weights();
        if let Some(gauges) = &self.gauges {
            gauges.set_weight(old_stable.index(), 0.0);
            gauges.set_stage(canary.id.index(), canary.stage);
            gauges.promotion();
        }
        self.stats.promotions += 1;
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::SwitchDecision {
                t: self.virtual_time,
                demand: self.stats.demands,
                decision: "promote".to_string(),
                reason: format!(
                    "stage {} canary promoted after {} canary demands",
                    canary.stage, canary.demands
                ),
            });
        }
    }

    /// The per-interval canary assessment: update the black-box
    /// posterior from the canary's (demands, failures) and ramp the
    /// weight on a pass; promote at full weight.
    fn assess_canary(&mut self) {
        let Some(canary) = &mut self.canary else {
            return;
        };
        if canary.demands == 0 {
            return;
        }
        canary.updater.update_to(canary.demands, canary.failures);
        let confidence = canary.updater.confidence(self.plan.promotion.target_pfd);
        let satisfied = canary.demands >= self.plan.promotion.min_demands
            && confidence >= self.plan.promotion.confidence;
        let new_p99 = canary.updater.percentile(0.99);
        let stage = canary.stage;
        if self.recorder.enabled() {
            // The stable release's empirical failure rate stands in for
            // "old" in the pairwise event shape.
            let stable_tally = self.tallies[self.stable.index()];
            let old_rate = if stable_tally.demands == 0 {
                0.0
            } else {
                stable_tally.failures as f64 / stable_tally.demands as f64
            };
            self.recorder.record(TraceEvent::ConfidenceUpdated {
                t: self.virtual_time,
                demand: self.stats.demands,
                old_p99: old_rate,
                new_p99,
                criterion: format!(
                    "stage-{stage}(target={}, c={})",
                    self.plan.promotion.target_pfd, self.plan.promotion.confidence
                ),
                satisfied,
            });
        }
        if !satisfied {
            return;
        }
        let canary = self.canary.as_mut().expect("canary checked above");
        canary.weight = (canary.weight + self.plan.ramp.step).min(self.plan.ramp.full);
        let full = canary.weight >= self.plan.ramp.full;
        self.stable_weight = (1.0 - canary.weight).max(0.0);
        self.apply_weights();
        if full {
            self.promote_canary();
        }
    }

    /// If every deployed release has been phased out except suspended
    /// ones, bring the suspended ones back (belt and braces before a
    /// demand is dispatched).
    fn ensure_serving(&mut self) {
        if self.middleware.releases().active_slice().is_empty() {
            self.restart_all_suspended();
        }
    }

    fn emit_release_event(&mut self, id: ReleaseId, action: &str) {
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::ReleaseSuspended {
                t: self.virtual_time,
                demand: self.stats.demands,
                release: id.index(),
                action: action.to_string(),
            });
        }
    }
}

impl std::fmt::Debug for FleetOrchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetOrchestrator")
            .field("stable", &self.stable)
            .field("stable_weight", &self.stable_weight)
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_simcore::dist::DelayModel;
    use wsu_wstack::endpoint::SyntheticService;
    use wsu_wstack::outcome::OutcomeProfile;
    use wsu_wstack::wsdl::ServiceDescription;

    fn good(version: &str) -> SyntheticService {
        SyntheticService::builder("Quote", version)
            .outcomes(OutcomeProfile::always_correct())
            .exec_time(DelayModel::constant(0.3))
            .build()
    }

    fn bad(version: &str) -> SyntheticService {
        SyntheticService::builder("Quote", version)
            .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
            .exec_time(DelayModel::constant(0.3))
            .build()
    }

    fn quick_plan(strategy: RecoveryStrategy) -> FleetPlan {
        FleetPlan {
            assess_interval: 25,
            promotion: PromotionRule {
                target_pfd: 0.05,
                confidence: 0.8,
                min_demands: 20,
            },
            rollback: RollbackRule {
                window: 10,
                max_fault_rate: 0.4,
            },
            probe: ProbeRule {
                window: 20,
                min_availability: 0.9,
            },
            suspend_after: 5,
            ..FleetPlan::with_strategy(strategy)
        }
    }

    #[test]
    fn healthy_chain_promotes_through_every_stage() {
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::RestartInPlace),
            MasterSeed::new(11),
        );
        fleet.push_stage(good("1.1"));
        fleet.push_stage(good("1.2"));
        fleet.run_demands(4_000);
        let status = fleet.status();
        assert_eq!(status.stats.promotions, 2, "status: {status:?}");
        assert_eq!(status.stats.incidents, 0);
        assert_eq!(status.stats.rollbacks, 0);
        assert!(status.canary.is_none());
        assert_eq!(status.pending_stages, 0);
        assert_eq!(status.stable, ReleaseId::new(2));
        assert!((status.stable_weight - 1.0).abs() < 1e-12);
        assert!(!status.chain_halted);
        // Old stables are zero-weight hot standbys, still active.
        assert_eq!(status.releases[0].state, ReleaseState::Active);
        assert_eq!(status.releases[1].state, ReleaseState::Active);
        assert!(status.stats.availability() > 0.99);
    }

    #[test]
    fn weights_always_cover_the_traffic() {
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::RestartInPlace),
            MasterSeed::new(12),
        );
        fleet.push_stage(good("1.1"));
        for _ in 0..1_000 {
            fleet.run_demand();
            let status = fleet.status();
            let canary_weight = status.canary.map(|c| c.weight).unwrap_or(0.0);
            assert!(
                (status.stable_weight + canary_weight - 1.0).abs() < 1e-9,
                "weights must sum to 1: {status:?}"
            );
        }
    }

    #[test]
    fn degraded_canary_rolls_back_and_halts_the_chain() {
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::DemoteAndRollback),
            MasterSeed::new(13),
        );
        fleet.push_stage(bad("1.1"));
        fleet.push_stage(good("1.2"));
        fleet.run_demands(2_000);
        let status = fleet.status();
        assert_eq!(status.stats.rollbacks, 1);
        assert_eq!(status.stats.promotions, 0);
        assert!(status.chain_halted);
        assert!(status.canary.is_none());
        // The chain halted: stage 1.2 never deploys.
        assert_eq!(status.pending_stages, 1);
        assert_eq!(status.stable, ReleaseId::new(0));
        assert!((status.stable_weight - 1.0).abs() < 1e-12);
        assert_eq!(status.releases[1].state, ReleaseState::PhasedOut);
        // Rollback is a real recovery: the probe should succeed.
        assert_eq!(status.stats.recovered, status.stats.incidents);
    }

    #[test]
    fn rollback_never_resurrects_a_phased_out_release() {
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::DemoteAndRollback),
            MasterSeed::new(14),
        );
        fleet.push_stage(bad("1.1"));
        fleet.run_demands(3_000);
        let status = fleet.status();
        assert_eq!(status.releases[1].state, ReleaseState::PhasedOut);
        // Long after the rollback, the phased-out release stays out.
        assert_eq!(status.stats.rollbacks, 1);
    }

    #[test]
    fn substitute_binds_a_registry_stand_in() {
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::Substitute),
            MasterSeed::new(15),
        );
        fleet.push_stage(bad("1.1"));
        let mut pool = SubstitutePool::new();
        pool.register(
            ServiceRecord::new(
                "QuoteAlt",
                "http://node2/quote-alt",
                "quote-like",
                ServiceDescription::new("QuoteAlt", "1.0"),
            ),
            Box::new(good("alt-1.0")),
        );
        fleet.set_substitutes(pool, "quote-like");
        fleet.run_demands(4_000);
        let status = fleet.status();
        assert_eq!(status.stats.substitutions, 1, "status: {status:?}");
        assert_eq!(status.stats.rollbacks, 0);
        assert!(!status.chain_halted);
        // The failed canary is out; the stand-in ramped to promotion.
        assert_eq!(status.releases[1].state, ReleaseState::PhasedOut);
        assert_eq!(status.stats.promotions, 1);
        assert_eq!(status.stable, ReleaseId::new(2));
    }

    #[test]
    fn substitute_without_candidates_falls_back_to_rollback() {
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::Substitute),
            MasterSeed::new(16),
        );
        fleet.push_stage(bad("1.1"));
        fleet.run_demands(2_000);
        let status = fleet.status();
        assert_eq!(status.stats.substitutions, 0);
        assert_eq!(status.stats.rollbacks, 1);
        assert!(status.chain_halted);
    }

    #[test]
    fn restart_in_place_keeps_reopening_incidents_on_a_persistent_fault() {
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::RestartInPlace),
            MasterSeed::new(17),
        );
        fleet.push_stage(bad("1.1"));
        fleet.run_demands(3_000);
        let status = fleet.status();
        assert!(status.stats.incidents > 1, "status: {status:?}");
        assert_eq!(status.stats.rollbacks, 0);
        assert_eq!(status.stats.promotions, 0);
        // The persistent fault keeps failing probes: recovery
        // probability is below rollback's.
        assert!(status.stats.recovered < status.stats.incidents);
    }

    #[test]
    fn runs_are_deterministic_given_the_seed() {
        let run = |seed: u64| {
            let mut fleet = FleetOrchestrator::new(
                good("1.0"),
                quick_plan(RecoveryStrategy::DemoteAndRollback),
                MasterSeed::new(seed),
            );
            fleet.push_stage(bad("1.1"));
            fleet.push_stage(good("1.2"));
            let routes: Vec<usize> = (0..1_500)
                .map(|_| fleet.run_demand().release.index())
                .collect();
            (fleet.status().stats, routes)
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21).1, run(22).1);
    }

    #[test]
    fn at_most_one_canary_is_in_flight() {
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::RestartInPlace),
            MasterSeed::new(23),
        );
        fleet.push_stage(good("1.1"));
        fleet.push_stage(good("1.2"));
        fleet.push_stage(good("1.3"));
        for _ in 0..3_000 {
            fleet.run_demand();
            let status = fleet.status();
            let serving_new = status
                .releases
                .iter()
                .filter(|info| info.state == ReleaseState::Active && info.id != status.stable)
                .filter(|info| status.canary.as_ref().is_some_and(|c| c.id == info.id))
                .count();
            assert!(serving_new <= 1);
        }
    }

    #[test]
    fn substitute_pool_is_deterministic_and_excludes_own_releases() {
        let mut pool = SubstitutePool::new();
        let record = |name: &str| {
            ServiceRecord::new(
                name,
                format!("http://node/{name}"),
                "cat",
                ServiceDescription::new(name, "1.0"),
            )
        };
        pool.register(record("Quote"), Box::new(good("self")));
        pool.register(record("AltB"), Box::new(good("b")));
        pool.register(record("AltC"), Box::new(good("c")));
        assert_eq!(pool.available(), 3);
        // "Quote" is excluded; "AltB" published first wins.
        let (first, _) = pool.acquire("cat", "Quote").expect("candidate");
        assert_eq!(first.name, "AltB");
        assert_eq!(pool.available(), 2);
        let (second, _) = pool.acquire("cat", "Quote").expect("candidate");
        assert_eq!(second.name, "AltC");
        assert!(pool.acquire("cat", "Quote").is_none());
        assert_eq!(pool.registry().find_by_name("Quote").len(), 1);
        assert!(!format!("{pool:?}").is_empty());
    }

    #[test]
    fn fleet_gauges_and_events_are_published() {
        use wsu_obs::SharedRecorder;
        let registry = SharedRegistry::new();
        let recorder = SharedRecorder::new();
        let mut fleet = FleetOrchestrator::new(
            good("1.0"),
            quick_plan(RecoveryStrategy::DemoteAndRollback),
            MasterSeed::new(31),
        );
        fleet.attach_metrics(&registry);
        fleet.attach_recorder(recorder.clone());
        fleet.push_stage(bad("1.1"));
        fleet.run_demands(1_000);
        registry.with(|r| {
            assert_eq!(r.gauge("wsu_fleet_weight", &[("release", "0")]), Some(1.0));
            assert_eq!(r.gauge("wsu_fleet_weight", &[("release", "1")]), Some(0.0));
            assert!(r.counter("wsu_fleet_rollbacks_total", &[]) >= 1);
            assert!(r.counter("wsu_fleet_incidents_total", &[("strategy", "rollback")]) >= 1);
        });
        let events = recorder.snapshot();
        assert!(events.iter().any(
            |e| matches!(e, TraceEvent::SwitchDecision { decision, .. } if decision == "rollback")
        ));
    }

    #[test]
    fn stats_ratios() {
        let stats = FleetStats {
            demands: 100,
            available: 95,
            incidents: 4,
            recovered: 3,
            ..FleetStats::default()
        };
        assert!((stats.availability() - 0.95).abs() < 1e-12);
        assert_eq!(stats.recovery_probability(), Some(0.75));
        assert_eq!(FleetStats::default().recovery_probability(), None);
        assert_eq!(FleetStats::default().availability(), 1.0);
    }
}
