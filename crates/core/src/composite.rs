//! Composite Web Services (paper Fig. 1 and Section 2.2).
//!
//! A composite WS invokes several component WSs plus its own "glue" code.
//! Its dependability — and the *confidence* in it — derives from the
//! components' and the glue's:
//!
//! > "The confidence in the dependability of the composite Web Service
//! > will be affected by the confidence in the dependability of the
//! > component WSs it depends upon and by the confidence in the
//! > dependability of the composition."
//!
//! [`CompositeService`] models a series composition (every component
//! must answer for the composite demand to succeed — the
//! hotel/car/flight workflow of the paper's introduction) and composes
//! published confidences conservatively: if component *i* meets pfd
//! target `t_i` with confidence `c_i`, and the assessments are
//! independent, then by the union bound the composite meets target
//! `Σ t_i` with confidence at least `Π c_i`.

use wsu_simcore::rng::StreamRng;
use wsu_simcore::time::SimDuration;
use wsu_wstack::endpoint::{Invocation, ServiceEndpoint};
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::{OutcomeProfile, ResponseClass};
use wsu_wstack::registry::PublishedConfidence;
use wsu_wstack::wsdl::ServiceDescription;

/// One component dependency of a composite service.
struct Component {
    name: String,
    endpoint: Box<dyn ServiceEndpoint>,
    published: Option<PublishedConfidence>,
}

/// What one composite demand observed of a single component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentObservation {
    /// The component's display name.
    pub name: String,
    /// Ground-truth class of its response.
    pub class: ResponseClass,
    /// Its execution time.
    pub exec_time: SimDuration,
}

/// The result of one composite invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeInvocation {
    /// The composite's overall response class: correct only if the glue
    /// and every component were correct; evident if the glue or any
    /// component failed evidently (the workflow aborts there); otherwise
    /// non-evident.
    pub class: ResponseClass,
    /// Total execution time: sum of the invoked components' times (a
    /// sequential workflow) plus the glue time.
    pub exec_time: SimDuration,
    /// Per-component observations, in invocation order. Components after
    /// an evident failure are not invoked.
    pub components: Vec<ComponentObservation>,
}

/// A composite WS invoking its components in sequence.
pub struct CompositeService {
    name: String,
    glue: OutcomeProfile,
    glue_time: SimDuration,
    glue_confidence: Option<PublishedConfidence>,
    components: Vec<Component>,
}

impl CompositeService {
    /// Starts building a composite service.
    pub fn builder(name: impl Into<String>) -> CompositeBuilder {
        CompositeBuilder {
            name: name.into(),
            glue: OutcomeProfile::always_correct(),
            glue_time: SimDuration::ZERO,
            glue_confidence: None,
            components: Vec::new(),
        }
    }

    /// The composite's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of component dependencies.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Component names in invocation order.
    pub fn component_names(&self) -> Vec<&str> {
        self.components.iter().map(|c| c.name.as_str()).collect()
    }

    /// Executes one composite demand: glue first, then each component in
    /// order, aborting at the first evident failure (the consumer sees
    /// the workflow's exception).
    pub fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> CompositeInvocation {
        let mut exec_time = self.glue_time;
        let glue_class = self.glue.sample(rng);
        let mut observations = Vec::with_capacity(self.components.len());
        if glue_class == ResponseClass::EvidentFailure {
            return CompositeInvocation {
                class: ResponseClass::EvidentFailure,
                exec_time,
                components: observations,
            };
        }
        let mut worst = glue_class;
        for component in &mut self.components {
            let Invocation {
                class,
                exec_time: t,
                ..
            } = component.endpoint.invoke(request, rng);
            exec_time += t;
            observations.push(ComponentObservation {
                name: component.name.clone(),
                class,
                exec_time: t,
            });
            match class {
                ResponseClass::EvidentFailure => {
                    return CompositeInvocation {
                        class: ResponseClass::EvidentFailure,
                        exec_time,
                        components: observations,
                    };
                }
                ResponseClass::NonEvidentFailure => worst = ResponseClass::NonEvidentFailure,
                ResponseClass::Correct => {}
            }
        }
        CompositeInvocation {
            class: worst,
            exec_time,
            components: observations,
        }
    }

    /// Updates the published confidence of a named component (e.g. after
    /// reading a fresh value from the registry).
    ///
    /// Returns `false` if the component is unknown.
    pub fn update_component_confidence(
        &mut self,
        name: &str,
        confidence: PublishedConfidence,
    ) -> bool {
        match self.components.iter_mut().find(|c| c.name == name) {
            Some(component) => {
                component.published = Some(confidence);
                true
            }
            None => false,
        }
    }

    /// The conservative composed confidence: the composite meets the
    /// *sum* of the parts' pfd targets with at least the *product* of
    /// their confidences (union bound over independent assessments).
    ///
    /// Returns `None` unless every component — and, if configured, the
    /// glue — has a published confidence.
    pub fn composed_confidence(&self) -> Option<PublishedConfidence> {
        let mut target = 0.0;
        let mut confidence = 1.0;
        if let Some(glue) = self.glue_confidence {
            target += glue.pfd_target;
            confidence *= glue.confidence;
        }
        for component in &self.components {
            let published = component.published?;
            target += published.pfd_target;
            confidence *= published.confidence;
        }
        if target <= 0.0 || target >= 1.0 {
            return None;
        }
        Some(PublishedConfidence::new(target, confidence))
    }
}

impl std::fmt::Debug for CompositeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeService")
            .field("name", &self.name)
            .field("components", &self.component_names())
            .finish()
    }
}

/// Adapts a [`CompositeService`] into a [`ServiceEndpoint`], so a
/// functionally-equivalent composite can be deployed *as a release*
/// behind the upgrade middleware — the atomic-replacement recovery
/// story: when a release is demoted, a composite stand-in from the
/// registry is bound in its place.
pub struct CompositeEndpoint {
    composite: CompositeService,
    description: ServiceDescription,
}

impl CompositeEndpoint {
    /// Wraps a composite, describing it as `release` of its own name.
    pub fn new(composite: CompositeService, release: &str) -> CompositeEndpoint {
        let description = ServiceDescription::new(composite.name(), release);
        CompositeEndpoint {
            composite,
            description,
        }
    }

    /// The wrapped composite.
    pub fn composite(&self) -> &CompositeService {
        &self.composite
    }
}

impl ServiceEndpoint for CompositeEndpoint {
    fn describe(&self) -> &ServiceDescription {
        &self.description
    }

    fn invoke(&mut self, request: &Envelope, rng: &mut StreamRng) -> Invocation {
        let inv = self.composite.invoke(request, rng);
        Invocation::from_class(request.operation(), inv.class, inv.exec_time)
    }
}

impl std::fmt::Debug for CompositeEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeEndpoint")
            .field("composite", &self.composite)
            .field("release", &self.description.release())
            .finish()
    }
}

/// Builder for [`CompositeService`].
pub struct CompositeBuilder {
    name: String,
    glue: OutcomeProfile,
    glue_time: SimDuration,
    glue_confidence: Option<PublishedConfidence>,
    components: Vec<Component>,
}

impl CompositeBuilder {
    /// Sets the glue code's own failure behaviour (defaults to always
    /// correct).
    pub fn glue(mut self, profile: OutcomeProfile) -> CompositeBuilder {
        self.glue = profile;
        self
    }

    /// Sets the glue's processing time per demand (defaults to zero).
    pub fn glue_time(mut self, time: SimDuration) -> CompositeBuilder {
        self.glue_time = time;
        self
    }

    /// Publishes a confidence for the glue itself.
    pub fn glue_confidence(mut self, confidence: PublishedConfidence) -> CompositeBuilder {
        self.glue_confidence = Some(confidence);
        self
    }

    /// Adds a component dependency.
    pub fn component(
        mut self,
        name: impl Into<String>,
        endpoint: impl ServiceEndpoint + 'static,
    ) -> CompositeBuilder {
        self.components.push(Component {
            name: name.into(),
            endpoint: Box::new(endpoint),
            published: None,
        });
        self
    }

    /// Adds a component with a known published confidence.
    pub fn component_with_confidence(
        mut self,
        name: impl Into<String>,
        endpoint: impl ServiceEndpoint + 'static,
        confidence: PublishedConfidence,
    ) -> CompositeBuilder {
        self.components.push(Component {
            name: name.into(),
            endpoint: Box::new(endpoint),
            published: Some(confidence),
        });
        self
    }

    /// Builds the composite.
    ///
    /// # Panics
    ///
    /// Panics if no components were added — a composite WS without
    /// dependencies is just a WS.
    pub fn build(self) -> CompositeService {
        assert!(
            !self.components.is_empty(),
            "a composite service needs at least one component"
        );
        CompositeService {
            name: self.name,
            glue: self.glue,
            glue_time: self.glue_time,
            glue_confidence: self.glue_confidence,
            components: self.components,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_simcore::dist::DelayModel;
    use wsu_wstack::endpoint::SyntheticService;

    fn component(profile: OutcomeProfile, secs: f64) -> SyntheticService {
        SyntheticService::builder("Comp", "1.0")
            .outcomes(profile)
            .exec_time(DelayModel::constant(secs))
            .build()
    }

    #[test]
    fn series_invocation_sums_times() {
        let mut composite = CompositeService::builder("Travel")
            .glue_time(SimDuration::from_secs(0.05))
            .component("flights", component(OutcomeProfile::always_correct(), 0.3))
            .component("hotels", component(OutcomeProfile::always_correct(), 0.2))
            .build();
        let mut rng = StreamRng::from_seed(1);
        let inv = composite.invoke(&Envelope::request("book"), &mut rng);
        assert_eq!(inv.class, ResponseClass::Correct);
        assert!((inv.exec_time.as_secs() - 0.55).abs() < 1e-12);
        assert_eq!(inv.components.len(), 2);
        assert_eq!(composite.component_count(), 2);
        assert_eq!(composite.component_names(), vec!["flights", "hotels"]);
        assert_eq!(composite.name(), "Travel");
    }

    #[test]
    fn evident_failure_aborts_the_workflow() {
        let mut composite = CompositeService::builder("Travel")
            .component(
                "flights",
                component(OutcomeProfile::new(0.0, 1.0, 0.0), 0.3),
            )
            .component("hotels", component(OutcomeProfile::always_correct(), 0.2))
            .build();
        let mut rng = StreamRng::from_seed(2);
        let inv = composite.invoke(&Envelope::request("book"), &mut rng);
        assert_eq!(inv.class, ResponseClass::EvidentFailure);
        // Hotels never invoked.
        assert_eq!(inv.components.len(), 1);
        assert!((inv.exec_time.as_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn non_evident_failure_propagates_silently() {
        let mut composite = CompositeService::builder("Travel")
            .component(
                "flights",
                component(OutcomeProfile::new(0.0, 0.0, 1.0), 0.3),
            )
            .component("hotels", component(OutcomeProfile::always_correct(), 0.2))
            .build();
        let mut rng = StreamRng::from_seed(3);
        let inv = composite.invoke(&Envelope::request("book"), &mut rng);
        assert_eq!(inv.class, ResponseClass::NonEvidentFailure);
        // Both invoked: nothing evident to abort on.
        assert_eq!(inv.components.len(), 2);
    }

    #[test]
    fn glue_failures_count() {
        let mut composite = CompositeService::builder("Travel")
            .glue(OutcomeProfile::new(0.0, 1.0, 0.0))
            .component("flights", component(OutcomeProfile::always_correct(), 0.3))
            .build();
        let mut rng = StreamRng::from_seed(4);
        let inv = composite.invoke(&Envelope::request("book"), &mut rng);
        assert_eq!(inv.class, ResponseClass::EvidentFailure);
        assert!(inv.components.is_empty());
    }

    #[test]
    fn composed_confidence_is_union_bound() {
        let mut composite = CompositeService::builder("Travel")
            .glue_confidence(PublishedConfidence::new(1e-4, 0.999))
            .component_with_confidence(
                "flights",
                component(OutcomeProfile::always_correct(), 0.1),
                PublishedConfidence::new(1e-3, 0.99),
            )
            .component_with_confidence(
                "hotels",
                component(OutcomeProfile::always_correct(), 0.1),
                PublishedConfidence::new(2e-3, 0.95),
            )
            .build();
        let composed = composite.composed_confidence().unwrap();
        assert!((composed.pfd_target - 3.1e-3).abs() < 1e-12);
        assert!((composed.confidence - 0.999 * 0.99 * 0.95).abs() < 1e-12);
        // Updating one component updates the composition.
        assert!(
            composite.update_component_confidence("hotels", PublishedConfidence::new(2e-3, 0.99))
        );
        let better = composite.composed_confidence().unwrap();
        assert!(better.confidence > composed.confidence);
        assert!(
            !composite.update_component_confidence("ghost", PublishedConfidence::new(1e-3, 0.9))
        );
    }

    #[test]
    fn missing_component_confidence_yields_none() {
        let composite = CompositeService::builder("Travel")
            .component("flights", component(OutcomeProfile::always_correct(), 0.1))
            .build();
        assert!(composite.composed_confidence().is_none());
    }

    #[test]
    fn composite_failure_rate_compounds() {
        // Two components at 2% failure each: composite correct rate
        // ~ 0.98^2 ~ 0.9604.
        let profile = OutcomeProfile::new(0.98, 0.01, 0.01);
        let mut composite = CompositeService::builder("Travel")
            .component("a", component(profile, 0.0))
            .component("b", component(profile, 0.0))
            .build();
        let mut rng = StreamRng::from_seed(5);
        let n = 50_000;
        let correct = (0..n)
            .filter(|_| {
                composite.invoke(&Envelope::request("x"), &mut rng).class == ResponseClass::Correct
            })
            .count();
        let rate = correct as f64 / n as f64;
        assert!((rate - 0.9604).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn composite_endpoint_serves_as_a_release() {
        let composite = CompositeService::builder("Travel")
            .glue_time(SimDuration::from_secs(0.05))
            .component("flights", component(OutcomeProfile::always_correct(), 0.3))
            .component("hotels", component(OutcomeProfile::always_correct(), 0.2))
            .build();
        let mut endpoint = CompositeEndpoint::new(composite, "sub-1");
        assert_eq!(endpoint.describe().service(), "Travel");
        assert_eq!(endpoint.describe().release(), "sub-1");
        assert_eq!(endpoint.composite().component_count(), 2);
        let mut rng = StreamRng::from_seed(6);
        let inv = endpoint.invoke(&Envelope::request("book"), &mut rng);
        assert_eq!(inv.class, ResponseClass::Correct);
        assert!((inv.exec_time.as_secs() - 0.55).abs() < 1e-12);
        assert!(format!("{endpoint:?}").contains("sub-1"));
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_composite_rejected() {
        let _ = CompositeService::builder("Empty").build();
    }

    #[test]
    fn debug_lists_components() {
        let composite = CompositeService::builder("Travel")
            .component("flights", component(OutcomeProfile::always_correct(), 0.1))
            .build();
        assert!(format!("{composite:?}").contains("flights"));
    }
}
