//! The managed-upgrade orchestrator.
//!
//! [`ManagedUpgrade`] wires the whole architecture of Fig. 5 together:
//! the upgrading middleware running the old and the new release side by
//! side, the monitoring subsystem scoring both, the Bayesian assessment,
//! and the management subsystem that switches the composite service to
//! the new release when the configured criterion is met — then phases
//! the old release out.
//!
//! It is the programmatic equivalent of the paper's test harness
//! (Section 6.1): callers can change operating mode, adjudicator,
//! criterion and detector at run time, and read back the confidence
//! associated with each release.

use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::whitebox::{CoincidencePrior, Resolution};
use wsu_detect::back2back::BackToBackDetector;
use wsu_detect::oracle::{
    ChainDetector, FailureDetector, FalseAlarmOracle, OmissionOracle, PerfectOracle,
};
use wsu_obs::{
    DemandSpan, NullRecorder, Recorder, SharedRegistry, SloConfig, SpanProfile, TraceEvent,
};
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_wstack::endpoint::ServiceEndpoint;
use wsu_wstack::message::Envelope;
use wsu_wstack::registry::PublishedConfidence;

use crate::error::CoreError;
#[allow(deprecated)]
use crate::log::EventLog;
use crate::log::LogLevel;
use crate::manage::{
    Assessment, ManagementSubsystem, RecoveryAction, SwitchCriterion, SwitchDecision,
};
use crate::middleware::{DemandRecord, MiddlewareConfig, UpgradeMiddleware};
use crate::monitor::MonitoringSubsystem;
use crate::release::ReleaseId;

/// Which failure-detection mechanism scores the release pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// Perfect oracles.
    Perfect,
    /// Omission oracles missing each failure with the given probability.
    Omission(f64),
    /// Back-to-back comparison under the pessimistic identical-coincident
    /// assumption.
    BackToBack,
    /// Back-to-back comparison followed by omission oracles.
    BackToBackThenOmission(f64),
    /// False-alarm oracles flagging good responses with the given
    /// probability.
    FalseAlarm(f64),
}

impl DetectorKind {
    fn build(self) -> Box<dyn FailureDetector> {
        match self {
            DetectorKind::Perfect => Box::new(PerfectOracle),
            DetectorKind::Omission(p) => Box::new(OmissionOracle::new(p)),
            DetectorKind::BackToBack => Box::new(BackToBackDetector::pessimistic()),
            DetectorKind::BackToBackThenOmission(p) => Box::new(
                ChainDetector::new()
                    .then(BackToBackDetector::pessimistic())
                    .then(OmissionOracle::new(p)),
            ),
            DetectorKind::FalseAlarm(p) => Box::new(FalseAlarmOracle::new(p)),
        }
    }
}

/// Configuration of a managed upgrade.
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradeConfig {
    /// Middleware configuration (mode, timeout, adjudicator).
    pub middleware: MiddlewareConfig,
    /// Prior over the old release's pfd.
    pub prior_a: ScaledBeta,
    /// Prior over the new release's pfd.
    pub prior_b: ScaledBeta,
    /// Conditional prior of coincident failure.
    pub coincidence: CoincidencePrior,
    /// The switching criterion.
    pub criterion: SwitchCriterion,
    /// The failure detector scoring the pair.
    pub detector: DetectorKind,
    /// Grid resolution of the inference.
    pub resolution: Resolution,
    /// Reassess (and possibly switch) every this many demands.
    pub assess_interval: u64,
    /// How many recent demand records the monitor retains.
    pub recent_capacity: usize,
    /// How many log entries are retained.
    pub log_capacity: usize,
    /// The operation invoked on the releases.
    pub operation: String,
    /// Whether the orchestrator switches automatically when the
    /// criterion is met (disable to only observe).
    pub auto_switch: bool,
    /// Optional rollback guard: abort the upgrade (phase the *new*
    /// release out) when the evidence says it is worse than the old one.
    pub abort: Option<crate::manage::AbortPolicy>,
}

impl Default for UpgradeConfig {
    /// Paper-flavoured defaults: parallel-reliability middleware with a
    /// 2 s timeout, weakly informative priors on `[0, 0.01]`, the
    /// indifference coincidence prior, criterion 3 at 99%, perfect
    /// detection, assessment every 500 demands.
    fn default() -> UpgradeConfig {
        UpgradeConfig {
            middleware: MiddlewareConfig::default(),
            prior_a: ScaledBeta::new(1.0, 10.0, 0.01).expect("valid default prior"),
            prior_b: ScaledBeta::new(2.0, 3.0, 0.01).expect("valid default prior"),
            coincidence: CoincidencePrior::IndifferenceUniform,
            criterion: SwitchCriterion::better_than_old(0.99),
            detector: DetectorKind::Perfect,
            resolution: Resolution::default(),
            assess_interval: 500,
            recent_capacity: 128,
            log_capacity: 256,
            operation: "invoke".to_owned(),
            auto_switch: true,
            abort: None,
        }
    }
}

impl UpgradeConfig {
    /// Sets the priors (builder style).
    pub fn with_priors(mut self, prior_a: ScaledBeta, prior_b: ScaledBeta) -> UpgradeConfig {
        self.prior_a = prior_a;
        self.prior_b = prior_b;
        self
    }

    /// Sets the switching criterion.
    pub fn with_criterion(mut self, criterion: SwitchCriterion) -> UpgradeConfig {
        self.criterion = criterion;
        self
    }

    /// Sets the middleware configuration.
    pub fn with_middleware(mut self, middleware: MiddlewareConfig) -> UpgradeConfig {
        self.middleware = middleware;
        self
    }

    /// Sets the failure detector.
    pub fn with_detector(mut self, detector: DetectorKind) -> UpgradeConfig {
        self.detector = detector;
        self
    }

    /// Sets the coincidence prior.
    pub fn with_coincidence(mut self, coincidence: CoincidencePrior) -> UpgradeConfig {
        self.coincidence = coincidence;
        self
    }

    /// Sets the assessment cadence (in demands).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn with_assess_interval(mut self, interval: u64) -> UpgradeConfig {
        assert!(interval > 0, "assessment interval must be positive");
        self.assess_interval = interval;
        self
    }

    /// Sets the inference grid resolution.
    pub fn with_resolution(mut self, resolution: Resolution) -> UpgradeConfig {
        self.resolution = resolution;
        self
    }

    /// Sets the invoked operation name.
    pub fn with_operation(mut self, operation: impl Into<String>) -> UpgradeConfig {
        self.operation = operation.into();
        self
    }

    /// Enables or disables automatic switching.
    pub fn with_auto_switch(mut self, auto_switch: bool) -> UpgradeConfig {
        self.auto_switch = auto_switch;
        self
    }

    /// Enables the rollback guard.
    pub fn with_abort(mut self, abort: crate::manage::AbortPolicy) -> UpgradeConfig {
        self.abort = Some(abort);
        self
    }
}

/// The lifecycle phase of the managed upgrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradePhase {
    /// Both releases run; the composite service still answers from the
    /// adjudicated pair.
    Transitional,
    /// The criterion was met at the recorded demand count; the old
    /// release has been phased out.
    Switched {
        /// The demand count at which the switch happened.
        at_demand: u64,
    },
    /// The rollback guard fired: the new release has been phased out and
    /// the composite service continues on the old release alone.
    Aborted {
        /// The demand count at which the upgrade was aborted.
        at_demand: u64,
    },
}

/// A compact, consumer-facing confidence summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceReport {
    /// Demands observed so far.
    pub demands: u64,
    /// 99% percentile of the old release's posterior pfd.
    pub old_release_p99: f64,
    /// 99% percentile of the new release's posterior pfd.
    pub new_release_p99: f64,
    /// Posterior mean pfd of the old release.
    pub old_release_mean: f64,
    /// Posterior mean pfd of the new release.
    pub new_release_mean: f64,
    /// Whether the switching criterion is currently met.
    pub criterion_met: bool,
}

/// The managed upgrade of one component WS from an old to a new release.
#[allow(deprecated)]
pub struct ManagedUpgrade {
    middleware: UpgradeMiddleware,
    monitor: MonitoringSubsystem,
    manager: ManagementSubsystem,
    log: EventLog,
    phase: UpgradePhase,
    old: ReleaseId,
    new: ReleaseId,
    operation: String,
    assess_interval: u64,
    auto_switch: bool,
    abort: Option<crate::manage::AbortPolicy>,
    demand_rng: StreamRng,
    monitor_rng: StreamRng,
    /// The orchestrator's own trace sink (lifecycle events); the
    /// middleware holds its clone for per-demand events.
    recorder: Box<dyn Recorder>,
    /// Accumulated virtual time: the sum of consumer-visible response
    /// times of all demands processed so far, per the paper's eq. (8)
    /// timing model with back-to-back demands.
    virtual_time: f64,
    /// Per-phase decomposition of where the virtual time went.
    span_profile: SpanProfile,
}

#[allow(deprecated)]
impl ManagedUpgrade {
    /// Deploys `old` and `new` behind the middleware and starts the
    /// managed upgrade in the transitional phase.
    pub fn new(
        old: impl ServiceEndpoint + 'static,
        new: impl ServiceEndpoint + 'static,
        config: UpgradeConfig,
        seed: MasterSeed,
    ) -> ManagedUpgrade {
        let mut middleware = UpgradeMiddleware::new(config.middleware);
        let old_id = middleware.deploy(old);
        let new_id = middleware.deploy(new);
        let mut monitor = MonitoringSubsystem::new(config.recent_capacity);
        monitor.track_pair_with(old_id, new_id, BoxedDetector(config.detector.build()));
        // A consumer wait beyond the middleware timeout is the natural
        // latency SLO: served demands stay under it, timeout-bound ones
        // exceed it.
        monitor.configure_slo(SloConfig {
            latency_threshold: middleware.config().timeout.as_secs(),
            ..SloConfig::default()
        });
        let manager = ManagementSubsystem::with_resolution(
            config.prior_a,
            config.prior_b,
            config.coincidence,
            config.criterion,
            config.resolution,
        );
        let mut log = EventLog::new(config.log_capacity);
        log.push(
            0,
            LogLevel::Info,
            format!(
                "managed upgrade started: criterion {}, detector {:?}",
                config.criterion.label(),
                config.detector
            ),
        );
        ManagedUpgrade {
            middleware,
            monitor,
            manager,
            log,
            phase: UpgradePhase::Transitional,
            old: old_id,
            new: new_id,
            operation: config.operation,
            assess_interval: config.assess_interval,
            auto_switch: config.auto_switch,
            abort: config.abort,
            demand_rng: seed.stream("managed-upgrade/demands"),
            monitor_rng: seed.stream("managed-upgrade/monitor"),
            recorder: Box::new(NullRecorder),
            virtual_time: 0.0,
            span_profile: SpanProfile::new(),
        }
    }

    /// Attaches a trace recorder to the orchestrator *and* its
    /// middleware. The recorder must be cloneable so both append to one
    /// sink — [`wsu_obs::SharedRecorder`] is the intended choice.
    pub fn attach_recorder<R: Recorder + Clone + 'static>(&mut self, recorder: R) {
        self.middleware.set_recorder(recorder.clone());
        self.recorder = Box::new(recorder);
    }

    /// Routes monitoring and management metrics into `registry`.
    pub fn attach_metrics(&mut self, registry: &SharedRegistry) {
        self.monitor.set_metrics(registry.clone());
        self.manager.set_metrics(registry.clone());
    }

    /// Accumulated virtual time (seconds): the sum of consumer-visible
    /// response times of all demands processed so far.
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }

    /// Processes one consumer demand end to end, updating monitoring and
    /// (on assessment boundaries) possibly switching to the new release.
    ///
    /// # Panics
    ///
    /// Panics if no release is active — which cannot happen unless the
    /// recovery policy is disabled and every release has been suspended
    /// manually.
    pub fn run_demand(&mut self) -> DemandRecord {
        // Recovery sweep first, so suspended releases can come back
        // before the demand is dispatched.
        let actions = self
            .manager
            .apply_recovery(self.middleware.releases_mut())
            .expect("recovery over known releases");
        for action in actions {
            let demand = self.middleware.demands();
            self.log.push_at(
                self.virtual_time,
                demand,
                LogLevel::Warning,
                format!("recovery action: {action:?}"),
            );
            if self.recorder.enabled() {
                let (release, act) = match action {
                    RecoveryAction::Suspended(id) => (id.index(), "suspended"),
                    RecoveryAction::Restarted(id) => (id.index(), "restarted"),
                };
                self.recorder.record(TraceEvent::ReleaseSuspended {
                    t: self.virtual_time,
                    demand,
                    release,
                    action: act.to_string(),
                });
            }
        }
        self.middleware.set_virtual_time(self.virtual_time);
        let request = Envelope::request(self.operation.clone());
        let record = self
            .middleware
            .process(&request, &mut self.demand_rng)
            .expect("at least one active release");
        self.monitor.observe(&record, &mut self.monitor_rng);
        // Same phase attribution as the middleware's SpanClosed event:
        // the wait on releases is transport, the fixed `dT` is
        // adjudication; detection, Bayes updates and recovery run
        // between demands at zero virtual cost (paper eq. (8)).
        let dt = self.middleware.config().adjudication_delay.as_secs();
        let response_time = record.system.response_time.as_secs();
        self.span_profile.record(&DemandSpan {
            t: record.t,
            demand: record.seq,
            transport: (response_time - dt).max(0.0),
            adjudication: dt,
            ..DemandSpan::default()
        });
        // Demands are back to back: the clock advances by what the
        // consumer waited.
        self.virtual_time += record.system.response_time.as_secs();

        if self.phase == UpgradePhase::Transitional
            && self.monitor.demands().is_multiple_of(self.assess_interval)
            && (self.auto_switch || self.abort.is_some())
        {
            // Incremental assessment: the posterior advances in place by
            // the count deltas since the last interval — no per-interval
            // grid allocation.
            let counts = self
                .monitor
                .pair()
                .map(|p| p.observed())
                .unwrap_or_default();
            let abort = self.abort;
            let (old_p99, new_p99, decision, abort_now) = {
                let assessment = self.manager.assess_incremental(&counts);
                (
                    assessment.marginal_a.percentile(0.99),
                    assessment.marginal_b.percentile(0.99),
                    assessment.decision,
                    abort.is_some_and(|policy| {
                        policy.should_abort(&assessment.marginal_a, &assessment.marginal_b)
                    }),
                )
            };
            if self.recorder.enabled() {
                self.recorder.record(TraceEvent::ConfidenceUpdated {
                    t: self.virtual_time,
                    demand: self.monitor.demands(),
                    old_p99,
                    new_p99,
                    criterion: self.manager.criterion().label(),
                    satisfied: decision == SwitchDecision::SwitchToNew,
                });
            }
            if abort_now {
                self.abort_upgrade();
            } else if self.auto_switch && decision == SwitchDecision::SwitchToNew {
                self.switch_to_new();
            }
        }
        record
    }

    /// Runs `n` demands.
    pub fn run_demands(&mut self, n: u64) {
        for _ in 0..n {
            self.run_demand();
        }
    }

    /// A fresh assessment from the currently observed joint counts.
    pub fn assessment(&self) -> Assessment {
        let counts = self
            .monitor
            .pair()
            .map(|p| p.observed())
            .unwrap_or_default();
        self.manager.assess(&counts)
    }

    /// Forces the switch to the new release immediately (the vendor's
    /// prerogative in Section 3.3). The old release is phased out.
    pub fn switch_to_new(&mut self) {
        if self.phase != UpgradePhase::Transitional {
            return;
        }
        let at_demand = self.monitor.demands();
        self.middleware
            .releases_mut()
            .phase_out(self.old)
            .expect("old release can be phased out once");
        self.phase = UpgradePhase::Switched { at_demand };
        self.log.push_at(
            self.virtual_time,
            at_demand,
            LogLevel::Decision,
            format!("switched to new release after {at_demand} demands"),
        );
        self.manager.count_decision("switch");
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::SwitchDecision {
                t: self.virtual_time,
                demand: at_demand,
                decision: "switch-to-new".to_string(),
                reason: format!(
                    "criterion {} met after {at_demand} demands",
                    self.manager.criterion().label()
                ),
            });
        }
    }

    /// Aborts the upgrade: the *new* release is phased out and the
    /// composite service continues on the old release (the rollback the
    /// [`AbortPolicy`](crate::manage::AbortPolicy) guard triggers
    /// automatically). A no-op once switched or already aborted.
    pub fn abort_upgrade(&mut self) {
        if self.phase != UpgradePhase::Transitional {
            return;
        }
        let at_demand = self.monitor.demands();
        self.middleware
            .releases_mut()
            .phase_out(self.new)
            .expect("new release can be phased out once");
        self.phase = UpgradePhase::Aborted { at_demand };
        self.log.push_at(
            self.virtual_time,
            at_demand,
            LogLevel::Decision,
            format!("upgrade aborted after {at_demand} demands: new release judged worse"),
        );
        self.manager.count_decision("abort");
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::SwitchDecision {
                t: self.virtual_time,
                demand: at_demand,
                decision: "abort-upgrade".to_string(),
                reason: format!("new release judged worse after {at_demand} demands"),
            });
        }
    }

    /// The current phase.
    pub fn phase(&self) -> UpgradePhase {
        self.phase
    }

    /// Demands processed.
    pub fn demands(&self) -> u64 {
        self.monitor.demands()
    }

    /// The old release's id.
    pub fn old_release(&self) -> ReleaseId {
        self.old
    }

    /// The new release's id.
    pub fn new_release(&self) -> ReleaseId {
        self.new
    }

    /// The monitoring subsystem.
    pub fn monitor(&self) -> &MonitoringSubsystem {
        &self.monitor
    }

    /// Per-phase decomposition of the accumulated virtual time.
    pub fn span_profile(&self) -> &SpanProfile {
        &self.span_profile
    }

    /// The management subsystem.
    pub fn manager(&self) -> &ManagementSubsystem {
        &self.manager
    }

    /// Mutable access to the management subsystem (run-time
    /// reconfiguration).
    pub fn manager_mut(&mut self) -> &mut ManagementSubsystem {
        &mut self.manager
    }

    /// The middleware (e.g. for mode changes).
    pub fn middleware(&self) -> &UpgradeMiddleware {
        &self.middleware
    }

    /// Mutable access to the middleware.
    pub fn middleware_mut(&mut self) -> &mut UpgradeMiddleware {
        &mut self.middleware
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// A consumer-facing confidence summary (Section 6.1: "the user can
    /// read back the confidence associated with each of the deployed
    /// releases").
    pub fn confidence_report(&self) -> ConfidenceReport {
        let assessment = self.assessment();
        ConfidenceReport {
            demands: assessment.demands,
            old_release_p99: assessment.marginal_a.percentile(0.99),
            new_release_p99: assessment.marginal_b.percentile(0.99),
            old_release_mean: assessment.marginal_a.mean(),
            new_release_mean: assessment.marginal_b.mean(),
            criterion_met: assessment.decision == SwitchDecision::SwitchToNew,
        }
    }

    /// The confidence that the *new* release's pfd is at or below
    /// `target`, in a form ready for publication in a registry record.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `target` is outside
    /// `(0, 1)`.
    pub fn publishable_confidence(&self, target: f64) -> Result<PublishedConfidence, CoreError> {
        if !(target > 0.0 && target < 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "pfd target {target} not in (0, 1)"
            )));
        }
        let assessment = self.assessment();
        Ok(PublishedConfidence::new(
            target,
            assessment.marginal_b.confidence(target),
        ))
    }
}

impl std::fmt::Debug for ManagedUpgrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedUpgrade")
            .field("phase", &self.phase)
            .field("demands", &self.monitor.demands())
            .field("criterion", &self.manager.criterion())
            .finish()
    }
}

/// Adapter: `Box<dyn FailureDetector>` as a detector by value.
struct BoxedDetector(Box<dyn FailureDetector>);

impl FailureDetector for BoxedDetector {
    fn name(&self) -> String {
        self.0.name()
    }

    fn observe(
        &mut self,
        truth: wsu_detect::oracle::DemandOutcome,
        rng: &mut StreamRng,
    ) -> wsu_detect::oracle::DemandOutcome {
        self.0.observe(truth, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_wstack::endpoint::SyntheticService;
    use wsu_wstack::outcome::OutcomeProfile;

    fn small_res() -> Resolution {
        Resolution {
            a_cells: 32,
            b_cells: 32,
            q_cells: 8,
        }
    }

    fn upgrade_with(
        old_profile: OutcomeProfile,
        new_profile: OutcomeProfile,
        config: UpgradeConfig,
    ) -> ManagedUpgrade {
        let old = SyntheticService::builder("Svc", "1.0")
            .outcomes(old_profile)
            .exec_time_mean(0.1)
            .build();
        let new = SyntheticService::builder("Svc", "1.1")
            .outcomes(new_profile)
            .exec_time_mean(0.1)
            .build();
        ManagedUpgrade::new(old, new, config, MasterSeed::new(99))
    }

    #[test]
    fn switches_when_new_release_is_clean() {
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_assess_interval(200)
            .with_criterion(SwitchCriterion::better_than_old(0.9));
        // Old release visibly failing, new release clean: the posterior
        // comparison favours B quickly.
        let mut upgrade = upgrade_with(
            OutcomeProfile::new(0.95, 0.03, 0.02),
            OutcomeProfile::always_correct(),
            config,
        );
        upgrade.run_demands(2_000);
        match upgrade.phase() {
            UpgradePhase::Switched { at_demand } => {
                assert!(at_demand <= 2_000);
                assert!(at_demand >= 200);
            }
            other => panic!("expected a switch, got {other:?}"),
        }
        // Old release was phased out.
        let infos = upgrade.middleware().release_infos();
        assert_eq!(infos[0].state, crate::release::ReleaseState::PhasedOut);
        assert_eq!(infos[1].state, crate::release::ReleaseState::Active);
        // The decision was logged.
        assert!(upgrade
            .log()
            .entries_at(LogLevel::Decision)
            .iter()
            .any(|e| e.message.contains("switched")));
    }

    #[test]
    fn does_not_switch_when_new_release_is_bad() {
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_assess_interval(200)
            .with_criterion(SwitchCriterion::better_than_old(0.9));
        // New release fails often: criterion 3 must not fire.
        let mut upgrade = upgrade_with(
            OutcomeProfile::always_correct(),
            OutcomeProfile::new(0.9, 0.05, 0.05),
            config,
        );
        upgrade.run_demands(1_000);
        assert_eq!(upgrade.phase(), UpgradePhase::Transitional);
        let report = upgrade.confidence_report();
        assert!(!report.criterion_met);
        assert!(report.new_release_p99 > report.old_release_p99);
    }

    #[test]
    fn auto_switch_can_be_disabled() {
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_assess_interval(100)
            .with_auto_switch(false)
            .with_criterion(SwitchCriterion::better_than_old(0.5));
        let mut upgrade = upgrade_with(
            OutcomeProfile::new(0.9, 0.05, 0.05),
            OutcomeProfile::always_correct(),
            config,
        );
        upgrade.run_demands(500);
        assert_eq!(upgrade.phase(), UpgradePhase::Transitional);
        // But the assessment itself says switch.
        assert_eq!(upgrade.assessment().decision, SwitchDecision::SwitchToNew);
        // Manual switch works.
        upgrade.switch_to_new();
        assert!(matches!(upgrade.phase(), UpgradePhase::Switched { .. }));
        // Idempotent.
        upgrade.switch_to_new();
    }

    #[test]
    fn continues_serving_after_switch() {
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_assess_interval(100)
            .with_criterion(SwitchCriterion::better_than_old(0.5));
        let mut upgrade = upgrade_with(
            OutcomeProfile::new(0.9, 0.05, 0.05),
            OutcomeProfile::always_correct(),
            config,
        );
        upgrade.run_demands(300);
        upgrade.switch_to_new();
        let before = upgrade.demands();
        upgrade.run_demands(50);
        assert_eq!(upgrade.demands(), before + 50);
        // Only the new release serves now.
        let record = upgrade.run_demand();
        assert_eq!(record.per_release.len(), 1);
        assert_eq!(record.per_release[0].release, upgrade.new_release());
    }

    #[test]
    fn confidence_report_is_consistent() {
        let config = UpgradeConfig::default().with_resolution(small_res());
        let mut upgrade = upgrade_with(
            OutcomeProfile::always_correct(),
            OutcomeProfile::always_correct(),
            config,
        );
        upgrade.run_demands(100);
        let report = upgrade.confidence_report();
        assert_eq!(report.demands, 100);
        assert!(report.new_release_p99 > report.new_release_mean);
        assert!(report.old_release_p99 > 0.0);
    }

    #[test]
    fn publishable_confidence() {
        let config = UpgradeConfig::default().with_resolution(small_res());
        let mut upgrade = upgrade_with(
            OutcomeProfile::always_correct(),
            OutcomeProfile::always_correct(),
            config,
        );
        upgrade.run_demands(100);
        let published = upgrade.publishable_confidence(5e-3).unwrap();
        assert_eq!(published.pfd_target, 5e-3);
        assert!(published.confidence > 0.0 && published.confidence <= 1.0);
        assert!(upgrade.publishable_confidence(0.0).is_err());
    }

    #[test]
    fn detector_kind_wiring() {
        for kind in [
            DetectorKind::Perfect,
            DetectorKind::Omission(0.15),
            DetectorKind::BackToBack,
            DetectorKind::BackToBackThenOmission(0.15),
            DetectorKind::FalseAlarm(0.05),
        ] {
            let config = UpgradeConfig::default()
                .with_resolution(small_res())
                .with_detector(kind);
            let mut upgrade = upgrade_with(
                OutcomeProfile::always_correct(),
                OutcomeProfile::always_correct(),
                config,
            );
            upgrade.run_demands(10);
            assert_eq!(upgrade.monitor().pair().unwrap().observed().demands(), 10);
        }
    }

    #[test]
    fn abort_guard_rolls_back_a_bad_release() {
        use crate::manage::AbortPolicy;
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_assess_interval(200)
            .with_abort(AbortPolicy::new(0.9));
        // Old release excellent, new release terrible.
        let mut upgrade = upgrade_with(
            OutcomeProfile::always_correct(),
            OutcomeProfile::new(0.8, 0.1, 0.1),
            config,
        );
        upgrade.run_demands(3_000);
        let UpgradePhase::Aborted { at_demand } = upgrade.phase() else {
            panic!("expected an abort, got {:?}", upgrade.phase());
        };
        assert!(at_demand % 200 == 0);
        // Only the old release serves now.
        let record = upgrade.run_demand();
        assert_eq!(record.per_release.len(), 1);
        assert_eq!(record.per_release[0].release, upgrade.old_release());
        // The decision was logged.
        assert!(upgrade
            .log()
            .entries_at(LogLevel::Decision)
            .iter()
            .any(|e| e.message.contains("aborted")));
    }

    #[test]
    fn abort_guard_spares_a_good_release() {
        use crate::manage::AbortPolicy;
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_assess_interval(200)
            .with_criterion(SwitchCriterion::better_than_old(0.9))
            .with_abort(AbortPolicy::new(0.9));
        let mut upgrade = upgrade_with(
            OutcomeProfile::new(0.97, 0.02, 0.01),
            OutcomeProfile::always_correct(),
            config,
        );
        upgrade.run_demands(3_000);
        assert!(
            matches!(upgrade.phase(), UpgradePhase::Switched { .. }),
            "good release must switch, not abort: {:?}",
            upgrade.phase()
        );
    }

    #[test]
    fn manual_abort_is_idempotent_and_exclusive_with_switch() {
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_auto_switch(false);
        let mut upgrade = upgrade_with(
            OutcomeProfile::always_correct(),
            OutcomeProfile::always_correct(),
            config,
        );
        upgrade.run_demands(100);
        upgrade.abort_upgrade();
        assert!(matches!(upgrade.phase(), UpgradePhase::Aborted { .. }));
        upgrade.abort_upgrade(); // no-op
        upgrade.switch_to_new(); // also a no-op now
        assert!(matches!(upgrade.phase(), UpgradePhase::Aborted { .. }));
    }

    #[test]
    fn trace_captures_the_switch_exactly_once() {
        use wsu_obs::SharedRecorder;
        let config = UpgradeConfig::default()
            .with_resolution(small_res())
            .with_assess_interval(200)
            .with_criterion(SwitchCriterion::better_than_old(0.9));
        let mut upgrade = upgrade_with(
            OutcomeProfile::new(0.95, 0.03, 0.02),
            OutcomeProfile::always_correct(),
            config,
        );
        let recorder = SharedRecorder::new();
        let registry = wsu_obs::SharedRegistry::new();
        upgrade.attach_recorder(recorder.clone());
        upgrade.attach_metrics(&registry);
        upgrade.run_demands(2_000);
        assert!(matches!(upgrade.phase(), UpgradePhase::Switched { .. }));
        let events = recorder.snapshot();
        let switches = events
            .iter()
            .filter(|e| e.kind() == "SwitchDecision")
            .count();
        assert_eq!(switches, 1);
        assert!(events.iter().any(|e| e.kind() == "ConfidenceUpdated"));
        assert!(events.iter().any(|e| e.kind() == "DemandDispatched"));
        // Virtual time is non-decreasing across the whole trace.
        let mut last = 0.0;
        for event in &events {
            assert!(event.virtual_time() >= last, "clock went backwards");
            last = event.virtual_time();
        }
        assert!(upgrade.virtual_time() > 0.0);
        // Metrics mirrored the run.
        registry.with(|r| {
            assert_eq!(r.counter("wsu_demands_total", &[]), 2_000);
            assert!(r.counter("wsu_assessments_total", &[]) > 0);
            assert_eq!(
                r.counter("wsu_switch_decisions_total", &[("decision", "switch")]),
                1
            );
        });
    }

    #[test]
    fn span_profile_accounts_for_all_virtual_time() {
        let config = UpgradeConfig::default().with_resolution(small_res());
        let mut upgrade = upgrade_with(
            OutcomeProfile::always_correct(),
            OutcomeProfile::always_correct(),
            config,
        );
        upgrade.run_demands(100);
        let profile = upgrade.span_profile();
        assert_eq!(profile.demands(), 100);
        // Every virtual second the consumer waited is attributed to a
        // phase — transport and adjudication partition the clock.
        assert!((profile.total() - upgrade.virtual_time()).abs() < 1e-9);
        let dt = upgrade.middleware().config().adjudication_delay.as_secs();
        assert!((profile.phase_total("adjudication").unwrap() - 100.0 * dt).abs() < 1e-9);
        assert_eq!(profile.phase_total("bayes"), Some(0.0));
        // The monitor's always-on telemetry saw the same demands.
        assert_eq!(upgrade.monitor().response_quantiles().count(), 100);
        assert_eq!(upgrade.monitor().dependability_snapshot().demands, 100);
    }

    #[test]
    fn accessors_and_debug() {
        let config = UpgradeConfig::default().with_resolution(small_res());
        let upgrade = upgrade_with(
            OutcomeProfile::always_correct(),
            OutcomeProfile::always_correct(),
            config,
        );
        assert_eq!(upgrade.old_release().index(), 0);
        assert_eq!(upgrade.new_release().index(), 1);
        assert_eq!(upgrade.phase(), UpgradePhase::Transitional);
        assert!(format!("{upgrade:?}").contains("Transitional"));
        assert_eq!(upgrade.manager().criterion().label(), "criterion-3(c=0.99)");
    }
}
