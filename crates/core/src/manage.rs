//! The management subsystem: switching criteria, assessment and
//! reconfiguration (paper Sections 4.4 and 5.1.1.2).
//!
//! The key decision the managed upgrade must take is *when to switch*
//! from the old release (A) to the new one (B). The paper studies three
//! criteria, all expressed over Bayesian posteriors:
//!
//! * **Criterion 1** — B reaches the dependability level the *prior*
//!   credited to A at deployment time: if `P(P_A ≤ X) = c` held a priori,
//!   wait until `P(P_B ≤ X) ≥ c`.
//! * **Criterion 2** — B reaches an explicit target with a given
//!   confidence: `P(P_B ≤ target) ≥ c`.
//! * **Criterion 3** — with a given confidence B is better than A *now*:
//!   the posterior percentiles satisfy `T_B(c) ≤ T_A(c)`.

use wsu_bayes::adaptive::{AdaptiveResolution, AdaptiveUpdater, AdaptiveWhiteBox};
use wsu_bayes::beta::ScaledBeta;
use wsu_bayes::counts::JointCounts;
use wsu_bayes::posterior::{GridPosterior, MarginalView, PosteriorQueries};
use wsu_bayes::whitebox::{CoincidencePrior, PosteriorUpdater, Resolution, WhiteBoxInference};
use wsu_obs::SharedRegistry;

use crate::error::CoreError;
use crate::release::{ReleaseId, ReleaseSet, ReleaseState};

/// A switching criterion (Section 5.1.1.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchCriterion {
    /// Criterion 1: B reaches the dependability the prior credited to A.
    ReachPriorOfOld {
        /// The confidence level `c` (e.g. 0.99).
        confidence: f64,
    },
    /// Criterion 2: B meets an explicit pfd target with confidence `c`.
    ReachTarget {
        /// The pfd target (e.g. `1e-3`).
        target: f64,
        /// The confidence level `c`.
        confidence: f64,
    },
    /// Criterion 3: with confidence `c`, B is no worse than A.
    BetterThanOld {
        /// The confidence level `c`.
        confidence: f64,
    },
}

impl SwitchCriterion {
    /// Criterion 1 at the given confidence.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    pub fn reach_prior_of_old(confidence: f64) -> SwitchCriterion {
        check_confidence(confidence);
        SwitchCriterion::ReachPriorOfOld { confidence }
    }

    /// Criterion 2 at the given target and confidence.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)` or `target` not in
    /// `(0, 1)`.
    pub fn reach_target(target: f64, confidence: f64) -> SwitchCriterion {
        check_confidence(confidence);
        assert!(
            target > 0.0 && target < 1.0,
            "pfd target {target} not in (0, 1)"
        );
        SwitchCriterion::ReachTarget { target, confidence }
    }

    /// Criterion 3 at the given confidence.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    pub fn better_than_old(confidence: f64) -> SwitchCriterion {
        check_confidence(confidence);
        SwitchCriterion::BetterThanOld { confidence }
    }

    /// Evaluates the criterion against the assessment inputs. Accepts
    /// any posterior shape — owned grids or the incremental updater's
    /// borrowed views.
    pub fn satisfied(
        &self,
        prior_a: &ScaledBeta,
        marginal_a: &impl PosteriorQueries,
        marginal_b: &impl PosteriorQueries,
    ) -> bool {
        match *self {
            SwitchCriterion::ReachPriorOfOld { confidence } => {
                let x = prior_a.quantile(confidence);
                marginal_b.confidence(x) >= confidence
            }
            SwitchCriterion::ReachTarget { target, confidence } => {
                marginal_b.confidence(target) >= confidence
            }
            SwitchCriterion::BetterThanOld { confidence } => {
                marginal_b.percentile(confidence) <= marginal_a.percentile(confidence)
            }
        }
    }

    /// A short label used in experiment reports.
    pub fn label(&self) -> String {
        match self {
            SwitchCriterion::ReachPriorOfOld { confidence } => {
                format!("criterion-1(c={confidence})")
            }
            SwitchCriterion::ReachTarget { target, confidence } => {
                format!("criterion-2(target={target}, c={confidence})")
            }
            SwitchCriterion::BetterThanOld { confidence } => {
                format!("criterion-3(c={confidence})")
            }
        }
    }
}

fn check_confidence(confidence: f64) {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence {confidence} not in (0, 1)"
    );
}

/// The decision produced by one assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchDecision {
    /// Keep running the managed upgrade.
    KeepTransitional,
    /// The criterion is met: switch to the new release.
    SwitchToNew,
}

/// A guard that *aborts* the upgrade when the evidence says the new
/// release is worse than the old one — the rollback counterpart of the
/// switching criteria. (The paper only switches *forward*; modern
/// canary systems make this guard explicit, and the architecture
/// supports it for free: the middleware simply phases the new release
/// out instead of the old.)
///
/// The test is deliberately conservative: abort only when B's *lower*
/// `(1 − c)` percentile exceeds A's *upper* `c` percentile — i.e. with
/// confidence at least `c` on each side, B's pfd exceeds A's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbortPolicy {
    /// The confidence level `c` (e.g. 0.99).
    pub confidence: f64,
}

impl AbortPolicy {
    /// Creates an abort policy.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    pub fn new(confidence: f64) -> AbortPolicy {
        check_confidence(confidence);
        AbortPolicy { confidence }
    }

    /// Returns `true` if the upgrade should be aborted.
    pub fn should_abort(
        &self,
        marginal_a: &impl PosteriorQueries,
        marginal_b: &impl PosteriorQueries,
    ) -> bool {
        marginal_b.percentile(1.0 - self.confidence) > marginal_a.percentile(self.confidence)
    }
}

/// One assessment of the managed upgrade's state.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// Demands the assessment is based on.
    pub demands: u64,
    /// Posterior marginal over the old release's pfd.
    pub marginal_a: GridPosterior,
    /// Posterior marginal over the new release's pfd.
    pub marginal_b: GridPosterior,
    /// The decision under the configured criterion.
    pub decision: SwitchDecision,
}

/// A borrowed assessment from the incremental engine: the marginals are
/// views over the updater's cached buffers, so producing one performs no
/// heap allocation. Materialise with [`AssessmentView::to_owned`] when
/// the marginals must outlive the subsystem borrow.
#[derive(Debug, Clone, Copy)]
pub struct AssessmentView<'a> {
    /// Demands the assessment is based on.
    pub demands: u64,
    /// Posterior marginal over the old release's pfd.
    pub marginal_a: MarginalView<'a>,
    /// Posterior marginal over the new release's pfd.
    pub marginal_b: MarginalView<'a>,
    /// The decision under the configured criterion.
    pub decision: SwitchDecision,
}

impl AssessmentView<'_> {
    /// Materialises the borrowed marginals into an owned [`Assessment`]
    /// that can outlive the subsystem borrow.
    pub fn to_owned(&self) -> Assessment {
        Assessment {
            demands: self.demands,
            marginal_a: self.marginal_a.to_posterior(),
            marginal_b: self.marginal_b.to_posterior(),
            decision: self.decision,
        }
    }
}

/// Automatic recovery of failed releases (Section 4.1's "recovery of the
/// failed releases").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Suspend a release after this many consecutive evident failures.
    pub suspend_after: u32,
    /// Restart suspended releases automatically on the next sweep.
    pub auto_restart: bool,
}

impl Default for RecoveryPolicy {
    /// Suspend after 10 consecutive evident failures; restart
    /// automatically.
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            suspend_after: 10,
            auto_restart: true,
        }
    }
}

/// A recovery action taken during a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The release was suspended.
    Suspended(ReleaseId),
    /// The release was restarted.
    Restarted(ReleaseId),
}

/// What a fleet orchestrator does with a release that keeps failing,
/// *beyond* the per-sweep suspend/restart of [`RecoveryPolicy`].
///
/// [`RecoveryPolicy`] handles transient streaks; the strategy decides
/// what to do when an incident is declared (streak threshold hit, or
/// the canary's windowed fault rate degrades past its rollback rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryStrategy {
    /// Suspend the failing release and restart it in place — the
    /// paper's own "recovery of the failed releases" (Section 4.1).
    /// Cheap, but a persistent fault keeps reopening the incident.
    RestartInPlace,
    /// Phase the failing canary out permanently and restore the
    /// upstream stable release's traffic weight. The canary chain halts
    /// at the demoted stage.
    DemoteAndRollback,
    /// Phase the failing canary out and bind a functionally-equivalent
    /// substitute from the service registry as a stand-in release for
    /// the same stage (atomic replacement, à la Saboohi & Kareem).
    /// Falls back to [`RecoveryStrategy::DemoteAndRollback`] when no
    /// substitute is available.
    Substitute,
}

impl RecoveryStrategy {
    /// A short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStrategy::RestartInPlace => "restart",
            RecoveryStrategy::DemoteAndRollback => "rollback",
            RecoveryStrategy::Substitute => "substitute",
        }
    }

    /// All strategies, in table order.
    pub fn all() -> [RecoveryStrategy; 3] {
        [
            RecoveryStrategy::RestartInPlace,
            RecoveryStrategy::DemoteAndRollback,
            RecoveryStrategy::Substitute,
        ]
    }
}

/// The incremental engine behind [`ManagementSubsystem::assess_incremental`]:
/// either a fixed-resolution updater or the opt-in adaptive
/// coarse-to-fine engine ([`wsu_bayes::adaptive`]).
#[derive(Debug, Clone)]
enum AssessmentEngine {
    Fixed(PosteriorUpdater),
    Adaptive(Box<AdaptiveUpdater>),
}

/// The management subsystem: owns the inference engine, the switching
/// criterion and the recovery policy.
#[derive(Debug, Clone)]
pub struct ManagementSubsystem {
    inference: WhiteBoxInference,
    /// Incremental engine for the per-interval assessment hot path; the
    /// batch [`ManagementSubsystem::assess`] stays available for ad-hoc
    /// queries.
    engine: AssessmentEngine,
    criterion: SwitchCriterion,
    recovery: Option<RecoveryPolicy>,
    metrics: Option<SharedRegistry>,
}

impl ManagementSubsystem {
    /// Creates a management subsystem with the default grid resolution.
    pub fn new(
        prior_a: ScaledBeta,
        prior_b: ScaledBeta,
        coincidence: CoincidencePrior,
        criterion: SwitchCriterion,
    ) -> ManagementSubsystem {
        ManagementSubsystem::with_resolution(
            prior_a,
            prior_b,
            coincidence,
            criterion,
            Resolution::default(),
        )
    }

    /// Creates a management subsystem with an explicit grid resolution.
    pub fn with_resolution(
        prior_a: ScaledBeta,
        prior_b: ScaledBeta,
        coincidence: CoincidencePrior,
        criterion: SwitchCriterion,
        resolution: Resolution,
    ) -> ManagementSubsystem {
        let inference =
            WhiteBoxInference::with_resolution(prior_a, prior_b, coincidence, resolution);
        let updater = inference.updater();
        ManagementSubsystem {
            inference,
            engine: AssessmentEngine::Fixed(updater),
            criterion,
            recovery: Some(RecoveryPolicy::default()),
            metrics: None,
        }
    }

    /// Creates a management subsystem whose incremental assessment path
    /// runs the adaptive coarse-to-fine engine: a coarse full-support
    /// grid tracks the posterior and a full-resolution fine grid is
    /// focused on the high-mass window, so assessment accuracy improves
    /// where the decision actually happens. The batch
    /// [`ManagementSubsystem::assess`] keeps using a fixed full-support
    /// grid at the fine resolution; in this mode the two paths agree to
    /// the adaptive tolerance contract (see [`wsu_bayes::adaptive`]),
    /// not bit-for-bit.
    pub fn with_adaptive(
        prior_a: ScaledBeta,
        prior_b: ScaledBeta,
        coincidence: CoincidencePrior,
        criterion: SwitchCriterion,
        adaptive: AdaptiveResolution,
    ) -> ManagementSubsystem {
        let inference =
            WhiteBoxInference::with_resolution(prior_a, prior_b, coincidence, adaptive.fine);
        let updater = AdaptiveWhiteBox::new(prior_a, prior_b, coincidence, adaptive).updater();
        ManagementSubsystem {
            inference,
            engine: AssessmentEngine::Adaptive(Box::new(updater)),
            criterion,
            recovery: Some(RecoveryPolicy::default()),
            metrics: None,
        }
    }

    /// Number of adaptive fine-window rebuilds so far; `None` when the
    /// subsystem runs the fixed-resolution engine.
    pub fn adaptive_refinements(&self) -> Option<u64> {
        match &self.engine {
            AssessmentEngine::Fixed(_) => None,
            AssessmentEngine::Adaptive(updater) => Some(updater.refinements()),
        }
    }

    /// Routes assessment metrics into a shared registry
    /// (`wsu_assessments_total`, `wsu_criterion_evaluations_total` and
    /// the `wsu_posterior_p99` gauges).
    pub fn set_metrics(&mut self, metrics: SharedRegistry) {
        self.metrics = Some(metrics);
    }

    /// Counts an *executed* switching decision (a switch or an abort)
    /// in the attached registry, if any.
    pub fn count_decision(&self, decision: &str) {
        if let Some(metrics) = &self.metrics {
            metrics.inc_counter("wsu_switch_decisions_total", &[("decision", decision)]);
        }
    }

    /// The configured criterion.
    pub fn criterion(&self) -> SwitchCriterion {
        self.criterion
    }

    /// Replaces the switching criterion (a run-time knob of the test
    /// harness).
    pub fn set_criterion(&mut self, criterion: SwitchCriterion) {
        self.criterion = criterion;
    }

    /// The recovery policy, if enabled.
    pub fn recovery_policy(&self) -> Option<RecoveryPolicy> {
        self.recovery
    }

    /// Enables, replaces or disables the recovery policy.
    pub fn set_recovery_policy(&mut self, policy: Option<RecoveryPolicy>) {
        self.recovery = policy;
    }

    /// The inference engine (for custom queries).
    pub fn inference(&self) -> &WhiteBoxInference {
        &self.inference
    }

    /// Assesses the upgrade against the observed joint counts by
    /// rebuilding the posterior from scratch (the batch path).
    pub fn assess(&self, counts: &JointCounts) -> Assessment {
        let posterior = self.inference.posterior(counts);
        let marginal_a = posterior.marginal_a();
        let marginal_b = posterior.marginal_b();
        let decision =
            if self
                .criterion
                .satisfied(&self.inference.prior_a(), &marginal_a, &marginal_b)
            {
                SwitchDecision::SwitchToNew
            } else {
                SwitchDecision::KeepTransitional
            };
        self.record_assessment_metrics(
            marginal_a.percentile(0.99),
            marginal_b.percentile(0.99),
            decision,
        );
        Assessment {
            demands: counts.demands(),
            marginal_a,
            marginal_b,
            decision,
        }
    }

    /// Assesses the upgrade via the incremental engine: the posterior is
    /// recomputed in place into the updater's reusable buffers and the
    /// returned marginals are borrowed views — no per-assessment grid
    /// allocation. This is the hot path [`crate::upgrade::ManagedUpgrade`]
    /// uses on its assessment cadence.
    ///
    /// Assessments drive switch/abort decisions by comparing percentiles
    /// against thresholds, so this uses the exact [`PosteriorUpdater::rebase`]
    /// recompute rather than the delta path: a near-threshold seed must
    /// decide bit-for-bit identically to the batch `assess`.
    pub fn assess_incremental(&mut self, counts: &JointCounts) -> AssessmentView<'_> {
        match &mut self.engine {
            AssessmentEngine::Fixed(updater) => updater.rebase(counts),
            AssessmentEngine::Adaptive(updater) => updater.rebase(counts),
        }
        let (marginal_a, marginal_b) = match &self.engine {
            AssessmentEngine::Fixed(updater) => (updater.marginal_a(), updater.marginal_b()),
            AssessmentEngine::Adaptive(updater) => (updater.marginal_a(), updater.marginal_b()),
        };
        let decision =
            if self
                .criterion
                .satisfied(&self.inference.prior_a(), &marginal_a, &marginal_b)
            {
                SwitchDecision::SwitchToNew
            } else {
                SwitchDecision::KeepTransitional
            };
        self.record_assessment_metrics(
            marginal_a.percentile(0.99),
            marginal_b.percentile(0.99),
            decision,
        );
        AssessmentView {
            demands: counts.demands(),
            marginal_a,
            marginal_b,
            decision,
        }
    }

    fn record_assessment_metrics(&self, old_p99: f64, new_p99: f64, decision: SwitchDecision) {
        if let Some(metrics) = &self.metrics {
            metrics.inc_counter("wsu_assessments_total", &[]);
            metrics.set_gauge("wsu_posterior_p99", &[("release", "old")], old_p99);
            metrics.set_gauge("wsu_posterior_p99", &[("release", "new")], new_p99);
            let label = match decision {
                SwitchDecision::SwitchToNew => "switch",
                SwitchDecision::KeepTransitional => "keep",
            };
            metrics.inc_counter("wsu_criterion_evaluations_total", &[("decision", label)]);
        }
    }

    /// Applies the recovery policy to the release set, suspending
    /// releases with long evident-failure streaks and restarting
    /// suspended ones (when `auto_restart`).
    ///
    /// # Errors
    ///
    /// Propagates release-set errors (none are expected for ids obtained
    /// from the set itself).
    pub fn apply_recovery(
        &self,
        releases: &mut ReleaseSet,
    ) -> Result<Vec<RecoveryAction>, CoreError> {
        let Some(policy) = self.recovery else {
            return Ok(Vec::new());
        };
        let mut actions = Vec::new();
        for info in releases.infos() {
            match info.state {
                ReleaseState::Active => {
                    let streak = releases.consecutive_evident_failures(info.id)?;
                    if streak >= policy.suspend_after {
                        releases.suspend(info.id)?;
                        actions.push(RecoveryAction::Suspended(info.id));
                    }
                }
                ReleaseState::Suspended if policy.auto_restart => {
                    releases.restart(info.id)?;
                    actions.push(RecoveryAction::Restarted(info.id));
                }
                _ => {}
            }
        }
        // Recovery must never leave the middleware unable to serve: if
        // the sweep just suspended the last active release(s) — e.g. a
        // correlated burst after an abort already phased one release out
        // — restart the suspended ones immediately instead of waiting a
        // demand.
        if policy.auto_restart && releases.active_ids().is_empty() {
            for info in releases.infos() {
                if info.state == ReleaseState::Suspended {
                    releases.restart(info.id)?;
                    actions.push(RecoveryAction::Restarted(info.id));
                }
            }
        }
        Ok(actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_bayes::whitebox::Resolution;
    use wsu_wstack::endpoint::SyntheticService;
    use wsu_wstack::outcome::OutcomeProfile;

    fn small_res() -> Resolution {
        Resolution {
            a_cells: 40,
            b_cells: 40,
            q_cells: 10,
        }
    }

    fn scenario1_manager(criterion: SwitchCriterion) -> ManagementSubsystem {
        ManagementSubsystem::with_resolution(
            ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
            ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
            CoincidencePrior::IndifferenceUniform,
            criterion,
            small_res(),
        )
    }

    #[test]
    fn criterion1_needs_evidence() {
        let mgr = scenario1_manager(SwitchCriterion::reach_prior_of_old(0.99));
        // No evidence: prior of B is too loose to match A's tight prior.
        let a0 = mgr.assess(&JointCounts::new());
        assert_eq!(a0.decision, SwitchDecision::KeepTransitional);
        // Long clean run: B's posterior tightens below A's prior P99.
        let clean = JointCounts::from_raw(100_000, 0, 0, 0);
        let a1 = mgr.assess(&clean);
        assert_eq!(a1.decision, SwitchDecision::SwitchToNew);
        assert_eq!(a1.demands, 100_000);
    }

    #[test]
    fn criterion2_tracks_explicit_target() {
        let mgr = scenario1_manager(SwitchCriterion::reach_target(1e-3, 0.99));
        assert_eq!(
            mgr.assess(&JointCounts::new()).decision,
            SwitchDecision::KeepTransitional
        );
        // Many failures of B keep the criterion unmet.
        let dirty = JointCounts::from_raw(20_000, 0, 0, 200);
        assert_eq!(
            mgr.assess(&dirty).decision,
            SwitchDecision::KeepTransitional
        );
        // A long clean run meets it.
        let clean = JointCounts::from_raw(100_000, 0, 0, 0);
        assert_eq!(mgr.assess(&clean).decision, SwitchDecision::SwitchToNew);
    }

    #[test]
    fn criterion3_compares_percentiles() {
        let mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        let clean = JointCounts::from_raw(60_000, 0, 0, 0);
        let assessment = mgr.assess(&clean);
        assert!(assessment.marginal_b.percentile(0.99) <= assessment.marginal_a.percentile(0.99));
        assert_eq!(assessment.decision, SwitchDecision::SwitchToNew);
        // B failing often: criterion unmet.
        let dirty = JointCounts::from_raw(10_000, 0, 0, 300);
        assert_eq!(
            mgr.assess(&dirty).decision,
            SwitchDecision::KeepTransitional
        );
    }

    #[test]
    fn criterion_labels() {
        assert!(SwitchCriterion::reach_prior_of_old(0.99)
            .label()
            .contains("criterion-1"));
        assert!(SwitchCriterion::reach_target(1e-3, 0.99)
            .label()
            .contains("criterion-2"));
        assert!(SwitchCriterion::better_than_old(0.9)
            .label()
            .contains("criterion-3"));
    }

    #[test]
    fn criterion_setters() {
        let mut mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        mgr.set_criterion(SwitchCriterion::reach_target(1e-3, 0.9));
        assert_eq!(
            mgr.criterion(),
            SwitchCriterion::ReachTarget {
                target: 1e-3,
                confidence: 0.9
            }
        );
        assert!(mgr.recovery_policy().is_some());
        mgr.set_recovery_policy(None);
        assert!(mgr.recovery_policy().is_none());
    }

    #[test]
    fn assessment_metrics_flow_into_the_registry() {
        let mut mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        let registry = SharedRegistry::new();
        mgr.set_metrics(registry.clone());
        mgr.assess(&JointCounts::new());
        mgr.assess(&JointCounts::from_raw(60_000, 0, 0, 0));
        mgr.count_decision("switch");
        registry.with(|r| {
            assert_eq!(r.counter("wsu_assessments_total", &[]), 2);
            assert_eq!(
                r.counter("wsu_criterion_evaluations_total", &[("decision", "keep")]),
                1
            );
            assert_eq!(
                r.counter("wsu_criterion_evaluations_total", &[("decision", "switch")]),
                1
            );
            assert_eq!(
                r.counter("wsu_switch_decisions_total", &[("decision", "switch")]),
                1
            );
            let old = r.gauge("wsu_posterior_p99", &[("release", "old")]).unwrap();
            let new = r.gauge("wsu_posterior_p99", &[("release", "new")]).unwrap();
            assert!(old > 0.0 && new > 0.0);
        });
    }

    #[test]
    fn recovery_suspends_and_restarts() {
        let mut mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        mgr.set_recovery_policy(Some(RecoveryPolicy {
            suspend_after: 3,
            auto_restart: true,
        }));
        let mut releases = ReleaseSet::new();
        let bad = releases.deploy(
            SyntheticService::builder("Svc", "1.0")
                .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
                .build(),
        );
        // A healthy second release keeps the set serving while `bad` is
        // suspended (a lone release would be restarted immediately).
        let _good = releases.deploy(SyntheticService::builder("Svc", "2.0").build());
        let mut rng = wsu_simcore::rng::StreamRng::from_seed(1);
        for _ in 0..3 {
            releases
                .invoke(
                    bad,
                    &wsu_wstack::message::Envelope::request("invoke"),
                    &mut rng,
                )
                .unwrap();
        }
        let actions = mgr.apply_recovery(&mut releases).unwrap();
        assert_eq!(actions, vec![RecoveryAction::Suspended(bad)]);
        assert_eq!(releases.state(bad).unwrap(), ReleaseState::Suspended);
        // Next sweep restarts it.
        let actions = mgr.apply_recovery(&mut releases).unwrap();
        assert_eq!(actions, vec![RecoveryAction::Restarted(bad)]);
        assert_eq!(releases.state(bad).unwrap(), ReleaseState::Active);
    }

    #[test]
    fn recovery_never_strands_the_release_set() {
        let mut mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        mgr.set_recovery_policy(Some(RecoveryPolicy {
            suspend_after: 3,
            auto_restart: true,
        }));
        let mut releases = ReleaseSet::new();
        let bad = releases.deploy(
            SyntheticService::builder("Svc", "1.0")
                .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
                .build(),
        );
        let mut rng = wsu_simcore::rng::StreamRng::from_seed(1);
        for _ in 0..3 {
            releases
                .invoke(
                    bad,
                    &wsu_wstack::message::Envelope::request("invoke"),
                    &mut rng,
                )
                .unwrap();
        }
        // Suspending the only active release would leave nothing to
        // serve the next demand, so the same sweep restarts it.
        let actions = mgr.apply_recovery(&mut releases).unwrap();
        assert_eq!(
            actions,
            vec![
                RecoveryAction::Suspended(bad),
                RecoveryAction::Restarted(bad)
            ]
        );
        assert_eq!(releases.state(bad).unwrap(), ReleaseState::Active);
    }

    /// Deploys `n` releases that fail every demand with an evident
    /// error, then drives `streak` demands through each so every one of
    /// them carries a suspension-worthy failure streak.
    fn burst_fleet(n: usize, streak: u32) -> (ReleaseSet, Vec<ReleaseId>) {
        let mut releases = ReleaseSet::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                releases.deploy(
                    SyntheticService::builder("Svc", &format!("1.{i}"))
                        .outcomes(OutcomeProfile::new(0.0, 1.0, 0.0))
                        .build(),
                )
            })
            .collect();
        let mut rng = wsu_simcore::rng::StreamRng::from_seed(7);
        for &id in &ids {
            for _ in 0..streak {
                releases
                    .invoke(
                        id,
                        &wsu_wstack::message::Envelope::request("invoke"),
                        &mut rng,
                    )
                    .unwrap();
            }
        }
        (releases, ids)
    }

    #[test]
    fn correlated_burst_on_a_three_fleet_restarts_every_release() {
        // Regression: the zero-active rescue path used to be exercised
        // only with a single release. A correlated burst that earns all
        // three releases a suspension in the same sweep must restart
        // all of them — deterministically, in deployment order — not
        // panic or bring back only index 0.
        let mut mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        mgr.set_recovery_policy(Some(RecoveryPolicy {
            suspend_after: 3,
            auto_restart: true,
        }));
        let (mut releases, ids) = burst_fleet(3, 3);
        let actions = mgr.apply_recovery(&mut releases).unwrap();
        let expected: Vec<RecoveryAction> = ids
            .iter()
            .map(|&id| RecoveryAction::Suspended(id))
            .chain(ids.iter().map(|&id| RecoveryAction::Restarted(id)))
            .collect();
        assert_eq!(actions, expected);
        for &id in &ids {
            assert_eq!(releases.state(id).unwrap(), ReleaseState::Active);
        }
    }

    #[test]
    fn zero_active_rescue_restarts_all_survivors_not_just_the_first() {
        // 4-release fleet where one release was already phased out (an
        // aborted upgrade): a burst suspending the remaining three must
        // restart exactly those three and leave the phased-out release
        // untouched.
        let mut mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        mgr.set_recovery_policy(Some(RecoveryPolicy {
            suspend_after: 3,
            auto_restart: true,
        }));
        let (mut releases, ids) = burst_fleet(4, 3);
        releases.phase_out(ids[1]).unwrap();
        let survivors = [ids[0], ids[2], ids[3]];
        let actions = mgr.apply_recovery(&mut releases).unwrap();
        let expected: Vec<RecoveryAction> = survivors
            .iter()
            .map(|&id| RecoveryAction::Suspended(id))
            .chain(survivors.iter().map(|&id| RecoveryAction::Restarted(id)))
            .collect();
        assert_eq!(actions, expected);
        for &id in &survivors {
            assert_eq!(releases.state(id).unwrap(), ReleaseState::Active);
        }
        assert_eq!(releases.state(ids[1]).unwrap(), ReleaseState::PhasedOut);
        assert_eq!(releases.active_ids().len(), 3);
    }

    #[test]
    fn zero_active_rescue_without_auto_restart_leaves_the_fleet_suspended() {
        // The rescue is explicitly gated on `auto_restart`: a policy
        // without it suspends all three and stops — no panic, no
        // implicit restart.
        let mut mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        mgr.set_recovery_policy(Some(RecoveryPolicy {
            suspend_after: 3,
            auto_restart: false,
        }));
        let (mut releases, ids) = burst_fleet(3, 3);
        let actions = mgr.apply_recovery(&mut releases).unwrap();
        let expected: Vec<RecoveryAction> = ids
            .iter()
            .map(|&id| RecoveryAction::Suspended(id))
            .collect();
        assert_eq!(actions, expected);
        assert!(releases.active_ids().is_empty());
        for &id in &ids {
            assert_eq!(releases.state(id).unwrap(), ReleaseState::Suspended);
        }
    }

    #[test]
    fn recovery_disabled_is_a_no_op() {
        let mut mgr = scenario1_manager(SwitchCriterion::better_than_old(0.99));
        mgr.set_recovery_policy(None);
        let mut releases = ReleaseSet::new();
        releases.deploy(SyntheticService::builder("Svc", "1.0").build());
        assert!(mgr.apply_recovery(&mut releases).unwrap().is_empty());
    }

    #[test]
    fn adaptive_engine_reaches_the_same_decisions() {
        let mut fixed = scenario1_manager(SwitchCriterion::reach_target(1e-3, 0.99));
        let mut adaptive = ManagementSubsystem::with_adaptive(
            ScaledBeta::new(20.0, 20.0, 0.002).unwrap(),
            ScaledBeta::new(2.0, 3.0, 0.002).unwrap(),
            CoincidencePrior::IndifferenceUniform,
            SwitchCriterion::reach_target(1e-3, 0.99),
            wsu_bayes::whitebox::Resolution::adaptive(),
        );
        assert_eq!(adaptive.adaptive_refinements(), Some(0));
        assert_eq!(fixed.adaptive_refinements(), None);
        for counts in [
            JointCounts::new(),
            JointCounts::from_raw(20_000, 0, 0, 200),
            JointCounts::from_raw(100_000, 0, 0, 0),
        ] {
            let want = fixed.assess_incremental(&counts).decision;
            let got = adaptive.assess_incremental(&counts).decision;
            assert_eq!(got, want, "at {counts}");
        }
    }

    #[test]
    fn recovery_strategy_labels() {
        assert_eq!(RecoveryStrategy::RestartInPlace.label(), "restart");
        assert_eq!(RecoveryStrategy::DemoteAndRollback.label(), "rollback");
        assert_eq!(RecoveryStrategy::Substitute.label(), "substitute");
        assert_eq!(RecoveryStrategy::all().len(), 3);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_bad_confidence() {
        let _ = SwitchCriterion::better_than_old(1.0);
    }

    #[test]
    #[should_panic(expected = "target")]
    fn rejects_bad_target() {
        let _ = SwitchCriterion::reach_target(0.0, 0.9);
    }
}
