//! Error types for the managed-upgrade middleware.

use std::fmt;

use crate::release::ReleaseId;

/// Errors raised by middleware and management operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The referenced release is not deployed.
    UnknownRelease(ReleaseId),
    /// An operation needed at least one active release.
    NoActiveReleases,
    /// The release is in a state that forbids the operation (e.g.
    /// restarting a release that is not suspended).
    InvalidReleaseState {
        /// The release concerned.
        release: ReleaseId,
        /// What was attempted.
        operation: &'static str,
    },
    /// A traffic weight was not finite and non-negative.
    InvalidWeight {
        /// The release whose weight was rejected.
        release: ReleaseId,
    },
    /// A configuration value was rejected.
    InvalidConfig(String),
    /// The requested operation is not published by the service.
    NoSuchOperation(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownRelease(id) => write!(f, "unknown release {id}"),
            CoreError::NoActiveReleases => f.write_str("no active releases deployed"),
            CoreError::InvalidReleaseState { release, operation } => {
                write!(
                    f,
                    "release {release} cannot be {operation} in its current state"
                )
            }
            CoreError::InvalidWeight { release } => {
                write!(
                    f,
                    "release {release} weight must be finite and non-negative"
                )
            }
            CoreError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            CoreError::NoSuchOperation(op) => write!(f, "no such operation `{op}`"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let id = ReleaseId::new(3);
        assert!(CoreError::UnknownRelease(id)
            .to_string()
            .contains("unknown release"));
        assert_eq!(
            CoreError::NoActiveReleases.to_string(),
            "no active releases deployed"
        );
        assert!(CoreError::InvalidReleaseState {
            release: id,
            operation: "restarted"
        }
        .to_string()
        .contains("restarted"));
        assert!(CoreError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(CoreError::NoSuchOperation("op9".into())
            .to_string()
            .contains("op9"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CoreError>();
    }
}
