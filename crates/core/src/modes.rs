//! Operating modes with several WS releases (paper Section 4.2).
//!
//! 1. **Parallel execution for maximum reliability** — all releases run
//!    concurrently; the middleware waits (up to the timeout) for all
//!    responses and adjudicates.
//! 2. **Parallel execution for maximum responsiveness** — all releases
//!    run concurrently; the fastest *valid* (not evidently incorrect)
//!    response is returned immediately.
//! 3. **Parallel execution with dynamically changed
//!    reliability/responsiveness** — wait for up to a configured number
//!    of responses, but no longer than the timeout, then adjudicate; the
//!    quorum and timeout may be changed at run time.
//! 4. **Sequential execution for minimal server capacity** — releases
//!    are invoked one at a time (fixed or random order); the next is
//!    tried only if the previous response was evidently incorrect or
//!    timed out.

use std::borrow::Cow;
use std::fmt;

/// Visit order for sequential execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequentialOrder {
    /// Deployment order (old release first).
    Deployment,
    /// A fresh uniformly random order per demand.
    Random,
}

/// The middleware's operating mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OperatingMode {
    /// Mode 1: run all releases, wait for all (bounded by the timeout),
    /// adjudicate everything collected.
    ParallelReliability,
    /// Mode 2: run all releases, return the fastest valid response.
    ParallelResponsiveness,
    /// Mode 3: run all releases, adjudicate once `quorum` responses have
    /// been collected or the timeout expires, whichever is first.
    ParallelDynamic {
        /// How many responses to wait for before adjudicating early.
        quorum: usize,
    },
    /// Mode 4: run releases one at a time, stopping at the first response
    /// that is not evidently incorrect.
    Sequential {
        /// The order in which releases are tried.
        order: SequentialOrder,
    },
    /// Canary-fleet mode: each demand is routed to exactly one active
    /// release, drawn in proportion to the per-release traffic weights
    /// (see [`crate::release::ReleaseSet::set_weight`]). Used by staged
    /// canary chains, where a new release takes a small weight slice
    /// that ramps up as its assessed confidence grows.
    WeightedFleet,
}

impl OperatingMode {
    /// Returns `true` for the modes that dispatch to all releases at
    /// once.
    pub fn is_parallel(self) -> bool {
        !matches!(
            self,
            OperatingMode::Sequential { .. } | OperatingMode::WeightedFleet
        )
    }

    /// A short label used in experiment reports. Borrowed for every mode
    /// except `ParallelDynamic`, whose quorum is interpolated — so the
    /// per-demand trace path does not allocate in the paper's modes.
    pub fn label(self) -> Cow<'static, str> {
        match self {
            OperatingMode::ParallelReliability => Cow::Borrowed("parallel-reliability"),
            OperatingMode::ParallelResponsiveness => Cow::Borrowed("parallel-responsiveness"),
            OperatingMode::ParallelDynamic { quorum } => {
                Cow::Owned(format!("parallel-dynamic(quorum={quorum})"))
            }
            OperatingMode::Sequential { order } => match order {
                SequentialOrder::Deployment => Cow::Borrowed("sequential(deployment)"),
                SequentialOrder::Random => Cow::Borrowed("sequential(random)"),
            },
            OperatingMode::WeightedFleet => Cow::Borrowed("weighted-fleet"),
        }
    }
}

impl Default for OperatingMode {
    /// Mode 1, the mode the paper's simulation study uses.
    fn default() -> OperatingMode {
        OperatingMode::ParallelReliability
    }
}

impl fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_predicate() {
        assert!(OperatingMode::ParallelReliability.is_parallel());
        assert!(OperatingMode::ParallelResponsiveness.is_parallel());
        assert!(OperatingMode::ParallelDynamic { quorum: 1 }.is_parallel());
        assert!(!OperatingMode::Sequential {
            order: SequentialOrder::Deployment
        }
        .is_parallel());
        assert!(!OperatingMode::WeightedFleet.is_parallel());
    }

    #[test]
    fn weighted_fleet_label_is_borrowed() {
        assert!(matches!(
            OperatingMode::WeightedFleet.label(),
            Cow::Borrowed("weighted-fleet")
        ));
    }

    #[test]
    fn labels() {
        assert_eq!(
            OperatingMode::ParallelReliability.to_string(),
            "parallel-reliability"
        );
        assert_eq!(
            OperatingMode::ParallelDynamic { quorum: 2 }.to_string(),
            "parallel-dynamic(quorum=2)"
        );
        assert_eq!(
            OperatingMode::Sequential {
                order: SequentialOrder::Random
            }
            .to_string(),
            "sequential(random)"
        );
    }

    #[test]
    fn default_is_parallel_reliability() {
        assert_eq!(OperatingMode::default(), OperatingMode::ParallelReliability);
    }
}
