//! Run-time adaptation of mode 3's reliability/responsiveness trade-off
//! (paper Section 4.2, operating mode 3).
//!
//! > "The number of responses and the timeout can be changed dynamically
//! > so that different configurations for the adjudicated response can
//! > be defined."
//!
//! [`DynamicModeController`] implements a simple hysteresis policy over
//! the monitored system statistics: when the observed mean response time
//! exceeds a target, it lowers the quorum (responsiveness); when the
//! observed non-evident-failure fraction exceeds a budget, it raises the
//! quorum back toward full adjudication (reliability).

use wsu_simcore::time::SimDuration;
use wsu_wstack::outcome::ResponseClass;

use crate::middleware::{MiddlewareConfig, UpgradeMiddleware};
use crate::modes::OperatingMode;
use crate::monitor::SystemStats;

/// The controller's last action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adaptation {
    /// Quorum lowered (favouring responsiveness).
    LoweredQuorum(usize),
    /// Quorum raised (favouring reliability).
    RaisedQuorum(usize),
    /// Nothing changed.
    Unchanged,
}

/// Hysteresis controller for [`OperatingMode::ParallelDynamic`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicModeController {
    /// Mean response time above which the quorum is lowered.
    pub response_time_target: SimDuration,
    /// Fraction of non-evident failures above which the quorum is
    /// raised.
    pub ner_budget: f64,
    /// Upper quorum bound (usually the number of deployed releases).
    pub max_quorum: usize,
}

impl DynamicModeController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if `ner_budget` is outside `[0, 1]` or `max_quorum == 0`.
    pub fn new(
        response_time_target: SimDuration,
        ner_budget: f64,
        max_quorum: usize,
    ) -> DynamicModeController {
        assert!(
            (0.0..=1.0).contains(&ner_budget),
            "NER budget {ner_budget} not in [0, 1]"
        );
        assert!(max_quorum > 0, "max quorum must be positive");
        DynamicModeController {
            response_time_target,
            ner_budget,
            max_quorum,
        }
    }

    /// Decides the next quorum from the current one and the monitored
    /// statistics. Raising reliability takes precedence over lowering
    /// latency.
    pub fn next_quorum(&self, current: usize, stats: &SystemStats) -> usize {
        let total = stats.total_responses();
        if total == 0 {
            return current.clamp(1, self.max_quorum);
        }
        let ner_fraction = stats.count(ResponseClass::NonEvidentFailure) as f64 / total as f64;
        if ner_fraction > self.ner_budget && current < self.max_quorum {
            return current + 1;
        }
        if stats.mean_response_time() > self.response_time_target.as_secs() && current > 1 {
            return current - 1;
        }
        current.clamp(1, self.max_quorum)
    }

    /// Applies the decision to a middleware running in dynamic mode.
    /// Middleware in any other mode is left untouched.
    pub fn adapt(&self, middleware: &mut UpgradeMiddleware, stats: &SystemStats) -> Adaptation {
        let config = middleware.config();
        let OperatingMode::ParallelDynamic { quorum } = config.mode else {
            return Adaptation::Unchanged;
        };
        let next = self.next_quorum(quorum, stats);
        if next == quorum {
            return Adaptation::Unchanged;
        }
        let mut new_config: MiddlewareConfig = config;
        new_config.mode = OperatingMode::ParallelDynamic { quorum: next };
        middleware.set_config(new_config);
        if next > quorum {
            Adaptation::RaisedQuorum(next)
        } else {
            Adaptation::LoweredQuorum(next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitoringSubsystem;
    use wsu_simcore::rng::StreamRng;
    use wsu_wstack::endpoint::SyntheticService;
    use wsu_wstack::message::Envelope;
    use wsu_wstack::outcome::OutcomeProfile;

    fn middleware_with(mode: OperatingMode, profile: OutcomeProfile) -> UpgradeMiddleware {
        let mut config = MiddlewareConfig::paper(2.0);
        config.mode = mode;
        let mut mw = UpgradeMiddleware::new(config);
        for version in ["1.0", "1.1"] {
            mw.deploy(
                SyntheticService::builder("Svc", version)
                    .outcomes(profile)
                    .exec_time_mean(0.7)
                    .build(),
            );
        }
        mw
    }

    fn run_demands(mw: &mut UpgradeMiddleware, n: usize, seed: u64) -> MonitoringSubsystem {
        let mut monitor = MonitoringSubsystem::new(0);
        let mut rng = StreamRng::from_seed(seed);
        let mut mon_rng = StreamRng::from_seed(seed + 1);
        for _ in 0..n {
            let record = mw.process(&Envelope::request("invoke"), &mut rng).unwrap();
            monitor.observe(&record, &mut mon_rng);
        }
        monitor
    }

    #[test]
    fn lowers_quorum_when_too_slow() {
        let mut mw = middleware_with(
            OperatingMode::ParallelDynamic { quorum: 2 },
            OutcomeProfile::always_correct(),
        );
        let monitor = run_demands(&mut mw, 500, 1);
        // Waiting for both of two mean-1.4s releases: well above 1.0s.
        let controller = DynamicModeController::new(SimDuration::from_secs(1.0), 0.5, 2);
        let action = controller.adapt(&mut mw, monitor.system_stats());
        assert_eq!(action, Adaptation::LoweredQuorum(1));
        assert_eq!(
            mw.config().mode,
            OperatingMode::ParallelDynamic { quorum: 1 }
        );
    }

    #[test]
    fn raises_quorum_when_too_many_wrong_answers() {
        let mut mw = middleware_with(
            OperatingMode::ParallelDynamic { quorum: 1 },
            OutcomeProfile::new(0.5, 0.0, 0.5),
        );
        let monitor = run_demands(&mut mw, 500, 2);
        // Half the adjudicated responses are non-evident failures:
        // blow the 10% budget, raise the quorum despite the latency.
        let controller = DynamicModeController::new(SimDuration::from_secs(0.1), 0.10, 2);
        let action = controller.adapt(&mut mw, monitor.system_stats());
        assert_eq!(action, Adaptation::RaisedQuorum(2));
    }

    #[test]
    fn leaves_satisfied_system_alone() {
        let mut mw = middleware_with(
            OperatingMode::ParallelDynamic { quorum: 1 },
            OutcomeProfile::always_correct(),
        );
        let monitor = run_demands(&mut mw, 200, 3);
        let controller = DynamicModeController::new(SimDuration::from_secs(10.0), 0.5, 2);
        assert_eq!(
            controller.adapt(&mut mw, monitor.system_stats()),
            Adaptation::Unchanged
        );
    }

    #[test]
    fn ignores_non_dynamic_modes() {
        let mut mw = middleware_with(
            OperatingMode::ParallelReliability,
            OutcomeProfile::always_correct(),
        );
        let monitor = run_demands(&mut mw, 100, 4);
        let controller = DynamicModeController::new(SimDuration::from_secs(0.01), 0.0, 2);
        assert_eq!(
            controller.adapt(&mut mw, monitor.system_stats()),
            Adaptation::Unchanged
        );
        assert_eq!(mw.config().mode, OperatingMode::ParallelReliability);
    }

    #[test]
    fn quorum_respects_bounds() {
        let controller = DynamicModeController::new(SimDuration::from_secs(1.0), 0.1, 3);
        let stats_empty = {
            let mw = &mut middleware_with(
                OperatingMode::ParallelDynamic { quorum: 1 },
                OutcomeProfile::always_correct(),
            );
            run_demands(mw, 0, 5)
        };
        // No data: clamp only.
        assert_eq!(controller.next_quorum(9, stats_empty.system_stats()), 3);
        assert_eq!(controller.next_quorum(0, stats_empty.system_stats()), 1);
    }

    #[test]
    #[should_panic(expected = "NER budget")]
    fn rejects_bad_budget() {
        let _ = DynamicModeController::new(SimDuration::from_secs(1.0), 1.5, 2);
    }
}
