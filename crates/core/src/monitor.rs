//! The monitoring subsystem (paper Section 4.3).
//!
//! "Every time the consumer invokes the WS this subsystem monitors the
//! availability (timeout can be used to detect if the service is down),
//! execution time and the correctness of the responses for each release
//! of the WS and stores these parameters in a database."
//!
//! [`MonitoringSubsystem`] consumes the [`DemandRecord`]s the middleware
//! produces and maintains:
//!
//! * per-release outcome counts (CR / ER / NER), NRDT counts and
//!   execution-time statistics — the rows of the paper's Tables 5–6;
//! * the same for the *system* (the adjudicated response);
//! * joint failure counts of a designated (old, new) release pair,
//!   scored through a configurable [`FailureDetector`] — the observations
//!   driving the white-box Bayesian inference;
//! * a bounded in-memory log of recent records ("the database");
//! * streaming dependability telemetry: tail-latency quantile sketches
//!   (system response time and per-release execution time) and a
//!   windowed availability/SLO tracker ([`SloWindow`]) polled as a
//!   [`DependabilitySnapshot`]. Both are always on — fixed-size
//!   structures fed allocation-free on the per-demand path — so the
//!   campaign reports get p99/p999 and worst-window availability even
//!   without a metrics registry attached.

use wsu_bayes::counts::JointCounts;
use wsu_detect::coverage::DetectionAudit;
use wsu_detect::oracle::{DemandOutcome, FailureDetector, PerfectOracle};
use wsu_obs::{
    CounterId, DependabilitySnapshot, HistogramId, QuantileSketch, SharedRegistry, SketchId,
    SloConfig, SloObservation, SloWindow,
};
use wsu_simcore::rng::StreamRng;
use wsu_simcore::stats::{CountTable, Summary};
use wsu_wstack::outcome::ResponseClass;

use crate::adjudicate::SystemVerdict;
use crate::middleware::DemandRecord;
use crate::release::ReleaseId;

/// Dependability statistics of one release (one column group of the
/// paper's Tables 5–6).
#[derive(Debug, Clone)]
pub struct ReleaseStats {
    counts: CountTable,
    nrdt: u64,
    exec_all: Summary,
    exec_within: Summary,
    exec_sketch: QuantileSketch,
}

impl ReleaseStats {
    fn new() -> ReleaseStats {
        ReleaseStats {
            counts: CountTable::new(&["CR", "ER", "NER"]),
            nrdt: 0,
            exec_all: Summary::new(),
            exec_within: Summary::new(),
            exec_sketch: QuantileSketch::default(),
        }
    }

    /// Responses of the given class received within the timeout.
    pub fn count(&self, class: ResponseClass) -> u64 {
        self.counts.count(class.index())
    }

    /// Responses received within the timeout (the tables' "Total").
    pub fn total_responses(&self) -> u64 {
        self.counts.total()
    }

    /// Demands with no response within the timeout ("NRDT").
    pub fn nrdt(&self) -> u64 {
        self.nrdt
    }

    /// Mean execution time over *all* responses, late ones included (the
    /// per-release MET of the tables, which the paper reports independent
    /// of the timeout).
    pub fn mean_exec_time(&self) -> f64 {
        self.exec_all.mean()
    }

    /// Execution-time statistics over all responses.
    pub fn exec_summary(&self) -> &Summary {
        &self.exec_all
    }

    /// Execution-time statistics over responses within the timeout.
    pub fn exec_within_summary(&self) -> &Summary {
        &self.exec_within
    }

    /// Tail-latency quantile sketch over all execution times (p50/p90/
    /// p99/p999 within a 1% relative-error bound).
    pub fn exec_quantiles(&self) -> &QuantileSketch {
        &self.exec_sketch
    }

    /// Availability: fraction of demands with a response within the
    /// timeout.
    pub fn availability(&self) -> f64 {
        let demands = self.total_responses() + self.nrdt;
        if demands == 0 {
            return 1.0;
        }
        self.total_responses() as f64 / demands as f64
    }

    /// Observed failure rate among responses (ER + NER over total).
    pub fn failure_rate(&self) -> f64 {
        let total = self.total_responses();
        if total == 0 {
            return 0.0;
        }
        (self.count(ResponseClass::EvidentFailure) + self.count(ResponseClass::NonEvidentFailure))
            as f64
            / total as f64
    }
}

/// Dependability statistics of the composite (adjudicated) service.
#[derive(Debug, Clone)]
pub struct SystemStats {
    counts: CountTable,
    nrdt: u64,
    response_time: Summary,
}

impl SystemStats {
    fn new() -> SystemStats {
        SystemStats {
            counts: CountTable::new(&["CR", "ER", "NER"]),
            nrdt: 0,
            response_time: Summary::new(),
        }
    }

    /// Adjudicated responses of the given class.
    pub fn count(&self, class: ResponseClass) -> u64 {
        self.counts.count(class.index())
    }

    /// Demands on which a response (of any class) was returned.
    pub fn total_responses(&self) -> u64 {
        self.counts.total()
    }

    /// Demands reported "Web Service unavailable".
    pub fn nrdt(&self) -> u64 {
        self.nrdt
    }

    /// Mean consumer-visible response time, unavailable demands included
    /// (the consumer waits out the timeout to learn of the failure).
    pub fn mean_response_time(&self) -> f64 {
        self.response_time.mean()
    }

    /// Response-time statistics.
    pub fn response_time_summary(&self) -> &Summary {
        &self.response_time
    }

    /// Availability of the composite service.
    pub fn availability(&self) -> f64 {
        let demands = self.total_responses() + self.nrdt;
        if demands == 0 {
            return 1.0;
        }
        self.total_responses() as f64 / demands as f64
    }
}

/// Joint scoring of a designated (old, new) release pair.
pub struct PairTracker {
    old: ReleaseId,
    new: ReleaseId,
    detector: Box<dyn FailureDetector>,
    truth: JointCounts,
    observed: JointCounts,
    audit: DetectionAudit,
}

impl PairTracker {
    /// Ground-truth joint counts (what an omniscient observer would see).
    pub fn truth(&self) -> JointCounts {
        self.truth
    }

    /// Observed joint counts (what the detector reported) — the input to
    /// the Bayesian inference.
    pub fn observed(&self) -> JointCounts {
        self.observed
    }

    /// Confusion-matrix audit of the detector.
    pub fn audit(&self) -> DetectionAudit {
        self.audit
    }

    /// The tracked old release.
    pub fn old_release(&self) -> ReleaseId {
        self.old
    }

    /// The tracked new release.
    pub fn new_release(&self) -> ReleaseId {
        self.new
    }
}

impl std::fmt::Debug for PairTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairTracker")
            .field("old", &self.old)
            .field("new", &self.new)
            .field("detector", &self.detector.name())
            .field("observed", &self.observed)
            .finish()
    }
}

/// Lazily resolved handles for the system-level metric series. Each id
/// is resolved on the first write that would create the series, so the
/// set of exported series — and hence rendered snapshots — matches the
/// String-keyed path exactly; afterwards a write is an array index.
#[derive(Debug, Default)]
struct SystemMetricHandles {
    demands: Option<CounterId>,
    responses: [Option<CounterId>; 3],
    unavailable: Option<CounterId>,
    response_time: Option<HistogramId>,
    response_sketch: Option<SketchId>,
}

/// Lazily resolved handles for one release's metric series, with the
/// release label rendered once instead of per demand.
#[derive(Debug)]
struct ReleaseMetricHandles {
    label: String,
    responses: [Option<CounterId>; 3],
    timeouts: Option<CounterId>,
    exec_time: Option<HistogramId>,
    exec_sketch: Option<SketchId>,
}

impl ReleaseMetricHandles {
    fn new(release: usize) -> ReleaseMetricHandles {
        ReleaseMetricHandles {
            label: release.to_string(),
            responses: [None; 3],
            timeouts: None,
            exec_time: None,
            exec_sketch: None,
        }
    }
}

/// The monitoring subsystem.
pub struct MonitoringSubsystem {
    per_release: Vec<ReleaseStats>,
    system: SystemStats,
    pair: Option<PairTracker>,
    recent: std::collections::VecDeque<DemandRecord>,
    recent_capacity: usize,
    demands: u64,
    response_sketch: QuantileSketch,
    slo: SloWindow,
    metrics: Option<SharedRegistry>,
    system_handles: SystemMetricHandles,
    release_handles: Vec<ReleaseMetricHandles>,
}

impl MonitoringSubsystem {
    /// Creates a monitor keeping the last `recent_capacity` demand
    /// records in its in-memory database.
    pub fn new(recent_capacity: usize) -> MonitoringSubsystem {
        MonitoringSubsystem {
            per_release: Vec::new(),
            system: SystemStats::new(),
            pair: None,
            recent: std::collections::VecDeque::with_capacity(recent_capacity.min(4096)),
            recent_capacity,
            demands: 0,
            response_sketch: QuantileSketch::default(),
            slo: SloWindow::default(),
            metrics: None,
            system_handles: SystemMetricHandles::default(),
            release_handles: Vec::new(),
        }
    }

    /// Reconfigures the windowed availability/SLO tracker (window width,
    /// ring depth, latency threshold). Resets any windows accumulated so
    /// far, so call it before the first demand — [`crate::upgrade`] does,
    /// aligning the latency threshold with the middleware timeout.
    pub fn configure_slo(&mut self, config: SloConfig) {
        self.slo = SloWindow::new(config);
    }

    /// Routes per-demand counters and timing histograms into a shared
    /// metrics registry (`wsu_demands_total`, `wsu_responses_total`,
    /// `wsu_timeouts_total`, `wsu_system_responses_total`,
    /// `wsu_system_unavailable_total`, `wsu_exec_time_seconds`,
    /// `wsu_response_time_seconds`).
    pub fn set_metrics(&mut self, metrics: SharedRegistry) {
        self.metrics = Some(metrics);
        // Resolved ids index into the previous registry; drop them so
        // they are re-resolved against the new one on first use.
        self.system_handles = SystemMetricHandles::default();
        self.release_handles.clear();
    }

    /// Tracks the joint failures of the pair `(old, new)` through a
    /// perfect detector.
    pub fn track_pair(&mut self, old: ReleaseId, new: ReleaseId) {
        self.track_pair_with(old, new, PerfectOracle);
    }

    /// Tracks the pair through a custom failure detector (omission,
    /// back-to-back, a chain, …).
    pub fn track_pair_with(
        &mut self,
        old: ReleaseId,
        new: ReleaseId,
        detector: impl FailureDetector + 'static,
    ) {
        self.pair = Some(PairTracker {
            old,
            new,
            detector: Box::new(detector),
            truth: JointCounts::new(),
            observed: JointCounts::new(),
            audit: DetectionAudit::new(),
        });
    }

    /// Ingests one demand record.
    pub fn observe(&mut self, record: &DemandRecord, rng: &mut StreamRng) {
        self.demands += 1;
        for obs in &record.per_release {
            let idx = obs.release.index();
            while self.per_release.len() <= idx {
                self.per_release.push(ReleaseStats::new());
            }
            let stats = &mut self.per_release[idx];
            stats.exec_all.record(obs.exec_time.as_secs());
            stats.exec_sketch.observe(obs.exec_time.as_secs());
            if obs.within_timeout {
                stats.counts.bump(obs.class.index());
                stats.exec_within.record(obs.exec_time.as_secs());
            } else {
                stats.nrdt += 1;
            }
        }
        match record.system.verdict {
            SystemVerdict::Response(class) => self.system.counts.bump(class.index()),
            SystemVerdict::Unavailable => self.system.nrdt += 1,
        }
        self.system
            .response_time
            .record(record.system.response_time.as_secs());
        self.response_sketch
            .observe(record.system.response_time.as_secs());

        let mut false_alarm = false;
        if let Some(pair) = &mut self.pair {
            let a = record.observation(pair.old);
            let b = record.observation(pair.new);
            if let (Some(a), Some(b)) = (a, b) {
                // A failure here is any deviation from a correct response
                // within the timeout: wrong answers and timeouts both count.
                let truth = DemandOutcome::new(
                    a.class.is_failure() || !a.within_timeout,
                    b.class.is_failure() || !b.within_timeout,
                );
                let seen = pair.detector.observe(truth, rng);
                false_alarm =
                    (seen.a_failed && !truth.a_failed) || (seen.b_failed && !truth.b_failed);
                pair.truth.record(truth.a_failed, truth.b_failed);
                pair.observed.record(seen.a_failed, seen.b_failed);
                pair.audit.record(truth, seen);
            }
        }

        self.slo.observe(SloObservation {
            t: record.t,
            available: matches!(record.system.verdict, SystemVerdict::Response(_)),
            fault: record
                .per_release
                .iter()
                .any(|o| o.class.is_failure() || !o.within_timeout),
            false_alarm,
            response_time: record.system.response_time.as_secs(),
        });

        if self.recent_capacity > 0 {
            if self.recent.len() == self.recent_capacity {
                self.recent.pop_front();
            }
            self.recent.push_back(record.clone());
        }

        if let Some(metrics) = &self.metrics {
            let demands = *self
                .system_handles
                .demands
                .get_or_insert_with(|| metrics.counter_id("wsu_demands_total", &[]));
            metrics.inc_counter_id(demands);
            for obs in &record.per_release {
                let idx = obs.release.index();
                while self.release_handles.len() <= idx {
                    let next = self.release_handles.len();
                    self.release_handles.push(ReleaseMetricHandles::new(next));
                }
                let ReleaseMetricHandles {
                    label,
                    responses,
                    timeouts,
                    exec_time,
                    exec_sketch,
                } = &mut self.release_handles[idx];
                if obs.within_timeout {
                    let id = *responses[obs.class.index()].get_or_insert_with(|| {
                        metrics.counter_id(
                            "wsu_responses_total",
                            &[("release", label), ("class", obs.class.abbrev())],
                        )
                    });
                    metrics.inc_counter_id(id);
                } else {
                    let id = *timeouts.get_or_insert_with(|| {
                        metrics.counter_id("wsu_timeouts_total", &[("release", label)])
                    });
                    metrics.inc_counter_id(id);
                }
                let id = *exec_time.get_or_insert_with(|| {
                    metrics.histogram_id("wsu_exec_time_seconds", &[("release", label)])
                });
                metrics.observe_id(id, obs.exec_time.as_secs());
                let id = *exec_sketch.get_or_insert_with(|| {
                    metrics.sketch_id("wsu_exec_time_quantiles", &[("release", label)])
                });
                metrics.observe_sketch_id(id, obs.exec_time.as_secs());
            }
            match record.system.verdict {
                SystemVerdict::Response(class) => {
                    let id =
                        *self.system_handles.responses[class.index()].get_or_insert_with(|| {
                            metrics.counter_id(
                                "wsu_system_responses_total",
                                &[("class", class.abbrev())],
                            )
                        });
                    metrics.inc_counter_id(id);
                }
                SystemVerdict::Unavailable => {
                    let id = *self.system_handles.unavailable.get_or_insert_with(|| {
                        metrics.counter_id("wsu_system_unavailable_total", &[])
                    });
                    metrics.inc_counter_id(id);
                }
            }
            let id = *self
                .system_handles
                .response_time
                .get_or_insert_with(|| metrics.histogram_id("wsu_response_time_seconds", &[]));
            metrics.observe_id(id, record.system.response_time.as_secs());
            let id = *self
                .system_handles
                .response_sketch
                .get_or_insert_with(|| metrics.sketch_id("wsu_response_time_quantiles", &[]));
            metrics.observe_sketch_id(id, record.system.response_time.as_secs());
        }
    }

    /// Statistics for one release, if it has been observed.
    pub fn release_stats(&self, release: ReleaseId) -> Option<&ReleaseStats> {
        self.per_release.get(release.index())
    }

    /// Statistics for the composite service.
    pub fn system_stats(&self) -> &SystemStats {
        &self.system
    }

    /// The tracked pair, if any.
    pub fn pair(&self) -> Option<&PairTracker> {
        self.pair.as_ref()
    }

    /// Demands observed.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Tail-latency quantile sketch over consumer-visible response times
    /// (p50/p90/p99/p999 within a 1% relative-error bound).
    pub fn response_quantiles(&self) -> &QuantileSketch {
        &self.response_sketch
    }

    /// The windowed availability/SLO tracker.
    pub fn slo(&self) -> &SloWindow {
        &self.slo
    }

    /// Current dependability snapshot: lifetime availability, fault and
    /// false-alarm rates, latency-violation rate and worst-window
    /// availability, taken from the SLO tracker.
    pub fn dependability_snapshot(&self) -> DependabilitySnapshot {
        self.slo.snapshot()
    }

    /// The most recent demand records, oldest first.
    pub fn recent_records(&self) -> impl Iterator<Item = &DemandRecord> {
        self.recent.iter()
    }

    /// Renders an operator-facing dependability report: one line per
    /// observed release plus the composite service, with outcome counts,
    /// availability and timing — the "reporting on the use of the
    /// deployed WS" capability of the paper's Service Management idea
    /// (Section 2).
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "dependability report after {} demands
",
            self.demands
        ));
        out.push_str(
            "  who        CR      ER      NER     NRDT    avail   MET(s)
",
        );
        for (idx, stats) in self.per_release.iter().enumerate() {
            out.push_str(&format!(
                "  release#{idx}  {:<7} {:<7} {:<7} {:<7} {:<7.4} {:.4}
",
                stats.count(ResponseClass::Correct),
                stats.count(ResponseClass::EvidentFailure),
                stats.count(ResponseClass::NonEvidentFailure),
                stats.nrdt(),
                stats.availability(),
                stats.mean_exec_time(),
            ));
        }
        out.push_str(&format!(
            "  system     {:<7} {:<7} {:<7} {:<7} {:<7.4} {:.4}
",
            self.system.count(ResponseClass::Correct),
            self.system.count(ResponseClass::EvidentFailure),
            self.system.count(ResponseClass::NonEvidentFailure),
            self.system.nrdt(),
            self.system.availability(),
            self.system.mean_response_time(),
        ));
        if let Some(pair) = &self.pair {
            out.push_str(&format!(
                "  pair tracking ({} vs {}): observed {}
",
                pair.old, pair.new, pair.observed
            ));
        }
        out
    }
}

impl std::fmt::Debug for MonitoringSubsystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitoringSubsystem")
            .field("demands", &self.demands)
            .field("releases", &self.per_release.len())
            .field("pair", &self.pair)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjudicate::SystemVerdict;
    use crate::middleware::{ReleaseObservation, SystemObservation};
    use wsu_detect::oracle::OmissionOracle;
    use wsu_simcore::time::SimDuration;

    fn record(
        seq: u64,
        a: (ResponseClass, f64, bool),
        b: (ResponseClass, f64, bool),
        verdict: SystemVerdict,
        rt: f64,
    ) -> DemandRecord {
        DemandRecord {
            seq,
            t: seq as f64,
            per_release: vec![
                ReleaseObservation {
                    release: ReleaseId::new(0),
                    class: a.0,
                    exec_time: SimDuration::from_secs(a.1),
                    within_timeout: a.2,
                },
                ReleaseObservation {
                    release: ReleaseId::new(1),
                    class: b.0,
                    exec_time: SimDuration::from_secs(b.1),
                    within_timeout: b.2,
                },
            ],
            system: SystemObservation {
                verdict,
                response_time: SimDuration::from_secs(rt),
                source: None,
                responders: 2,
            },
        }
    }

    #[test]
    fn per_release_counts_and_nrdt() {
        let mut mon = MonitoringSubsystem::new(16);
        let mut rng = StreamRng::from_seed(1);
        mon.observe(
            &record(
                0,
                (ResponseClass::Correct, 0.5, true),
                (ResponseClass::EvidentFailure, 0.7, true),
                SystemVerdict::Response(ResponseClass::Correct),
                0.8,
            ),
            &mut rng,
        );
        mon.observe(
            &record(
                1,
                (ResponseClass::Correct, 0.4, true),
                (ResponseClass::Correct, 3.0, false),
                SystemVerdict::Response(ResponseClass::Correct),
                1.6,
            ),
            &mut rng,
        );
        let a = mon.release_stats(ReleaseId::new(0)).unwrap();
        assert_eq!(a.count(ResponseClass::Correct), 2);
        assert_eq!(a.nrdt(), 0);
        assert_eq!(a.total_responses(), 2);
        assert!((a.mean_exec_time() - 0.45).abs() < 1e-12);
        assert_eq!(a.availability(), 1.0);
        let b = mon.release_stats(ReleaseId::new(1)).unwrap();
        assert_eq!(b.count(ResponseClass::EvidentFailure), 1);
        assert_eq!(b.nrdt(), 1);
        assert_eq!(b.availability(), 0.5);
        assert!((b.failure_rate() - 1.0).abs() < 1e-12);
        // MET over all responses includes the late one.
        assert!((b.mean_exec_time() - 1.85).abs() < 1e-12);
        assert!(b.exec_within_summary().count() == 1);
        assert_eq!(mon.demands(), 2);
    }

    #[test]
    fn system_counts_and_response_time() {
        let mut mon = MonitoringSubsystem::new(0);
        let mut rng = StreamRng::from_seed(2);
        mon.observe(
            &record(
                0,
                (ResponseClass::Correct, 0.5, true),
                (ResponseClass::Correct, 0.7, true),
                SystemVerdict::Response(ResponseClass::Correct),
                0.8,
            ),
            &mut rng,
        );
        mon.observe(
            &record(
                1,
                (ResponseClass::Correct, 5.0, false),
                (ResponseClass::Correct, 5.0, false),
                SystemVerdict::Unavailable,
                1.6,
            ),
            &mut rng,
        );
        let sys = mon.system_stats();
        assert_eq!(sys.count(ResponseClass::Correct), 1);
        assert_eq!(sys.nrdt(), 1);
        assert_eq!(sys.total_responses(), 1);
        assert!((sys.mean_response_time() - 1.2).abs() < 1e-12);
        assert_eq!(sys.availability(), 0.5);
        assert_eq!(sys.response_time_summary().count(), 2);
    }

    #[test]
    fn pair_tracking_with_perfect_detector() {
        let mut mon = MonitoringSubsystem::new(0);
        mon.track_pair(ReleaseId::new(0), ReleaseId::new(1));
        let mut rng = StreamRng::from_seed(3);
        // A fails (non-evident), B ok.
        mon.observe(
            &record(
                0,
                (ResponseClass::NonEvidentFailure, 0.5, true),
                (ResponseClass::Correct, 0.6, true),
                SystemVerdict::Response(ResponseClass::Correct),
                0.7,
            ),
            &mut rng,
        );
        // Both fail (B by timing out).
        mon.observe(
            &record(
                1,
                (ResponseClass::EvidentFailure, 0.5, true),
                (ResponseClass::Correct, 9.0, false),
                SystemVerdict::Response(ResponseClass::EvidentFailure),
                1.6,
            ),
            &mut rng,
        );
        let pair = mon.pair().unwrap();
        assert_eq!(pair.truth().demands(), 2);
        assert_eq!(pair.truth().only_a_failed(), 1);
        assert_eq!(pair.truth().both_failed(), 1);
        assert_eq!(pair.observed(), pair.truth());
        assert_eq!(pair.old_release(), ReleaseId::new(0));
        assert_eq!(pair.new_release(), ReleaseId::new(1));
        assert_eq!(pair.audit().demands(), 2);
    }

    #[test]
    fn pair_tracking_with_omission_detector() {
        let mut mon = MonitoringSubsystem::new(0);
        mon.track_pair_with(
            ReleaseId::new(0),
            ReleaseId::new(1),
            OmissionOracle::new(1.0),
        );
        let mut rng = StreamRng::from_seed(4);
        mon.observe(
            &record(
                0,
                (ResponseClass::NonEvidentFailure, 0.5, true),
                (ResponseClass::NonEvidentFailure, 0.6, true),
                SystemVerdict::Response(ResponseClass::NonEvidentFailure),
                0.7,
            ),
            &mut rng,
        );
        let pair = mon.pair().unwrap();
        assert_eq!(pair.truth().both_failed(), 1);
        // Total omission: nothing observed.
        assert_eq!(pair.observed().both_failed(), 0);
        assert_eq!(pair.audit().release_a().false_negatives, 1);
    }

    #[test]
    fn recent_ring_buffer_is_bounded() {
        let mut mon = MonitoringSubsystem::new(2);
        let mut rng = StreamRng::from_seed(5);
        for i in 0..5 {
            mon.observe(
                &record(
                    i,
                    (ResponseClass::Correct, 0.5, true),
                    (ResponseClass::Correct, 0.6, true),
                    SystemVerdict::Response(ResponseClass::Correct),
                    0.7,
                ),
                &mut rng,
            );
        }
        let seqs: Vec<u64> = mon.recent_records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_keeps_no_records() {
        let mut mon = MonitoringSubsystem::new(0);
        let mut rng = StreamRng::from_seed(6);
        mon.observe(
            &record(
                0,
                (ResponseClass::Correct, 0.5, true),
                (ResponseClass::Correct, 0.6, true),
                SystemVerdict::Response(ResponseClass::Correct),
                0.7,
            ),
            &mut rng,
        );
        assert_eq!(mon.recent_records().count(), 0);
    }

    #[test]
    fn empty_stats_defaults() {
        let mon = MonitoringSubsystem::new(0);
        assert!(mon.release_stats(ReleaseId::new(0)).is_none());
        assert_eq!(mon.system_stats().availability(), 1.0);
        assert!(mon.pair().is_none());
    }

    #[test]
    fn metrics_registry_mirrors_observations() {
        let mut mon = MonitoringSubsystem::new(0);
        let registry = SharedRegistry::new();
        mon.set_metrics(registry.clone());
        let mut rng = StreamRng::from_seed(11);
        mon.observe(
            &record(
                0,
                (ResponseClass::Correct, 0.5, true),
                (ResponseClass::Correct, 3.0, false),
                SystemVerdict::Response(ResponseClass::Correct),
                1.6,
            ),
            &mut rng,
        );
        mon.observe(
            &record(
                1,
                (ResponseClass::EvidentFailure, 0.4, true),
                (ResponseClass::Correct, 0.6, true),
                SystemVerdict::Unavailable,
                2.1,
            ),
            &mut rng,
        );
        registry.with(|r| {
            assert_eq!(r.counter("wsu_demands_total", &[]), 2);
            assert_eq!(
                r.counter("wsu_responses_total", &[("release", "0"), ("class", "CR")]),
                1
            );
            assert_eq!(
                r.counter("wsu_responses_total", &[("release", "0"), ("class", "ER")]),
                1
            );
            assert_eq!(r.counter("wsu_timeouts_total", &[("release", "1")]), 1);
            assert_eq!(
                r.counter("wsu_system_responses_total", &[("class", "CR")]),
                1
            );
            assert_eq!(r.counter("wsu_system_unavailable_total", &[]), 1);
            assert_eq!(
                r.histogram_count("wsu_exec_time_seconds", &[("release", "0")]),
                2
            );
            assert_eq!(r.histogram_count("wsu_response_time_seconds", &[]), 2);
            assert_eq!(
                r.sketch("wsu_response_time_quantiles", &[])
                    .unwrap()
                    .count(),
                2
            );
            assert_eq!(
                r.sketch("wsu_exec_time_quantiles", &[("release", "0")])
                    .unwrap()
                    .count(),
                2
            );
            assert_eq!(
                r.sketch("wsu_exec_time_quantiles", &[("release", "1")])
                    .unwrap()
                    .count(),
                2
            );
        });
    }

    #[test]
    fn quantile_sketches_are_always_on() {
        let mut mon = MonitoringSubsystem::new(0);
        let mut rng = StreamRng::from_seed(12);
        for i in 0..100 {
            mon.observe(
                &record(
                    i,
                    (ResponseClass::Correct, 0.5, true),
                    (ResponseClass::Correct, 0.6, true),
                    SystemVerdict::Response(ResponseClass::Correct),
                    0.7,
                ),
                &mut rng,
            );
        }
        let sketch = mon.response_quantiles();
        assert_eq!(sketch.count(), 100);
        assert!((sketch.p50() - 0.7).abs() / 0.7 <= sketch.alpha());
        assert!((sketch.p999() - 0.7).abs() / 0.7 <= sketch.alpha());
        let rel = mon.release_stats(ReleaseId::new(1)).unwrap();
        assert_eq!(rel.exec_quantiles().count(), 100);
        assert!((rel.exec_quantiles().p99() - 0.6).abs() / 0.6 <= sketch.alpha());
    }

    #[test]
    fn slo_window_tracks_availability_faults_and_false_alarms() {
        let mut mon = MonitoringSubsystem::new(0);
        mon.configure_slo(SloConfig {
            window_secs: 10.0,
            windows: 8,
            latency_threshold: 1.0,
        });
        mon.track_pair_with(
            ReleaseId::new(0),
            ReleaseId::new(1),
            wsu_detect::oracle::FalseAlarmOracle::new(1.0),
        );
        let mut rng = StreamRng::from_seed(13);
        // Window [0, 10): two good demands (but every demand trips the
        // false-alarm detector).
        for i in 0..2 {
            mon.observe(
                &record(
                    i,
                    (ResponseClass::Correct, 0.5, true),
                    (ResponseClass::Correct, 0.6, true),
                    SystemVerdict::Response(ResponseClass::Correct),
                    0.7,
                ),
                &mut rng,
            );
        }
        // Window [10, 20): one unavailable demand with a real fault and a
        // latency violation (2.1 s > 1.0 s threshold).
        mon.observe(
            &record(
                12,
                (ResponseClass::Correct, 5.0, false),
                (ResponseClass::Correct, 5.0, false),
                SystemVerdict::Unavailable,
                2.1,
            ),
            &mut rng,
        );
        // Window [20, 30): close the previous ones.
        mon.observe(
            &record(
                25,
                (ResponseClass::Correct, 0.5, true),
                (ResponseClass::Correct, 0.6, true),
                SystemVerdict::Response(ResponseClass::Correct),
                0.7,
            ),
            &mut rng,
        );
        let snap = mon.dependability_snapshot();
        assert_eq!(snap.demands, 4);
        assert!((snap.availability - 0.75).abs() < 1e-12);
        assert!((snap.fault_rate - 0.25).abs() < 1e-12);
        assert!((snap.false_alarm_rate - 0.75).abs() < 1e-12);
        assert!((snap.latency_violation_rate - 0.25).abs() < 1e-12);
        assert_eq!(mon.slo().complete_windows(), 2);
        // Worst completed window is the one holding the unavailable demand.
        assert_eq!(snap.worst_window_availability, 0.0);
    }

    #[test]
    fn report_renders_all_parties() {
        let mut mon = MonitoringSubsystem::new(0);
        mon.track_pair(ReleaseId::new(0), ReleaseId::new(1));
        let mut rng = StreamRng::from_seed(9);
        mon.observe(
            &record(
                0,
                (ResponseClass::Correct, 0.5, true),
                (ResponseClass::NonEvidentFailure, 0.6, true),
                SystemVerdict::Response(ResponseClass::Correct),
                0.7,
            ),
            &mut rng,
        );
        let report = mon.render_report();
        assert!(report.contains("after 1 demands"));
        assert!(report.contains("release#0"));
        assert!(report.contains("release#1"));
        assert!(report.contains("system"));
        assert!(report.contains("pair tracking"));
        assert!(report.contains("n=1 r1=0 r2=0 r3=1 r4=0"));
    }
}
