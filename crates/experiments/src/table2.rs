//! Table 2: duration of the managed upgrade.
//!
//! For each scenario (1, 2), detection regime (perfect, omission 0.15,
//! back-to-back) and switching criterion (1, 2, 3), the experiment
//! reports the number of demands after which the criterion is first met —
//! the paper's "duration of managed upgrade". A criterion never met
//! within the simulated horizon is reported as "Not attainable
//! (> N)", as in the paper's Scenario 1 / Criterion 2 cell.

use wsu_simcore::rng::MasterSeed;
use wsu_workload::scenario::Scenario;

use crate::bayes_study::{run_study, Detection, StudyConfig, StudyRun};
use crate::report::{thousands, TextTable};

/// One cell of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Cell {
    /// First demand count at which the criterion was met, if ever.
    pub first_met: Option<u64>,
    /// First demand count from which the criterion stayed met.
    pub stable_met: Option<u64>,
    /// The simulated horizon.
    pub horizon: u64,
}

impl Table2Cell {
    /// Renders the cell the way the paper does.
    pub fn render(&self) -> String {
        match (self.first_met, self.stable_met) {
            (Some(first), Some(stable)) if stable > first => {
                format!(
                    "{} (oscillates till {})",
                    thousands(first),
                    thousands(stable)
                )
            }
            (Some(first), _) => thousands(first),
            (None, _) => format!("Not attainable (> {})", thousands(self.horizon)),
        }
    }
}

/// One row of Table 2: a (scenario, detection) pair across the three
/// criteria.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Scenario number.
    pub scenario: usize,
    /// Detection regime label.
    pub detection: String,
    /// Cells for criteria 1–3.
    pub cells: [Table2Cell; 3],
}

/// The full Table 2 result.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows in the paper's order (scenario 1 ×3 regimes, scenario 2 ×3).
    pub rows: Vec<Table2Row>,
    /// The underlying study runs (for the figures).
    pub runs: Vec<StudyRun>,
}

impl Table2 {
    /// Renders the table as text.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            "Table 2: Duration of managed upgrade (demands until switch)",
            &[
                "Scenario",
                "Detection",
                "Criterion 1",
                "Criterion 2",
                "Criterion 3",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                format!("Scenario {}", row.scenario),
                row.detection.clone(),
                row.cells[0].render(),
                row.cells[1].render(),
                row.cells[2].render(),
            ]);
        }
        table.render()
    }
}

/// Runs the full Table 2 experiment with the paper's parameters.
pub fn run_table2(seed: MasterSeed) -> Table2 {
    run_table2_with(
        seed,
        &StudyConfig::paper_scenario1(seed),
        &StudyConfig::paper_scenario2(seed),
    )
}

/// Runs Table 2 with explicit per-scenario configurations (used by tests
/// and quick modes).
pub fn run_table2_with(_seed: MasterSeed, config1: &StudyConfig, config2: &StudyConfig) -> Table2 {
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for (scenario, config) in [(Scenario::one(), config1), (Scenario::two(), config2)] {
        for detection in Detection::paper_regimes() {
            let run = run_study(&scenario, detection, config);
            let cells = [0, 1, 2].map(|i| Table2Cell {
                first_met: run.first_met[i],
                stable_met: run.stable_met[i],
                horizon: config.demands,
            });
            rows.push(Table2Row {
                scenario: scenario.number,
                detection: detection.label(),
                cells,
            });
            runs.push(run);
        }
    }
    Table2 { rows, runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_bayes::whitebox::Resolution;

    fn quick_configs() -> (StudyConfig, StudyConfig) {
        let seed = MasterSeed::new(5);
        let res = Resolution {
            a_cells: 32,
            b_cells: 32,
            q_cells: 8,
        };
        (
            StudyConfig {
                demands: 6_000,
                checkpoint_every: 500,
                resolution: res,
                adaptive: None,
                confidence: 0.99,
                target: 1e-3,
                seed,
            },
            StudyConfig {
                demands: 4_000,
                checkpoint_every: 200,
                resolution: res,
                adaptive: None,
                confidence: 0.99,
                target: 1e-3,
                seed,
            },
        )
    }

    #[test]
    fn spread_aggregates_across_seeds() {
        let (c1, c2) = quick_configs();
        let seeds = [MasterSeed::new(1), MasterSeed::new(2), MasterSeed::new(3)];
        let rows = run_table2_spread(&seeds, &c1, &c2);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            for cell in &row.cells {
                assert_eq!(cell.seeds, 3);
                assert!(cell.met.len() <= 3);
                // Sorted ascending.
                assert!(cell.met.windows(2).all(|w| w[0] <= w[1]));
                if let (Some(lo), Some(mid), Some(hi)) = (cell.min(), cell.median(), cell.max()) {
                    assert!(lo <= mid && mid <= hi);
                }
            }
        }
        let text = render_spread(&rows);
        assert!(text.contains("seeds"));
        // Scenario 2 criterion 3 fires for every seed at this scale.
        let s2 = rows.iter().find(|r| r.scenario == 2).unwrap();
        assert_eq!(s2.cells[2].met.len(), 3, "{:?}", s2.cells[2]);
    }

    #[test]
    fn spread_cell_rendering() {
        let cell = SpreadCell {
            met: vec![1_000, 1_500, 2_000],
            seeds: 5,
        };
        assert_eq!(cell.render(), "1,500 [1,000..2,000] (3/5 seeds)");
        let empty = SpreadCell {
            met: vec![],
            seeds: 4,
        };
        assert_eq!(empty.render(), "not met (0/4 seeds)");
    }

    #[test]
    fn produces_six_rows_in_paper_order() {
        let (c1, c2) = quick_configs();
        let table = run_table2_with(MasterSeed::new(5), &c1, &c2);
        assert_eq!(table.rows.len(), 6);
        assert_eq!(table.rows[0].scenario, 1);
        assert_eq!(table.rows[3].scenario, 2);
        assert!(table.rows[1].detection.contains("Omission"));
        assert_eq!(table.runs.len(), 6);
    }

    #[test]
    fn scenario2_fires_within_quick_horizon() {
        // Even at reduced scale, scenario 2's criteria 1 and 3 fire fast.
        let (c1, c2) = quick_configs();
        let table = run_table2_with(MasterSeed::new(5), &c1, &c2);
        let s2_perfect = &table.rows[3];
        assert!(s2_perfect.cells[0].first_met.is_some(), "criterion 1");
        assert!(s2_perfect.cells[2].first_met.is_some(), "criterion 3");
    }

    #[test]
    fn scenario1_criterion2_is_hard() {
        // At a 6k-demand horizon, scenario 1's explicit 1e-3 target at 99%
        // cannot be met (the paper needs >50k even with perfect oracles).
        let (c1, c2) = quick_configs();
        let table = run_table2_with(MasterSeed::new(5), &c1, &c2);
        let s1_perfect = &table.rows[0];
        assert_eq!(s1_perfect.cells[1].first_met, None);
        assert!(s1_perfect.cells[1].render().contains("Not attainable"));
    }

    #[test]
    fn cell_rendering_variants() {
        assert_eq!(
            Table2Cell {
                first_met: Some(35_500),
                stable_met: Some(35_500),
                horizon: 50_000
            }
            .render(),
            "35,500"
        );
        assert_eq!(
            Table2Cell {
                first_met: Some(22_000),
                stable_met: Some(26_000),
                horizon: 50_000
            }
            .render(),
            "22,000 (oscillates till 26,000)"
        );
        assert_eq!(
            Table2Cell {
                first_met: None,
                stable_met: None,
                horizon: 50_000
            }
            .render(),
            "Not attainable (> 50,000)"
        );
    }

    #[test]
    fn render_contains_headers() {
        let (c1, c2) = quick_configs();
        let table = run_table2_with(MasterSeed::new(5), &c1, &c2);
        let text = table.render();
        assert!(text.contains("Criterion 1"));
        assert!(text.contains("Scenario 2"));
        assert!(text.contains("Back-to-back"));
    }
}

/// Spread of one Table 2 cell across seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpreadCell {
    /// Durations for the seeds where the criterion was met, sorted.
    pub met: Vec<u64>,
    /// How many seeds were run.
    pub seeds: usize,
}

impl SpreadCell {
    /// Minimum duration among seeds that met the criterion.
    pub fn min(&self) -> Option<u64> {
        self.met.first().copied()
    }

    /// Median duration among seeds that met the criterion.
    pub fn median(&self) -> Option<u64> {
        if self.met.is_empty() {
            None
        } else {
            Some(self.met[self.met.len() / 2])
        }
    }

    /// Maximum duration among seeds that met the criterion.
    pub fn max(&self) -> Option<u64> {
        self.met.last().copied()
    }

    /// Renders `median [min..max] (k/n seeds)`.
    pub fn render(&self) -> String {
        match (self.min(), self.median(), self.max()) {
            (Some(lo), Some(mid), Some(hi)) => format!(
                "{} [{}..{}] ({}/{} seeds)",
                thousands(mid),
                thousands(lo),
                thousands(hi),
                self.met.len(),
                self.seeds
            ),
            _ => format!("not met (0/{} seeds)", self.seeds),
        }
    }
}

/// One row of the multi-seed spread table.
#[derive(Debug, Clone)]
pub struct SpreadRow {
    /// Scenario number.
    pub scenario: usize,
    /// Detection label.
    pub detection: String,
    /// Spread per criterion.
    pub cells: [SpreadCell; 3],
}

/// Runs Table 2 across several seeds and reports the per-cell spread —
/// the Monte-Carlo variability the paper's single-run Table 2 hides.
pub fn run_table2_spread(
    seeds: &[MasterSeed],
    config1: &StudyConfig,
    config2: &StudyConfig,
) -> Vec<SpreadRow> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut rows: Vec<SpreadRow> = Vec::new();
    for &seed in seeds {
        let c1 = StudyConfig { seed, ..*config1 };
        let c2 = StudyConfig { seed, ..*config2 };
        let table = run_table2_with(seed, &c1, &c2);
        if rows.is_empty() {
            rows = table
                .rows
                .iter()
                .map(|r| SpreadRow {
                    scenario: r.scenario,
                    detection: r.detection.clone(),
                    cells: std::array::from_fn(|_| SpreadCell {
                        met: Vec::new(),
                        seeds: seeds.len(),
                    }),
                })
                .collect();
        }
        for (row, spread) in table.rows.iter().zip(rows.iter_mut()) {
            for (cell, target) in row.cells.iter().zip(spread.cells.iter_mut()) {
                if let Some(d) = cell.first_met {
                    target.met.push(d);
                }
            }
        }
    }
    for row in &mut rows {
        for cell in &mut row.cells {
            cell.met.sort_unstable();
        }
    }
    rows
}

/// Renders the spread table.
pub fn render_spread(rows: &[SpreadRow]) -> String {
    let mut table = TextTable::new(
        "Table 2 spread across seeds: median [min..max] (seeds meeting criterion)",
        &[
            "Scenario",
            "Detection",
            "Criterion 1",
            "Criterion 2",
            "Criterion 3",
        ],
    );
    for row in rows {
        table.push_row(vec![
            format!("Scenario {}", row.scenario),
            row.detection.clone(),
            row.cells[0].render(),
            row.cells[1].render(),
            row.cells[2].render(),
        ]);
    }
    table.render()
}
