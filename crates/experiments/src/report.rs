//! Aligned text-table rendering for experiment outputs.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a count with thousands separators (`35500` → `"35,500"`).
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["longer".into(), "22".into()]);
        let text = t.render();
        assert!(text.contains("## Demo"));
        let lines: Vec<&str> = text.lines().collect();
        // header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("a"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(format!("{t}"), text);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("Demo", &["a", "b"]);
        t.push_row(vec!["only".into()]);
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(35500), "35,500");
        assert_eq!(thousands(1234567), "1,234,567");
    }
}
