//! HTTP load generator for the serving front.
//!
//! [`run_load`] opens `connections` keep-alive connections to a
//! `wsu-serve` front and drives each from its own thread in a **closed
//! loop**: every connection keeps exactly one request in flight
//! (`POST /demand`), so total in-flight load is fixed at `connections`
//! and the generator measures the front's capacity at that concurrency
//! rather than open-loop queueing collapse. Per-request wall latency is
//! captured in a per-thread [`QuantileSketch`] and merged at the end,
//! so the hot loop shares nothing across threads.
//!
//! Setting [`LoadgenConfig::open_rate`] switches to a **fixed-rate
//! open loop**: the configured aggregate rate is divided evenly across
//! connections and each connection sends on its own fixed schedule,
//! whether or not the previous response has arrived. Latency is
//! measured from the request's *scheduled* send instant — the
//! coordinated-omission-free definition, so queueing delay at an
//! overloaded front shows up in the quantiles instead of silently
//! stretching the schedule. A connection that falls more than one
//! interval behind **drops** the missed slots (they are counted in
//! [`LoadSummary::dropped`], never sent); the drop rate alongside
//! p50/p99/p999 is the open-loop overload signal.
//!
//! The summary can be cross-checked against the server's own books:
//! [`scrape_demand_total`] reads `GET /metrics` and sums the per-worker
//! `wsu_http_demands_total` series, which must equal the client-side
//! count of 200s when the generator is the only client (the CI
//! http-smoke job asserts exactly this).
//!
//! [`render_bench_json`] publishes the run as `results/BENCH_http.json`
//! in the workspace's `wsu-bench/1` schema, so the stock
//! `bench_compare` regression guard can diff runs. (The experiments
//! crate deliberately does not depend on `wsu-bench` — the bench crate
//! depends on experiments — so the few lines of JSON are rendered
//! here.)

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use wsu_obs::http::{http_get, HttpClient};
use wsu_obs::quantile::QuantileSketch;

/// Relative-error bound for the latency sketches (1%).
const SKETCH_ALPHA: f64 = 0.01;

/// Configuration for one closed-loop run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Front address, e.g. `127.0.0.1:9100`.
    pub addr: SocketAddr,
    /// Concurrent keep-alive connections (= fixed in-flight window).
    pub connections: usize,
    /// Requests each connection issues after warmup.
    pub requests_per_conn: u64,
    /// Per-connection untimed warmup requests.
    pub warmup_per_conn: u64,
    /// Per-request I/O timeout.
    pub timeout: Duration,
    /// `Some(rate)` switches to the fixed-rate open loop: `rate`
    /// requests per second aggregate, divided evenly across
    /// connections. `None` is the closed loop.
    pub open_rate: Option<f64>,
}

impl LoadgenConfig {
    /// A config with the defaults the CI smoke run uses.
    pub fn new(addr: SocketAddr) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            connections: 2,
            requests_per_conn: 500,
            warmup_per_conn: 50,
            timeout: Duration::from_secs(5),
            open_rate: None,
        }
    }
}

/// What one closed-loop run measured.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Connections driven.
    pub connections: usize,
    /// Requests that completed with status 200 (timed phase only).
    pub ok: u64,
    /// Warmup requests that completed with status 200 (untimed, but
    /// they do land in the server's demand counter — the agreement
    /// check needs them).
    pub warmup_ok: u64,
    /// Requests that failed (I/O error or non-200 status).
    pub errors: u64,
    /// Open loop only: scheduled requests never sent because their
    /// connection had fallen more than one interval behind (0 in the
    /// closed loop, where nothing is scheduled).
    pub dropped: u64,
    /// Wall time of the timed phase.
    pub elapsed: Duration,
    /// Completed requests per wall second.
    pub requests_per_sec: f64,
    /// Merged per-request wall-latency sketch (seconds). In the open
    /// loop, latency runs from the *scheduled* send instant.
    pub latency: QuantileSketch,
}

impl LoadSummary {
    /// A latency quantile in nanoseconds (0 when nothing was recorded).
    pub fn latency_ns(&self, q: f64) -> u64 {
        to_ns(self.latency.quantile(q).unwrap_or(0.0))
    }

    /// Fraction of scheduled requests that were dropped (0.0 when
    /// nothing was scheduled or dropped — in particular, always 0.0
    /// for a closed-loop run).
    pub fn drop_rate(&self) -> f64 {
        let attempted = self.ok + self.errors + self.dropped;
        if attempted == 0 {
            0.0
        } else {
            self.dropped as f64 / attempted as f64
        }
    }
}

fn to_ns(seconds: f64) -> u64 {
    if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e9).round() as u64
    } else {
        0
    }
}

/// One connection's share of the run.
struct ConnResult {
    ok: u64,
    warmup_ok: u64,
    errors: u64,
    dropped: u64,
    latency: QuantileSketch,
}

impl ConnResult {
    fn empty() -> ConnResult {
        ConnResult {
            ok: 0,
            warmup_ok: 0,
            errors: 0,
            dropped: 0,
            latency: QuantileSketch::new(SKETCH_ALPHA),
        }
    }
}

/// Drives the configured loop (closed, or open at a fixed rate) and
/// returns the merged summary.
///
/// # Errors
///
/// Fails if any connection cannot be established or if an open-loop
/// rate is not finite and positive; individual request failures after
/// connect are counted in [`LoadSummary::errors`] instead (the loop
/// keeps going so one hiccup doesn't void a run).
pub fn run_load(config: &LoadgenConfig) -> io::Result<LoadSummary> {
    if let Some(rate) = config.open_rate {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("open-loop rate must be positive, got {rate}"),
            ));
        }
    }
    let mut clients = Vec::with_capacity(config.connections);
    for _ in 0..config.connections {
        clients.push(HttpClient::connect(config.addr, config.timeout)?);
    }
    let started = Instant::now();
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .map(|client| scope.spawn(move || drive_connection(client, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    let mut result = ConnResult::empty();
                    result.errors = config.requests_per_conn;
                    result
                })
            })
            .collect()
    });
    let elapsed = started.elapsed();
    let mut latency = QuantileSketch::new(SKETCH_ALPHA);
    let mut ok = 0;
    let mut warmup_ok = 0;
    let mut errors = 0;
    let mut dropped = 0;
    for result in &results {
        ok += result.ok;
        warmup_ok += result.warmup_ok;
        errors += result.errors;
        dropped += result.dropped;
        latency.merge(&result.latency);
    }
    let secs = elapsed.as_secs_f64().max(1e-9);
    Ok(LoadSummary {
        connections: config.connections,
        ok,
        warmup_ok,
        errors,
        dropped,
        elapsed,
        requests_per_sec: ok as f64 / secs,
        latency,
    })
}

/// One connection's run: warmup (always closed-loop), then the timed
/// phase in the configured mode.
fn drive_connection(mut client: HttpClient, config: &LoadgenConfig) -> ConnResult {
    let mut result = ConnResult::empty();
    for _ in 0..config.warmup_per_conn {
        if matches!(client.request("POST", "/demand", b""), Ok(r) if r.status == 200) {
            result.warmup_ok += 1;
        }
    }
    match config.open_rate {
        None => drive_closed(&mut client, config, &mut result),
        Some(rate) => drive_open(&mut client, config, rate, &mut result),
    }
    result
}

/// Closed loop: one request in flight, back to back.
fn drive_closed(client: &mut HttpClient, config: &LoadgenConfig, result: &mut ConnResult) {
    for _ in 0..config.requests_per_conn {
        let started = Instant::now();
        match client.request("POST", "/demand", b"") {
            Ok(resp) if resp.status == 200 => {
                result.ok += 1;
                result.latency.observe(started.elapsed().as_secs_f64());
            }
            Ok(_) | Err(_) => result.errors += 1,
        }
    }
}

/// Open loop: this connection's share of the aggregate rate is one
/// request every `connections / rate` seconds, on a fixed schedule
/// anchored at the start of its timed phase. Latency runs from the
/// scheduled instant (no coordinated omission). Slots that are already
/// more than one interval stale when the connection gets to them are
/// dropped, so a saturated front degrades into a rising drop rate
/// instead of a silently slowed schedule.
fn drive_open(client: &mut HttpClient, config: &LoadgenConfig, rate: f64, result: &mut ConnResult) {
    let interval = config.connections as f64 / rate;
    let start = Instant::now();
    let mut slot: u64 = 0;
    while slot < config.requests_per_conn {
        let scheduled = start + Duration::from_secs_f64(slot as f64 * interval);
        let now = Instant::now();
        if now > scheduled + Duration::from_secs_f64(interval) {
            // Behind by more than a full interval: drop every stale
            // slot and resume at the first one still fresh.
            let caught_up = ((now - start).as_secs_f64() / interval) as u64;
            let resume = caught_up.min(config.requests_per_conn);
            result.dropped += resume - slot;
            slot = resume;
            continue;
        }
        if let Some(wait) = scheduled.checked_duration_since(now) {
            std::thread::sleep(wait);
        }
        match client.request("POST", "/demand", b"") {
            Ok(resp) if resp.status == 200 => {
                result.ok += 1;
                result.latency.observe(scheduled.elapsed().as_secs_f64());
            }
            Ok(_) | Err(_) => result.errors += 1,
        }
        slot += 1;
    }
}

/// Sums the server's per-worker `wsu_http_demands_total` counters from
/// a `GET /metrics` scrape — the server-side view of how many demands
/// it has served, for agreement checks against the client-side count.
///
/// # Errors
///
/// Propagates scrape I/O failures; a non-200 scrape or an absent
/// series reads as 0.
pub fn scrape_demand_total(addr: SocketAddr) -> io::Result<u64> {
    let response = http_get(addr, "/metrics")?;
    if response.status != 200 {
        return Ok(0);
    }
    Ok(sum_counter(&response.body, "wsu_http_demands_total"))
}

/// Sums every sample of `name` in a Prometheus text body.
fn sum_counter(body: &str, name: &str) -> u64 {
    let mut total = 0u64;
    for line in body.lines() {
        if !line.starts_with(name) || line.starts_with('#') {
            continue;
        }
        let rest = &line[name.len()..];
        // Accept `name 3` and `name{labels} 3`, reject `name_suffix 3`.
        if !rest.starts_with(' ') && !rest.starts_with('{') {
            continue;
        }
        if let Some(value) = line.rsplit(' ').next() {
            if let Ok(v) = value.parse::<f64>() {
                total += v.round() as u64;
            }
        }
    }
    total
}

/// Renders the run as a `wsu-bench/1` report (the `BENCH_http.json`
/// format): throughput plus latency quantiles, all in nanoseconds so
/// the stock `bench_compare` guard can diff two runs. The extra
/// `requests_per_sec` field is informational — `bench_compare` ignores
/// unknown fields.
pub fn render_bench_json(summary: &LoadSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(640);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"wsu-bench/1\",\n");
    out.push_str("  \"bench\": \"BENCH_http\",\n");
    out.push_str("  \"unit\": \"ns\",\n");
    let _ = writeln!(
        out,
        "  \"requests_per_sec\": {:.1},",
        summary.requests_per_sec
    );
    let _ = writeln!(out, "  \"connections\": {},", summary.connections);
    let _ = writeln!(out, "  \"requests_ok\": {},", summary.ok);
    let _ = writeln!(out, "  \"requests_failed\": {},", summary.errors);
    let _ = writeln!(out, "  \"requests_dropped\": {},", summary.dropped);
    let _ = writeln!(out, "  \"drop_rate\": {:.6},", summary.drop_rate());
    out.push_str("  \"results\": [\n");
    let min = to_ns(summary.latency.min().unwrap_or(0.0));
    let max = to_ns(summary.latency.max().unwrap_or(0.0));
    let mean_ns = if summary.ok > 0 {
        to_ns(summary.elapsed.as_secs_f64() * summary.connections as f64 / summary.ok as f64)
    } else {
        0
    };
    let entries = [
        ("http/demand/latency_p50", summary.latency_ns(0.50)),
        ("http/demand/latency_p99", summary.latency_ns(0.99)),
        ("http/demand/latency_p999", summary.latency_ns(0.999)),
        ("http/demand/mean_ns_per_req", mean_ns),
    ];
    for (i, (name, median)) in entries.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{name}\", \"median_ns\": {median}, \"min_ns\": {min}, \"max_ns\": {max} }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_counter_handles_labels_and_suffixes() {
        let body = "# TYPE wsu_http_demands_total counter\n\
                    wsu_http_demands_total{worker=\"0\"} 3\n\
                    wsu_http_demands_total{worker=\"1\"} 4\n\
                    wsu_http_demands_total_other 100\n\
                    wsu_http_requests_total{route=\"demand\"} 9\n";
        assert_eq!(sum_counter(body, "wsu_http_demands_total"), 7);
    }

    #[test]
    fn sum_counter_accepts_unlabelled_series() {
        assert_eq!(
            sum_counter("wsu_http_demands_total 12\n", "wsu_http_demands_total"),
            12
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let mut latency = QuantileSketch::new(SKETCH_ALPHA);
        for i in 1..=100 {
            latency.observe(i as f64 * 1e-6);
        }
        let summary = LoadSummary {
            connections: 2,
            ok: 100,
            warmup_ok: 10,
            errors: 0,
            dropped: 0,
            elapsed: Duration::from_millis(10),
            requests_per_sec: 10_000.0,
            latency,
        };
        let json = render_bench_json(&summary);
        assert!(json.contains("\"schema\": \"wsu-bench/1\""));
        assert!(json.contains("\"bench\": \"BENCH_http\""));
        assert!(json.contains("\"name\": \"http/demand/latency_p50\""));
        assert!(json.contains("\"name\": \"http/demand/latency_p999\""));
        assert!(json.contains("\"requests_per_sec\": 10000.0,"));
        // The workspace's own JSON parser must accept it.
        let parsed = wsu_obs::jsonl::parse_jsonl(&json.replace('\n', " ")).expect("valid JSON");
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn latency_ns_is_zero_on_empty_sketch() {
        let summary = LoadSummary {
            connections: 1,
            ok: 0,
            warmup_ok: 0,
            errors: 5,
            dropped: 0,
            elapsed: Duration::from_millis(1),
            requests_per_sec: 0.0,
            latency: QuantileSketch::new(SKETCH_ALPHA),
        };
        assert_eq!(summary.latency_ns(0.5), 0);
    }
}
