//! Offline trace analysis: a recorded JSONL event trace becomes an
//! availability timeline and a per-phase latency breakdown, both as
//! TSV — the `wsu-analyze` binary's engine.
//!
//! The analyzer only needs two event kinds out of any trace:
//!
//! * `Adjudicated` — one per demand: virtual time, system verdict and
//!   consumer-visible response time. Verdict `NRDT` means the demand
//!   found the service unavailable.
//! * `SpanClosed` — the same demand's virtual-time cost attributed to
//!   middleware phases (transport, detection, adjudication, bayes,
//!   recovery).
//!
//! Everything else (fault injections, confidence updates, logs) passes
//! through uncounted, so traces from any binary analyze fine.

use wsu_obs::jsonl::{parse_jsonl, JsonValue};
use wsu_obs::{DemandSpan, QuantileSketch, SpanProfile, SPAN_PHASES};

/// One window of the availability timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityWindow {
    /// Window start, in virtual seconds.
    pub start: f64,
    /// Demands adjudicated in the window.
    pub demands: u64,
    /// Demands that found the service available.
    pub available: u64,
    /// Sum of consumer-visible response times (seconds).
    pub response_time_sum: f64,
}

impl AvailabilityWindow {
    /// Fraction of the window's demands that found the service up.
    pub fn availability(&self) -> f64 {
        if self.demands == 0 {
            return f64::NAN;
        }
        self.available as f64 / self.demands as f64
    }

    /// Mean consumer-visible response time over the window.
    pub fn mean_response_time(&self) -> f64 {
        if self.demands == 0 {
            return f64::NAN;
        }
        self.response_time_sum / self.demands as f64
    }
}

/// Everything the analyzer extracted from one trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Width of the timeline windows, in virtual seconds.
    pub window_secs: f64,
    /// Events in the trace (all kinds).
    pub events: usize,
    /// Demands adjudicated.
    pub demands: u64,
    /// Demands that found the service available.
    pub available: u64,
    /// The availability timeline, one entry per non-empty window in
    /// virtual-time order.
    pub windows: Vec<AvailabilityWindow>,
    /// Tail-latency sketch over consumer-visible response times.
    pub sketch: QuantileSketch,
    /// Per-phase decomposition aggregated from the span events.
    pub profile: SpanProfile,
}

/// Analyzes JSONL trace text.
///
/// # Errors
///
/// Returns a message when the text is not valid JSONL or `window_secs`
/// is not positive and finite.
pub fn analyze_trace(text: &str, window_secs: f64) -> Result<TraceAnalysis, String> {
    if !(window_secs > 0.0 && window_secs.is_finite()) {
        return Err(format!("window width {window_secs} must be positive"));
    }
    let events = parse_jsonl(text).map_err(|e| e.to_string())?;
    let mut analysis = TraceAnalysis {
        window_secs,
        events: events.len(),
        demands: 0,
        available: 0,
        windows: Vec::new(),
        sketch: QuantileSketch::default(),
        profile: SpanProfile::new(),
    };
    // epoch -> accumulating window; BTreeMap keeps virtual-time order.
    let mut windows: std::collections::BTreeMap<u64, AvailabilityWindow> =
        std::collections::BTreeMap::new();
    for event in &events {
        let kind = event.get("kind").and_then(JsonValue::as_str).unwrap_or("");
        match kind {
            "Adjudicated" => {
                let t = event.get("t").and_then(JsonValue::as_f64).unwrap_or(0.0);
                let verdict = event.get("verdict").and_then(JsonValue::as_str);
                let response_time = event
                    .get("response_time")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0);
                let up = verdict.is_some_and(|v| v != "NRDT");
                analysis.demands += 1;
                analysis.available += u64::from(up);
                analysis.sketch.observe(response_time);
                let epoch = (t / window_secs).floor().max(0.0) as u64;
                let window = windows.entry(epoch).or_insert(AvailabilityWindow {
                    start: epoch as f64 * window_secs,
                    demands: 0,
                    available: 0,
                    response_time_sum: 0.0,
                });
                window.demands += 1;
                window.available += u64::from(up);
                window.response_time_sum += response_time;
            }
            "SpanClosed" => {
                let num = |key: &str| event.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
                analysis.profile.record(&DemandSpan {
                    t: num("t"),
                    demand: event.get("demand").and_then(JsonValue::as_u64).unwrap_or(0),
                    transport: num("transport"),
                    detection: num("detection"),
                    adjudication: num("adjudication"),
                    bayes: num("bayes"),
                    recovery: num("recovery"),
                });
            }
            _ => {}
        }
    }
    analysis.windows = windows.into_values().collect();
    Ok(analysis)
}

impl TraceAnalysis {
    /// Lifetime availability over the whole trace.
    pub fn availability(&self) -> f64 {
        if self.demands == 0 {
            return f64::NAN;
        }
        self.available as f64 / self.demands as f64
    }

    /// The availability timeline as TSV: one row per non-empty window.
    pub fn availability_tsv(&self) -> String {
        let mut out = String::from(
            "window_start_s\tdemands\tavailable\tavailability\tmean_response_time_s\n",
        );
        for w in &self.windows {
            out.push_str(&format!(
                "{:.3}\t{}\t{}\t{:.6}\t{:.6}\n",
                w.start,
                w.demands,
                w.available,
                w.availability(),
                w.mean_response_time(),
            ));
        }
        out
    }

    /// The per-phase latency breakdown as TSV.
    pub fn phases_tsv(&self) -> String {
        let mut out = String::from("phase\ttotal_s\tmean_s_per_demand\tshare\n");
        let demands = self.profile.demands().max(1) as f64;
        let grand = self.profile.total();
        for phase in SPAN_PHASES {
            let total = self.profile.phase_total(phase).unwrap_or(0.0);
            let share = if grand > 0.0 { total / grand } else { 0.0 };
            out.push_str(&format!(
                "{phase}\t{total:.6}\t{:.6}\t{share:.6}\n",
                total / demands
            ));
        }
        out.push_str(&format!(
            "total\t{grand:.6}\t{:.6}\t1.000000\n",
            grand / demands
        ));
        out
    }

    /// A short human-readable summary for stdout.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} events, {} demands, availability {:.4}\n",
            self.events,
            self.demands,
            self.availability()
        ));
        out.push_str(&format!(
            "response time: p50 {:.3} s  p90 {:.3} s  p99 {:.3} s  p999 {:.3} s\n",
            self.sketch.p50(),
            self.sketch.p90(),
            self.sketch.p99(),
            self.sketch.p999()
        ));
        out.push_str(&format!(
            "timeline: {} non-empty windows of {} s\n",
            self.windows.len(),
            self.window_secs
        ));
        if self.profile.demands() > 0 {
            out.push_str(&self.profile.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_core::upgrade::{ManagedUpgrade, UpgradeConfig};
    use wsu_obs::{jsonl, SharedRecorder};
    use wsu_simcore::rng::MasterSeed;
    use wsu_wstack::endpoint::SyntheticService;
    use wsu_wstack::outcome::OutcomeProfile;

    fn recorded_trace() -> String {
        let old = SyntheticService::builder("Svc", "1.0")
            .outcomes(OutcomeProfile::always_correct())
            .exec_time_mean(0.1)
            .build();
        let new = SyntheticService::builder("Svc", "1.1")
            .outcomes(OutcomeProfile::always_correct())
            .exec_time_mean(0.1)
            .build();
        let mut upgrade =
            ManagedUpgrade::new(old, new, UpgradeConfig::default(), MasterSeed::new(7));
        let recorder = SharedRecorder::new();
        upgrade.attach_recorder(recorder.clone());
        upgrade.run_demands(300);
        jsonl::render_events(&recorder.snapshot())
    }

    #[test]
    fn analyzes_a_real_trace_end_to_end() {
        let text = recorded_trace();
        let analysis = analyze_trace(&text, 10.0).expect("valid trace");
        assert_eq!(analysis.demands, 300);
        assert_eq!(analysis.available, 300);
        assert_eq!(analysis.availability(), 1.0);
        assert_eq!(analysis.profile.demands(), 300);
        // Span totals account for every second the sketch saw.
        assert!((analysis.profile.total() - analysis.sketch.sum()).abs() < 1e-6);
        let windows_demands: u64 = analysis.windows.iter().map(|w| w.demands).sum();
        assert_eq!(windows_demands, 300);
        // Windows are in virtual-time order.
        for pair in analysis.windows.windows(2) {
            assert!(pair[0].start < pair[1].start);
        }
    }

    #[test]
    fn tsv_outputs_are_well_formed() {
        let text = recorded_trace();
        let analysis = analyze_trace(&text, 5.0).expect("valid trace");
        let avail = analysis.availability_tsv();
        let mut lines = avail.lines();
        assert_eq!(
            lines.next().unwrap(),
            "window_start_s\tdemands\tavailable\tavailability\tmean_response_time_s"
        );
        for line in lines {
            assert_eq!(line.split('\t').count(), 5, "{line}");
        }
        let phases = analysis.phases_tsv();
        assert!(phases.starts_with("phase\ttotal_s\t"), "{phases}");
        // transport + adjudication + 3 zero phases + total row + header.
        assert_eq!(phases.lines().count(), SPAN_PHASES.len() + 2);
        assert!(phases.contains("total\t"), "{phases}");
        let summary = analysis.render_summary();
        assert!(summary.contains("availability 1.0000"), "{summary}");
        assert!(summary.contains("p999"), "{summary}");
    }

    #[test]
    fn unavailable_demands_dent_the_right_window() {
        let trace = concat!(
            "{\"kind\":\"Adjudicated\",\"t\":1.0,\"demand\":0,\"verdict\":\"CR\",\"source\":0,\"responders\":1,\"response_time\":0.5}\n",
            "{\"kind\":\"Adjudicated\",\"t\":12.0,\"demand\":1,\"verdict\":\"NRDT\",\"source\":null,\"responders\":0,\"response_time\":2.1}\n",
            "{\"kind\":\"Log\",\"t\":12.0,\"demand\":1,\"level\":\"info\",\"message\":\"ignored\"}\n",
        );
        let analysis = analyze_trace(trace, 10.0).expect("valid trace");
        assert_eq!(analysis.demands, 2);
        assert_eq!(analysis.available, 1);
        assert_eq!(analysis.windows.len(), 2);
        assert_eq!(analysis.windows[0].availability(), 1.0);
        assert_eq!(analysis.windows[1].availability(), 0.0);
        assert_eq!(analysis.windows[1].start, 10.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(analyze_trace("{not json}", 10.0).is_err());
        assert!(analyze_trace("", 0.0).is_err());
        assert!(analyze_trace("", -1.0).is_err());
        let empty = analyze_trace("", 10.0).expect("empty trace is fine");
        assert_eq!(empty.demands, 0);
        assert!(empty.availability().is_nan());
    }
}
