//! `--trace` / `--metrics` wiring shared by the experiment binaries.
//!
//! Every binary accepts the same optional flags:
//!
//! * `--trace <path>` — write the run's event trace there as JSONL;
//! * `--metrics <path>` — write a Prometheus-text metrics snapshot;
//! * `--serve-metrics <port>` — serve the live snapshot over HTTP on
//!   `127.0.0.1:<port>` (`/metrics`, `/health`, `/snapshot`);
//! * `--serve-hold <secs>` — after the tables are printed, keep the
//!   metrics server up this long before exiting (for scrapes);
//! * `--phase-metrics` — include the wall-clock `wsu_phase_seconds`
//!   gauges in the snapshot. Off by default: wall-clock values differ
//!   run to run, so the default snapshot is deterministic.
//!
//! With no flag nothing is attached anywhere: the middleware keeps
//! its [`wsu_obs::NullRecorder`], the monitor records no metrics, and
//! stdout stays byte-identical to the unobserved run. Diagnostics about
//! the written files go to stderr so they never disturb the tables.

use std::fs;
use std::io;
use std::path::PathBuf;

use wsu_obs::{
    MetricsExporter, PhaseTimings, Recorder, SharedRecorder, SharedRegistry, TraceEvent,
};
use wsu_simcore::par::Jobs;
use wsu_simcore::shard::Shards;

use crate::bayes_study::StudyRun;
use crate::midsim::ObsSinks;

/// The observability flags parsed from a binary's command line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsOptions {
    /// Destination for the JSONL event trace, if requested.
    pub trace: Option<PathBuf>,
    /// Destination for the metrics snapshot, if requested.
    pub metrics: Option<PathBuf>,
    /// Loopback port for the live metrics server, if requested.
    pub serve: Option<u16>,
    /// Seconds to keep the metrics server up after the run.
    pub serve_hold: Option<f64>,
    /// Whether the wall-clock `wsu_phase_seconds` gauges are exported.
    pub phase_metrics: bool,
}

impl ObsOptions {
    /// Scans `args` for the observability flags.
    ///
    /// Unrelated arguments are left alone, so binaries keep their own
    /// flag handling untouched.
    pub fn parse(args: &[String]) -> ObsOptions {
        fn raw_value_after<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
        }
        fn value_after(args: &[String], flag: &str) -> Option<PathBuf> {
            raw_value_after(args, flag).map(PathBuf::from)
        }
        ObsOptions {
            trace: value_after(args, "--trace"),
            metrics: value_after(args, "--metrics"),
            serve: raw_value_after(args, "--serve-metrics").and_then(|v| v.parse().ok()),
            serve_hold: raw_value_after(args, "--serve-hold").and_then(|v| v.parse().ok()),
            phase_metrics: args.iter().any(|a| a == "--phase-metrics"),
        }
    }

    /// Parses the current process's arguments.
    pub fn from_env() -> ObsOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        ObsOptions::parse(&args)
    }
}

/// Parses the shared `--jobs N` flag: `N` workers (`0` clamped to 1);
/// absent or non-numeric means one worker per available hardware thread.
/// The worker count never changes any output — replications merge in
/// replication order regardless of which worker ran them.
pub fn jobs_from_args(args: &[String]) -> Jobs {
    Jobs::from_request(
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok()),
    )
}

/// [`jobs_from_args`] on the current process's arguments.
pub fn jobs_from_env() -> Jobs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    jobs_from_args(&args)
}

/// Parses the shared `--shards N` flag: `N` intra-replication shards
/// (`0` means one per available hardware thread). Absent or
/// non-numeric means serial — sharding is opt-in, unlike `--jobs`.
/// Like the worker count, the shard count never changes any output:
/// the prepare/commit pipeline keeps every sequential effect in
/// demand order (see [`wsu_simcore::shard`]).
pub fn shards_from_args(args: &[String]) -> Shards {
    Shards::from_request(
        args.iter()
            .position(|a| a == "--shards")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok()),
    )
}

/// [`shards_from_args`] on the current process's arguments.
pub fn shards_from_env() -> Shards {
    let args: Vec<String> = std::env::args().skip(1).collect();
    shards_from_args(&args)
}

impl ObsOptions {
    /// Builds the live context: one sink per requested output file, and
    /// a live HTTP exporter when `--serve-metrics` was given (which also
    /// implies a metrics registry, so there is something to serve).
    pub fn context(&self) -> ObsContext {
        let exporter = self.serve.map(|port| {
            let exporter =
                MetricsExporter::bind(&format!("127.0.0.1:{port}")).expect("bind metrics exporter");
            eprintln!("metrics: serving http://{}/metrics", exporter.local_addr());
            exporter
        });
        let metrics = (self.metrics.is_some() || exporter.is_some()).then(SharedRegistry::new);
        ObsContext {
            recorder: self.trace.as_ref().map(|_| SharedRecorder::new()),
            metrics,
            exporter,
            timings: PhaseTimings::new(),
            options: self.clone(),
        }
    }
}

/// Live observability sinks for one binary run.
#[derive(Debug)]
pub struct ObsContext {
    /// The shared trace recorder, present iff `--trace` was given.
    pub recorder: Option<SharedRecorder>,
    /// The shared metrics registry, present iff `--metrics` or
    /// `--serve-metrics` was given.
    pub metrics: Option<SharedRegistry>,
    exporter: Option<MetricsExporter>,
    timings: PhaseTimings,
    options: ObsOptions,
}

impl ObsContext {
    /// A context with no sinks (the no-flag default).
    pub fn disabled() -> ObsContext {
        ObsOptions::default().context()
    }

    /// `true` when at least one output was requested.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some() || self.metrics.is_some()
    }

    /// Publishes the registry's current rendering to the live exporter.
    /// A no-op without `--serve-metrics`. Call it whenever a progress
    /// milestone makes the registry worth scraping; [`finish`] publishes
    /// the final state either way.
    ///
    /// [`finish`]: ObsContext::finish
    pub fn publish(&self) {
        if let (Some(exporter), Some(metrics)) = (&self.exporter, &self.metrics) {
            exporter.publish_metrics(&metrics.render_snapshot());
        }
    }

    /// Publishes a JSON document on the exporter's `/snapshot` route. A
    /// no-op without `--serve-metrics`.
    pub fn publish_snapshot(&self, json: &str) {
        if let Some(exporter) = &self.exporter {
            exporter.publish_snapshot(json);
        }
    }

    /// Clones the sinks in the shape the simulation layer accepts.
    pub fn sinks(&self) -> ObsSinks {
        ObsSinks {
            recorder: self.recorder.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Runs `f`, timing it as `phase` when observability is on. The
    /// phase table lands in the metrics snapshot (`wsu_phase_seconds`)
    /// and, as a [`TraceEvent::Log`] line, in the trace.
    pub fn time<R>(&mut self, phase: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled() {
            return f();
        }
        let result = self.timings.time(phase, f);
        if let Some(recorder) = &self.recorder {
            let elapsed = self
                .timings
                .entries()
                .last()
                .map(|(_, d)| d.as_secs_f64())
                .unwrap_or(0.0);
            recorder.clone().record(TraceEvent::Log {
                t: 0.0,
                demand: 0,
                level: "info".to_owned(),
                message: format!("phase {phase} finished in {elapsed:.3}s"),
            });
        }
        result
    }

    /// Replays a Bayesian study run into the sinks after the fact.
    ///
    /// The study has no middleware clock, so its natural time axis is
    /// the demand count: each checkpoint becomes three
    /// [`TraceEvent::ConfidenceUpdated`] events (one per switching
    /// criterion) at `t = demands`. The registry gets the final
    /// posterior percentiles and one criterion-evaluation count per
    /// checkpoint × criterion.
    pub fn record_study(&self, run: &StudyRun, tag: &str) {
        if let Some(recorder) = &self.recorder {
            let mut recorder = recorder.clone();
            for cp in &run.checkpoints {
                for (i, &met) in cp.criteria_met.iter().enumerate() {
                    recorder.record(TraceEvent::ConfidenceUpdated {
                        t: cp.demands as f64,
                        demand: cp.demands,
                        old_p99: cp.a_high,
                        new_p99: cp.b_high,
                        criterion: format!("criterion-{}", i + 1),
                        satisfied: met,
                    });
                }
            }
        }
        if let Some(metrics) = &self.metrics {
            for cp in &run.checkpoints {
                for &met in &cp.criteria_met {
                    let decision = if met { "switch" } else { "keep" };
                    metrics.inc_counter(
                        "wsu_criterion_evaluations_total",
                        &[("decision", decision), ("study", tag)],
                    );
                }
            }
            if let Some(last) = run.checkpoints.last() {
                metrics.set_gauge(
                    "wsu_posterior_p99",
                    &[("release", "old"), ("study", tag)],
                    last.a_high,
                );
                metrics.set_gauge(
                    "wsu_posterior_p99",
                    &[("release", "new"), ("study", tag)],
                    last.b_high,
                );
            }
        }
    }

    /// Writes the requested output files, publishes the final snapshot
    /// on the live exporter (holding it up for `--serve-hold` seconds)
    /// and reports everything on stderr.
    ///
    /// Parent directories are created as needed. Call this once, after
    /// the binary has printed its tables.
    ///
    /// The wall-clock phase gauges (`wsu_phase_seconds`) are only
    /// exported under `--phase-metrics`: they measure this run's real
    /// elapsed time, so including them by default would make otherwise
    /// deterministic snapshots differ run to run.
    pub fn finish(self) -> io::Result<()> {
        if let (Some(recorder), Some(path)) = (&self.recorder, &self.options.trace) {
            recorder.write_jsonl(path)?;
            eprintln!("trace: {} events -> {}", recorder.len(), path.display());
        }
        if let Some(metrics) = &self.metrics {
            if self.options.phase_metrics {
                self.timings.export(metrics);
            }
            let rendered = metrics.render_snapshot();
            if let Some(path) = &self.options.metrics {
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        fs::create_dir_all(dir)?;
                    }
                }
                fs::write(path, &rendered)?;
                eprintln!("metrics: snapshot -> {}", path.display());
            }
            if let Some(exporter) = &self.exporter {
                exporter.publish_metrics(&rendered);
                if let Some(hold) = self.options.serve_hold {
                    eprintln!(
                        "metrics: holding http://{}/metrics for {hold}s",
                        exporter.local_addr()
                    );
                    std::thread::sleep(std::time::Duration::from_secs_f64(hold.max(0.0)));
                }
            }
        }
        if let Some(exporter) = self.exporter {
            exporter.shutdown();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_both_flags_anywhere() {
        let args = strs(&["--quick", "--trace", "t.jsonl", "--metrics", "m.prom"]);
        let opts = ObsOptions::parse(&args);
        assert_eq!(opts.trace, Some(PathBuf::from("t.jsonl")));
        assert_eq!(opts.metrics, Some(PathBuf::from("m.prom")));
    }

    #[test]
    fn missing_flags_disable_everything() {
        let opts = ObsOptions::parse(&strs(&["--quick"]));
        assert_eq!(opts, ObsOptions::default());
        let ctx = opts.context();
        assert!(!ctx.enabled());
        assert!(ctx.sinks().recorder.is_none());
        assert!(ctx.sinks().metrics.is_none());
    }

    #[test]
    fn flag_without_value_is_ignored() {
        let opts = ObsOptions::parse(&strs(&["--trace"]));
        assert_eq!(opts.trace, None);
        let opts = ObsOptions::parse(&strs(&["--serve-metrics", "not-a-port"]));
        assert_eq!(opts.serve, None);
    }

    #[test]
    fn shards_flag_is_opt_in() {
        // Absent (or garbage) means serial; 0 means auto; N means N.
        assert_eq!(shards_from_args(&strs(&["--quick"])), Shards::serial());
        assert_eq!(
            shards_from_args(&strs(&["--shards", "lots"])),
            Shards::serial()
        );
        assert_eq!(shards_from_args(&strs(&["--shards", "4"])).get(), 4);
        assert_eq!(shards_from_args(&strs(&["--shards", "1"])).get(), 1);
        assert!(shards_from_args(&strs(&["--shards", "0"])).get() >= 1);
    }

    #[test]
    fn parses_serve_and_phase_flags() {
        let args = strs(&[
            "--serve-metrics",
            "9184",
            "--serve-hold",
            "2.5",
            "--phase-metrics",
        ]);
        let opts = ObsOptions::parse(&args);
        assert_eq!(opts.serve, Some(9184));
        assert_eq!(opts.serve_hold, Some(2.5));
        assert!(opts.phase_metrics);
    }

    #[test]
    fn serving_implies_a_registry_and_serves_its_rendering() {
        let opts = ObsOptions {
            serve: Some(0), // ephemeral port
            ..ObsOptions::default()
        };
        let ctx = opts.context();
        assert!(ctx.enabled());
        let metrics = ctx.metrics.clone().expect("serve implies a registry");
        metrics.inc_counter("wsu_demands_total", &[]);
        ctx.publish();
        ctx.publish_snapshot("{\"ok\":true}");
        let addr = ctx.exporter.as_ref().unwrap().local_addr();
        let resp = wsu_obs::http_get(addr, "/metrics").expect("GET /metrics");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, metrics.render_snapshot());
        let resp = wsu_obs::http_get(addr, "/snapshot").expect("GET /snapshot");
        assert_eq!(resp.body, "{\"ok\":true}");
        ctx.finish().expect("finish without output files");
    }

    #[test]
    fn timing_is_a_passthrough_when_disabled() {
        let mut ctx = ObsContext::disabled();
        assert_eq!(ctx.time("phase", || 7), 7);
    }

    #[test]
    fn timing_records_a_log_event_when_tracing() {
        let opts = ObsOptions {
            trace: Some(PathBuf::from("unused.jsonl")),
            ..ObsOptions::default()
        };
        let mut ctx = opts.context();
        assert_eq!(ctx.time("simulate", || 7), 7);
        let events = ctx.recorder.as_ref().unwrap().snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), "Log");
    }
}
