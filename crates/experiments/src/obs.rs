//! `--trace` / `--metrics` wiring shared by the experiment binaries.
//!
//! Every binary accepts the same two optional flags:
//!
//! * `--trace <path>` — write the run's event trace there as JSONL;
//! * `--metrics <path>` — write a Prometheus-text metrics snapshot.
//!
//! With neither flag nothing is attached anywhere: the middleware keeps
//! its [`wsu_obs::NullRecorder`], the monitor records no metrics, and
//! stdout stays byte-identical to the unobserved run. Diagnostics about
//! the written files go to stderr so they never disturb the tables.

use std::fs;
use std::io;
use std::path::PathBuf;

use wsu_obs::{PhaseTimings, Recorder, SharedRecorder, SharedRegistry, TraceEvent};
use wsu_simcore::par::Jobs;

use crate::bayes_study::StudyRun;
use crate::midsim::ObsSinks;

/// The observability flags parsed from a binary's command line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsOptions {
    /// Destination for the JSONL event trace, if requested.
    pub trace: Option<PathBuf>,
    /// Destination for the metrics snapshot, if requested.
    pub metrics: Option<PathBuf>,
}

impl ObsOptions {
    /// Scans `args` for `--trace <path>` and `--metrics <path>`.
    ///
    /// Unrelated arguments are left alone, so binaries keep their own
    /// flag handling untouched.
    pub fn parse(args: &[String]) -> ObsOptions {
        fn value_after(args: &[String], flag: &str) -> Option<PathBuf> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
        }
        ObsOptions {
            trace: value_after(args, "--trace"),
            metrics: value_after(args, "--metrics"),
        }
    }

    /// Parses the current process's arguments.
    pub fn from_env() -> ObsOptions {
        let args: Vec<String> = std::env::args().skip(1).collect();
        ObsOptions::parse(&args)
    }
}

/// Parses the shared `--jobs N` flag: `N` workers (`0` clamped to 1);
/// absent or non-numeric means one worker per available hardware thread.
/// The worker count never changes any output — replications merge in
/// replication order regardless of which worker ran them.
pub fn jobs_from_args(args: &[String]) -> Jobs {
    Jobs::from_request(
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok()),
    )
}

/// [`jobs_from_args`] on the current process's arguments.
pub fn jobs_from_env() -> Jobs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    jobs_from_args(&args)
}

impl ObsOptions {
    /// Builds the live context: one sink per requested output file.
    pub fn context(&self) -> ObsContext {
        ObsContext {
            recorder: self.trace.as_ref().map(|_| SharedRecorder::new()),
            metrics: self.metrics.as_ref().map(|_| SharedRegistry::new()),
            timings: PhaseTimings::new(),
            options: self.clone(),
        }
    }
}

/// Live observability sinks for one binary run.
#[derive(Debug)]
pub struct ObsContext {
    /// The shared trace recorder, present iff `--trace` was given.
    pub recorder: Option<SharedRecorder>,
    /// The shared metrics registry, present iff `--metrics` was given.
    pub metrics: Option<SharedRegistry>,
    timings: PhaseTimings,
    options: ObsOptions,
}

impl ObsContext {
    /// A context with no sinks (the no-flag default).
    pub fn disabled() -> ObsContext {
        ObsOptions::default().context()
    }

    /// `true` when at least one output was requested.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some() || self.metrics.is_some()
    }

    /// Clones the sinks in the shape the simulation layer accepts.
    pub fn sinks(&self) -> ObsSinks {
        ObsSinks {
            recorder: self.recorder.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Runs `f`, timing it as `phase` when observability is on. The
    /// phase table lands in the metrics snapshot (`wsu_phase_seconds`)
    /// and, as a [`TraceEvent::Log`] line, in the trace.
    pub fn time<R>(&mut self, phase: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled() {
            return f();
        }
        let result = self.timings.time(phase, f);
        if let Some(recorder) = &self.recorder {
            let elapsed = self
                .timings
                .entries()
                .last()
                .map(|(_, d)| d.as_secs_f64())
                .unwrap_or(0.0);
            recorder.clone().record(TraceEvent::Log {
                t: 0.0,
                demand: 0,
                level: "info".to_owned(),
                message: format!("phase {phase} finished in {elapsed:.3}s"),
            });
        }
        result
    }

    /// Replays a Bayesian study run into the sinks after the fact.
    ///
    /// The study has no middleware clock, so its natural time axis is
    /// the demand count: each checkpoint becomes three
    /// [`TraceEvent::ConfidenceUpdated`] events (one per switching
    /// criterion) at `t = demands`. The registry gets the final
    /// posterior percentiles and one criterion-evaluation count per
    /// checkpoint × criterion.
    pub fn record_study(&self, run: &StudyRun, tag: &str) {
        if let Some(recorder) = &self.recorder {
            let mut recorder = recorder.clone();
            for cp in &run.checkpoints {
                for (i, &met) in cp.criteria_met.iter().enumerate() {
                    recorder.record(TraceEvent::ConfidenceUpdated {
                        t: cp.demands as f64,
                        demand: cp.demands,
                        old_p99: cp.a_high,
                        new_p99: cp.b_high,
                        criterion: format!("criterion-{}", i + 1),
                        satisfied: met,
                    });
                }
            }
        }
        if let Some(metrics) = &self.metrics {
            for cp in &run.checkpoints {
                for &met in &cp.criteria_met {
                    let decision = if met { "switch" } else { "keep" };
                    metrics.inc_counter(
                        "wsu_criterion_evaluations_total",
                        &[("decision", decision), ("study", tag)],
                    );
                }
            }
            if let Some(last) = run.checkpoints.last() {
                metrics.set_gauge(
                    "wsu_posterior_p99",
                    &[("release", "old"), ("study", tag)],
                    last.a_high,
                );
                metrics.set_gauge(
                    "wsu_posterior_p99",
                    &[("release", "new"), ("study", tag)],
                    last.b_high,
                );
            }
        }
    }

    /// Writes the requested output files and reports them on stderr.
    ///
    /// Parent directories are created as needed. Call this once, after
    /// the binary has printed its tables.
    pub fn finish(self) -> io::Result<()> {
        if let (Some(recorder), Some(path)) = (&self.recorder, &self.options.trace) {
            recorder.write_jsonl(path)?;
            eprintln!("trace: {} events -> {}", recorder.len(), path.display());
        }
        if let (Some(metrics), Some(path)) = (&self.metrics, &self.options.metrics) {
            self.timings.export(metrics);
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    fs::create_dir_all(dir)?;
                }
            }
            fs::write(path, metrics.render_snapshot())?;
            eprintln!("metrics: snapshot -> {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_both_flags_anywhere() {
        let args = strs(&["--quick", "--trace", "t.jsonl", "--metrics", "m.prom"]);
        let opts = ObsOptions::parse(&args);
        assert_eq!(opts.trace, Some(PathBuf::from("t.jsonl")));
        assert_eq!(opts.metrics, Some(PathBuf::from("m.prom")));
    }

    #[test]
    fn missing_flags_disable_everything() {
        let opts = ObsOptions::parse(&strs(&["--quick"]));
        assert_eq!(opts, ObsOptions::default());
        let ctx = opts.context();
        assert!(!ctx.enabled());
        assert!(ctx.sinks().recorder.is_none());
        assert!(ctx.sinks().metrics.is_none());
    }

    #[test]
    fn flag_without_value_is_ignored() {
        let opts = ObsOptions::parse(&strs(&["--trace"]));
        assert_eq!(opts.trace, None);
    }

    #[test]
    fn timing_is_a_passthrough_when_disabled() {
        let mut ctx = ObsContext::disabled();
        assert_eq!(ctx.time("phase", || 7), 7);
    }

    #[test]
    fn timing_records_a_log_event_when_tracing() {
        let opts = ObsOptions {
            trace: Some(PathBuf::from("unused.jsonl")),
            metrics: None,
        };
        let mut ctx = opts.context();
        assert_eq!(ctx.time("simulate", || 7), 7);
        let events = ctx.recorder.as_ref().unwrap().snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), "Log");
    }
}
