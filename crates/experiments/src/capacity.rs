//! Server-capacity study (extension E6): parallel vs sequential
//! execution under open arrivals.
//!
//! The paper motivates mode 4 as "sequential execution for minimal
//! server capacity" but never quantifies it — its simulation is
//! closed-loop, so queueing never appears. This experiment makes the
//! capacity argument measurable: demands arrive as a Poisson stream and
//! each release is a single-server FIFO queue whose service times follow
//! eq. (7). Parallel modes copy every demand to both releases (doubling
//! offered load); sequential tries the old release first and consults
//! the new one only on an evident failure or a timeout.
//!
//! Reported per (mode, arrival rate): consumer response-time mean and
//! p95, unavailability, and each release's server utilisation — the
//! back-end capacity actually consumed.

use std::collections::VecDeque;

use wsu_core::adjudicate::{Adjudicator, CollectedResponse};
use wsu_core::release::ReleaseId;
use wsu_simcore::engine::{Engine, Handler};
use wsu_simcore::par::{par_map, Jobs};
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_simcore::stats::{Histogram, Summary};
use wsu_simcore::time::{SimDuration, SimTime};
use wsu_workload::outcomes::OutcomePairGen;
use wsu_workload::timing::ExecTimeModel;
use wsu_wstack::outcome::ResponseClass;

use crate::report::TextTable;

/// Dispatch discipline under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Every demand is copied to both releases (modes 1–3).
    Parallel,
    /// The old release first; the new release only after an evident
    /// failure or an attempt timeout (mode 4).
    Sequential,
}

impl Dispatch {
    fn label(self) -> &'static str {
        match self {
            Dispatch::Parallel => "parallel",
            Dispatch::Sequential => "sequential",
        }
    }
}

/// Configuration of one capacity run.
#[derive(Debug, Clone, Copy)]
pub struct CapacityConfig {
    /// Poisson arrival rate, demands per second.
    pub arrival_rate: f64,
    /// Demands to simulate.
    pub demands: u64,
    /// Per-attempt timeout (from dispatch of that attempt), seconds.
    pub timeout: f64,
    /// Adjudication delay dT, seconds.
    pub adjudication_delay: f64,
}

/// Result of one (dispatch, rate) cell.
#[derive(Debug, Clone)]
pub struct CapacityResult {
    /// The discipline.
    pub dispatch: Dispatch,
    /// The configured arrival rate.
    pub arrival_rate: f64,
    /// Consumer response-time statistics (completed demands).
    pub response_time: Summary,
    /// Approximate 95th percentile of the response time.
    pub response_p95: f64,
    /// Demands answered correctly.
    pub correct: u64,
    /// Demands that ended "unavailable".
    pub unavailable: u64,
    /// Demands simulated.
    pub demands: u64,
    /// Utilisation of each release's server (busy time / makespan).
    pub utilisation: [f64; 2],
}

#[derive(Debug, Clone, Copy)]
struct Job {
    seq: usize,
    service: SimDuration,
    class: ResponseClass,
}

#[derive(Debug, Default)]
struct Server {
    queue: VecDeque<Job>,
    busy: Option<Job>,
    busy_time: f64,
}

#[derive(Debug, Clone)]
struct DemandState {
    dispatched: SimTime,
    responses: Vec<CollectedResponse>,
    expected: usize,
    attempt: u8,
    done: bool,
    deadline_attempt: u8,
}

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    Finish { server: usize, seq: usize },
    Deadline { seq: usize, attempt: u8 },
}

struct World {
    dispatch: Dispatch,
    timeout: SimDuration,
    dt: SimDuration,
    servers: [Server; 2],
    demands: Vec<DemandState>,
    plans: Vec<[Job; 2]>,
    inter_arrivals: Vec<SimDuration>,
    adjudicator: Adjudicator,
    rng: StreamRng,
    // Outputs.
    response_time: Summary,
    response_hist: Histogram,
    correct: u64,
    unavailable: u64,
    completed: u64,
}

impl World {
    fn enqueue(&mut self, engine: &mut Engine<Ev>, server: usize, job: Job) {
        if self.servers[server].busy.is_none() {
            self.start(engine, server, job);
        } else {
            self.servers[server].queue.push_back(job);
        }
    }

    fn start(&mut self, engine: &mut Engine<Ev>, server: usize, job: Job) {
        self.servers[server].busy = Some(job);
        self.servers[server].busy_time += job.service.as_secs();
        engine.schedule_in(
            job.service,
            Ev::Finish {
                server,
                seq: job.seq,
            },
        );
    }

    fn complete(&mut self, now: SimTime, seq: usize) {
        let state = &mut self.demands[seq];
        if state.done {
            return;
        }
        state.done = true;
        let adjudication = self.adjudicator.adjudicate(&state.responses, &mut self.rng);
        let wait = now.duration_since(state.dispatched) + self.dt;
        self.response_time.record(wait.as_secs());
        self.response_hist.record(wait.as_secs());
        match adjudication.verdict.class() {
            Some(ResponseClass::Correct) => self.correct += 1,
            Some(_) => {}
            None => self.unavailable += 1,
        }
        self.completed += 1;
    }
}

impl Handler<Ev> for World {
    fn handle(&mut self, engine: &mut Engine<Ev>, event: Ev) {
        let now = engine.now();
        match event {
            Ev::Arrival(seq) => {
                let [job_a, job_b] = self.plans[seq];
                self.demands.push(DemandState {
                    dispatched: now,
                    responses: Vec::with_capacity(2),
                    expected: match self.dispatch {
                        Dispatch::Parallel => 2,
                        Dispatch::Sequential => 1,
                    },
                    attempt: 1,
                    done: false,
                    deadline_attempt: 1,
                });
                debug_assert_eq!(self.demands.len() - 1, seq);
                match self.dispatch {
                    Dispatch::Parallel => {
                        self.enqueue(engine, 0, job_a);
                        self.enqueue(engine, 1, job_b);
                    }
                    Dispatch::Sequential => {
                        self.enqueue(engine, 0, job_a);
                    }
                }
                engine.schedule_in(self.timeout, Ev::Deadline { seq, attempt: 1 });
                if seq + 1 < self.plans.len() {
                    engine.schedule_in(self.inter_arrivals[seq], Ev::Arrival(seq + 1));
                }
            }
            Ev::Finish { server, seq } => {
                // Free the server and start the next queued job.
                self.servers[server].busy = None;
                if let Some(next) = self.servers[server].queue.pop_front() {
                    self.start(engine, server, next);
                }
                let state = &mut self.demands[seq];
                if state.done {
                    return;
                }
                let dispatched = state.dispatched;
                state.responses.push(CollectedResponse {
                    release: ReleaseId::new(server),
                    class: self.plans[seq][server].class,
                    exec_time: now.duration_since(dispatched),
                });
                match self.dispatch {
                    Dispatch::Parallel => {
                        if self.demands[seq].responses.len() >= self.demands[seq].expected {
                            self.complete(now, seq);
                        }
                    }
                    Dispatch::Sequential => {
                        let class = self.plans[seq][server].class;
                        if class.is_valid() {
                            self.complete(now, seq);
                        } else if server == 0 && self.demands[seq].attempt == 1 {
                            // Evident failure: escalate to the new release.
                            self.demands[seq].attempt = 2;
                            self.demands[seq].deadline_attempt = 2;
                            let job_b = self.plans[seq][1];
                            self.enqueue(engine, 1, job_b);
                            engine.schedule_in(self.timeout, Ev::Deadline { seq, attempt: 2 });
                        } else {
                            // Second attempt also evidently failed.
                            self.complete(now, seq);
                        }
                    }
                }
            }
            Ev::Deadline { seq, attempt } => {
                let state = &self.demands[seq];
                if state.done || state.deadline_attempt != attempt {
                    return;
                }
                match self.dispatch {
                    Dispatch::Parallel => self.complete(now, seq),
                    Dispatch::Sequential => {
                        if attempt == 1 {
                            // First attempt timed out: escalate.
                            self.demands[seq].attempt = 2;
                            self.demands[seq].deadline_attempt = 2;
                            let job_b = self.plans[seq][1];
                            self.enqueue(engine, 1, job_b);
                            engine.schedule_in(self.timeout, Ev::Deadline { seq, attempt: 2 });
                        } else {
                            self.complete(now, seq);
                        }
                    }
                }
            }
        }
    }
}

/// Runs one capacity cell.
pub fn run_capacity(
    dispatch: Dispatch,
    outcomes: &dyn OutcomePairGen,
    timing: ExecTimeModel,
    config: CapacityConfig,
    seed: MasterSeed,
) -> CapacityResult {
    assert!(config.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(config.demands > 0, "need at least one demand");
    let mut plan_rng = seed.stream("capacity/plan");
    let mut arrival_rng = seed.stream("capacity/arrivals");
    let plans: Vec<[Job; 2]> = (0..config.demands as usize)
        .map(|seq| {
            let (class_a, class_b) = outcomes.sample_pair(&mut plan_rng);
            let (time_a, time_b) = timing.sample_pair(&mut plan_rng);
            [
                Job {
                    seq,
                    service: time_a,
                    class: class_a,
                },
                Job {
                    seq,
                    service: time_b,
                    class: class_b,
                },
            ]
        })
        .collect();
    let exp = wsu_simcore::dist::Exponential::with_mean(1.0 / config.arrival_rate);
    let inter_arrivals: Vec<SimDuration> = (0..config.demands)
        .map(|_| exp.sample_duration(&mut arrival_rng))
        .collect();

    let mut world = World {
        dispatch,
        timeout: SimDuration::from_secs(config.timeout),
        dt: SimDuration::from_secs(config.adjudication_delay),
        servers: [Server::default(), Server::default()],
        demands: Vec::with_capacity(plans.len()),
        plans,
        inter_arrivals,
        adjudicator: Adjudicator::paper(),
        rng: seed.stream("capacity/adjudicate"),
        response_time: Summary::new(),
        response_hist: Histogram::new(0.0, 4.0 * config.timeout, 400),
        correct: 0,
        unavailable: 0,
        completed: 0,
    };
    let mut engine = Engine::new();
    engine.schedule_at(SimTime::ZERO, Ev::Arrival(0));
    engine.run(&mut world);
    let makespan = engine.now().as_secs().max(f64::MIN_POSITIVE);

    CapacityResult {
        dispatch,
        arrival_rate: config.arrival_rate,
        response_p95: world.response_hist.quantile(0.95).unwrap_or(f64::NAN),
        response_time: world.response_time,
        correct: world.correct,
        unavailable: world.unavailable,
        demands: config.demands,
        utilisation: [
            world.servers[0].busy_time / makespan,
            world.servers[1].busy_time / makespan,
        ],
    }
}

/// Runs the full study: both disciplines across the given arrival rates.
pub fn run_capacity_study(
    outcomes: &(dyn OutcomePairGen + Sync),
    timing: ExecTimeModel,
    rates: &[f64],
    demands: u64,
    seed: MasterSeed,
) -> Vec<CapacityResult> {
    run_capacity_study_jobs(outcomes, timing, rates, demands, seed, Jobs::serial())
}

/// [`run_capacity_study`] over a worker pool: every `(rate, dispatch)`
/// cell is one replication with its own engine, servers and RNG
/// streams, returned in the sequential iteration order (rate-major,
/// parallel before sequential) so the rendered table is byte-identical
/// for any `jobs`.
pub fn run_capacity_study_jobs(
    outcomes: &(dyn OutcomePairGen + Sync),
    timing: ExecTimeModel,
    rates: &[f64],
    demands: u64,
    seed: MasterSeed,
    jobs: Jobs,
) -> Vec<CapacityResult> {
    const DISPATCHES: [Dispatch; 2] = [Dispatch::Parallel, Dispatch::Sequential];
    par_map(jobs, rates.len() * DISPATCHES.len(), |r| {
        let rate = rates[r / DISPATCHES.len()];
        let dispatch = DISPATCHES[r % DISPATCHES.len()];
        run_capacity(
            dispatch,
            outcomes,
            timing,
            CapacityConfig {
                arrival_rate: rate,
                demands,
                timeout: 3.0,
                adjudication_delay: 0.1,
            },
            seed,
        )
    })
}

/// Renders the study.
pub fn render_capacity_table(results: &[CapacityResult]) -> String {
    let mut table = TextTable::new(
        "Capacity study (E6): open arrivals, each release a single-server queue",
        &[
            "dispatch",
            "rate (1/s)",
            "mean resp (s)",
            "p95 resp (s)",
            "correct frac",
            "unavail",
            "util rel1",
            "util rel2",
        ],
    );
    for r in results {
        table.push_row(vec![
            r.dispatch.label().to_owned(),
            format!("{:.2}", r.arrival_rate),
            format!("{:.3}", r.response_time.mean()),
            format!("{:.3}", r.response_p95),
            format!("{:.4}", r.correct as f64 / r.demands as f64),
            r.unavailable.to_string(),
            format!("{:.3}", r.utilisation[0]),
            format!("{:.3}", r.utilisation[1]),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_workload::outcomes::CorrelatedOutcomes;
    use wsu_workload::runs::RunSpec;

    fn study(rates: &[f64], demands: u64) -> Vec<CapacityResult> {
        let gen = CorrelatedOutcomes::from_run(&RunSpec::run2());
        run_capacity_study(
            &gen,
            ExecTimeModel::calibrated(),
            rates,
            demands,
            MasterSeed::new(71),
        )
    }

    #[test]
    fn every_demand_is_accounted_for() {
        for r in study(&[0.3], 2_000) {
            assert_eq!(r.response_time.count(), r.demands);
            assert!(r.correct + r.unavailable <= r.demands);
        }
    }

    #[test]
    fn sequential_uses_far_less_second_server() {
        let results = study(&[0.4], 3_000);
        let parallel = &results[0];
        let sequential = &results[1];
        assert_eq!(parallel.dispatch, Dispatch::Parallel);
        assert_eq!(sequential.dispatch, Dispatch::Sequential);
        // The headline: the new release's server runs a fraction of the
        // load under sequential dispatch.
        assert!(
            sequential.utilisation[1] < parallel.utilisation[1] * 0.6,
            "sequential {} vs parallel {}",
            sequential.utilisation[1],
            parallel.utilisation[1]
        );
        // Both disciplines load the first server comparably.
        assert!((sequential.utilisation[0] - parallel.utilisation[0]).abs() < 0.1);
    }

    #[test]
    fn utilisation_tracks_offered_load() {
        // Parallel at rate λ with mean service 1.0 s: utilisation ≈ λ on
        // both servers (while stable).
        let results = study(&[0.3], 4_000);
        let parallel = &results[0];
        for util in parallel.utilisation {
            assert!((util - 0.3).abs() < 0.06, "util {util}");
        }
    }

    #[test]
    fn queueing_delay_grows_with_load() {
        let results = study(&[0.2, 0.7], 3_000);
        let low = &results[0];
        let high = &results[2];
        assert_eq!(low.dispatch, Dispatch::Parallel);
        assert_eq!(high.dispatch, Dispatch::Parallel);
        assert!(
            high.response_time.mean() > low.response_time.mean(),
            "high {} vs low {}",
            high.response_time.mean(),
            low.response_time.mean()
        );
        assert!(high.response_p95 >= low.response_p95);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = study(&[0.3], 500);
        let b = study(&[0.3], 500);
        assert_eq!(a[0].response_time, b[0].response_time);
        assert_eq!(a[1].correct, b[1].correct);
    }

    #[test]
    fn render_lists_both_disciplines() {
        let text = render_capacity_table(&study(&[0.3], 300));
        assert!(text.contains("parallel"));
        assert!(text.contains("sequential"));
        assert!(text.contains("util rel2"));
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn rejects_zero_rate() {
        let gen = CorrelatedOutcomes::from_run(&RunSpec::run1());
        let _ = run_capacity(
            Dispatch::Parallel,
            &gen,
            ExecTimeModel::paper(),
            CapacityConfig {
                arrival_rate: 0.0,
                demands: 1,
                timeout: 1.0,
                adjudication_delay: 0.1,
            },
            MasterSeed::new(1),
        );
    }
}
