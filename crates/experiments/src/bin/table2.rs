//! Regenerates Table 2 (duration of managed upgrade).
//!
//! Usage: `table2 [--quick] [--adaptive] [--seeds N] [--trace PATH]
//! [--metrics PATH]` plus the shared observability flags
//! `--serve-metrics PORT`, `--serve-hold SECS` and `--phase-metrics` —
//! `--quick` runs a reduced-scale version; `--adaptive` runs the
//! studies on the adaptive coarse-to-fine grid (default coarse
//! 32×32×16, fine 96×96×32 over the high-mass window; durations agree
//! with the fixed grid to the adaptive tolerance contract, not
//! bit-for-bit); `--seeds N` additionally reports the spread of every
//! cell across N seeds; `--trace`/`--metrics` replay every study's
//! checkpoints into an event trace and a metrics snapshot.

use wsu_bayes::whitebox::Resolution;
use wsu_experiments::bayes_study::StudyConfig;
use wsu_experiments::obs::ObsOptions;
use wsu_experiments::table2::{render_spread, run_table2, run_table2_spread, run_table2_with};
use wsu_experiments::DEFAULT_SEED;
use wsu_simcore::rng::MasterSeed;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let adaptive = args
        .iter()
        .any(|a| a == "--adaptive")
        .then(Resolution::adaptive);
    let mut ctx = ObsOptions::from_env().context();
    let spread_seeds: Option<usize> = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok());
    let table = ctx.time("table2/study", || {
        if quick {
            let res = Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            };
            let c1 = StudyConfig {
                demands: 10_000,
                checkpoint_every: 500,
                resolution: res,
                adaptive,
                confidence: 0.99,
                target: 1e-3,
                seed: DEFAULT_SEED,
            };
            let c2 = StudyConfig {
                demands: 5_000,
                checkpoint_every: 100,
                resolution: res,
                adaptive,
                confidence: 0.99,
                target: 1e-3,
                seed: DEFAULT_SEED,
            };
            run_table2_with(DEFAULT_SEED, &c1, &c2)
        } else if adaptive.is_some() {
            let c1 = StudyConfig {
                adaptive,
                ..StudyConfig::paper_scenario1(DEFAULT_SEED)
            };
            let c2 = StudyConfig {
                adaptive,
                ..StudyConfig::paper_scenario2(DEFAULT_SEED)
            };
            run_table2_with(DEFAULT_SEED, &c1, &c2)
        } else {
            run_table2(DEFAULT_SEED)
        }
    });
    for run in &table.runs {
        ctx.record_study(
            run,
            &format!("table2/s{}/{:?}", run.scenario, run.detection),
        );
    }
    println!("{}", table.render());

    if let Some(n) = spread_seeds {
        let res = if quick {
            Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            }
        } else {
            Resolution::default()
        };
        let c1 = StudyConfig {
            demands: if quick { 10_000 } else { 50_000 },
            checkpoint_every: 500,
            resolution: res,
            adaptive,
            confidence: 0.99,
            target: 1e-3,
            seed: DEFAULT_SEED,
        };
        let c2 = StudyConfig {
            demands: if quick { 5_000 } else { 10_000 },
            checkpoint_every: 100,
            resolution: res,
            adaptive,
            confidence: 0.99,
            target: 1e-3,
            seed: DEFAULT_SEED,
        };
        let seeds: Vec<MasterSeed> = (0..n as u64)
            .map(|i| MasterSeed::new(DEFAULT_SEED.value().wrapping_add(i)))
            .collect();
        let spread = ctx.time("table2/spread", || run_table2_spread(&seeds, &c1, &c2));
        println!("{}", render_spread(&spread));
    }
    ctx.finish().expect("write observability outputs");
}
