//! Regenerates Table 6 (independent release failures).
//!
//! Usage: `table6 [--quick] [--calibrated]`.

use wsu_experiments::table6::{run_table6, run_table6_with};
use wsu_experiments::{DEFAULT_SEED, PAPER_TIMEOUTS};
use wsu_workload::timing::ExecTimeModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let calibrated = std::env::args().any(|a| a == "--calibrated");
    let timing = if calibrated {
        ExecTimeModel::calibrated()
    } else {
        ExecTimeModel::paper()
    };
    let table = if quick {
        run_table6_with(DEFAULT_SEED, 2_000, &PAPER_TIMEOUTS, timing)
    } else if calibrated {
        run_table6_with(DEFAULT_SEED, 10_000, &PAPER_TIMEOUTS, timing)
    } else {
        run_table6(DEFAULT_SEED)
    };
    print!("{}", table.render());
}
