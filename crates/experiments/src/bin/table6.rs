//! Regenerates Table 6 (independent release failures).
//!
//! Usage: `table6 [--quick] [--calibrated] [--jobs N] [--shards K]
//! [--trace PATH] [--metrics PATH]` plus the shared observability
//! flags `--serve-metrics PORT`, `--serve-hold SECS` and
//! `--phase-metrics`. `--shards` adds intra-cell prepare/commit
//! parallelism (`0` = one per hardware thread; default: serial)
//! without changing any output.

use wsu_experiments::obs::{jobs_from_env, shards_from_env, ObsOptions};
use wsu_experiments::table6::run_table6_sharded;
use wsu_experiments::{DEFAULT_SEED, PAPER_REQUESTS, PAPER_TIMEOUTS};
use wsu_workload::timing::ExecTimeModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let calibrated = std::env::args().any(|a| a == "--calibrated");
    let jobs = jobs_from_env();
    let shards = shards_from_env();
    let mut ctx = ObsOptions::from_env().context();
    let timing = if calibrated {
        ExecTimeModel::calibrated()
    } else {
        ExecTimeModel::paper()
    };
    let requests = if quick { 2_000 } else { PAPER_REQUESTS };
    let sinks = ctx.sinks();
    let table = ctx.time("table6/simulate", || {
        run_table6_sharded(
            DEFAULT_SEED,
            requests,
            &PAPER_TIMEOUTS,
            timing,
            &sinks,
            jobs,
            shards,
        )
    });
    print!("{}", table.render());
    ctx.finish().expect("write observability outputs");
}
