//! `wsu-analyze` — offline analyzer for recorded JSONL event traces.
//!
//! Usage: `wsu-analyze <trace.jsonl> [--window SECS]
//! [--availability PATH] [--phases PATH]`
//!
//! Prints a summary (demands, availability, response-time percentiles,
//! span profile) to stdout. `--availability` writes the windowed
//! availability timeline as TSV, `--phases` the per-phase latency
//! breakdown; `--window` sets the timeline window width (default 60
//! virtual seconds).

use std::fs;
use std::path::PathBuf;
use std::process::exit;

use wsu_experiments::analyze::analyze_trace;

fn value_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = match args.iter().find(|a| !a.starts_with("--")) {
        Some(path) => PathBuf::from(path),
        None => {
            eprintln!(
                "usage: wsu-analyze <trace.jsonl> [--window SECS] \
                 [--availability PATH] [--phases PATH]"
            );
            exit(2);
        }
    };
    let window_secs = value_after(&args, "--window")
        .map(|v| match v.parse::<f64>() {
            Ok(secs) => secs,
            Err(_) => {
                eprintln!("--window {v} is not a number");
                exit(2);
            }
        })
        .unwrap_or(60.0);
    let text = match fs::read_to_string(&trace_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {}: {err}", trace_path.display());
            exit(1);
        }
    };
    let analysis = match analyze_trace(&text, window_secs) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("cannot analyze {}: {err}", trace_path.display());
            exit(1);
        }
    };
    print!("{}", analysis.render_summary());
    let write = |path: &str, content: String, what: &str| {
        let path = PathBuf::from(path);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).expect("create output directory");
            }
        }
        fs::write(&path, content).expect("write analysis output");
        eprintln!("{what}: -> {}", path.display());
    };
    if let Some(path) = value_after(&args, "--availability") {
        write(&path, analysis.availability_tsv(), "availability timeline");
    }
    if let Some(path) = value_after(&args, "--phases") {
        write(&path, analysis.phases_tsv(), "phase breakdown");
    }
}
