//! Runs the sharding scale study: the same million-demand weighted
//! fleet served at several shard counts, asserting byte-identical
//! merged outputs while measuring throughput.
//!
//! Usage: `scalestudy [--quick] [--demands N] [--block B]
//! [--shards-list K,K,...] [--bench-out PATH]`.
//!
//! Stdout carries only the deterministic dependability digest (safe to
//! diff against a golden); the wall-clock table — demands/sec, speedup
//! versus the first swept shard count, merge overhead — goes to
//! stderr, and `--bench-out` additionally publishes it as a
//! `wsu-bench/1` report (the `results/BENCH_scale.json` format) for
//! the stock `bench_compare` regression guard.

use wsu_experiments::scalestudy::{
    render_bench_json, render_table, render_timing, run_scalestudy, ScaleConfig,
};
use wsu_experiments::DEFAULT_SEED;

fn fail(what: &str) -> ! {
    eprintln!("scalestudy: {what}");
    eprintln!(
        "usage: scalestudy [--quick] [--demands N] [--block B] \
         [--shards-list K,K,...] [--bench-out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--quick") {
        ScaleConfig::quick()
    } else {
        ScaleConfig::paper()
    };
    let mut bench_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                i += 1;
                continue;
            }
            "--demands" => {
                config.demands = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--demands: expected a count"));
            }
            "--block" => {
                config.block = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--block: expected a count"));
            }
            "--shards-list" => {
                let list: Option<Vec<usize>> = args
                    .get(i + 1)
                    .map(|v| v.split(',').map(|s| s.trim().parse().ok()).collect())
                    .unwrap_or(None);
                config.shard_counts = match list {
                    Some(counts) if !counts.is_empty() => counts,
                    _ => fail("--shards-list: expected K,K,..."),
                };
            }
            "--bench-out" => {
                bench_out = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| fail("--bench-out: expected a path")),
                );
            }
            other => fail(&format!("unknown flag {other}")),
        }
        i += 2;
    }

    let report = run_scalestudy(&config, DEFAULT_SEED.value());
    print!("{}", render_table(&report));
    eprint!("{}", render_timing(&report));
    if let Some(path) = bench_out {
        std::fs::write(&path, render_bench_json(&report))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
