//! `wsu-loadgen` — load generator for `wsu-serve`.
//!
//! Opens `--connections` keep-alive connections and drives each in a
//! closed loop (one request in flight per connection), capturing
//! per-request wall latency in a mergeable quantile sketch. Prints a
//! summary and, with `--out`, writes a `wsu-bench/1` report
//! (`results/BENCH_http.json`) the stock `bench_compare` guard can
//! diff.
//!
//! Usage:
//!
//! ```text
//! wsu-loadgen --addr HOST:PORT [--connections N] [--requests N]
//!             [--warmup N] [--open-loop RATE] [--out PATH]
//!             [--expect-server-match]
//! ```
//!
//! `--open-loop RATE` switches the timed phase to a fixed-rate open
//! loop: RATE requests/sec aggregate are scheduled across the
//! connections whether or not earlier responses have arrived, latency
//! is measured from each request's scheduled instant (no coordinated
//! omission), and slots a connection cannot reach within one interval
//! are dropped — the summary then reports the drop rate alongside
//! p50/p99/p999, the open-loop overload signal.
//!
//! `--expect-server-match` scrapes the server's `/metrics` after the
//! run and requires its summed `wsu_http_demands_total` to equal the
//! client-side 200 count (timed + warmup) — valid when this generator
//! is the server's only client. Exits non-zero on any request error or
//! on an agreement mismatch.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::exit;
use std::time::Duration;

use wsu_experiments::loadgen::{render_bench_json, run_load, scrape_demand_total, LoadgenConfig};

struct Options {
    addr: String,
    connections: usize,
    requests: u64,
    warmup: u64,
    out: Option<String>,
    open_loop: Option<f64>,
    expect_server_match: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        addr: String::new(),
        connections: 2,
        requests: 500,
        warmup: 50,
        out: None,
        open_loop: None,
        expect_server_match: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--expect-server-match" {
            options.expect_server_match = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--addr" => options.addr = value.clone(),
            "--connections" => {
                options.connections = value
                    .parse()
                    .map_err(|_| format!("--connections: not a count: {value}"))?;
            }
            "--requests" => {
                options.requests = value
                    .parse()
                    .map_err(|_| format!("--requests: not a count: {value}"))?;
            }
            "--warmup" => {
                options.warmup = value
                    .parse()
                    .map_err(|_| format!("--warmup: not a count: {value}"))?;
            }
            "--out" => options.out = Some(value.clone()),
            "--open-loop" => {
                let rate: f64 = value
                    .parse()
                    .map_err(|_| format!("--open-loop: not a rate: {value}"))?;
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("--open-loop: rate must be positive: {value}"));
                }
                options.open_loop = Some(rate);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 2;
    }
    if options.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if options.connections == 0 {
        return Err("--connections must be at least 1".to_string());
    }
    Ok(options)
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("--addr {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("--addr {addr}: no address"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("wsu-loadgen: {message}");
            eprintln!(
                "usage: wsu-loadgen --addr HOST:PORT [--connections N] \
                 [--requests N] [--warmup N] [--open-loop RATE] [--out PATH] \
                 [--expect-server-match]"
            );
            exit(2);
        }
    };
    let addr = match resolve(&options.addr) {
        Ok(addr) => addr,
        Err(message) => {
            eprintln!("wsu-loadgen: {message}");
            exit(2);
        }
    };
    let config = LoadgenConfig {
        addr,
        connections: options.connections,
        requests_per_conn: options.requests,
        warmup_per_conn: options.warmup,
        timeout: Duration::from_secs(5),
        open_rate: options.open_loop,
    };
    let summary = match run_load(&config) {
        Ok(summary) => summary,
        Err(err) => {
            eprintln!("wsu-loadgen: connect {addr} failed: {err}");
            exit(1);
        }
    };
    println!(
        "connections={} ok={} errors={} dropped={} elapsed={:.3}s",
        summary.connections,
        summary.ok,
        summary.errors,
        summary.dropped,
        summary.elapsed.as_secs_f64(),
    );
    println!(
        "requests/sec={:.1} drop_rate={:.4} p50={}ns p99={}ns p999={}ns",
        summary.requests_per_sec,
        summary.drop_rate(),
        summary.latency_ns(0.50),
        summary.latency_ns(0.99),
        summary.latency_ns(0.999),
    );
    if let Some(path) = &options.out {
        let json = render_bench_json(&summary);
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(err) = std::fs::write(path, json) {
            eprintln!("wsu-loadgen: write {path} failed: {err}");
            exit(1);
        }
        println!("wrote {path}");
    }
    let mut failed = false;
    if summary.errors > 0 {
        eprintln!("wsu-loadgen: {} request(s) failed", summary.errors);
        failed = true;
    }
    if options.expect_server_match {
        match scrape_demand_total(addr) {
            Ok(server_total) => {
                let client_total = summary.ok + summary.warmup_ok;
                if server_total == client_total {
                    println!("server agreement: wsu_http_demands_total={server_total} matches");
                } else {
                    eprintln!(
                        "wsu-loadgen: server counted {server_total} demands, \
                         client counted {client_total}"
                    );
                    failed = true;
                }
            }
            Err(err) => {
                eprintln!("wsu-loadgen: /metrics scrape failed: {err}");
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
}
