//! Regenerates Fig. 7 (Scenario 1 percentile curves) as a TSV table.
//!
//! Usage: `fig7 [--quick] [--trace PATH] [--metrics PATH]` plus the
//! shared observability flags `--serve-metrics PORT`, `--serve-hold
//! SECS` and `--phase-metrics`.

use wsu_bayes::whitebox::Resolution;
use wsu_experiments::bayes_study::StudyConfig;
use wsu_experiments::figures::{run_fig7, run_fig7_paper};
use wsu_experiments::obs::ObsOptions;
use wsu_experiments::DEFAULT_SEED;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut ctx = ObsOptions::from_env().context();
    let (set, runs) = ctx.time("fig7/study", || {
        if quick {
            let config = StudyConfig {
                demands: 10_000,
                checkpoint_every: 500,
                resolution: Resolution {
                    a_cells: 48,
                    b_cells: 48,
                    q_cells: 16,
                },
                adaptive: None,
                confidence: 0.99,
                target: 1e-3,
                seed: DEFAULT_SEED,
            };
            run_fig7(&config)
        } else {
            run_fig7_paper(DEFAULT_SEED)
        }
    });
    ctx.record_study(&runs.perfect, "fig7/perfect");
    if let Some(omission) = &runs.omission {
        ctx.record_study(omission, "fig7/omission");
    }
    ctx.record_study(&runs.back_to_back, "fig7/back-to-back");
    print!("{}", set.to_tsv());
    ctx.finish().expect("write observability outputs");
}
