//! Runs the fleet study and prints the per-cell recovery table.
//!
//! Usage: `fleetstudy [--quick] [--cell NAME] [--jobs N] [--shards K]
//! [--trace PATH] [--metrics PATH] [--serve-metrics PORT]
//! [--serve-hold SECS] [--phase-metrics]` — `--cell` restricts the
//! matrix to the named cell (repeatable); `--quick` runs a reduced
//! demand count; `--jobs` picks the replication worker-pool size
//! (default: one per hardware thread) without changing any output;
//! `--shards` is accepted for CLI uniformity with table5/table6 but
//! the fleet world draws RNG *during* dispatch (weighted routing and
//! synthetic outcomes are sampled inside the demand), so the demand
//! loop cannot be split into an RNG-free prepare phase — it stays
//! serial and the output is identical at any `--shards` by
//! construction; `--trace`/`--metrics` write a JSONL event trace and
//! a metrics snapshot without changing the table on stdout;
//! `--serve-metrics` serves the snapshot on `/metrics` and the
//! per-cell results on `/snapshot`; `--phase-metrics` adds the
//! wall-clock `wsu_phase_seconds` gauges.

use wsu_experiments::fleetstudy::{run_fleetstudy_jobs, standard_cells, FleetStudyConfig};
use wsu_experiments::obs::{jobs_from_env, shards_from_env, ObsOptions};
use wsu_experiments::DEFAULT_SEED;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Parsed for flag validation; see the module docs for why the
    // fleet demand loop stays serial at any shard count.
    let _shards = shards_from_env();
    let wanted: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--cell")
        .filter_map(|(i, _)| args.get(i + 1))
        .collect();
    let jobs = jobs_from_env();
    let mut ctx = ObsOptions::from_env().context();
    let config = if quick {
        FleetStudyConfig::quick()
    } else {
        FleetStudyConfig::paper()
    };
    let mut cells = standard_cells();
    if !wanted.is_empty() {
        cells.retain(|cell| wanted.iter().any(|w| **w == cell.name));
        if cells.is_empty() {
            eprintln!(
                "no cell matched; available: {}",
                standard_cells()
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
    }
    let sinks = ctx.sinks();
    let table = ctx.time("fleetstudy/simulate", || {
        run_fleetstudy_jobs(&cells, &config, DEFAULT_SEED, &sinks, jobs)
    });
    print!("{}", table.render());
    ctx.publish_snapshot(&table.rows_json());
    ctx.finish().expect("write observability outputs");
}
