//! Runs the fault-injection campaign and prints the per-plan
//! detection-coverage table.
//!
//! Usage: `faultcampaign [--quick] [--plan NAME] [--jobs N]
//! [--shards K] [--trace PATH] [--metrics PATH] [--serve-metrics PORT]
//! [--serve-hold SECS] [--phase-metrics]` — `--plan` restricts the
//! matrix to the named plan (repeatable); `--quick` runs a reduced
//! demand count; `--jobs` picks the replication worker-pool size
//! (default: one per hardware thread) without changing any output;
//! `--shards` is accepted for CLI uniformity with table5/table6 but
//! this world draws RNG *during* dispatch (synthetic services and
//! fault injectors sample outcomes inside `invoke`), so the demand
//! loop cannot be split into an RNG-free prepare phase — it stays
//! serial and the output is identical at any `--shards` by
//! construction; `--trace`/`--metrics` write a JSONL event trace and
//! a metrics snapshot without changing the table on stdout;
//! `--serve-metrics` serves the snapshot on `/metrics` and the
//! per-plan dependability snapshots on `/snapshot`;
//! `--phase-metrics` adds the wall-clock `wsu_phase_seconds` gauges.

use wsu_experiments::campaign::{run_campaign_jobs, standard_plans, CampaignConfig};
use wsu_experiments::obs::{jobs_from_env, shards_from_env, ObsOptions};
use wsu_experiments::DEFAULT_SEED;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Parsed for flag validation; see the module docs for why this
    // world's demand loop stays serial at any shard count.
    let _shards = shards_from_env();
    let wanted: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--plan")
        .filter_map(|(i, _)| args.get(i + 1))
        .collect();
    let jobs = jobs_from_env();
    let mut ctx = ObsOptions::from_env().context();
    let config = if quick {
        CampaignConfig::quick()
    } else {
        CampaignConfig::paper()
    };
    let mut specs = standard_plans();
    if !wanted.is_empty() {
        specs.retain(|spec| wanted.iter().any(|w| **w == spec.scenario.name));
        if specs.is_empty() {
            eprintln!(
                "no plan matched; available: {}",
                standard_plans()
                    .iter()
                    .map(|s| s.scenario.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
    }
    let sinks = ctx.sinks();
    let table = ctx.time("faultcampaign/simulate", || {
        run_campaign_jobs(&specs, &config, DEFAULT_SEED, &sinks, jobs)
    });
    print!("{}", table.render());
    ctx.publish_snapshot(&table.snapshots_json());
    ctx.finish().expect("write observability outputs");
}
