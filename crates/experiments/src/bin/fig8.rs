//! Regenerates Fig. 8 (Scenario 2 percentile curves) as a TSV table.
//!
//! Usage: `fig8 [--quick] [--trace PATH] [--metrics PATH]` plus the
//! shared observability flags `--serve-metrics PORT`, `--serve-hold
//! SECS` and `--phase-metrics`.

use wsu_bayes::whitebox::Resolution;
use wsu_experiments::bayes_study::StudyConfig;
use wsu_experiments::figures::{run_fig8, run_fig8_paper};
use wsu_experiments::obs::ObsOptions;
use wsu_experiments::DEFAULT_SEED;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut ctx = ObsOptions::from_env().context();
    let (set, runs) = ctx.time("fig8/study", || {
        if quick {
            let config = StudyConfig {
                demands: 3_000,
                checkpoint_every: 100,
                resolution: Resolution {
                    a_cells: 48,
                    b_cells: 48,
                    q_cells: 16,
                },
                adaptive: None,
                confidence: 0.99,
                target: 1e-3,
                seed: DEFAULT_SEED,
            };
            run_fig8(&config)
        } else {
            run_fig8_paper(DEFAULT_SEED)
        }
    });
    ctx.record_study(&runs.perfect, "fig8/perfect");
    if let Some(omission) = &runs.omission {
        ctx.record_study(omission, "fig8/omission");
    }
    ctx.record_study(&runs.back_to_back, "fig8/back-to-back");
    print!("{}", set.to_tsv());
    ctx.finish().expect("write observability outputs");
}
