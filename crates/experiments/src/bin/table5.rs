//! Regenerates Table 5 (correlated release failures).
//!
//! Usage: `table5 [--quick] [--calibrated] [--trace PATH] [--metrics PATH]`
//! — `--calibrated` uses the execution-time model whose unconditional
//! MET matches the paper's reported values (see EXPERIMENTS.md);
//! `--trace`/`--metrics` write a JSONL event trace and a metrics
//! snapshot without changing the table on stdout.

use wsu_experiments::obs::ObsOptions;
use wsu_experiments::table5::run_table5_observed;
use wsu_experiments::{DEFAULT_SEED, PAPER_REQUESTS, PAPER_TIMEOUTS};
use wsu_workload::timing::ExecTimeModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let calibrated = std::env::args().any(|a| a == "--calibrated");
    let mut ctx = ObsOptions::from_env().context();
    let timing = if calibrated {
        ExecTimeModel::calibrated()
    } else {
        ExecTimeModel::paper()
    };
    let requests = if quick { 2_000 } else { PAPER_REQUESTS };
    let sinks = ctx.sinks();
    let table = ctx.time("table5/simulate", || {
        run_table5_observed(DEFAULT_SEED, requests, &PAPER_TIMEOUTS, timing, &sinks)
    });
    print!("{}", table.render());
    ctx.finish().expect("write observability outputs");
}
