//! Regenerates Table 5 (correlated release failures).
//!
//! Usage: `table5 [--quick] [--calibrated] [--jobs N] [--shards K]
//! [--trace PATH] [--metrics PATH] [--serve-metrics PORT]
//! [--serve-hold SECS] [--phase-metrics]` — `--calibrated` uses the
//! execution-time model whose unconditional MET matches the paper's
//! reported values (see EXPERIMENTS.md); `--jobs` picks the
//! replication worker-pool size (default: one per hardware thread)
//! without changing any output; `--shards` adds intra-cell
//! parallelism — each cell's demand loop runs as a prepare/commit
//! pipeline over K shards (`0` = one per hardware thread; default:
//! serial), also without changing any output; `--trace`/`--metrics`
//! write a JSONL event trace and a metrics snapshot without changing
//! the table on stdout; `--serve-metrics` serves the snapshot live on
//! `http://127.0.0.1:PORT/metrics` (`--serve-hold` keeps it up after
//! the run); `--phase-metrics` adds the wall-clock `wsu_phase_seconds`
//! gauges to the snapshot.

use wsu_experiments::obs::{jobs_from_env, shards_from_env, ObsOptions};
use wsu_experiments::table5::run_table5_sharded;
use wsu_experiments::{DEFAULT_SEED, PAPER_REQUESTS, PAPER_TIMEOUTS};
use wsu_workload::timing::ExecTimeModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let calibrated = std::env::args().any(|a| a == "--calibrated");
    let jobs = jobs_from_env();
    let shards = shards_from_env();
    let mut ctx = ObsOptions::from_env().context();
    let timing = if calibrated {
        ExecTimeModel::calibrated()
    } else {
        ExecTimeModel::paper()
    };
    let requests = if quick { 2_000 } else { PAPER_REQUESTS };
    let sinks = ctx.sinks();
    let table = ctx.time("table5/simulate", || {
        run_table5_sharded(
            DEFAULT_SEED,
            requests,
            &PAPER_TIMEOUTS,
            timing,
            &sinks,
            jobs,
            shards,
        )
    });
    print!("{}", table.render());
    ctx.finish().expect("write observability outputs");
}
