//! Regenerates Table 5 (correlated release failures).
//!
//! Usage: `table5 [--quick] [--calibrated]` — `--calibrated` uses the
//! execution-time model whose unconditional MET matches the paper's
//! reported values (see EXPERIMENTS.md).

use wsu_experiments::table5::{run_table5, run_table5_with};
use wsu_experiments::{DEFAULT_SEED, PAPER_TIMEOUTS};
use wsu_workload::timing::ExecTimeModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let calibrated = std::env::args().any(|a| a == "--calibrated");
    let timing = if calibrated {
        ExecTimeModel::calibrated()
    } else {
        ExecTimeModel::paper()
    };
    let table = if quick {
        run_table5_with(DEFAULT_SEED, 2_000, &PAPER_TIMEOUTS, timing)
    } else if calibrated {
        run_table5_with(DEFAULT_SEED, 10_000, &PAPER_TIMEOUTS, timing)
    } else {
        run_table5(DEFAULT_SEED)
    };
    print!("{}", table.render());
}
