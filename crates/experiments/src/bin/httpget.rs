//! `wsu-httpget` — the workspace's hand-rolled HTTP/1.1 client, as a
//! binary. CI uses it to scrape a live `--serve-metrics` endpoint
//! without assuming curl exists.
//!
//! Usage: `wsu-httpget <host:port> <path>` — prints the response body
//! to stdout; exits non-zero on connection failure or a non-200 status.

use std::process::exit;

use wsu_obs::http_get;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, path) = match (args.first(), args.get(1)) {
        (Some(addr), Some(path)) => (addr.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: wsu-httpget <host:port> <path>");
            exit(2);
        }
    };
    match http_get(addr, path) {
        Ok(resp) if resp.status == 200 => print!("{}", resp.body),
        Ok(resp) => {
            eprintln!("GET {path}: status {}", resp.status);
            exit(1);
        }
        Err(err) => {
            eprintln!("GET {addr}{path} failed: {err}");
            exit(1);
        }
    }
}
