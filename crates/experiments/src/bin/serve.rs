//! `wsu-serve` — the upgrade middleware as a real HTTP service.
//!
//! Binds a thread-per-core accept loop and serves:
//!
//! * `POST /demand` — one demand through the middleware (dispatch,
//!   adjudicate, respond), answered as a small JSON outcome;
//! * `GET /metrics` — merged per-worker Prometheus text;
//! * `GET /snapshot` — aggregate JSON;
//! * `GET /health` — liveness.
//!
//! Usage:
//!
//! ```text
//! wsu-serve [--addr HOST:PORT] [--workers N]
//!           [--spec paper|deterministic|canary-fleet] [--sharded]
//!           [--seed N] [--duration SECS]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:9100`, `--workers 0` (one per hardware
//! thread), `--spec paper`, the workspace seed, `--duration 0` (serve
//! until killed). `--sharded` keys each demand's randomness on a
//! fleet-global demand index instead of a per-worker stream, so the
//! outcome stream is identical at any `--workers` count (see
//! `ServeSpec::sharded`). Prints `listening on ADDR workers=N` once
//! ready.

use std::process::exit;
use std::time::Duration;

use wsu_core::serve::ServeSpec;
use wsu_experiments::serve::{FrontConfig, HttpFront};

struct Options {
    addr: String,
    workers: usize,
    spec: String,
    sharded: bool,
    seed: u64,
    duration: f64,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:9100".to_string(),
        workers: 0,
        spec: "paper".to_string(),
        sharded: false,
        seed: 0x5745_4253_5643_5550,
        duration: 0.0,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--addr" => options.addr = value(i)?.clone(),
            "--workers" => {
                options.workers = value(i)?
                    .parse()
                    .map_err(|_| format!("--workers: not a count: {}", args[i + 1]))?;
            }
            "--spec" => options.spec = value(i)?.clone(),
            "--sharded" => {
                options.sharded = true;
                i += 1;
                continue;
            }
            "--seed" => {
                options.seed = value(i)?
                    .parse()
                    .map_err(|_| format!("--seed: not a u64: {}", args[i + 1]))?;
            }
            "--duration" => {
                options.duration = value(i)?
                    .parse()
                    .map_err(|_| format!("--duration: not seconds: {}", args[i + 1]))?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 2;
    }
    Ok(options)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("wsu-serve: {message}");
            eprintln!(
                "usage: wsu-serve [--addr HOST:PORT] [--workers N] \
                 [--spec paper|deterministic|canary-fleet] [--sharded] \
                 [--seed N] [--duration SECS]"
            );
            exit(2);
        }
    };
    let mut spec = match options.spec.as_str() {
        "paper" => ServeSpec::paper(options.seed),
        "deterministic" => ServeSpec::deterministic(options.seed),
        "canary-fleet" => ServeSpec::canary_fleet(options.seed),
        other => {
            eprintln!("wsu-serve: unknown --spec {other} (want paper|deterministic|canary-fleet)");
            exit(2);
        }
    };
    if options.sharded {
        spec = spec.with_sharding();
    }
    let front = match HttpFront::start(FrontConfig::new(&options.addr, options.workers, spec)) {
        Ok(front) => front,
        Err(err) => {
            eprintln!("wsu-serve: bind {} failed: {err}", options.addr);
            exit(1);
        }
    };
    println!(
        "listening on {} workers={} spec={} seed={}",
        front.local_addr(),
        if options.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            options.workers
        },
        options.spec,
        options.seed,
    );
    if options.duration > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(options.duration));
        let demands = front.demands();
        front.shutdown();
        println!("served {demands} demands in {:.1}s", options.duration);
    } else {
        // Serve until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
