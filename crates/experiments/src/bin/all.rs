//! Runs every experiment and writes the outputs under `results/`.
//!
//! Usage: `all [--quick] [--out DIR] [--jobs N] [--trace PATH]
//! [--metrics PATH]` plus the shared observability flags
//! `--serve-metrics PORT`, `--serve-hold SECS` and `--phase-metrics` —
//! `--jobs` sizes the replication worker pool for the simulation-backed
//! studies (Tables 5–6, ablations, capacity) without changing any
//! output byte.

use std::fs;
use std::path::PathBuf;

use wsu_bayes::whitebox::Resolution;
use wsu_experiments::bayes_study::StudyConfig;
use wsu_experiments::midsim::ObsSinks;
use wsu_experiments::obs::{jobs_from_args, ObsOptions};
use wsu_experiments::{
    ablation, campaign, capacity, figures, table2, table5, table6, DEFAULT_SEED, PAPER_TIMEOUTS,
};
use wsu_simcore::rng::MasterSeed;
use wsu_workload::timing::ExecTimeModel;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = jobs_from_args(&args);
    let mut ctx = ObsOptions::from_env().context();
    let sinks = ctx.sinks();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&out_dir)?;

    let res = if quick {
        Resolution {
            a_cells: 48,
            b_cells: 48,
            q_cells: 16,
        }
    } else {
        Resolution::default()
    };
    let study1 = StudyConfig {
        demands: if quick { 10_000 } else { 50_000 },
        checkpoint_every: 500,
        resolution: res,
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    };
    let study2 = StudyConfig {
        demands: if quick { 4_000 } else { 10_000 },
        checkpoint_every: 100,
        resolution: res,
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    };
    let requests = if quick { 2_000 } else { 10_000 };

    eprintln!("[1/9] Table 2 (single seed + spread) ...");
    let t2 = ctx.time("all/table2", || {
        table2::run_table2_with(DEFAULT_SEED, &study1, &study2)
    });
    for run in &t2.runs {
        ctx.record_study(
            run,
            &format!("table2/s{}/{:?}", run.scenario, run.detection),
        );
    }
    fs::write(out_dir.join("table2.txt"), t2.render())?;
    let seeds: Vec<MasterSeed> = (0..10u64)
        .map(|i| MasterSeed::new(DEFAULT_SEED.value().wrapping_add(i)))
        .collect();
    let spread = ctx.time("all/table2-spread", || {
        table2::run_table2_spread(&seeds, &study1, &study2)
    });
    fs::write(
        out_dir.join("table2_spread.txt"),
        table2::render_spread(&spread),
    )?;

    eprintln!("[2/9] Fig. 7 ...");
    let (fig7, fig7_runs) = ctx.time("all/fig7", || figures::run_fig7(&study1));
    ctx.record_study(&fig7_runs.perfect, "fig7/perfect");
    if let Some(omission) = &fig7_runs.omission {
        ctx.record_study(omission, "fig7/omission");
    }
    ctx.record_study(&fig7_runs.back_to_back, "fig7/back-to-back");
    fs::write(out_dir.join("fig7.tsv"), fig7.to_tsv())?;

    eprintln!("[3/9] Fig. 8 ...");
    let (fig8, fig8_runs) = ctx.time("all/fig8", || figures::run_fig8(&study2));
    ctx.record_study(&fig8_runs.perfect, "fig8/perfect");
    if let Some(omission) = &fig8_runs.omission {
        ctx.record_study(omission, "fig8/omission");
    }
    ctx.record_study(&fig8_runs.back_to_back, "fig8/back-to-back");
    fs::write(out_dir.join("fig8.tsv"), fig8.to_tsv())?;

    eprintln!("[4/9] Table 5 ...");
    let t5 = ctx.time("all/table5", || {
        table5::run_table5_jobs(
            DEFAULT_SEED,
            requests,
            &PAPER_TIMEOUTS,
            ExecTimeModel::paper(),
            &sinks,
            jobs,
        )
    });
    fs::write(out_dir.join("table5.txt"), t5.render())?;

    eprintln!("[5/9] Table 6 ...");
    let t6 = ctx.time("all/table6", || {
        table6::run_table6_jobs(
            DEFAULT_SEED,
            requests,
            &PAPER_TIMEOUTS,
            ExecTimeModel::paper(),
            &sinks,
            jobs,
        )
    });
    fs::write(out_dir.join("table6.txt"), t6.render())?;

    eprintln!("[6/9] Calibrated-timing variants ...");
    let t5c = ctx.time("all/table5-calibrated", || {
        table5::run_table5_jobs(
            DEFAULT_SEED,
            requests,
            &PAPER_TIMEOUTS,
            ExecTimeModel::calibrated(),
            &ObsSinks::default(),
            jobs,
        )
    });
    fs::write(out_dir.join("table5_calibrated.txt"), t5c.render())?;
    let t6c = ctx.time("all/table6-calibrated", || {
        table6::run_table6_jobs(
            DEFAULT_SEED,
            requests,
            &PAPER_TIMEOUTS,
            ExecTimeModel::calibrated(),
            &ObsSinks::default(),
            jobs,
        )
    });
    fs::write(out_dir.join("table6_calibrated.txt"), t6c.render())?;

    eprintln!("[7/9] Ablations ...");
    let ab = ctx.time("all/ablations", || {
        let mut ab = String::new();
        ab.push_str(&ablation::render_adjudicator_table(
            &ablation::run_adjudicator_ablation_jobs(DEFAULT_SEED, requests, jobs),
        ));
        ab.push('\n');
        ab.push_str(&ablation::render_mode_table(
            &ablation::run_mode_ablation_jobs(DEFAULT_SEED, requests, jobs),
        ));
        ab.push('\n');
        ab.push_str(&ablation::render_coverage_table(
            &ablation::run_coverage_ablation_jobs(
                &study1,
                &[0.0, 0.05, 0.10, 0.15, 0.25, 0.40],
                jobs,
            ),
        ));
        ab.push('\n');
        ab.push_str(&ablation::render_prior_table(
            &ablation::run_prior_ablation_jobs(&study1, jobs),
        ));
        ab.push('\n');
        ab.push_str(&ablation::render_class_detection_table(
            &ablation::run_class_detection_ablation(
                study1.demands,
                study1.resolution,
                DEFAULT_SEED,
                0.5,
                &[1.0, 0.85, 0.70, 0.50, 0.25],
            ),
        ));
        ab.push('\n');
        ab.push_str(&ablation::render_abort_table(
            &ablation::run_abort_ablation_jobs(
                if quick { 3 } else { 10 },
                if quick { 4_000 } else { 20_000 },
                study1.resolution,
                DEFAULT_SEED,
                &[0.5, 1.0, 2.0, 5.0, 10.0],
                jobs,
            ),
        ));
        ab
    });
    fs::write(out_dir.join("ablations.txt"), ab)?;

    eprintln!("[8/9] Fault-injection campaign ...");
    let campaign = ctx.time("all/faultcampaign", || {
        campaign::run_campaign_jobs(
            &campaign::standard_plans(),
            &if quick {
                campaign::CampaignConfig::quick()
            } else {
                campaign::CampaignConfig::paper()
            },
            DEFAULT_SEED,
            &sinks,
            jobs,
        )
    });
    fs::write(out_dir.join("faultcampaign.txt"), campaign.render())?;

    eprintln!("[9/9] Capacity study ...");
    let gen =
        wsu_workload::outcomes::CorrelatedOutcomes::from_run(&wsu_workload::runs::RunSpec::run2());
    let cap = ctx.time("all/capacity", || {
        capacity::run_capacity_study_jobs(
            &gen,
            ExecTimeModel::calibrated(),
            &[0.2, 0.4, 0.6, 0.8],
            if quick { 3_000 } else { 20_000 },
            DEFAULT_SEED,
            jobs,
        )
    });
    fs::write(
        out_dir.join("capacity.txt"),
        capacity::render_capacity_table(&cap),
    )?;

    ctx.finish()?;
    eprintln!("done; outputs in {}", out_dir.display());
    Ok(())
}
