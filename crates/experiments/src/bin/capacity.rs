//! Runs the server-capacity study (extension E6): parallel vs
//! sequential dispatch under open Poisson arrivals.
//!
//! Usage: `capacity [--quick] [--jobs N] [--trace PATH] [--metrics PATH]`
//! plus the shared observability flags `--serve-metrics PORT`,
//! `--serve-hold SECS` and `--phase-metrics`.

use wsu_experiments::capacity::{render_capacity_table, run_capacity_study_jobs};
use wsu_experiments::obs::{jobs_from_env, ObsOptions};
use wsu_experiments::DEFAULT_SEED;
use wsu_workload::outcomes::CorrelatedOutcomes;
use wsu_workload::runs::RunSpec;
use wsu_workload::timing::ExecTimeModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = jobs_from_env();
    let mut ctx = ObsOptions::from_env().context();
    let demands = if quick { 3_000 } else { 20_000 };
    let gen = CorrelatedOutcomes::from_run(&RunSpec::run2());
    let results = ctx.time("capacity/study", || {
        run_capacity_study_jobs(
            &gen,
            ExecTimeModel::calibrated(),
            &[0.2, 0.4, 0.6, 0.8],
            demands,
            DEFAULT_SEED,
            jobs,
        )
    });
    print!("{}", render_capacity_table(&results));
    ctx.finish().expect("write observability outputs");
}
