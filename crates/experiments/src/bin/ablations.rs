//! Runs the four ablation studies (A1–A4 in DESIGN.md).
//!
//! Usage: `ablations [--quick] [--jobs N] [--trace PATH] [--metrics PATH]`
//! plus the shared observability flags `--serve-metrics PORT`,
//! `--serve-hold SECS` and `--phase-metrics` — with tracing on, each
//! ablation becomes a log line in the trace, and `--phase-metrics`
//! turns each into a timed `wsu_phase_seconds` gauge in the snapshot.

use wsu_bayes::whitebox::Resolution;
use wsu_experiments::ablation::{
    render_abort_table, render_adjudicator_table, render_class_detection_table,
    render_coverage_table, render_mode_table, render_prior_table, run_abort_ablation_jobs,
    run_adjudicator_ablation_jobs, run_class_detection_ablation, run_coverage_ablation_jobs,
    run_mode_ablation_jobs, run_prior_ablation_jobs,
};
use wsu_experiments::bayes_study::StudyConfig;
use wsu_experiments::obs::{jobs_from_env, ObsOptions};
use wsu_experiments::DEFAULT_SEED;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = jobs_from_env();
    let mut ctx = ObsOptions::from_env().context();
    let requests = if quick { 2_000 } else { 10_000 };
    let study = StudyConfig {
        demands: if quick { 10_000 } else { 50_000 },
        checkpoint_every: 500,
        resolution: if quick {
            Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            }
        } else {
            Resolution::default()
        },
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    };

    let adjudicator = ctx.time("ablations/adjudicator", || {
        run_adjudicator_ablation_jobs(DEFAULT_SEED, requests, jobs)
    });
    println!("{}", render_adjudicator_table(&adjudicator));
    let mode = ctx.time("ablations/mode", || {
        run_mode_ablation_jobs(DEFAULT_SEED, requests, jobs)
    });
    println!("{}", render_mode_table(&mode));
    let coverage = ctx.time("ablations/coverage", || {
        run_coverage_ablation_jobs(&study, &[0.0, 0.05, 0.10, 0.15, 0.25, 0.40], jobs)
    });
    println!("{}", render_coverage_table(&coverage));
    let prior = ctx.time("ablations/prior", || run_prior_ablation_jobs(&study, jobs));
    println!("{}", render_prior_table(&prior));
    let class_detection = ctx.time("ablations/class-detection", || {
        run_class_detection_ablation(
            study.demands,
            study.resolution,
            DEFAULT_SEED,
            0.5,
            &[1.0, 0.85, 0.70, 0.50, 0.25],
        )
    });
    println!("{}", render_class_detection_table(&class_detection));
    let abort = ctx.time("ablations/abort", || {
        run_abort_ablation_jobs(
            if quick { 3 } else { 10 },
            if quick { 4_000 } else { 20_000 },
            study.resolution,
            DEFAULT_SEED,
            &[0.5, 1.0, 2.0, 5.0, 10.0],
            jobs,
        )
    });
    println!("{}", render_abort_table(&abort));
    ctx.finish().expect("write observability outputs");
}
