//! The Monte-Carlo Bayesian study driver (paper Section 5.1.1).
//!
//! A study run simulates `demands` demands from a scenario's true failure
//! behaviour, scores them through a failure-detection model, and at
//! regular checkpoints computes the white-box posterior and evaluates the
//! three switching criteria. One run produces everything Table 2 and
//! Figs. 7–8 need for one (scenario × detection) combination.
//!
//! All detection regimes replay the *same* truth stream (paired
//! comparison, as in the paper); only the detector noise differs.

use wsu_bayes::adaptive::{AdaptiveResolution, AdaptiveUpdater, AdaptiveWhiteBox};
use wsu_bayes::counts::JointCounts;
use wsu_bayes::posterior::MarginalView;
use wsu_bayes::whitebox::{PosteriorUpdater, Resolution, WhiteBoxInference};
use wsu_core::manage::SwitchCriterion;
use wsu_detect::back2back::BackToBackDetector;
use wsu_detect::oracle::{FailureDetector, OmissionOracle, PerfectOracle};
use wsu_simcore::rng::MasterSeed;
use wsu_workload::scenario::Scenario;

/// The three detection regimes of the paper's study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Detection {
    /// Perfect oracles.
    Perfect,
    /// Omission oracles with the given miss probability (paper: 0.15).
    Omission(f64),
    /// Back-to-back testing under the pessimistic identical-coincident
    /// assumption.
    BackToBack,
}

impl Detection {
    /// The paper's three regimes, in table order.
    pub fn paper_regimes() -> [Detection; 3] {
        [
            Detection::Perfect,
            Detection::Omission(0.15),
            Detection::BackToBack,
        ]
    }

    /// Builds the detector.
    pub fn build(self) -> Box<dyn FailureDetector> {
        match self {
            Detection::Perfect => Box::new(PerfectOracle),
            Detection::Omission(p) => Box::new(OmissionOracle::new(p)),
            Detection::BackToBack => Box::new(BackToBackDetector::pessimistic()),
        }
    }

    /// A display label matching the paper's row names.
    pub fn label(self) -> String {
        match self {
            Detection::Perfect => "Perfect 'oracles'".to_owned(),
            Detection::Omission(p) => format!("Omission, Pomit = {p}"),
            Detection::BackToBack => "Back-to-back testing".to_owned(),
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyConfig {
    /// Total demands to simulate.
    pub demands: u64,
    /// Checkpoint (and criterion-evaluation) cadence.
    pub checkpoint_every: u64,
    /// Inference grid resolution.
    pub resolution: Resolution,
    /// Opt-in adaptive coarse-to-fine mode. When set, the study runs the
    /// [`wsu_bayes::adaptive`] engine (whose `fine` resolution applies)
    /// instead of a fixed grid at [`StudyConfig::resolution`]; results
    /// then follow the adaptive tolerance contract rather than being
    /// bit-identical to the fixed grid.
    pub adaptive: Option<AdaptiveResolution>,
    /// The confidence level used by all three criteria (paper: 0.99).
    pub confidence: f64,
    /// Criterion 2's explicit pfd target (paper: 1e-3).
    pub target: f64,
    /// Master seed; the truth stream depends only on the scenario, the
    /// detector stream also on the detection regime.
    pub seed: MasterSeed,
}

impl StudyConfig {
    /// The paper's configuration for Scenario 1: 50,000 demands,
    /// checkpoints every 500.
    pub fn paper_scenario1(seed: MasterSeed) -> StudyConfig {
        StudyConfig {
            demands: 50_000,
            checkpoint_every: 500,
            resolution: Resolution::default(),
            adaptive: None,
            confidence: 0.99,
            target: 1e-3,
            seed,
        }
    }

    /// The paper's configuration for Scenario 2: 10,000 demands,
    /// checkpoints every 100.
    pub fn paper_scenario2(seed: MasterSeed) -> StudyConfig {
        StudyConfig {
            demands: 10_000,
            checkpoint_every: 100,
            resolution: Resolution::default(),
            adaptive: None,
            confidence: 0.99,
            target: 1e-3,
            seed,
        }
    }
}

/// The incremental engine of one study run: fixed grid or adaptive
/// coarse-to-fine, behind one interface for the checkpoint loop.
enum StudyUpdater {
    Fixed(PosteriorUpdater),
    Adaptive(Box<AdaptiveUpdater>),
}

impl StudyUpdater {
    fn update_to(&mut self, counts: &JointCounts) {
        match self {
            StudyUpdater::Fixed(u) => u.update_to(counts),
            StudyUpdater::Adaptive(u) => u.update_to(counts),
        }
    }

    fn marginal_a(&self) -> MarginalView<'_> {
        match self {
            StudyUpdater::Fixed(u) => u.marginal_a(),
            StudyUpdater::Adaptive(u) => u.marginal_a(),
        }
    }

    fn marginal_b(&self) -> MarginalView<'_> {
        match self {
            StudyUpdater::Fixed(u) => u.marginal_b(),
            StudyUpdater::Adaptive(u) => u.marginal_b(),
        }
    }
}

/// The posterior state at one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Demands observed so far.
    pub demands: u64,
    /// Release A's posterior percentile at the configured confidence.
    pub a_high: f64,
    /// Release B's posterior percentile at the configured confidence.
    pub b_high: f64,
    /// Release B's posterior 90% percentile.
    pub b_p90: f64,
    /// The observed joint counts at this checkpoint.
    pub counts: JointCounts,
    /// Whether each criterion (1, 2, 3) is met at this checkpoint.
    pub criteria_met: [bool; 3],
}

/// One complete study run.
#[derive(Debug, Clone)]
pub struct StudyRun {
    /// The scenario number (1 or 2).
    pub scenario: usize,
    /// The detection regime.
    pub detection: Detection,
    /// Checkpoints, in demand order.
    pub checkpoints: Vec<Checkpoint>,
    /// First checkpoint (demand count) at which each criterion was met.
    pub first_met: [Option<u64>; 3],
    /// First checkpoint from which each criterion *stayed* met until the
    /// end of the run (captures the paper's "oscillates till …" remark).
    pub stable_met: [Option<u64>; 3],
}

impl StudyRun {
    /// The duration of the managed upgrade under a criterion (1-based),
    /// i.e. the first demand count at which it was met.
    pub fn duration(&self, criterion: usize) -> Option<u64> {
        assert!((1..=3).contains(&criterion), "criterion must be 1..=3");
        self.first_met[criterion - 1]
    }

    /// The checkpoint series of one percentile curve, as `(demands,
    /// percentile)` pairs. `which` selects the curve.
    pub fn series(&self, which: Curve) -> Vec<(f64, f64)> {
        self.checkpoints
            .iter()
            .map(|c| {
                let y = match which {
                    Curve::AHigh => c.a_high,
                    Curve::BHigh => c.b_high,
                    Curve::BP90 => c.b_p90,
                };
                (c.demands as f64, y)
            })
            .collect()
    }
}

/// Which percentile curve to extract from a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curve {
    /// Release A at the configured (99%) confidence.
    AHigh,
    /// Release B at the configured (99%) confidence.
    BHigh,
    /// Release B at 90%.
    BP90,
}

/// Runs one (scenario × detection) study.
pub fn run_study(scenario: &Scenario, detection: Detection, config: &StudyConfig) -> StudyRun {
    assert!(
        config.checkpoint_every > 0 && config.demands >= config.checkpoint_every,
        "invalid checkpoint configuration"
    );
    let priors = scenario.priors;
    let mut updater = match config.adaptive {
        None => StudyUpdater::Fixed(
            WhiteBoxInference::with_resolution(
                priors.prior_a,
                priors.prior_b,
                priors.coincidence,
                config.resolution,
            )
            .updater(),
        ),
        Some(adaptive) => StudyUpdater::Adaptive(Box::new(
            AdaptiveWhiteBox::new(priors.prior_a, priors.prior_b, priors.coincidence, adaptive)
                .updater(),
        )),
    };
    let criteria = [
        SwitchCriterion::reach_prior_of_old(config.confidence),
        SwitchCriterion::reach_target(config.target, config.confidence),
        SwitchCriterion::better_than_old(config.confidence),
    ];
    let mut truth_rng = config
        .seed
        .stream(&format!("bayes-study/truth/scenario{}", scenario.number));
    let mut detect_rng = config.seed.stream(&format!(
        "bayes-study/detect/scenario{}/{:?}",
        scenario.number, detection
    ));
    let mut detector = detection.build();

    let mut observed = JointCounts::new();
    let mut checkpoints = Vec::with_capacity((config.demands / config.checkpoint_every) as usize);
    for demand in 1..=config.demands {
        let truth = scenario.truth.sample(&mut truth_rng);
        let seen = detector.observe(truth, &mut detect_rng);
        observed.record(seen.a_failed, seen.b_failed);
        if demand % config.checkpoint_every == 0 {
            // Incremental update: only the count deltas since the last
            // checkpoint touch the grid, and the marginals are borrowed
            // views — no per-checkpoint allocation.
            updater.update_to(&observed);
            let marginal_a = updater.marginal_a();
            let marginal_b = updater.marginal_b();
            let criteria_met = [
                criteria[0].satisfied(&priors.prior_a, &marginal_a, &marginal_b),
                criteria[1].satisfied(&priors.prior_a, &marginal_a, &marginal_b),
                criteria[2].satisfied(&priors.prior_a, &marginal_a, &marginal_b),
            ];
            checkpoints.push(Checkpoint {
                demands: demand,
                a_high: marginal_a.percentile(config.confidence),
                b_high: marginal_b.percentile(config.confidence),
                b_p90: marginal_b.percentile(0.90),
                counts: observed,
                criteria_met,
            });
        }
    }

    let mut first_met = [None; 3];
    let mut stable_met = [None; 3];
    for i in 0..3 {
        first_met[i] = checkpoints
            .iter()
            .find(|c| c.criteria_met[i])
            .map(|c| c.demands);
        // Last stretch of consecutive trailing checkpoints where met.
        let mut stable = None;
        for c in checkpoints.iter().rev() {
            if c.criteria_met[i] {
                stable = Some(c.demands);
            } else {
                break;
            }
        }
        stable_met[i] = stable;
    }

    StudyRun {
        scenario: scenario.number,
        detection,
        checkpoints,
        first_met,
        stable_met,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_simcore::rng::MasterSeed;

    fn tiny_config(demands: u64) -> StudyConfig {
        StudyConfig {
            demands,
            checkpoint_every: demands / 10,
            resolution: Resolution {
                a_cells: 32,
                b_cells: 32,
                q_cells: 8,
            },
            adaptive: None,
            confidence: 0.99,
            target: 1e-3,
            seed: MasterSeed::new(11),
        }
    }

    #[test]
    fn checkpoints_are_emitted_on_cadence() {
        let run = run_study(&Scenario::two(), Detection::Perfect, &tiny_config(2_000));
        assert_eq!(run.checkpoints.len(), 10);
        assert_eq!(run.checkpoints[0].demands, 200);
        assert_eq!(run.checkpoints[9].demands, 2_000);
        assert_eq!(run.scenario, 2);
    }

    #[test]
    fn percentiles_tighten_with_demands_in_scenario2() {
        // Scenario 2's truth is far better than the priors; with demands
        // the B percentile must fall substantially.
        let run = run_study(&Scenario::two(), Detection::Perfect, &tiny_config(5_000));
        let first = run.checkpoints.first().unwrap().b_high;
        let last = run.checkpoints.last().unwrap().b_high;
        assert!(last < first, "{last} !< {first}");
    }

    #[test]
    fn scenario2_criteria_fire_quickly() {
        // The paper: criterion 1 at 1,400 and criterion 3 at 1,100 demands.
        let config = StudyConfig {
            demands: 4_000,
            checkpoint_every: 100,
            ..tiny_config(4_000)
        };
        let run = run_study(&Scenario::two(), Detection::Perfect, &config);
        let c1 = run.duration(1).expect("criterion 1 met");
        let c3 = run.duration(3).expect("criterion 3 met");
        assert!(c1 <= 4_000);
        assert!(
            c3 <= c1,
            "criterion 3 ({c3}) should fire no later than 1 ({c1})"
        );
    }

    #[test]
    fn detection_regimes_share_the_truth_stream() {
        let config = tiny_config(2_000);
        let perfect = run_study(&Scenario::two(), Detection::Perfect, &config);
        let b2b = run_study(&Scenario::two(), Detection::BackToBack, &config);
        // Observed counts differ only in coincident failures masked by
        // back-to-back testing: single-release failure totals of A can
        // only shrink via masked coincidences.
        let pt = perfect.checkpoints.last().unwrap().counts;
        let bt = b2b.checkpoints.last().unwrap().counts;
        assert_eq!(pt.demands(), bt.demands());
        assert_eq!(bt.both_failed(), 0, "b2b masks all coincident failures");
        assert_eq!(pt.only_a_failed(), bt.only_a_failed());
    }

    #[test]
    fn series_extraction_matches_checkpoints() {
        let run = run_study(&Scenario::two(), Detection::Perfect, &tiny_config(1_000));
        let series = run.series(Curve::BHigh);
        assert_eq!(series.len(), run.checkpoints.len());
        assert_eq!(series[0].1, run.checkpoints[0].b_high);
        let p90 = run.series(Curve::BP90);
        // 90% percentile is below the 99% percentile.
        for (hi, lo) in run.series(Curve::BHigh).iter().zip(&p90) {
            assert!(lo.1 <= hi.1 + 1e-12);
        }
        let a = run.series(Curve::AHigh);
        assert_eq!(a.len(), series.len());
    }

    #[test]
    fn omission_biases_counts_down() {
        let config = tiny_config(3_000);
        let perfect = run_study(&Scenario::one(), Detection::Perfect, &config);
        let omission = run_study(&Scenario::one(), Detection::Omission(0.9), &config);
        let p = perfect.checkpoints.last().unwrap().counts;
        let o = omission.checkpoints.last().unwrap().counts;
        assert!(o.a_failures() <= p.a_failures());
        assert!(o.b_failures() <= p.b_failures());
    }

    #[test]
    fn labels() {
        assert_eq!(Detection::Perfect.label(), "Perfect 'oracles'");
        assert_eq!(Detection::Omission(0.15).label(), "Omission, Pomit = 0.15");
        assert_eq!(Detection::BackToBack.label(), "Back-to-back testing");
        assert_eq!(Detection::paper_regimes().len(), 3);
    }

    #[test]
    fn adaptive_study_tracks_the_fixed_grid() {
        // The adaptive engine replays the same truth stream (same seed)
        // and must reproduce the fixed default grid's criterion timings
        // to within one checkpoint, and its percentile curve closely.
        let fixed = StudyConfig {
            resolution: Resolution::default(),
            ..tiny_config(3_000)
        };
        let adaptive = StudyConfig {
            adaptive: Some(Resolution::adaptive()),
            ..fixed
        };
        let f = run_study(&Scenario::two(), Detection::Perfect, &fixed);
        let a = run_study(&Scenario::two(), Detection::Perfect, &adaptive);
        assert_eq!(f.checkpoints.len(), a.checkpoints.len());
        let cell = 0.002 / 96.0;
        for (fc, ac) in f.checkpoints.iter().zip(&a.checkpoints) {
            assert_eq!(fc.counts, ac.counts, "truth streams diverged");
            assert!(
                (fc.b_high - ac.b_high).abs() <= cell,
                "at {}: {} vs {}",
                fc.demands,
                fc.b_high,
                ac.b_high
            );
        }
        for i in 0..3 {
            match (f.first_met[i], a.first_met[i]) {
                (Some(fm), Some(am)) => {
                    assert!(
                        fm.abs_diff(am) <= fixed.checkpoint_every,
                        "criterion {} fired at {fm} fixed vs {am} adaptive",
                        i + 1
                    );
                }
                (fm, am) => assert_eq!(fm, am, "criterion {} met-ness differs", i + 1),
            }
        }
    }

    #[test]
    #[should_panic(expected = "criterion must be")]
    fn duration_rejects_bad_criterion() {
        let run = run_study(&Scenario::two(), Detection::Perfect, &tiny_config(1_000));
        let _ = run.duration(0);
    }
}
