//! Figures 7 and 8: posterior percentiles vs number of demands.
//!
//! Fig. 7 (Scenario 1) plots, against the number of demands:
//! `Ch B: 90% percentile (perfect oracles)`, `Ch B: 99% percentile
//! (Pmiss = 0.15)`, `Ch B: 99% percentile (back-to-back testing)`,
//! `Ch B: 99% percentile (perfect oracles)` and `Ch A: 99% percentile
//! (perfect oracles)`.
//!
//! Fig. 8 (Scenario 2) plots `Ch A: 99%`, `Ch B: 90%`, `Ch B: 99%` (all
//! perfect) and `Ch B: 99% (back-to-back testing)`.
//!
//! The paper's headline observation — the ≤9% confidence-error rule —
//! corresponds to the 90%-perfect curve staying below the 99%-imperfect
//! curves; [`confidence_error_bound_holds`] checks it programmatically.

use wsu_simcore::rng::MasterSeed;
use wsu_simcore::series::{Series, SeriesSet};
use wsu_workload::scenario::Scenario;

use crate::bayes_study::{run_study, Curve, Detection, StudyConfig, StudyRun};

/// Builds a [`Series`] from a study run's curve.
fn to_series(run: &StudyRun, curve: Curve, name: &str) -> Series {
    let mut series = Series::new(name);
    for (x, y) in run.series(curve) {
        series.push(x, y);
    }
    series
}

/// The runs underlying one figure, kept for programmatic checks.
#[derive(Debug, Clone)]
pub struct FigureRuns {
    /// Perfect-oracle run.
    pub perfect: StudyRun,
    /// Omission run (Fig. 7 only; `None` for Fig. 8).
    pub omission: Option<StudyRun>,
    /// Back-to-back run.
    pub back_to_back: StudyRun,
}

/// Fig. 7: Scenario 1 percentile curves.
pub fn run_fig7(config: &StudyConfig) -> (SeriesSet, FigureRuns) {
    let scenario = Scenario::one();
    let perfect = run_study(&scenario, Detection::Perfect, config);
    let omission = run_study(&scenario, Detection::Omission(0.15), config);
    let b2b = run_study(&scenario, Detection::BackToBack, config);

    let mut set = SeriesSet::new(
        "Fig. 7 — Scenario 1: percentiles for perfect and imperfect failure detection",
        "demands",
        "percentile (pfd)",
    );
    set.add(to_series(
        &perfect,
        Curve::BP90,
        "ChB 90% (perfect oracles)",
    ));
    set.add(to_series(&omission, Curve::BHigh, "ChB 99% (Pmiss=0.15)"));
    set.add(to_series(&b2b, Curve::BHigh, "ChB 99% (back-to-back)"));
    set.add(to_series(
        &perfect,
        Curve::BHigh,
        "ChB 99% (perfect oracles)",
    ));
    set.add(to_series(
        &perfect,
        Curve::AHigh,
        "ChA 99% (perfect oracles)",
    ));
    (
        set,
        FigureRuns {
            perfect,
            omission: Some(omission),
            back_to_back: b2b,
        },
    )
}

/// Fig. 8: Scenario 2 percentile curves.
pub fn run_fig8(config: &StudyConfig) -> (SeriesSet, FigureRuns) {
    let scenario = Scenario::two();
    let perfect = run_study(&scenario, Detection::Perfect, config);
    let b2b = run_study(&scenario, Detection::BackToBack, config);

    let mut set = SeriesSet::new(
        "Fig. 8 — Scenario 2: percentiles for perfect and imperfect failure detection",
        "demands",
        "percentile (pfd)",
    );
    set.add(to_series(
        &perfect,
        Curve::AHigh,
        "ChA 99% (perfect oracles)",
    ));
    set.add(to_series(
        &perfect,
        Curve::BP90,
        "ChB 90% (perfect oracles)",
    ));
    set.add(to_series(
        &perfect,
        Curve::BHigh,
        "ChB 99% (perfect oracles)",
    ));
    set.add(to_series(&b2b, Curve::BHigh, "ChB 99% (back-to-back)"));
    (
        set,
        FigureRuns {
            perfect,
            omission: None,
            back_to_back: b2b,
        },
    )
}

/// Fig. 7/8 with the paper's parameters.
pub fn run_fig7_paper(seed: MasterSeed) -> (SeriesSet, FigureRuns) {
    run_fig7(&StudyConfig::paper_scenario1(seed))
}

/// Fig. 8 with the paper's parameters.
pub fn run_fig8_paper(seed: MasterSeed) -> (SeriesSet, FigureRuns) {
    run_fig8(&StudyConfig::paper_scenario2(seed))
}

/// The paper's confidence-error observation: the 90% percentile under
/// perfect detection stays at or below the 99% percentile under the given
/// imperfect run, over (at least) the leading fraction `up_to` of the
/// checkpoints. Returns the fraction of compared checkpoints where the
/// bound holds.
pub fn confidence_error_bound_holds(perfect: &StudyRun, imperfect: &StudyRun, up_to: f64) -> f64 {
    assert!((0.0..=1.0).contains(&up_to), "up_to must be in [0, 1]");
    let n = ((perfect.checkpoints.len() as f64) * up_to).round() as usize;
    let n = n
        .min(perfect.checkpoints.len())
        .min(imperfect.checkpoints.len());
    if n == 0 {
        return 1.0;
    }
    let mut ok = 0usize;
    for i in 0..n {
        if perfect.checkpoints[i].b_p90 <= imperfect.checkpoints[i].b_high + 1e-15 {
            ok += 1;
        }
    }
    ok as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_bayes::whitebox::Resolution;

    fn quick(demands: u64, every: u64) -> StudyConfig {
        StudyConfig {
            demands,
            checkpoint_every: every,
            resolution: Resolution {
                a_cells: 32,
                b_cells: 32,
                q_cells: 8,
            },
            adaptive: None,
            confidence: 0.99,
            target: 1e-3,
            seed: MasterSeed::new(21),
        }
    }

    #[test]
    fn fig7_has_five_series() {
        let (set, runs) = run_fig7(&quick(3_000, 500));
        assert_eq!(set.series().len(), 5);
        assert!(set.by_name("ChA 99% (perfect oracles)").is_some());
        assert!(runs.omission.is_some());
        // Every series spans the full checkpoint range.
        for s in set.series() {
            assert_eq!(s.len(), 6);
            assert_eq!(s.points()[0].0, 500.0);
        }
    }

    #[test]
    fn fig8_has_four_series() {
        let (set, runs) = run_fig8(&quick(2_000, 200));
        assert_eq!(set.series().len(), 4);
        assert!(runs.omission.is_none());
        assert!(set.by_name("ChB 99% (back-to-back)").is_some());
    }

    #[test]
    fn percentile_ordering_within_a_run() {
        let (_, runs) = run_fig8(&quick(2_000, 200));
        for c in &runs.perfect.checkpoints {
            assert!(c.b_p90 <= c.b_high + 1e-15);
        }
    }

    #[test]
    fn confidence_error_bound_mostly_holds_in_scenario2() {
        let (_, runs) = run_fig8(&quick(3_000, 200));
        let frac = confidence_error_bound_holds(&runs.perfect, &runs.back_to_back, 1.0);
        // The paper reports the bound holding through the decision range.
        assert!(frac > 0.8, "bound held on only {frac} of checkpoints");
    }

    #[test]
    fn tsv_rendering_is_complete() {
        let (set, _) = run_fig8(&quick(1_000, 200));
        let tsv = set.to_tsv();
        // Header + 5 data rows + title line.
        assert_eq!(tsv.lines().count(), 7);
        assert!(tsv.contains("demands"));
    }

    #[test]
    #[should_panic(expected = "up_to")]
    fn bound_check_rejects_bad_fraction() {
        let (_, runs) = run_fig8(&quick(1_000, 500));
        let _ = confidence_error_bound_holds(&runs.perfect, &runs.back_to_back, 1.5);
    }
}
