//! Parallel replication fan-out with deterministic observability merge.
//!
//! [`run_replications`] is the bridge between the generic worker pool
//! ([`wsu_simcore::par`]) and the single-threaded observability sinks
//! ([`ObsSinks`]): every replication gets a **private**
//! recorder/registry pair (created inside its worker, so the
//! `Rc`-backed handles never cross a thread boundary), and after all
//! replications finish their trace events and metric registries are
//! folded into the caller's sinks **in replication order**. Counters
//! and histograms add, gauges take the later replication's value — the
//! same outcome the sequential run produces by writing directly — so
//! the rendered `.prom` snapshot and JSONL trace are byte-identical
//! between `--jobs 1` and `--jobs N`.

use wsu_obs::{MetricsRegistry, Recorder, SharedRecorder, SharedRegistry, TraceEvent};
use wsu_simcore::par::{par_map, Jobs};

use crate::midsim::ObsSinks;

/// One replication's transportable output: the caller's value plus the
/// replication-local observability state, all plain owned data (`Send`).
struct ReplicationOutput<T> {
    value: T,
    events: Vec<TraceEvent>,
    metrics: MetricsRegistry,
}

/// Runs `count` replications on up to `jobs` workers and merges each
/// replication's observability into `sinks` in replication order.
///
/// The closure receives the replication index and a set of sinks to
/// thread through the replication's simulation. When the caller's
/// `sinks` has a recorder (resp. registry) attached, the closure's
/// sinks carry a fresh private one; otherwise that sink stays absent
/// and the replication runs unobserved, exactly like the sequential
/// path.
///
/// Returns the replication values in index order. Determinism contract:
/// for a closure whose value depends only on its index and immutable
/// captures, the returned vector *and* the final content of `sinks`
/// are independent of `jobs`.
pub fn run_replications<T, F>(jobs: Jobs, count: usize, sinks: &ObsSinks, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &ObsSinks) -> T + Sync,
{
    if count <= 1 {
        // Degenerate fan-out: with at most one replication the closure
        // can write straight into the caller's sinks — merging a single
        // private registry into empty sinks reproduces its content bit
        // for bit, so skipping the snapshot, clone and fold changes
        // nothing. (With several replications even `jobs = 1` must keep
        // the private-sink merge: one running histogram sum groups
        // floating-point additions differently than summing per-
        // replication partials.)
        return (0..count).map(|index| f(index, sinks)).collect();
    }
    let want_recorder = sinks.recorder.is_some();
    let want_metrics = sinks.metrics.is_some();
    let outputs = par_map(jobs, count, |index| {
        let local = ObsSinks {
            recorder: want_recorder.then(SharedRecorder::new),
            metrics: want_metrics.then(SharedRegistry::new),
        };
        let value = f(index, &local);
        ReplicationOutput {
            value,
            events: local
                .recorder
                .as_ref()
                .map(SharedRecorder::snapshot)
                .unwrap_or_default(),
            metrics: local
                .metrics
                .as_ref()
                .map(|m| m.with(|registry| registry.clone()))
                .unwrap_or_default(),
        }
    });
    let mut values = Vec::with_capacity(outputs.len());
    for output in outputs {
        if let Some(recorder) = &sinks.recorder {
            let mut recorder = recorder.clone();
            for event in output.events {
                recorder.record(event);
            }
        }
        if let Some(metrics) = &sinks.metrics {
            metrics.with(|registry| registry.merge(&output.metrics));
        }
        values.push(output.value);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed_sinks() -> ObsSinks {
        ObsSinks {
            recorder: Some(SharedRecorder::new()),
            metrics: Some(SharedRegistry::new()),
        }
    }

    fn replicate(index: usize, sinks: &ObsSinks) -> usize {
        if let Some(recorder) = &sinks.recorder {
            recorder.clone().record(TraceEvent::Log {
                t: index as f64,
                demand: index as u64,
                level: "info".to_owned(),
                message: format!("replication {index}"),
            });
        }
        if let Some(metrics) = &sinks.metrics {
            metrics.add_counter("replications_total", &[], 1);
            metrics.set_gauge("last_replication", &[], index as f64);
            metrics.observe("replication_index", &[], index as f64);
        }
        index * 10
    }

    #[test]
    fn values_and_sinks_are_jobs_invariant() {
        let reference_sinks = observed_sinks();
        let reference = run_replications(Jobs::serial(), 9, &reference_sinks, replicate);
        for jobs in [2, 4, 16] {
            let sinks = observed_sinks();
            let values = run_replications(Jobs::new(jobs), 9, &sinks, replicate);
            assert_eq!(values, reference, "values at jobs {jobs}");
            assert_eq!(
                sinks.recorder.as_ref().unwrap().snapshot(),
                reference_sinks.recorder.as_ref().unwrap().snapshot(),
                "trace at jobs {jobs}"
            );
            assert_eq!(
                sinks.metrics.as_ref().unwrap().render_snapshot(),
                reference_sinks.metrics.as_ref().unwrap().render_snapshot(),
                "metrics at jobs {jobs}"
            );
        }
    }

    #[test]
    fn serial_fast_path_matches_the_merged_path() {
        // count <= 1 or jobs == 1 takes the inline path writing straight
        // into the caller's sinks; a parallel run over the same work must
        // leave byte-identical observability behind.
        for count in [0, 1, 6] {
            let inline_sinks = observed_sinks();
            let inline = run_replications(Jobs::serial(), count, &inline_sinks, replicate);
            let merged_sinks = observed_sinks();
            let merged = run_replications(Jobs::new(4), count, &merged_sinks, replicate);
            assert_eq!(inline, merged, "values at count {count}");
            assert_eq!(
                inline_sinks.recorder.as_ref().unwrap().snapshot(),
                merged_sinks.recorder.as_ref().unwrap().snapshot(),
                "trace at count {count}"
            );
            assert_eq!(
                inline_sinks.metrics.as_ref().unwrap().render_snapshot(),
                merged_sinks.metrics.as_ref().unwrap().render_snapshot(),
                "metrics at count {count}"
            );
        }
    }

    #[test]
    fn events_arrive_in_replication_order() {
        let sinks = observed_sinks();
        run_replications(Jobs::new(4), 12, &sinks, replicate);
        let demands: Vec<u64> = sinks
            .recorder
            .as_ref()
            .unwrap()
            .snapshot()
            .iter()
            .map(|e| e.demand())
            .collect();
        assert_eq!(demands, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn counters_add_and_last_gauge_wins() {
        let sinks = observed_sinks();
        run_replications(Jobs::new(3), 5, &sinks, replicate);
        let metrics = sinks.metrics.as_ref().unwrap();
        assert_eq!(metrics.with(|r| r.counter("replications_total", &[])), 5);
        assert_eq!(
            metrics.with(|r| r.gauge("last_replication", &[])),
            Some(4.0)
        );
        assert_eq!(
            metrics.with(|r| r.histogram_count("replication_index", &[])),
            5
        );
    }

    #[test]
    fn disabled_sinks_stay_disabled() {
        let sinks = ObsSinks::default();
        let values = run_replications(Jobs::new(4), 3, &sinks, |i, local| {
            assert!(local.recorder.is_none() && local.metrics.is_none());
            i
        });
        assert_eq!(values, vec![0, 1, 2]);
    }
}
