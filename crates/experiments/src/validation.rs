//! Statistical validation of the workload generators.
//!
//! The reproduction's credibility rests on the generators actually
//! producing the distributions Tables 3–4 and eq. (7) specify. This
//! module implements the two classical checks the test-suite uses:
//!
//! * [`chi_square_statistic`] + [`chi_square_exceeds`] — goodness of fit
//!   of categorical samples against expected probabilities;
//! * [`ks_statistic`] — the Kolmogorov–Smirnov distance between an
//!   empirical sample and a reference CDF.

/// Pearson's chi-square statistic for observed counts against expected
/// probabilities.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `expected`
/// contains non-positive probabilities.
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed and expected must align"
    );
    assert!(!observed.is_empty(), "need at least one class");
    let n: u64 = observed.iter().sum();
    let mut stat = 0.0;
    for (&o, &p) in observed.iter().zip(expected) {
        assert!(p > 0.0, "expected probabilities must be positive");
        let e = n as f64 * p;
        let d = o as f64 - e;
        stat += d * d / e;
    }
    stat
}

/// Critical values of the chi-square distribution at the 99.9%
/// significance level, for 1–9 degrees of freedom. Generators are tested
/// against a *very* loose level so the suite never flakes.
const CHI2_999: [f64; 9] = [
    10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.125, 27.877,
];

/// Returns `true` if the chi-square statistic exceeds the 99.9% critical
/// value for the given degrees of freedom (i.e. the sample is *very*
/// unlikely to come from the expected distribution).
///
/// # Panics
///
/// Panics if `dof` is 0 or greater than 9.
pub fn chi_square_exceeds(stat: f64, dof: usize) -> bool {
    assert!((1..=9).contains(&dof), "dof {dof} out of tabulated range");
    stat > CHI2_999[dof - 1]
}

/// The Kolmogorov–Smirnov statistic of a sample against a reference CDF.
///
/// # Panics
///
/// Panics if the sample is empty or contains non-finite values.
pub fn ks_statistic(sample: &mut [f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!sample.is_empty(), "need at least one observation");
    assert!(
        sample.iter().all(|x| x.is_finite()),
        "sample must be finite"
    );
    sample.sort_by(|a, b| a.total_cmp(b));
    let n = sample.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sample.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// The KS critical value at the 99.9% level for sample size `n`
/// (asymptotic formula `1.949 / sqrt(n)`).
pub fn ks_critical_999(n: usize) -> f64 {
    assert!(n > 0, "need at least one observation");
    1.949 / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_simcore::dist::Exponential;
    use wsu_simcore::rng::{MasterSeed, StreamRng};
    use wsu_workload::outcomes::{CorrelatedOutcomes, OutcomePairGen};
    use wsu_workload::runs::RunSpec;
    use wsu_workload::timing::ExecTimeModel;
    use wsu_wstack::outcome::ResponseClass;

    #[test]
    fn chi_square_accepts_true_distribution() {
        let mut rng = StreamRng::from_seed(1);
        let probs = [0.70, 0.15, 0.15];
        let mut counts = [0u64; 3];
        for _ in 0..100_000 {
            counts[rng.pick_weighted(&probs)] += 1;
        }
        let stat = chi_square_statistic(&counts, &probs);
        assert!(!chi_square_exceeds(stat, 2), "stat {stat}");
    }

    #[test]
    fn chi_square_rejects_wrong_distribution() {
        let mut rng = StreamRng::from_seed(2);
        let mut counts = [0u64; 3];
        for _ in 0..100_000 {
            counts[rng.pick_weighted(&[0.5, 0.25, 0.25])] += 1;
        }
        // Tested against the *wrong* expectation.
        let stat = chi_square_statistic(&counts, &[0.70, 0.15, 0.15]);
        assert!(chi_square_exceeds(stat, 2), "stat {stat}");
    }

    #[test]
    fn run1_correlated_generator_passes_joint_chi_square() {
        // The 9-cell joint distribution of run 1: P(a) * P(b | a).
        let spec = RunSpec::run1();
        let gen = CorrelatedOutcomes::from_run(&spec);
        let mut expected = Vec::with_capacity(9);
        for a in ResponseClass::ALL {
            for b in ResponseClass::ALL {
                expected.push(spec.rel1.prob(a) * spec.conditional.prob(a, b));
            }
        }
        let mut counts = vec![0u64; 9];
        let mut rng = MasterSeed::new(3).stream("validation/run1");
        for _ in 0..200_000 {
            let (a, b) = gen.sample_pair(&mut rng);
            counts[a.index() * 3 + b.index()] += 1;
        }
        let stat = chi_square_statistic(&counts, &expected);
        assert!(!chi_square_exceeds(stat, 8), "stat {stat}");
    }

    #[test]
    fn exponential_sampler_passes_ks() {
        let exp = Exponential::with_mean(0.7);
        let mut rng = StreamRng::from_seed(4);
        let mut sample: Vec<f64> = (0..20_000).map(|_| exp.sample(&mut rng)).collect();
        let d = ks_statistic(&mut sample, |x| 1.0 - (-x / 0.7).exp());
        assert!(d < ks_critical_999(20_000), "d = {d}");
    }

    #[test]
    fn exec_time_model_marginals_pass_ks() {
        // Each release's time is hypoexponential (T1 + T2, means 0.7 +
        // 0.7 = Erlang-2 with rate 1/0.7): CDF 1 - e^{-λt}(1 + λt).
        let model = ExecTimeModel::paper();
        let mut rng = StreamRng::from_seed(5);
        let mut sample: Vec<f64> = (0..20_000)
            .map(|_| model.sample_pair(&mut rng).0.as_secs())
            .collect();
        let lambda = 1.0 / 0.7;
        let d = ks_statistic(&mut sample, |t| {
            1.0 - (-lambda * t).exp() * (1.0 + lambda * t)
        });
        assert!(d < ks_critical_999(20_000), "d = {d}");
    }

    #[test]
    fn ks_detects_wrong_reference() {
        let exp = Exponential::with_mean(0.7);
        let mut rng = StreamRng::from_seed(6);
        let mut sample: Vec<f64> = (0..20_000).map(|_| exp.sample(&mut rng)).collect();
        // Reference with the wrong mean.
        let d = ks_statistic(&mut sample, |x| 1.0 - (-x / 1.4).exp());
        assert!(d > ks_critical_999(20_000), "d = {d}");
    }

    #[test]
    #[should_panic(expected = "align")]
    fn chi_square_rejects_mismatched_lengths() {
        let _ = chi_square_statistic(&[1, 2], &[0.5, 0.25, 0.25]);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn ks_rejects_empty_sample() {
        let _ = ks_statistic(&mut [], |_| 0.0);
    }
}
