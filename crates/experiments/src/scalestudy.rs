//! Scale study: throughput of the sharded demand loop at 1M+ demands.
//!
//! The `--shards` machinery exists to make million-demand runs cheap,
//! so this experiment measures exactly that: one large weighted-fleet
//! deployment served at shard counts {1, 2, 4, 8}, reporting
//! demands/sec per configuration, speedup versus the serial run and
//! the cost of the final merge — while *asserting* the sharding
//! determinism contract on every run (the merged dependability digest
//! must be byte-identical at every shard count, or the study panics).
//!
//! # The shard-native world
//!
//! Each shard owns the demands `id % K == shard` ([`Shards::owner_of`])
//! and serves them on a private [`DemandWorker`] built on the shard's
//! own thread ([`run_epochs_local`] — the worker is deliberately not
//! `Send`). Demand randomness is keyed by the *global* demand id
//! (`indexed_stream("serve-demand", id)`, the sharded-[`ServeSpec`]
//! contract), so a demand's outcome depends only on `(seed, id,
//! weights-at-id)` — never on the partition. Per-shard statistics are
//! exactly mergeable: integer verdict/source counters, an integer
//! nanosecond latency sum, and a [`QuantileSketch`] whose bucket
//! counts add; the merge folds shards in shard order `0..K`.
//!
//! # The cutover broadcast
//!
//! Mid-run the fleet promotes its newest release. Only shard 0 — the
//! controller shard — knows the upgrade plan; it announces the cutover
//! through the epoch mailbox one epoch ahead of the cutover epoch, so
//! every shard (including itself: self-sends deliver next epoch)
//! holds the new weights before serving any demand with `id >=
//! cutover`. The cutover id is epoch-aligned for every configured
//! shard count (`cutover % (K·block) == 0`), which makes "applies from
//! demand `cutover` onwards" the same statement at any `K` — the
//! epoch-boundary weight-cutover contract from the sharding design.

use std::time::{Duration, Instant};

use wsu_core::middleware::MiddlewareConfig;
use wsu_core::modes::OperatingMode;
use wsu_core::serve::{DemandOutcome, DemandWorker, ReleaseSpec, ServeSpec};
use wsu_obs::quantile::QuantileSketch;
use wsu_simcore::dist::DelayModel;
use wsu_simcore::shard::{run_epochs_local, Outbox, ShardWorld, Shards};
use wsu_wstack::outcome::OutcomeProfile;

/// Index of the release the controller promotes at the cutover.
const PROMOTED_RELEASE: usize = 2;

/// Configuration of one scale sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Total demands served per configuration.
    pub demands: u64,
    /// Shard counts to sweep, in report order (first is the baseline).
    pub shard_counts: Vec<usize>,
    /// Demands each shard serves per epoch.
    pub block: u64,
    /// Global demand id at which the promotion applies. Must be
    /// aligned to `K * block` for every swept `K` (so the cutover sits
    /// on an epoch boundary at any shard count) and lie inside the
    /// run.
    pub cutover: u64,
}

impl ScaleConfig {
    /// The paper-scale sweep: one million demands at shard counts
    /// {1, 2, 4, 8}, promoting the newest release halfway through.
    pub fn paper() -> ScaleConfig {
        ScaleConfig {
            demands: 1_000_000,
            shard_counts: vec![1, 2, 4, 8],
            block: 4096,
            cutover: 524_288,
        }
    }

    /// A sweep small enough for tests and the CI golden: 32 Ki demands
    /// at shard counts {1, 2, 4}.
    pub fn quick() -> ScaleConfig {
        ScaleConfig {
            demands: 32_768,
            shard_counts: vec![1, 2, 4],
            block: 512,
            cutover: 16_384,
        }
    }

    /// Panics unless the cutover is epoch-aligned and in range for
    /// every swept shard count — the preconditions the broadcast
    /// protocol needs.
    fn validate(&self) {
        assert!(
            !self.shard_counts.is_empty(),
            "sweep at least one shard count"
        );
        assert!(self.block > 0, "block must be positive");
        for &k in &self.shard_counts {
            assert!(k > 0, "shard counts must be positive");
            let stride = k as u64 * self.block;
            assert!(
                self.cutover.is_multiple_of(stride),
                "cutover {} must be a multiple of K*block = {} (K = {k})",
                self.cutover,
                stride
            );
            assert!(
                self.cutover >= stride,
                "cutover {} needs at least one epoch of lookahead at K = {k}",
                self.cutover
            );
        }
        assert!(
            self.cutover < self.demands,
            "cutover {} must happen inside the run ({} demands)",
            self.cutover,
            self.demands
        );
    }
}

/// The deployment the study serves: a three-release weighted fleet
/// with stochastic outcomes and exponential execution times, sharded
/// (demand randomness keyed by global demand id).
pub fn scale_spec(seed: u64) -> ServeSpec {
    let middleware = MiddlewareConfig {
        mode: OperatingMode::WeightedFleet,
        ..MiddlewareConfig::default()
    };
    ServeSpec::new(middleware, seed)
        .with_release(
            ReleaseSpec::new(
                "Quote",
                "1.0",
                OutcomeProfile::new(0.999, 0.0005, 0.0005),
                DelayModel::exponential(0.3),
            )
            .with_weight(0.7),
        )
        .with_release(
            ReleaseSpec::new(
                "Quote",
                "1.1",
                OutcomeProfile::new(0.9995, 0.00025, 0.00025),
                DelayModel::exponential(0.25),
            )
            .with_weight(0.2),
        )
        .with_release(
            ReleaseSpec::new(
                "Quote",
                "1.2",
                OutcomeProfile::new(0.9999, 0.00005, 0.00005),
                DelayModel::exponential(0.2),
            )
            .with_weight(0.1),
        )
        .with_sharding()
}

/// Exactly mergeable per-shard dependability statistics: integer
/// counters, an integer nanosecond latency sum and a bucket-count
/// quantile sketch. Merging shards in shard order reproduces the
/// serial run's digest bit for bit.
#[derive(Debug, Clone)]
pub struct ScaleStats {
    /// Demands served.
    pub demands: u64,
    /// Verdict counts in table order: CR, ER, NER, NRDT.
    pub verdicts: [u64; 4],
    /// Total releases that responded within the timeout.
    pub responders: u64,
    /// How many demands each release's response was forwarded for.
    pub source: Vec<u64>,
    /// Sum of response times in integer nanoseconds (each demand's
    /// wait rounded once — associative, so partition-independent).
    pub response_ns: u128,
    /// Response-time sketch (seconds); bucket counts add under merge.
    pub latency: QuantileSketch,
}

impl ScaleStats {
    fn new(releases: usize) -> ScaleStats {
        ScaleStats {
            demands: 0,
            verdicts: [0; 4],
            responders: 0,
            source: vec![0; releases],
            response_ns: 0,
            latency: QuantileSketch::default(),
        }
    }

    fn record(&mut self, outcome: &DemandOutcome) {
        self.demands += 1;
        let v = match outcome.verdict_label() {
            "CR" => 0,
            "ER" => 1,
            "NER" => 2,
            _ => 3, // NRDT
        };
        self.verdicts[v] += 1;
        self.responders += outcome.responders as u64;
        if let Some(release) = outcome.source {
            self.source[release] += 1;
        }
        self.response_ns += (outcome.response_time * 1e9).round() as u128;
        self.latency.observe(outcome.response_time);
    }

    /// Folds `other` into `self`. Call in shard order.
    pub fn merge(&mut self, other: &ScaleStats) {
        self.demands += other.demands;
        for (a, b) in self.verdicts.iter_mut().zip(&other.verdicts) {
            *a += b;
        }
        self.responders += other.responders;
        for (a, b) in self.source.iter_mut().zip(&other.source) {
            *a += b;
        }
        self.response_ns += other.response_ns;
        self.latency.merge(&other.latency);
    }

    /// The canonical digest the determinism contract is enforced on:
    /// every integer counter plus the sketch's rank queries (bucket
    /// counts and exact min/max — all partition-independent). The f64
    /// bucket estimates are printed with full precision, so two digests
    /// agree only if the merged sketches agree bit for bit.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = writeln!(out, "demands    {}", self.demands);
        let _ = writeln!(
            out,
            "verdicts   CR={} ER={} NER={} NRDT={}",
            self.verdicts[0], self.verdicts[1], self.verdicts[2], self.verdicts[3]
        );
        let _ = writeln!(out, "responders {}", self.responders);
        let sources: Vec<String> = self
            .source
            .iter()
            .enumerate()
            .map(|(i, n)| format!("r{i}={n}"))
            .collect();
        let _ = writeln!(out, "source     {}", sources.join(" "));
        let mean_ns = self.response_ns / u128::from(self.demands.max(1));
        let _ = writeln!(out, "mean_ns    {mean_ns}");
        for (q, label) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999")] {
            let ns = self.latency.quantile(q).unwrap_or(f64::NAN) * 1e9;
            let _ = writeln!(out, "{:<10} {ns:.0}", format!("{label}_ns"));
        }
        out
    }
}

/// The weight cutover the controller shard broadcasts: promote
/// `release` for all demands with global id `>= at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cutover {
    at: u64,
    release: usize,
}

/// One shard of the scale world: a private [`DemandWorker`] serving
/// the demands this shard owns, one block per epoch.
struct ScaleShard<'a> {
    shard: usize,
    shards: Shards,
    config: &'a ScaleConfig,
    worker: DemandWorker,
    /// Demands this shard owns in total.
    owned: u64,
    /// Owned demands already served.
    served: u64,
    /// Cutover announced by the controller, not yet applied.
    pending: Option<Cutover>,
    stats: ScaleStats,
}

impl<'a> ScaleShard<'a> {
    fn new(
        shard: usize,
        shards: Shards,
        config: &'a ScaleConfig,
        spec: &ServeSpec,
    ) -> ScaleShard<'a> {
        let k = shards.get() as u64;
        let n = config.demands;
        let owned = n / k + u64::from((shard as u64) < n % k);
        ScaleShard {
            shard,
            shards,
            config,
            worker: spec.worker(shard as u64),
            owned,
            served: 0,
            pending: None,
            stats: ScaleStats::new(spec.releases.len()),
        }
    }
}

impl ShardWorld for ScaleShard<'_> {
    type Msg = Cutover;

    fn epoch(
        &mut self,
        epoch: u64,
        inbox: Vec<(usize, Cutover)>,
        outbox: &mut Outbox<Cutover>,
    ) -> bool {
        for (_src, cutover) in inbox {
            self.pending = Some(cutover);
        }
        let k = self.shards.get() as u64;
        // Controller duty: announce the cutover one epoch ahead so
        // every shard holds it before serving any demand >= cutover.
        let cutover_epoch = self.config.cutover / (k * self.config.block);
        if self.shard == 0 && epoch + 1 == cutover_epoch {
            let msg = Cutover {
                at: self.config.cutover,
                release: PROMOTED_RELEASE,
            };
            for dst in 0..self.shards.get() {
                outbox.send(dst, msg);
            }
        }
        // Serve this epoch's block of owned demands, applying the
        // announced cutover at its exact global-id boundary.
        let start = epoch * self.config.block;
        let end = (start + self.config.block).min(self.owned);
        for j in start..end.max(start) {
            let global = self.shard as u64 + j * k;
            if let Some(cutover) = self.pending.take_if(|c| global >= c.at) {
                self.worker
                    .promote(cutover.release)
                    .expect("promoted release is deployed");
            }
            let outcome = self
                .worker
                .demand_indexed(global)
                .expect("the scale spec deploys releases");
            self.stats.record(&outcome);
        }
        self.served = end.max(self.served);
        self.served < self.owned
    }
}

/// One swept configuration's measurement.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Shard count.
    pub shards: usize,
    /// Epochs the barrier executed.
    pub epochs: u64,
    /// Wall-clock time of the sharded demand loop.
    pub elapsed: Duration,
    /// Wall-clock time of the final shard-order merge.
    pub merge_elapsed: Duration,
    /// Merged dependability statistics.
    pub stats: ScaleStats,
}

impl ScaleRun {
    /// Demands served per wall-clock second.
    pub fn demands_per_sec(&self) -> f64 {
        self.stats.demands as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Wall-clock nanoseconds per demand (loop only).
    pub fn ns_per_demand(&self) -> u64 {
        (self.elapsed.as_nanos() / u128::from(self.stats.demands.max(1))) as u64
    }

    /// Merge cost as a fraction of total (loop + merge) wall clock.
    pub fn merge_overhead(&self) -> f64 {
        let total = self.elapsed.as_secs_f64() + self.merge_elapsed.as_secs_f64();
        self.merge_elapsed.as_secs_f64() / total.max(1e-12)
    }
}

/// Runs one configuration of the scale world.
pub fn run_scale(config: &ScaleConfig, seed: u64, shards: Shards) -> ScaleRun {
    let spec = scale_spec(seed);
    let start = Instant::now();
    let (per_shard, epochs) = run_epochs_local(
        shards,
        |shard| ScaleShard::new(shard, shards, config, &spec),
        |_, world| world.stats,
    );
    let elapsed = start.elapsed();
    let merge_start = Instant::now();
    let mut merged = ScaleStats::new(spec.releases.len());
    for stats in &per_shard {
        merged.merge(stats);
    }
    let merge_elapsed = merge_start.elapsed();
    ScaleRun {
        shards: shards.get(),
        epochs,
        elapsed,
        merge_elapsed,
        stats: merged,
    }
}

/// The whole sweep: one [`ScaleRun`] per configured shard count plus
/// the digest every run agreed on.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Swept configurations in [`ScaleConfig::shard_counts`] order.
    pub runs: Vec<ScaleRun>,
    /// The canonical dependability digest (identical for every run).
    pub digest: String,
    /// Total demands per configuration.
    pub demands: u64,
    /// The cutover demand id.
    pub cutover: u64,
}

impl ScaleReport {
    /// Speedup of run `i` versus the sweep's first (baseline) run.
    pub fn speedup(&self, i: usize) -> f64 {
        self.runs[0].elapsed.as_secs_f64() / self.runs[i].elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs the sweep, **asserting** the determinism contract: every shard
/// count must produce the identical merged digest.
///
/// # Panics
///
/// If any shard count's digest deviates from the baseline's — that
/// would mean the sharded loop changed an observable output, which is
/// exactly what the contract forbids.
pub fn run_scalestudy(config: &ScaleConfig, seed: u64) -> ScaleReport {
    config.validate();
    let mut runs = Vec::with_capacity(config.shard_counts.len());
    let mut digest: Option<String> = None;
    for &k in &config.shard_counts {
        let run = run_scale(config, seed, Shards::new(k));
        let d = run.stats.digest();
        match &digest {
            None => digest = Some(d),
            Some(expect) => assert!(
                d == *expect,
                "shards {k} changed the merged digest:\n--- shards {} ---\n{expect}--- shards {k} ---\n{d}",
                config.shard_counts[0]
            ),
        }
        runs.push(run);
    }
    ScaleReport {
        runs,
        digest: digest.expect("at least one run"),
        demands: config.demands,
        cutover: config.cutover,
    }
}

/// The deterministic stdout table: the sweep's shared dependability
/// digest. Contains no timing, so it can be diffed against a golden.
pub fn render_table(report: &ScaleReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512);
    let counts: Vec<String> = report.runs.iter().map(|r| r.shards.to_string()).collect();
    let _ = writeln!(
        out,
        "scalestudy: {} demands, promote r{PROMOTED_RELEASE} at demand {}",
        report.demands, report.cutover
    );
    let _ = writeln!(
        out,
        "shard counts swept: {} (merged outputs byte-identical)",
        counts.join(" ")
    );
    out.push('\n');
    out.push_str(&report.digest);
    out
}

/// The timing side of the sweep (demands/sec, speedup, merge
/// overhead) — wall-clock, so **not** part of the golden.
pub fn render_timing(report: &ScaleReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512);
    let _ = writeln!(
        out,
        "{:>7} {:>9} {:>14} {:>9} {:>11} {:>8}",
        "shards", "epochs", "demands/sec", "speedup", "ns/demand", "merge%"
    );
    for (i, run) in report.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>7} {:>9} {:>14.0} {:>8.2}x {:>11} {:>7.3}%",
            run.shards,
            run.epochs,
            run.demands_per_sec(),
            report.speedup(i),
            run.ns_per_demand(),
            run.merge_overhead() * 100.0
        );
    }
    out
}

/// Renders the sweep as a `wsu-bench/1` report (the `BENCH_scale.json`
/// format): one `scale/shardsK/loop_ns` row per configuration plus one
/// merge-cost row, all in nanoseconds so the stock `bench_compare`
/// guard can diff two runs. The `demands_per_sec`, `speedup` and
/// `ns_per_demand` arrays are informational — `bench_compare` ignores
/// unknown fields.
pub fn render_bench_json(report: &ScaleReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"wsu-bench/1\",\n");
    out.push_str("  \"bench\": \"BENCH_scale\",\n");
    out.push_str("  \"unit\": \"ns\",\n");
    let _ = writeln!(out, "  \"demands\": {},", report.demands);
    let counts: Vec<String> = report.runs.iter().map(|r| r.shards.to_string()).collect();
    let _ = writeln!(out, "  \"shard_counts\": [{}],", counts.join(", "));
    let dps: Vec<String> = report
        .runs
        .iter()
        .map(|r| format!("{:.1}", r.demands_per_sec()))
        .collect();
    let _ = writeln!(out, "  \"demands_per_sec\": [{}],", dps.join(", "));
    let speedups: Vec<String> = (0..report.runs.len())
        .map(|i| format!("{:.3}", report.speedup(i)))
        .collect();
    let _ = writeln!(out, "  \"speedup\": [{}],", speedups.join(", "));
    let per_demand: Vec<String> = report
        .runs
        .iter()
        .map(|r| r.ns_per_demand().to_string())
        .collect();
    let _ = writeln!(out, "  \"ns_per_demand\": [{}],", per_demand.join(", "));
    out.push_str("  \"results\": [\n");
    // Gate on the whole loop's wall clock (ns/demand sits under
    // bench_compare's too-small floor and would never fail).
    let mut entries: Vec<(String, u64)> = Vec::new();
    for run in &report.runs {
        entries.push((
            format!("scale/shards{}/loop_ns", run.shards),
            run.elapsed.as_nanos() as u64,
        ));
    }
    for run in &report.runs {
        entries.push((
            format!("scale/shards{}/merge_ns", run.shards),
            run.merge_elapsed.as_nanos() as u64,
        ));
    }
    for (i, (name, value)) in entries.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{name}\", \"median_ns\": {value}, \"min_ns\": {value}, \"max_ns\": {value} }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            demands: 4_096,
            shard_counts: vec![1, 2, 4],
            block: 128,
            cutover: 2_048,
        }
    }

    #[test]
    fn sweep_digests_are_shard_count_invariant() {
        // run_scalestudy asserts digest equality internally; this test
        // additionally pins the bookkeeping around it.
        let report = run_scalestudy(&tiny(), DEFAULT_SEED.value());
        assert_eq!(report.runs.len(), 3);
        for run in &report.runs {
            assert_eq!(run.stats.demands, 4_096);
            assert_eq!(run.stats.verdicts.iter().sum::<u64>(), 4_096);
            assert_eq!(run.stats.digest(), report.digest);
            // Every shard serves blocks of 128 until its share is done.
            assert!(run.epochs >= 4_096 / (128 * run.shards as u64));
        }
        assert!((report.speedup(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cutover_routes_the_tail_to_the_promoted_release() {
        let config = tiny();
        let report = run_scalestudy(&config, DEFAULT_SEED.value());
        let stats = &report.runs[0].stats;
        let tail = config.demands - config.cutover;
        // Post-cutover, release 2 carries all traffic; pre-cutover it
        // carried ~10%. Its forwarded count must dominate the tail.
        assert!(
            stats.source[2] as f64 > tail as f64 * 0.9,
            "promoted release forwarded only {} of a {} demand tail",
            stats.source[2],
            tail
        );
        // And the stable release still served most of the head.
        assert!(stats.source[0] as f64 > config.cutover as f64 * 0.5);
    }

    #[test]
    fn digest_and_table_are_deterministic() {
        let a = run_scalestudy(&tiny(), DEFAULT_SEED.value());
        let b = run_scalestudy(&tiny(), DEFAULT_SEED.value());
        assert_eq!(a.digest, b.digest);
        assert_eq!(render_table(&a), render_table(&b));
        assert!(render_table(&a).contains("scalestudy: 4096 demands"));
        // A different seed actually changes the digest.
        let c = run_scalestudy(&tiny(), DEFAULT_SEED.value() + 1);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn bench_json_has_the_wsu_bench_rows() {
        let report = run_scalestudy(&tiny(), DEFAULT_SEED.value());
        let json = render_bench_json(&report);
        assert!(json.contains("\"schema\": \"wsu-bench/1\""));
        assert!(json.contains("\"bench\": \"BENCH_scale\""));
        assert!(json.contains("\"name\": \"scale/shards1/loop_ns\""));
        assert!(json.contains("\"name\": \"scale/shards4/merge_ns\""));
        assert!(json.contains("\"ns_per_demand\": ["));
        assert!(json.contains("\"speedup\": [1.000, "));
        let timing = render_timing(&report);
        assert!(timing.contains("demands/sec"));
        assert_eq!(timing.lines().count(), 1 + report.runs.len());
    }

    #[test]
    #[should_panic(expected = "multiple of K*block")]
    fn misaligned_cutover_is_rejected() {
        let mut config = tiny();
        config.cutover = 2_050;
        run_scalestudy(&config, DEFAULT_SEED.value());
    }
}
