//! Reproduction harness for the paper's evaluation.
//!
//! One module per experiment, each exposing a `run_*` function returning
//! structured results plus a text rendering that mirrors the paper's
//! table/figure:
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 2 (duration of managed upgrade) | [`table2`] | `table2` |
//! | Fig. 7 (Scenario 1 percentiles) | [`figures`] | `fig7` |
//! | Fig. 8 (Scenario 2 percentiles) | [`figures`] | `fig8` |
//! | Table 5 (correlated releases) | [`table5`] | `table5` |
//! | Table 6 (independent releases) | [`table6`] | `table6` |
//! | Ablations (adjudicators, modes, coverage, priors) | [`ablation`] | `ablations` |
//!
//! Shared drivers: [`bayes_study`] (Monte-Carlo demands + white-box
//! inference checkpoints, Section 5.1) and [`midsim`] (the event-driven
//! middleware simulation, Section 5.2). [`report`] renders aligned text
//! tables.
//!
//! Serving: [`serve`] (binary `wsu-serve`) runs the upgrade middleware
//! behind a thread-per-core HTTP accept loop, and [`loadgen`] (binary
//! `wsu-loadgen`) drives it closed-loop and publishes
//! `results/BENCH_http.json`.
//!
//! All experiments are deterministic given a [`MasterSeed`]; the
//! binaries use [`DEFAULT_SEED`].
//!
//! [`MasterSeed`]: wsu_simcore::rng::MasterSeed

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod analyze;
pub mod bayes_study;
pub mod campaign;
pub mod capacity;
pub mod figures;
pub mod fleetstudy;
pub mod loadgen;
pub mod midsim;
pub mod obs;
pub mod replicate;
pub mod report;
pub mod scalestudy;
pub mod serve;
pub mod table2;
pub mod table5;
pub mod table6;
pub mod validation;

use wsu_simcore::rng::MasterSeed;

/// The seed all experiment binaries use, so published numbers are
/// reproducible bit for bit.
pub const DEFAULT_SEED: MasterSeed = MasterSeed::new(0x5745_4253_5643_5550); // "WEBSVCUP"

/// Number of requests in the paper's middleware simulation (Tables 5–6).
pub const PAPER_REQUESTS: u64 = 10_000;

/// The timeouts of the paper's middleware simulation, in seconds.
pub const PAPER_TIMEOUTS: [f64; 3] = [1.5, 2.0, 3.0];
