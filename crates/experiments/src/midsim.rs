//! The event-driven middleware simulation (paper Section 5.2).
//!
//! Reproduces the paper's model: 10,000 requests processed closed-loop
//! (each new request is issued when the previous adjudicated response is
//! delivered), two releases whose joint outcomes come from a workload
//! generator, execution times from eq. (7), and the parallel-reliability
//! middleware with timeouts of 1.5/2.0/3.0 s and `dT = 0.1 s`.
//!
//! As in the paper, all timeout columns of one run replay the *same*
//! planned demands, so differences between columns are purely the
//! timeout's effect.

use wsu_core::middleware::{MiddlewareConfig, ReleaseObservation, UpgradeMiddleware};
use wsu_core::monitor::{MonitoringSubsystem, ReleaseStats, SystemStats};
use wsu_core::release::ReleaseId;
use wsu_obs::{SharedRecorder, SharedRegistry};
use wsu_simcore::engine::{Engine, Handler};
use wsu_simcore::rng::{MasterSeed, StreamRng};
use wsu_simcore::shard::{shard_pipeline, Shards};
use wsu_simcore::time::SimTime;
use wsu_workload::demand::{DemandPlanner, PlannedDemand};
use wsu_workload::outcomes::OutcomePairGen;
use wsu_workload::timing::ExecTimeModel;
use wsu_wstack::endpoint::ScriptedEndpoint;
use wsu_wstack::message::Envelope;
use wsu_wstack::outcome::ResponseClass;

/// Optional observability sinks threaded through a simulation.
///
/// The default value has both sinks absent, which reproduces the
/// unobserved simulation byte for byte: the middleware keeps its
/// [`wsu_obs::NullRecorder`] and the monitor records no metrics.
#[derive(Debug, Clone, Default)]
pub struct ObsSinks {
    /// Trace recorder attached to the middleware, if any.
    pub recorder: Option<SharedRecorder>,
    /// Metrics registry attached to the monitor, if any.
    pub metrics: Option<SharedRegistry>,
}

impl ObsSinks {
    /// `true` when at least one sink is attached.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some() || self.metrics.is_some()
    }
}

/// The per-group statistics of one table cell (release 1, release 2 or
/// the system column group of Tables 5–6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStats {
    /// Mean execution time (per-release: over all responses; system:
    /// consumer-visible response time), in seconds.
    pub met: f64,
    /// Correct responses.
    pub cr: u64,
    /// Evident failures ("EER" in the tables).
    pub eer: u64,
    /// Non-evident failures.
    pub ner: u64,
    /// Total responses within the timeout.
    pub total: u64,
    /// Demands without a response within the timeout.
    pub nrdt: u64,
}

impl GroupStats {
    fn from_release(stats: &ReleaseStats) -> GroupStats {
        GroupStats {
            met: stats.mean_exec_time(),
            cr: stats.count(ResponseClass::Correct),
            eer: stats.count(ResponseClass::EvidentFailure),
            ner: stats.count(ResponseClass::NonEvidentFailure),
            total: stats.total_responses(),
            nrdt: stats.nrdt(),
        }
    }

    fn from_system(stats: &SystemStats) -> GroupStats {
        GroupStats {
            met: stats.mean_response_time(),
            cr: stats.count(ResponseClass::Correct),
            eer: stats.count(ResponseClass::EvidentFailure),
            ner: stats.count(ResponseClass::NonEvidentFailure),
            total: stats.total_responses(),
            nrdt: stats.nrdt(),
        }
    }

    /// Fraction of all demands answered correctly.
    pub fn correct_fraction(&self) -> f64 {
        let demands = self.total + self.nrdt;
        if demands == 0 {
            0.0
        } else {
            self.cr as f64 / demands as f64
        }
    }
}

/// One simulated cell: a (run, timeout) combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// The middleware timeout, seconds.
    pub timeout: f64,
    /// Requests processed.
    pub requests: u64,
    /// Release 1's column group.
    pub rel1: GroupStats,
    /// Release 2's column group.
    pub rel2: GroupStats,
    /// The system's column group.
    pub system: GroupStats,
}

/// The closed-loop demand event.
#[derive(Debug)]
struct NextDemand;

/// The simulation world: middleware + monitor + remaining demands.
struct World {
    middleware: UpgradeMiddleware,
    monitor: MonitoringSubsystem,
    remaining: u64,
    request: Envelope,
    mw_rng: StreamRng,
    mon_rng: StreamRng,
}

impl Handler<NextDemand> for World {
    fn handle(&mut self, engine: &mut Engine<NextDemand>, _event: NextDemand) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        // Stamp the demand's trace events with its dispatch instant. This
        // is a plain field store, so the unobserved simulation is
        // unaffected.
        self.middleware.set_virtual_time(engine.now().as_secs());
        let record = self
            .middleware
            .process(&self.request, &mut self.mw_rng)
            .expect("releases deployed");
        let wait = record.system.response_time;
        self.monitor.observe(&record, &mut self.mon_rng);
        // The record has been fully observed; hand its buffers back so
        // the next demand reuses them instead of allocating.
        self.middleware.recycle(record);
        if self.remaining > 0 {
            // Closed loop: the next request leaves when this response
            // reaches the consumer.
            engine.schedule_in(wait, NextDemand);
        }
    }
}

/// Simulates one cell: the given planned demands through a middleware
/// with the given configuration.
///
/// # Panics
///
/// Panics if `demands` is empty.
pub fn simulate_cell(
    demands: &[PlannedDemand],
    config: MiddlewareConfig,
    seed: MasterSeed,
) -> CellResult {
    simulate_cell_observed(demands, config, seed, &ObsSinks::default(), "cell")
}

/// [`simulate_cell`] with observability sinks attached.
///
/// When a recorder is present the middleware emits per-demand trace
/// events stamped with the engine's virtual time; when a registry is
/// present the monitor mirrors its counts into it and the engine's
/// post-run totals land in `wsu_engine_events_processed` /
/// `wsu_engine_queue_high_water` gauges labelled with `tag`.
///
/// # Panics
///
/// Panics if `demands` is empty.
pub fn simulate_cell_observed(
    demands: &[PlannedDemand],
    config: MiddlewareConfig,
    seed: MasterSeed,
    sinks: &ObsSinks,
    tag: &str,
) -> CellResult {
    assert!(!demands.is_empty(), "need at least one planned demand");
    let mut rel1 = ScriptedEndpoint::new("Component", "1.0");
    let mut rel2 = ScriptedEndpoint::new("Component", "1.1");
    for d in demands {
        rel1.push(d.rel1);
        rel2.push(d.rel2);
    }
    let mut middleware = UpgradeMiddleware::new(config);
    let id1 = middleware.deploy(rel1);
    let id2 = middleware.deploy(rel2);
    debug_assert_eq!(id1, ReleaseId::new(0));
    debug_assert_eq!(id2, ReleaseId::new(1));
    if let Some(recorder) = &sinks.recorder {
        middleware.set_recorder(recorder.clone());
    }
    let mut monitor = MonitoringSubsystem::new(0);
    if let Some(metrics) = &sinks.metrics {
        monitor.set_metrics(metrics.clone());
    }

    let mut world = World {
        middleware,
        monitor,
        remaining: demands.len() as u64,
        request: Envelope::request("invoke"),
        mw_rng: seed.stream("midsim/middleware"),
        mon_rng: seed.stream("midsim/monitor"),
    };
    let mut engine = Engine::new();
    engine.schedule_at(SimTime::ZERO, NextDemand);
    engine.run(&mut world);
    if let Some(metrics) = &sinks.metrics {
        metrics.set_gauge(
            "wsu_engine_events_processed",
            &[("cell", tag)],
            engine.processed() as f64,
        );
        metrics.set_gauge(
            "wsu_engine_queue_high_water",
            &[("cell", tag)],
            engine.queue_high_water() as f64,
        );
    }

    let r1 = world
        .monitor
        .release_stats(ReleaseId::new(0))
        .expect("release 1 observed");
    let r2 = world
        .monitor
        .release_stats(ReleaseId::new(1))
        .expect("release 2 observed");
    CellResult {
        timeout: config.timeout.as_secs(),
        requests: demands.len() as u64,
        rel1: GroupStats::from_release(r1),
        rel2: GroupStats::from_release(r2),
        system: GroupStats::from_system(world.monitor.system_stats()),
    }
}

/// [`simulate_cell_observed`] with intra-cell sharding: the demand loop
/// runs as a prepare/commit pipeline (see
/// [`wsu_simcore::shard::shard_pipeline`]).
///
/// Shard workers resolve each demand's per-release observations
/// straight from the plan — plan-determined data, no RNG — while the
/// sequential committer replays the serial loop exactly: demand
/// sequence numbers, adjudication RNG draws, monitor float
/// accumulation, trace emission, and the closed-loop clock all happen
/// in demand order, so the result (tables, `.prom` snapshots, JSONL
/// traces) is **byte-identical at any shard count**, including
/// [`Shards::serial`], which delegates to the serial engine outright.
///
/// # Panics
///
/// Panics if `demands` is empty.
pub fn simulate_cell_sharded(
    demands: &[PlannedDemand],
    config: MiddlewareConfig,
    seed: MasterSeed,
    sinks: &ObsSinks,
    tag: &str,
    shards: Shards,
) -> CellResult {
    if shards.get() <= 1 {
        return simulate_cell_observed(demands, config, seed, sinks, tag);
    }
    assert!(!demands.is_empty(), "need at least one planned demand");
    let mut middleware = UpgradeMiddleware::new(config);
    if let Some(recorder) = &sinks.recorder {
        middleware.set_recorder(recorder.clone());
    }
    let mut monitor = MonitoringSubsystem::new(0);
    if let Some(metrics) = &sinks.metrics {
        monitor.set_metrics(metrics.clone());
    }
    let mut mw_rng = seed.stream("midsim/middleware");
    let mut mon_rng = seed.stream("midsim/monitor");
    let timeout = config.timeout;
    // The closed-loop clock, accumulated with the same f64 additions the
    // serial engine performs (`due = now + wait`), so trace timestamps
    // match bit for bit.
    let mut clock = 0.0_f64;
    shard_pipeline(
        shards,
        demands.len(),
        |i| {
            let d = &demands[i];
            vec![
                ReleaseObservation {
                    release: ReleaseId::new(0),
                    class: d.rel1.class,
                    exec_time: d.rel1.exec_time,
                    within_timeout: d.rel1.exec_time <= timeout,
                },
                ReleaseObservation {
                    release: ReleaseId::new(1),
                    class: d.rel2.class,
                    exec_time: d.rel2.exec_time,
                    within_timeout: d.rel2.exec_time <= timeout,
                },
            ]
        },
        |_, per_release| {
            middleware.set_virtual_time(clock);
            let record = middleware
                .process_prepared(per_release, &mut mw_rng)
                .expect("prepared observations are non-empty");
            let wait = record.system.response_time;
            monitor.observe(&record, &mut mon_rng);
            middleware.recycle(record);
            clock += wait.as_secs();
        },
    );
    if let Some(metrics) = &sinks.metrics {
        // What the serial engine reports for this world: one event per
        // demand, never more than one in flight.
        metrics.set_gauge(
            "wsu_engine_events_processed",
            &[("cell", tag)],
            demands.len() as f64,
        );
        metrics.set_gauge("wsu_engine_queue_high_water", &[("cell", tag)], 1.0);
    }

    let r1 = monitor
        .release_stats(ReleaseId::new(0))
        .expect("release 1 observed");
    let r2 = monitor
        .release_stats(ReleaseId::new(1))
        .expect("release 2 observed");
    CellResult {
        timeout: config.timeout.as_secs(),
        requests: demands.len() as u64,
        rel1: GroupStats::from_release(r1),
        rel2: GroupStats::from_release(r2),
        system: GroupStats::from_system(monitor.system_stats()),
    }
}

/// Plans `requests` demands for a run and simulates every timeout column
/// over the *same* plan.
pub fn simulate_run(
    outcomes: &dyn OutcomePairGen,
    timing: ExecTimeModel,
    requests: u64,
    timeouts: &[f64],
    seed: MasterSeed,
    run_tag: &str,
) -> Vec<CellResult> {
    simulate_run_observed(
        outcomes,
        timing,
        requests,
        timeouts,
        seed,
        run_tag,
        &ObsSinks::default(),
    )
}

/// Plans one run's demands: the joint outcomes and execution times all
/// timeout columns of that run replay.
///
/// The plan stream is derived from `(seed, run_tag)` alone, so any
/// replication (or worker thread) re-deriving the plan for the same run
/// obtains the identical batch — the property the parallel runner
/// relies on when each `(run, timeout)` cell replans independently.
pub fn plan_run(
    outcomes: &dyn OutcomePairGen,
    timing: ExecTimeModel,
    requests: u64,
    seed: MasterSeed,
    run_tag: &str,
) -> Vec<PlannedDemand> {
    let mut planner = DemandPlanner::new(outcomes, timing, "invoke");
    let mut plan_rng = seed.stream(&format!("midsim/plan/{run_tag}"));
    planner.plan_batch(requests as usize, &mut plan_rng)
}

/// [`simulate_run`] with observability sinks attached; each timeout
/// column's engine gauges are tagged `"{run_tag}/t{timeout}"`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_run_observed(
    outcomes: &dyn OutcomePairGen,
    timing: ExecTimeModel,
    requests: u64,
    timeouts: &[f64],
    seed: MasterSeed,
    run_tag: &str,
    sinks: &ObsSinks,
) -> Vec<CellResult> {
    let plan = plan_run(outcomes, timing, requests, seed, run_tag);
    timeouts
        .iter()
        .map(|&t| {
            let tag = format!("{run_tag}/t{t}");
            simulate_cell_observed(&plan, MiddlewareConfig::paper(t), seed, sinks, &tag)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_workload::outcomes::{CorrelatedOutcomes, IndependentOutcomes};
    use wsu_workload::runs::RunSpec;

    fn quick_run(correlated: bool, requests: u64) -> Vec<CellResult> {
        let run = RunSpec::run1();
        let timing = ExecTimeModel::paper();
        let seed = MasterSeed::new(31);
        if correlated {
            let gen = CorrelatedOutcomes::from_run(&run);
            simulate_run(&gen, timing, requests, &[1.5, 3.0], seed, "t")
        } else {
            let gen = IndependentOutcomes::from_run(&run);
            simulate_run(&gen, timing, requests, &[1.5, 3.0], seed, "t")
        }
    }

    #[test]
    fn accounting_adds_up() {
        for cell in quick_run(true, 2_000) {
            for group in [cell.rel1, cell.rel2, cell.system] {
                assert_eq!(group.cr + group.eer + group.ner, group.total);
                assert_eq!(group.total + group.nrdt, cell.requests);
            }
        }
    }

    #[test]
    fn system_availability_beats_either_release() {
        // 1-out-of-2: the system is unavailable only when both releases
        // time out.
        for cell in quick_run(true, 4_000) {
            assert!(cell.system.nrdt <= cell.rel1.nrdt.min(cell.rel2.nrdt));
        }
    }

    #[test]
    fn system_waits_for_slower_release() {
        // The system's response time is min(timeout, max(exec)) + dT.
        // Against the *uncapped* per-release MET the comparison is only
        // guaranteed once the timeout stops truncating the tail — the
        // 3.0 s column here. (With the paper's own reported MET of
        // ~1.0 s the inequality holds in every column; see
        // EXPERIMENTS.md for the timing-parameter discrepancy.)
        let cells = quick_run(true, 2_000);
        let long = cells[1];
        assert!(long.timeout == 3.0);
        assert!(long.system.met > long.rel1.met.min(long.rel2.met));
        // In every column the system is slower than the *faster*
        // release's within-timeout responses plus dT would suggest: it
        // waits for the second response or the timeout.
        for cell in cells {
            assert!(cell.system.met > 0.1);
        }
    }

    #[test]
    fn longer_timeout_collects_more_responses() {
        let cells = quick_run(true, 4_000);
        let (short, long) = (cells[0], cells[1]);
        assert!(long.rel1.total >= short.rel1.total);
        assert!(long.rel2.total >= short.rel2.total);
        assert!(long.system.nrdt <= short.system.nrdt);
    }

    #[test]
    fn same_plan_across_timeouts() {
        // The per-release MET is computed over *all* responses, so it must
        // be identical across timeout columns (the paper reports the same
        // value in all three).
        let cells = quick_run(true, 2_000);
        assert!((cells[0].rel1.met - cells[1].rel1.met).abs() < 1e-12);
        assert!((cells[0].rel2.met - cells[1].rel2.met).abs() < 1e-12);
    }

    #[test]
    fn independence_improves_the_system_over_both_releases() {
        // Table 6's headline: with independent failures, 1-out-of-2
        // fault tolerance works — the system's correct fraction beats
        // both releases'.
        for cell in quick_run(false, 6_000) {
            let sys = cell.system.correct_fraction();
            assert!(
                sys >= cell
                    .rel1
                    .correct_fraction()
                    .max(cell.rel2.correct_fraction())
                    - 0.01,
                "system {sys} vs rel1 {} rel2 {}",
                cell.rel1.correct_fraction(),
                cell.rel2.correct_fraction()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_run(true, 1_000);
        let b = quick_run(true, 1_000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one planned demand")]
    fn empty_plan_rejected() {
        let _ = simulate_cell(&[], MiddlewareConfig::paper(1.5), MasterSeed::new(1));
    }

    #[test]
    fn sharded_cell_is_byte_identical_to_serial() {
        let run = RunSpec::run1();
        let gen = CorrelatedOutcomes::from_run(&run);
        let seed = MasterSeed::new(77);
        let plan = plan_run(&gen, ExecTimeModel::paper(), 1_500, seed, "shardcell");
        let config = MiddlewareConfig::paper(2.0);
        let mut outputs = Vec::new();
        for k in [1usize, 2, 3, 4, 8] {
            let sinks = ObsSinks {
                recorder: Some(SharedRecorder::new()),
                metrics: Some(SharedRegistry::new()),
            };
            let cell = simulate_cell_sharded(&plan, config, seed, &sinks, "cell", Shards::new(k));
            let trace = wsu_obs::jsonl::render_events(&sinks.recorder.as_ref().unwrap().snapshot());
            let prom = sinks.metrics.as_ref().unwrap().render_snapshot();
            outputs.push((cell, trace, prom));
        }
        // Shards(1) runs the serial engine outright; the unobserved
        // serial cell must agree with it too.
        let serial = simulate_cell_observed(&plan, config, seed, &ObsSinks::default(), "cell");
        assert_eq!(outputs[0].0, serial);
        assert!(outputs[0].1.contains("DemandDispatched"));
        for (cell, trace, prom) in &outputs[1..] {
            assert_eq!(cell, &outputs[0].0);
            assert_eq!(trace, &outputs[0].1);
            assert_eq!(prom, &outputs[0].2);
        }
    }
}
