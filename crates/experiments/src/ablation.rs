//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * [`run_adjudicator_ablation`] (A1) — how the selection policy among
//!   valid, differing responses (random — the paper's choice — vs
//!   fastest vs majority) shifts system correctness and responsiveness;
//! * [`run_mode_ablation`] (A2) — the four operating modes of
//!   Section 4.2 on one workload: reliability vs response time vs
//!   back-end load;
//! * [`run_coverage_ablation`] (A3) — Section 5.1.2's open question: how
//!   detection coverage maps to confidence error and switch timing;
//! * [`run_prior_ablation`] (A4) — sensitivity of the switch timing to
//!   the coincidence prior (indifference vs more optimistic choices).

use wsu_bayes::whitebox::{CoincidencePrior, Resolution};
use wsu_core::adjudicate::{Adjudicator, SelectionPolicy};
use wsu_core::middleware::MiddlewareConfig;
use wsu_core::modes::{OperatingMode, SequentialOrder};
use wsu_simcore::par::{par_map, par_map_slice, Jobs};
use wsu_simcore::rng::MasterSeed;
use wsu_simcore::time::SimDuration;
use wsu_workload::outcomes::CorrelatedOutcomes;
use wsu_workload::runs::RunSpec;
use wsu_workload::scenario::Scenario;
use wsu_workload::timing::ExecTimeModel;

use crate::bayes_study::{run_study, Detection, StudyConfig};
use crate::figures::confidence_error_bound_holds;
use crate::midsim::{simulate_cell, CellResult};
use crate::report::TextTable;

/// A1 result row.
#[derive(Debug, Clone)]
pub struct AdjudicatorRow {
    /// Policy label.
    pub policy: String,
    /// The simulated cell.
    pub cell: CellResult,
}

/// A1: selection-policy ablation on the run-1 correlated workload.
pub fn run_adjudicator_ablation(seed: MasterSeed, requests: u64) -> Vec<AdjudicatorRow> {
    run_adjudicator_ablation_jobs(seed, requests, Jobs::serial())
}

/// [`run_adjudicator_ablation`] over a worker pool: one replication per
/// policy, all sharing the demand plan computed up front. Rows come back
/// in policy order, so the output is identical for any `jobs`.
pub fn run_adjudicator_ablation_jobs(
    seed: MasterSeed,
    requests: u64,
    jobs: Jobs,
) -> Vec<AdjudicatorRow> {
    let spec = RunSpec::run1();
    let gen = CorrelatedOutcomes::from_run(&spec);
    let mut planner =
        wsu_workload::demand::DemandPlanner::new(&gen, ExecTimeModel::paper(), "invoke");
    let mut plan_rng = seed.stream("ablation/adjudicators/plan");
    let plan = planner.plan_batch(requests as usize, &mut plan_rng);
    const POLICIES: [SelectionPolicy; 3] = [
        SelectionPolicy::Random,
        SelectionPolicy::Fastest,
        SelectionPolicy::Majority,
    ];
    par_map_slice(jobs, &POLICIES, |_, policy| {
        let mut config = MiddlewareConfig::paper(2.0);
        config.adjudicator = Adjudicator::new(*policy);
        AdjudicatorRow {
            policy: format!("{policy:?}"),
            cell: simulate_cell(&plan, config, seed),
        }
    })
}

/// A2 result row.
#[derive(Debug, Clone)]
pub struct ModeRow {
    /// Mode label.
    pub mode: String,
    /// The simulated cell.
    pub cell: CellResult,
    /// Total release invocations (back-end load; parallel modes invoke
    /// every active release on every demand, sequential often only one).
    pub backend_invocations: u64,
}

/// A2: operating-mode ablation on the run-2 correlated workload.
pub fn run_mode_ablation(seed: MasterSeed, requests: u64) -> Vec<ModeRow> {
    run_mode_ablation_jobs(seed, requests, Jobs::serial())
}

/// [`run_mode_ablation`] over a worker pool: one replication per
/// operating mode, all sharing the demand plan computed up front. Rows
/// come back in mode order, so the output is identical for any `jobs`.
pub fn run_mode_ablation_jobs(seed: MasterSeed, requests: u64, jobs: Jobs) -> Vec<ModeRow> {
    let spec = RunSpec::run2();
    let gen = CorrelatedOutcomes::from_run(&spec);
    let mut planner =
        wsu_workload::demand::DemandPlanner::new(&gen, ExecTimeModel::paper(), "invoke");
    let mut plan_rng = seed.stream("ablation/modes/plan");
    let plan = planner.plan_batch(requests as usize, &mut plan_rng);
    let modes = [
        OperatingMode::ParallelReliability,
        OperatingMode::ParallelResponsiveness,
        OperatingMode::ParallelDynamic { quorum: 1 },
        OperatingMode::Sequential {
            order: SequentialOrder::Deployment,
        },
    ];
    par_map_slice(jobs, &modes, |_, &mode| {
        let mut config = MiddlewareConfig::paper(2.0);
        config.mode = mode;
        let cell = simulate_cell(&plan, config, seed);
        let backend = [cell.rel1, cell.rel2]
            .iter()
            .map(|g| g.total + g.nrdt)
            .sum();
        ModeRow {
            mode: mode.label().into_owned(),
            cell,
            backend_invocations: backend,
        }
    })
}

/// A3 result row.
#[derive(Debug, Clone, Copy)]
pub struct CoverageRow {
    /// Omission probability (1 − coverage).
    pub p_omit: f64,
    /// Criterion 1 duration under this detection.
    pub criterion1: Option<u64>,
    /// Criterion 3 duration under this detection.
    pub criterion3: Option<u64>,
    /// Fraction of checkpoints on which the paper's "90%-perfect below
    /// 99%-imperfect" bound held.
    pub bound_held: f64,
}

/// A3: detection-coverage sweep on Scenario 1.
pub fn run_coverage_ablation(config: &StudyConfig, p_omits: &[f64]) -> Vec<CoverageRow> {
    run_coverage_ablation_jobs(config, p_omits, Jobs::serial())
}

/// [`run_coverage_ablation`] over a worker pool: the perfect-detection
/// baseline runs first (every row compares against it), then one
/// replication per omission probability. Rows come back in `p_omits`
/// order, so the output is identical for any `jobs`.
pub fn run_coverage_ablation_jobs(
    config: &StudyConfig,
    p_omits: &[f64],
    jobs: Jobs,
) -> Vec<CoverageRow> {
    let scenario = Scenario::one();
    let perfect = run_study(&scenario, Detection::Perfect, config);
    par_map_slice(jobs, p_omits, |_, &p| {
        let run = if p == 0.0 {
            perfect.clone()
        } else {
            run_study(&scenario, Detection::Omission(p), config)
        };
        CoverageRow {
            p_omit: p,
            criterion1: run.first_met[0],
            criterion3: run.first_met[2],
            bound_held: confidence_error_bound_holds(&perfect, &run, 1.0),
        }
    })
}

/// A4 result row.
#[derive(Debug, Clone)]
pub struct PriorRow {
    /// The coincidence prior used.
    pub prior: String,
    /// Criterion 1 duration.
    pub criterion1: Option<u64>,
    /// Criterion 3 duration.
    pub criterion3: Option<u64>,
}

/// A4: coincidence-prior sensitivity on Scenario 1 with perfect
/// detection.
pub fn run_prior_ablation(config: &StudyConfig) -> Vec<PriorRow> {
    run_prior_ablation_jobs(config, Jobs::serial())
}

/// [`run_prior_ablation`] over a worker pool: one replication per prior
/// variant. Rows come back in variant order, so the output is identical
/// for any `jobs`.
pub fn run_prior_ablation_jobs(config: &StudyConfig, jobs: Jobs) -> Vec<PriorRow> {
    let variants: [(&str, CoincidencePrior); 4] = [
        (
            "indifference U[0, min]",
            CoincidencePrior::IndifferenceUniform,
        ),
        (
            "optimistic U[0, 0.5*min]",
            CoincidencePrior::ScaledUniform(0.5),
        ),
        ("fixed 0.3*min", CoincidencePrior::FixedFraction(0.3)),
        ("independence", CoincidencePrior::Independent),
    ];
    par_map_slice(jobs, &variants, |_, &(label, coincidence)| {
        let mut scenario = Scenario::one();
        scenario.priors.coincidence = coincidence;
        let run = run_study(&scenario, Detection::Perfect, config);
        PriorRow {
            prior: label.to_owned(),
            criterion1: run.first_met[0],
            criterion3: run.first_met[2],
        }
    })
}

/// Renders the A1 rows.
pub fn render_adjudicator_table(rows: &[AdjudicatorRow]) -> String {
    let mut table = TextTable::new(
        "Ablation A1: selection policy among valid differing responses",
        &["Policy", "System CR", "System NER", "System MET", "NRDT"],
    );
    for row in rows {
        table.push_row(vec![
            row.policy.clone(),
            row.cell.system.cr.to_string(),
            row.cell.system.ner.to_string(),
            format!("{:.4}", row.cell.system.met),
            row.cell.system.nrdt.to_string(),
        ]);
    }
    table.render()
}

/// Renders the A2 rows.
pub fn render_mode_table(rows: &[ModeRow]) -> String {
    let mut table = TextTable::new(
        "Ablation A2: operating modes (Section 4.2)",
        &[
            "Mode",
            "System CR frac",
            "System MET",
            "NRDT",
            "Backend invocations",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.mode.clone(),
            format!("{:.4}", row.cell.system.correct_fraction()),
            format!("{:.4}", row.cell.system.met),
            row.cell.system.nrdt.to_string(),
            row.backend_invocations.to_string(),
        ]);
    }
    table.render()
}

/// Renders the A3 rows.
pub fn render_coverage_table(rows: &[CoverageRow]) -> String {
    let mut table = TextTable::new(
        "Ablation A3: detection coverage vs confidence error (Scenario 1)",
        &["P_omit", "Criterion 1", "Criterion 3", "90/99 bound held"],
    );
    for row in rows {
        let fmt = |v: Option<u64>| v.map_or("not met".to_owned(), |d| d.to_string());
        table.push_row(vec![
            format!("{:.2}", row.p_omit),
            fmt(row.criterion1),
            fmt(row.criterion3),
            format!("{:.0}%", row.bound_held * 100.0),
        ]);
    }
    table.render()
}

/// Renders the A4 rows.
pub fn render_prior_table(rows: &[PriorRow]) -> String {
    let mut table = TextTable::new(
        "Ablation A4: coincidence-prior sensitivity (Scenario 1, perfect detection)",
        &["Coincidence prior", "Criterion 1", "Criterion 3"],
    );
    for row in rows {
        let fmt = |v: Option<u64>| v.map_or("not met".to_owned(), |d| d.to_string());
        table.push_row(vec![
            row.prior.clone(),
            fmt(row.criterion1),
            fmt(row.criterion3),
        ]);
    }
    table.render()
}

/// A convenience duration used by the mode ablation tests: the paper's
/// `dT`.
pub const ADJUDICATION_DELAY: SimDuration = SimDuration::ZERO;

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_study() -> StudyConfig {
        StudyConfig {
            demands: 4_000,
            checkpoint_every: 500,
            resolution: Resolution {
                a_cells: 32,
                b_cells: 32,
                q_cells: 8,
            },
            adaptive: None,
            confidence: 0.99,
            target: 1e-3,
            seed: MasterSeed::new(61),
        }
    }

    #[test]
    fn adjudicator_ablation_shapes() {
        let rows = run_adjudicator_ablation(MasterSeed::new(51), 2_000);
        assert_eq!(rows.len(), 3);
        // Fastest trades correctness for speed: its MET must be the
        // smallest... no — in parallel-reliability the wait is the same;
        // the *policy* only changes which response is forwarded. What
        // must hold: all policies see identical per-release stats.
        for w in rows.windows(2) {
            assert_eq!(w[0].cell.rel1, w[1].cell.rel1);
            assert_eq!(w[0].cell.rel2, w[1].cell.rel2);
        }
        let text = render_adjudicator_table(&rows);
        assert!(text.contains("Random"));
        assert!(text.contains("Majority"));
    }

    #[test]
    fn mode_ablation_shapes() {
        let rows = run_mode_ablation(MasterSeed::new(52), 2_000);
        assert_eq!(rows.len(), 4);
        let by_label = |needle: &str| {
            rows.iter()
                .find(|r| r.mode.contains(needle))
                .unwrap_or_else(|| panic!("mode {needle} missing"))
        };
        let reliability = by_label("parallel-reliability");
        let responsiveness = by_label("parallel-responsiveness");
        let sequential = by_label("sequential");
        // Responsiveness answers faster than reliability.
        assert!(responsiveness.cell.system.met < reliability.cell.system.met);
        // Sequential loads the back end less than any parallel mode.
        assert!(sequential.backend_invocations < reliability.backend_invocations);
        let text = render_mode_table(&rows);
        assert!(text.contains("Backend invocations"));
    }

    #[test]
    fn coverage_ablation_monotone_bias() {
        let rows = run_coverage_ablation(&quick_study(), &[0.0, 0.5]);
        assert_eq!(rows.len(), 2);
        // With perfect detection the bound holds trivially.
        assert!((rows[0].bound_held - 1.0).abs() < 1e-12);
        let text = render_coverage_table(&rows);
        assert!(text.contains("P_omit"));
    }

    #[test]
    fn class_detection_ablation_bias_direction() {
        let rows = run_class_detection_ablation(
            3_000,
            Resolution {
                a_cells: 32,
                b_cells: 32,
                q_cells: 8,
            },
            MasterSeed::new(77),
            0.5,
            &[1.0, 0.5],
        );
        assert_eq!(rows.len(), 2);
        // Full coverage: both detectors match the perfect posterior.
        assert!((rows[0].uniform_b_p99 - rows[0].perfect_b_p99).abs() < 1e-9);
        assert!((rows[0].class_aware_b_p99 - rows[0].perfect_b_p99).abs() < 1e-9);
        // Reduced coverage: both detectors can only hide failures, so
        // their posteriors stay close to the perfect one, but neither
        // direction is guaranteed pointwise — masking one side of a
        // *coincident* failure converts an r1 count into r3, which the
        // coincidence prior can translate into a *higher* marginal for
        // B. Only loose relative bounds hold for every seed.
        let rel_uniform =
            (rows[1].uniform_b_p99 - rows[1].perfect_b_p99).abs() / rows[1].perfect_b_p99;
        assert!(rel_uniform < 0.3, "uniform deviated {rel_uniform}");
        let rel = (rows[1].class_aware_b_p99 - rows[1].perfect_b_p99).abs() / rows[1].perfect_b_p99;
        assert!(rel < 0.3, "class-aware deviated {rel}");
        let text = render_class_detection_table(&rows);
        assert!(text.contains("class-aware"));
    }

    #[test]
    fn abort_ablation_directionality() {
        let rows = run_abort_ablation(
            3,
            4_000,
            Resolution {
                a_cells: 32,
                b_cells: 32,
                q_cells: 8,
            },
            MasterSeed::new(123),
            &[0.5, 20.0],
        );
        assert_eq!(rows.len(), 2);
        // A much better new release never gets aborted.
        assert_eq!(rows[0].aborted, 0, "{:?}", rows[0]);
        // A 20x worse release is caught on every seed.
        assert_eq!(rows[1].aborted, 3, "{:?}", rows[1]);
        assert!(rows[1].median_abort_demand.is_some());
        let text = render_abort_table(&rows);
        assert!(text.contains("rollback-guard"));
    }

    #[test]
    fn prior_ablation_runs_all_variants() {
        let rows = run_prior_ablation(&quick_study());
        assert_eq!(rows.len(), 4);
        let text = render_prior_table(&rows);
        assert!(text.contains("indifference"));
        assert!(text.contains("independence"));
    }
}

/// A5 result row: uniform omission vs class-aware detection at equal
/// average coverage.
#[derive(Debug, Clone, Copy)]
pub struct ClassDetectionRow {
    /// NER-detection coverage of the class-aware oracle.
    pub ner_coverage: f64,
    /// The uniform omission probability with the same *average* miss
    /// rate (misses spread over all failures instead of only NER).
    pub equivalent_p_omit: f64,
    /// New release's posterior 99% percentile under uniform omission.
    pub uniform_b_p99: f64,
    /// New release's posterior 99% percentile under class-aware
    /// detection.
    pub class_aware_b_p99: f64,
    /// Ground-truth posterior 99% percentile (perfect detection).
    pub perfect_b_p99: f64,
}

/// A5: does it matter *which* failures the oracle misses? The paper's
/// omission model misses uniformly; real monitors catch every evident
/// failure and miss only non-evident ones. Both variants here have the
/// same average coverage; only the *concentration* of misses differs.
pub fn run_class_detection_ablation(
    demands: u64,
    resolution: wsu_bayes::whitebox::Resolution,
    seed: MasterSeed,
    ner_share: f64,
    coverages: &[f64],
) -> Vec<ClassDetectionRow> {
    use wsu_bayes::counts::JointCounts;
    use wsu_bayes::whitebox::WhiteBoxInference;
    use wsu_detect::classaware::ClassAwareDetector;
    use wsu_detect::classify::ClassOracle;
    use wsu_detect::oracle::{FailureDetector, OmissionOracle};
    use wsu_wstack::outcome::ResponseClass;

    assert!((0.0..=1.0).contains(&ner_share), "ner share in [0, 1]");
    let scenario = Scenario::one();
    let engine = WhiteBoxInference::with_resolution(
        scenario.priors.prior_a,
        scenario.priors.prior_b,
        scenario.priors.coincidence,
        resolution,
    );

    // One shared truth stream: binary failures plus a class label for
    // each failure (NER with probability `ner_share`, else ER).
    let mut truth_rng = seed.stream("ablation/class-detect/truth");
    let mut label_rng = seed.stream("ablation/class-detect/labels");
    let truths: Vec<(
        wsu_detect::oracle::DemandOutcome,
        ResponseClass,
        ResponseClass,
    )> = (0..demands)
        .map(|_| {
            let outcome = scenario.truth.sample(&mut truth_rng);
            let classify = |failed: bool, rng: &mut wsu_simcore::rng::StreamRng| {
                if !failed {
                    ResponseClass::Correct
                } else if rng.bernoulli(ner_share) {
                    ResponseClass::NonEvidentFailure
                } else {
                    ResponseClass::EvidentFailure
                }
            };
            let class_a = classify(outcome.a_failed, &mut label_rng);
            let class_b = classify(outcome.b_failed, &mut label_rng);
            (outcome, class_a, class_b)
        })
        .collect();

    let mut perfect_counts = JointCounts::new();
    for (outcome, _, _) in &truths {
        perfect_counts.record(outcome.a_failed, outcome.b_failed);
    }
    let perfect_b_p99 = engine
        .posterior(&perfect_counts)
        .marginal_b()
        .percentile(0.99);

    coverages
        .iter()
        .map(|&coverage| {
            let equivalent_p_omit = ner_share * (1.0 - coverage);

            let mut uniform = OmissionOracle::new(equivalent_p_omit);
            let mut uniform_rng = seed.stream("ablation/class-detect/uniform");
            let mut uniform_counts = JointCounts::new();
            for (outcome, _, _) in &truths {
                let seen = uniform.observe(*outcome, &mut uniform_rng);
                uniform_counts.record(seen.a_failed, seen.b_failed);
            }

            let mut aware = ClassAwareDetector::symmetric(ClassOracle::new(coverage, 0.0));
            let mut aware_rng = seed.stream("ablation/class-detect/aware");
            let mut aware_counts = JointCounts::new();
            for (_, class_a, class_b) in &truths {
                let seen = aware.observe_pair(*class_a, *class_b, &mut aware_rng);
                aware_counts.record(seen.a_failed, seen.b_failed);
            }

            ClassDetectionRow {
                ner_coverage: coverage,
                equivalent_p_omit,
                uniform_b_p99: engine
                    .posterior(&uniform_counts)
                    .marginal_b()
                    .percentile(0.99),
                class_aware_b_p99: engine
                    .posterior(&aware_counts)
                    .marginal_b()
                    .percentile(0.99),
                perfect_b_p99,
            }
        })
        .collect()
}

/// Renders the A5 rows.
pub fn render_class_detection_table(rows: &[ClassDetectionRow]) -> String {
    let mut table = TextTable::new(
        "Ablation A5: uniform omission vs class-aware detection (equal average coverage)",
        &[
            "NER coverage",
            "equiv. P_omit",
            "B p99 (uniform)",
            "B p99 (class-aware)",
            "B p99 (perfect)",
        ],
    );
    for row in rows {
        table.push_row(vec![
            format!("{:.2}", row.ner_coverage),
            format!("{:.3}", row.equivalent_p_omit),
            format!("{:.3e}", row.uniform_b_p99),
            format!("{:.3e}", row.class_aware_b_p99),
            format!("{:.3e}", row.perfect_b_p99),
        ]);
    }
    table.render()
}

/// A6 result row: the rollback guard's operating characteristic at one
/// ratio of new-release to old-release pfd.
#[derive(Debug, Clone, Copy)]
pub struct AbortRow {
    /// True pfd ratio `p_B / p_A`.
    pub pfd_ratio: f64,
    /// Seeds on which the guard aborted the upgrade.
    pub aborted: usize,
    /// Seeds on which the upgrade switched to the new release.
    pub switched: usize,
    /// Seeds still transitional at the horizon.
    pub undecided: usize,
    /// Median demand count of the aborts, if any.
    pub median_abort_demand: Option<u64>,
}

/// A6: the rollback guard's operating characteristic. For each ratio of
/// the new release's true pfd to the old one's, run several seeds of a
/// managed upgrade with both the switch criterion (criterion 3, 99%) and
/// the abort guard (99%) armed, and count the decisions. A good guard
/// aborts quickly when the ratio is large and never fires when the new
/// release is genuinely better.
pub fn run_abort_ablation(
    seeds: u64,
    demands: u64,
    resolution: Resolution,
    base_seed: MasterSeed,
    ratios: &[f64],
) -> Vec<AbortRow> {
    run_abort_ablation_jobs(
        seeds,
        demands,
        resolution,
        base_seed,
        ratios,
        Jobs::serial(),
    )
}

/// [`run_abort_ablation`] over a worker pool: one replication per
/// `(ratio, seed)` pair, ratio-major and seed-minor (the sequential
/// iteration order). Each pair's upgrade uses its own derived seed, so
/// trials are independent; the terminal phases are folded back into
/// per-ratio rows in pair order, and the output is identical for any
/// `jobs`.
pub fn run_abort_ablation_jobs(
    seeds: u64,
    demands: u64,
    resolution: Resolution,
    base_seed: MasterSeed,
    ratios: &[f64],
    jobs: Jobs,
) -> Vec<AbortRow> {
    use wsu_core::upgrade::UpgradePhase;

    let per_ratio = seeds as usize;
    let phases: Vec<UpgradePhase> = par_map(jobs, ratios.len() * per_ratio, |t| {
        abort_trial(
            ratios[t / per_ratio],
            (t % per_ratio) as u64,
            demands,
            resolution,
            base_seed,
        )
    });
    ratios
        .iter()
        .enumerate()
        .map(|(r, &ratio)| {
            let mut aborted = 0;
            let mut switched = 0;
            let mut undecided = 0;
            let mut abort_demands = Vec::new();
            for phase in &phases[r * per_ratio..(r + 1) * per_ratio] {
                match phase {
                    UpgradePhase::Aborted { at_demand } => {
                        aborted += 1;
                        abort_demands.push(*at_demand);
                    }
                    UpgradePhase::Switched { .. } => switched += 1,
                    UpgradePhase::Transitional => undecided += 1,
                }
            }
            abort_demands.sort_unstable();
            AbortRow {
                pfd_ratio: ratio,
                aborted,
                switched,
                undecided,
                median_abort_demand: abort_demands
                    .get(abort_demands.len() / 2)
                    .copied()
                    .filter(|_| !abort_demands.is_empty()),
            }
        })
        .collect()
}

/// One A6 trial: a managed upgrade with the switch criterion and abort
/// guard armed, run to the demand horizon; returns the terminal phase.
fn abort_trial(
    ratio: f64,
    trial: u64,
    demands: u64,
    resolution: Resolution,
    base_seed: MasterSeed,
) -> wsu_core::upgrade::UpgradePhase {
    use wsu_core::manage::AbortPolicy;
    use wsu_core::upgrade::{ManagedUpgrade, UpgradeConfig};
    use wsu_wstack::endpoint::SyntheticService;
    use wsu_wstack::outcome::OutcomeProfile;

    let p_a = 2e-3;
    let p_b = (p_a * ratio).min(0.5);
    let seed = MasterSeed::new(base_seed.value() ^ (0x9e37 + trial * 7919));
    let old = SyntheticService::builder("Svc", "1.0")
        .outcomes(OutcomeProfile::new(1.0 - p_a, p_a / 2.0, p_a / 2.0))
        .exec_time_mean(0.1)
        .build();
    let new = SyntheticService::builder("Svc", "1.1")
        .outcomes(OutcomeProfile::new(1.0 - p_b, p_b / 2.0, p_b / 2.0))
        .exec_time_mean(0.1)
        .build();
    let config = UpgradeConfig::default()
        .with_resolution(resolution)
        .with_assess_interval(500)
        .with_priors(
            wsu_bayes::beta::ScaledBeta::new(2.0, 8.0, 0.05).expect("valid prior"),
            wsu_bayes::beta::ScaledBeta::new(2.0, 8.0, 0.05).expect("valid prior"),
        )
        .with_criterion(wsu_core::manage::SwitchCriterion::better_than_old(0.99))
        .with_abort(AbortPolicy::new(0.99));
    let mut upgrade = ManagedUpgrade::new(old, new, config, seed);
    upgrade.run_demands(demands);
    upgrade.phase()
}

/// Renders the A6 rows.
pub fn render_abort_table(rows: &[AbortRow]) -> String {
    let mut table = TextTable::new(
        "Ablation A6: rollback-guard operating characteristic (abort at 99%)",
        &[
            "pfd ratio B/A",
            "aborted",
            "switched",
            "undecided",
            "median abort demand",
        ],
    );
    for row in rows {
        table.push_row(vec![
            format!("{:.1}", row.pfd_ratio),
            row.aborted.to_string(),
            row.switched.to_string(),
            row.undecided.to_string(),
            row.median_abort_demand
                .map_or("-".to_owned(), |d| d.to_string()),
        ]);
    }
    table.render()
}
