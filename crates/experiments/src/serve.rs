//! The real serving front: the upgrade middleware behind a
//! thread-per-core `std::net` accept loop.
//!
//! [`HttpFront`] binds a `TcpListener` and spawns `workers` serving
//! threads. Every worker owns a **private** demand loop
//! ([`wsu_core::serve::DemandWorker`] — its own middleware, endpoints
//! and RNG stream) plus a private metrics registry, so the steady-state
//! request path shares nothing with other workers: the only lock a
//! demand touches is the worker's own (uncontended) registry mutex,
//! taken briefly to bump pre-resolved counter/sketch ids. Cross-worker
//! aggregation happens only on a `/metrics` or `/snapshot` scrape,
//! which merges the per-worker registries into one rendering.
//!
//! Routes:
//!
//! * `POST /demand` — one closed-loop demand through the middleware:
//!   dispatch, adjudicate, respond. The response is a small JSON
//!   object with the adjudicated verdict, virtual response time,
//!   responder count and forwarding source. For a
//!   [sharded](wsu_core::serve::ServeSpec::sharded) spec the front
//!   claims a fleet-global demand index atomically and keys the
//!   demand's randomness on it, so the stream of outcomes is
//!   identical at any `--workers` count — the sharding determinism
//!   contract applied to live serving.
//! * `GET /metrics` — Prometheus-text rendering of the merged
//!   per-worker registries.
//! * `GET /snapshot` — aggregate JSON (total demands, per-verdict
//!   counts, per-worker demand counts).
//! * `GET /health` — liveness probe.
//!
//! Method mismatches on known routes earn `405` with an `Allow`
//! header; malformed requests earn `400`; both come straight from the
//! shared [`wsu_obs::http`] layer's error taxonomy.
//!
//! ## Accept model
//!
//! Each worker polls a shared nonblocking listener and then serves the
//! accepted connection's keep-alive conversation to completion before
//! accepting again. A closed-loop client fleet should therefore use at
//! most `workers` concurrent connections — exactly what `wsu-loadgen`
//! does. (With no epoll in `std`, one-connection-at-a-time per worker
//! is the honest zero-dependency design; the poll sleep only costs
//! when a worker is idle.)

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wsu_core::serve::ServeSpec;
use wsu_obs::http::{HttpConn, RecvError, Request, Response};
use wsu_obs::metrics::{CounterId, MetricsRegistry, SketchId};

/// Configuration for [`HttpFront::start`].
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Serving threads; `0` means one per available hardware thread.
    pub workers: usize,
    /// The deployment blueprint every worker instantiates.
    pub spec: ServeSpec,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
}

impl FrontConfig {
    /// A front on `addr` with the given spec and default timeouts.
    pub fn new(addr: &str, workers: usize, spec: ServeSpec) -> FrontConfig {
        FrontConfig {
            addr: addr.to_string(),
            workers,
            spec,
            io_timeout: Duration::from_secs(5),
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// State shared by every serving thread.
struct FrontShared {
    shutdown: AtomicBool,
    /// One registry per worker; slot `w` is written only by worker `w`
    /// (scrapes briefly lock each slot to merge).
    registries: Vec<Mutex<MetricsRegistry>>,
    /// Total demands served, mirrored outside the registries so
    /// `/snapshot` and tests can read it without a merge.
    demands: AtomicU64,
    /// Pending fleet promotion, encoded as `release + 1` (`0` = none).
    /// `POST /promote/<n>` stores it; every worker applies it to its
    /// private middleware before the next demand it serves, so the
    /// cutover drops and double-counts nothing.
    promote: AtomicU64,
}

/// A running serving front. Dropping it shuts the workers down.
pub struct HttpFront {
    addr: SocketAddr,
    shared: Arc<FrontShared>,
    handles: Vec<JoinHandle<()>>,
}

impl HttpFront {
    /// Binds the listener and spawns the serving threads.
    ///
    /// # Errors
    ///
    /// Propagates bind/clone failures.
    pub fn start(config: FrontConfig) -> io::Result<HttpFront> {
        let workers = config.effective_workers();
        let listener = TcpListener::bind(config.addr.as_str())?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(FrontShared {
            shutdown: AtomicBool::new(false),
            registries: (0..workers)
                .map(|_| Mutex::new(MetricsRegistry::new()))
                .collect(),
            demands: AtomicU64::new(0),
            promote: AtomicU64::new(0),
        });
        let spec = Arc::new(config.spec);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let spec = Arc::clone(&spec);
            let io_timeout = config.io_timeout;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("wsu-serve-{w}"))
                    .spawn(move || worker_loop(&listener, &shared, &spec, w, io_timeout))?,
            );
        }
        Ok(HttpFront {
            addr,
            shared,
            handles,
        })
    }

    /// The bound address (real port after binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total demands served so far, across all workers.
    pub fn demands(&self) -> u64 {
        self.shared.demands.load(Ordering::Relaxed)
    }

    /// Merged Prometheus-text rendering of the per-worker registries —
    /// the same bytes `GET /metrics` serves.
    pub fn metrics_text(&self) -> String {
        render_merged_metrics(&self.shared)
    }

    /// Stops the workers and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpFront {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for HttpFront {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpFront")
            .field("addr", &self.addr)
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// How long an idle worker sleeps between accept polls.
const ACCEPT_POLL: Duration = Duration::from_micros(500);

/// Pre-resolved metric ids for one worker's registry.
struct WorkerMetrics {
    demands: CounterId,
    verdicts: [CounterId; 4],
    requests: [CounterId; 5],
    errors: CounterId,
    virtual_seconds: SketchId,
    service_seconds: SketchId,
}

/// Route index for `wsu_http_requests_total{route=…}`.
const ROUTES: [&str; 5] = ["demand", "metrics", "snapshot", "health", "other"];

/// Verdict label order for `wsu_http_verdicts_total{verdict=…}`.
const VERDICTS: [&str; 4] = ["CR", "ER", "NER", "NRDT"];

impl WorkerMetrics {
    fn resolve(registry: &mut MetricsRegistry, worker: &str) -> WorkerMetrics {
        WorkerMetrics {
            demands: registry.counter_id("wsu_http_demands_total", &[("worker", worker)]),
            verdicts: VERDICTS.map(|v| {
                registry.counter_id(
                    "wsu_http_verdicts_total",
                    &[("verdict", v), ("worker", worker)],
                )
            }),
            requests: ROUTES.map(|r| {
                registry.counter_id(
                    "wsu_http_requests_total",
                    &[("route", r), ("worker", worker)],
                )
            }),
            errors: registry.counter_id("wsu_http_request_errors_total", &[("worker", worker)]),
            virtual_seconds: registry
                .sketch_id("wsu_http_virtual_response_seconds", &[("worker", worker)]),
            service_seconds: registry.sketch_id("wsu_http_service_seconds", &[("worker", worker)]),
        }
    }

    fn verdict_id(&self, label: &str) -> CounterId {
        let i = VERDICTS.iter().position(|v| *v == label).unwrap_or(3);
        self.verdicts[i]
    }
}

/// One serving thread: poll-accept, then serve each connection's
/// keep-alive conversation to completion.
fn worker_loop(
    listener: &TcpListener,
    shared: &FrontShared,
    spec: &ServeSpec,
    worker: usize,
    io_timeout: Duration,
) {
    let mut demand_worker = spec.worker(worker as u64);
    let sharded = spec.sharded;
    let mut applied_promote = 0u64;
    let worker_label = worker.to_string();
    let metrics = {
        let mut registry = shared.registries[worker].lock().expect("registry poisoned");
        WorkerMetrics::resolve(&mut registry, &worker_label)
    };
    // Reused per-response JSON buffer: the demand path allocates only
    // inside the HTTP layer's own reused buffers.
    let mut json = String::with_capacity(160);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_connection(
                    stream,
                    shared,
                    &mut demand_worker,
                    sharded,
                    &mut applied_promote,
                    &metrics,
                    worker,
                    io_timeout,
                    &mut json,
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => continue,
        }
    }
}

/// Serves one connection until close, error or shutdown.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    shared: &FrontShared,
    demand_worker: &mut wsu_core::serve::DemandWorker,
    sharded: bool,
    applied_promote: &mut u64,
    metrics: &WorkerMetrics,
    worker: usize,
    io_timeout: Duration,
    json: &mut String,
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    stream.set_nodelay(true)?;
    let mut conn = HttpConn::new(stream);
    loop {
        match conn.recv() {
            Ok(request) => {
                let started = Instant::now();
                let response = route(
                    &request,
                    shared,
                    demand_worker,
                    sharded,
                    applied_promote,
                    metrics,
                    worker,
                    json,
                );
                let served_demand = request.method == "POST" && request.path == "/demand";
                if served_demand {
                    let mut registry = shared.registries[worker].lock().expect("registry poisoned");
                    registry.observe_sketch_id(
                        metrics.service_seconds,
                        started.elapsed().as_secs_f64(),
                    );
                }
                let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
                conn.send(&response, keep_alive)?;
                if !keep_alive {
                    return Ok(());
                }
            }
            Err(err) => {
                if let Some(response) = err.response() {
                    {
                        let mut registry =
                            shared.registries[worker].lock().expect("registry poisoned");
                        registry.inc_counter_id(metrics.errors);
                    }
                    let _ = conn.send(&response, false);
                }
                return match err {
                    RecvError::Io(io) => Err(io),
                    _ => Ok(()),
                };
            }
        }
    }
}

/// Applies any promotion posted since this worker last served a
/// demand. One relaxed load on the hot path; the weight rewrite runs
/// only when the stored value changes.
fn apply_pending_promote(
    shared: &FrontShared,
    demand_worker: &mut wsu_core::serve::DemandWorker,
    applied_promote: &mut u64,
) {
    let pending = shared.promote.load(Ordering::Acquire);
    if pending != *applied_promote {
        if pending > 0 {
            let _ = demand_worker.promote((pending - 1) as usize);
        }
        *applied_promote = pending;
    }
}

/// Routes one request on worker `worker`.
#[allow(clippy::too_many_arguments)]
fn route(
    request: &Request,
    shared: &FrontShared,
    demand_worker: &mut wsu_core::serve::DemandWorker,
    sharded: bool,
    applied_promote: &mut u64,
    metrics: &WorkerMetrics,
    worker: usize,
    json: &mut String,
) -> Response {
    let route_index = match request.path.as_str() {
        "/demand" => 0,
        "/metrics" => 1,
        "/snapshot" => 2,
        "/health" => 3,
        _ => 4,
    };
    {
        let mut registry = shared.registries[worker].lock().expect("registry poisoned");
        registry.inc_counter_id(metrics.requests[route_index]);
    }
    if let Some(rest) = request.path.strip_prefix("/promote/") {
        return match (request.method.as_str(), rest.parse::<usize>()) {
            ("POST", Ok(release)) => {
                // Validate against this worker's fleet before
                // publishing — every worker deploys the same spec.
                if demand_worker.promote(release).is_err() {
                    return Response::text(404, format!("unknown release {release}\n"));
                }
                *applied_promote = release as u64 + 1;
                shared.promote.store(release as u64 + 1, Ordering::Release);
                Response::json(200, format!("{{\"promoted\":{release}}}"))
            }
            ("POST", Err(_)) => Response::text(400, "promote wants /promote/<release>\n"),
            (_, _) => Response::method_not_allowed("POST"),
        };
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/demand") => {
            apply_pending_promote(shared, demand_worker, applied_promote);
            // Sharded specs key each demand's randomness on a
            // fleet-global index claimed atomically before serving, so
            // the outcome is identical no matter which worker gets the
            // request (see `ServeSpec::sharded`). The plain path keeps
            // the per-worker sequential stream and counts afterwards.
            let result = if sharded {
                let global = shared.demands.fetch_add(1, Ordering::Relaxed);
                demand_worker.demand_indexed(global)
            } else {
                demand_worker.demand()
            };
            match result {
                Ok(outcome) => {
                    {
                        let mut registry =
                            shared.registries[worker].lock().expect("registry poisoned");
                        registry.inc_counter_id(metrics.demands);
                        registry.inc_counter_id(metrics.verdict_id(outcome.verdict_label()));
                        registry.observe_sketch_id(metrics.virtual_seconds, outcome.response_time);
                    }
                    if !sharded {
                        shared.demands.fetch_add(1, Ordering::Relaxed);
                    }
                    render_outcome_json(json, &outcome);
                    Response::json(200, json.clone())
                }
                Err(err) => Response::text(503, format!("no active releases: {err:?}\n")),
            }
        }
        ("GET" | "HEAD", "/demand") => Response::method_not_allowed("POST"),
        ("GET", "/metrics") => Response::bytes(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            render_merged_metrics(shared).into_bytes(),
        ),
        ("GET", "/snapshot") => Response::json(200, render_snapshot_json(shared)),
        ("GET", "/health") => Response::text(200, "ok\n"),
        (_, "/metrics" | "/snapshot" | "/health") => Response::method_not_allowed("GET"),
        ("GET", _) => Response::text(404, "not found\n"),
        (_, _) => Response::method_not_allowed("GET, POST"),
    }
}

/// Renders one demand outcome as the `/demand` response body.
fn render_outcome_json(out: &mut String, outcome: &wsu_core::serve::DemandOutcome) {
    use std::fmt::Write as _;
    out.clear();
    let _ = write!(
        out,
        "{{\"seq\":{},\"worker\":{},\"verdict\":\"{}\",\"response_time\":{},\"responders\":{},",
        outcome.seq,
        outcome.worker,
        outcome.verdict_label(),
        outcome.response_time,
        outcome.responders,
    );
    match outcome.source {
        Some(source) => {
            let _ = write!(out, "\"source\":{source},");
        }
        None => out.push_str("\"source\":null,"),
    }
    let _ = write!(out, "\"t\":{}}}", outcome.t);
}

/// Merges every worker's registry and renders the Prometheus text.
fn render_merged_metrics(shared: &FrontShared) -> String {
    let mut merged = MetricsRegistry::new();
    for slot in &shared.registries {
        let registry = slot.lock().expect("registry poisoned");
        merged.merge(&registry);
    }
    merged.snapshot()
}

/// Aggregate JSON for `/snapshot`.
fn render_snapshot_json(shared: &FrontShared) -> String {
    use std::fmt::Write as _;
    let workers = shared.registries.len();
    let mut per_worker = Vec::with_capacity(workers);
    let mut verdicts = [0u64; 4];
    for (w, slot) in shared.registries.iter().enumerate() {
        let registry = slot.lock().expect("registry poisoned");
        let label = w.to_string();
        per_worker.push(registry.counter("wsu_http_demands_total", &[("worker", &label)]));
        for (i, v) in VERDICTS.iter().enumerate() {
            verdicts[i] += registry.counter(
                "wsu_http_verdicts_total",
                &[("verdict", v), ("worker", &label)],
            );
        }
    }
    let total: u64 = per_worker.iter().sum();
    let mut out = String::with_capacity(128);
    let _ = write!(
        out,
        "{{\"workers\":{workers},\"demands\":{total},\"verdicts\":{{"
    );
    for (i, v) in VERDICTS.iter().enumerate() {
        let _ = write!(
            out,
            "\"{v}\":{}{}",
            verdicts[i],
            if i + 1 < VERDICTS.len() { "," } else { "" }
        );
    }
    out.push_str("},\"per_worker\":[");
    for (w, count) in per_worker.iter().enumerate() {
        let _ = write!(
            out,
            "{count}{}",
            if w + 1 < per_worker.len() { "," } else { "" }
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_obs::http::{http_get, HttpClient};

    fn deterministic_front(workers: usize) -> HttpFront {
        HttpFront::start(FrontConfig::new(
            "127.0.0.1:0",
            workers,
            ServeSpec::deterministic(11),
        ))
        .expect("start front")
    }

    #[test]
    fn health_demand_and_metrics_roundtrip() {
        let front = deterministic_front(2);
        let addr = front.local_addr();
        let health = http_get(addr, "/health").expect("health");
        assert_eq!(health.status, 200);

        let mut client = HttpClient::connect(addr, Duration::from_secs(5)).expect("connect");
        for _ in 0..5 {
            let resp = client.request("POST", "/demand", b"").expect("demand");
            assert_eq!(resp.status, 200);
            assert!(resp.body.contains("\"verdict\":\"CR\""));
            assert!(resp.keep_alive);
        }
        drop(client);
        assert_eq!(front.demands(), 5);
        let metrics = front.metrics_text();
        assert!(metrics.contains("wsu_http_demands_total"));
        front.shutdown();
    }

    #[test]
    fn wrong_methods_get_405_with_allow() {
        let front = deterministic_front(1);
        let addr = front.local_addr();
        let mut client = HttpClient::connect(addr, Duration::from_secs(5)).expect("connect");
        let resp = client.request("GET", "/demand", b"").expect("GET /demand");
        assert_eq!(resp.status, 405);
        let resp = client
            .request("POST", "/metrics", b"")
            .expect("POST /metrics");
        assert_eq!(resp.status, 405);
        let resp = client.request("GET", "/nope", b"").expect("GET /nope");
        assert_eq!(resp.status, 404);
        front.shutdown();
    }

    #[test]
    fn sharded_spec_outcomes_are_worker_count_invariant() {
        // Pull the fields that must not depend on the worker fleet out
        // of the /demand body (seq and worker legitimately differ).
        fn essence(body: &str) -> String {
            let from = body.find("\"verdict\"").expect("verdict field");
            let to = body.find(",\"source\"").expect("source field");
            body[from..to].to_string()
        }
        // Drive 24 demands through `conns` sequential connections so
        // different workers get a turn, and record the outcome stream.
        let run = |workers: usize, conns: usize| -> Vec<String> {
            let front = HttpFront::start(FrontConfig::new(
                "127.0.0.1:0",
                workers,
                ServeSpec::paper(77).with_sharding(),
            ))
            .expect("start front");
            let addr = front.local_addr();
            let mut out = Vec::new();
            for _ in 0..conns {
                let mut client =
                    HttpClient::connect(addr, Duration::from_secs(5)).expect("connect");
                for _ in 0..24 / conns {
                    let resp = client.request("POST", "/demand", b"").expect("demand");
                    assert_eq!(resp.status, 200);
                    out.push(essence(&resp.body));
                }
            }
            assert_eq!(front.demands(), 24);
            front.shutdown();
            out
        };
        let baseline = run(1, 1);
        // The paper spec has exponential latencies: outcomes vary, so
        // agreement below is meaningful.
        assert!(baseline.iter().any(|o| *o != baseline[0]));
        assert_eq!(baseline, run(2, 4));
        assert_eq!(baseline, run(4, 8));
    }

    #[test]
    fn snapshot_aggregates_worker_counts() {
        let front = deterministic_front(2);
        let addr = front.local_addr();
        let mut client = HttpClient::connect(addr, Duration::from_secs(5)).expect("connect");
        for _ in 0..3 {
            assert_eq!(
                client
                    .request("POST", "/demand", b"")
                    .expect("demand")
                    .status,
                200
            );
        }
        drop(client);
        let snap = http_get(addr, "/snapshot").expect("snapshot");
        assert_eq!(snap.status, 200);
        assert!(snap.body.starts_with("{\"workers\":2,\"demands\":3,"));
        assert!(snap.body.contains("\"CR\":3"));
        front.shutdown();
    }
}
