//! Table 5: simulation results assuming positive correlation between
//! release failures.
//!
//! Four runs (Tables 3–4 parameters) × three timeouts (1.5/2.0/3.0 s),
//! 10,000 requests each, reporting per release and for the system: MET,
//! CR, EER, NER, Total and NRDT.

use wsu_core::middleware::MiddlewareConfig;
use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_simcore::shard::Shards;
use wsu_workload::outcomes::CorrelatedOutcomes;
use wsu_workload::runs::RunSpec;
use wsu_workload::timing::ExecTimeModel;

use crate::midsim::{plan_run, simulate_cell_sharded, CellResult, ObsSinks};
use crate::replicate::run_replications;
use crate::report::TextTable;
use crate::{PAPER_REQUESTS, PAPER_TIMEOUTS};

/// One run's results across the timeout columns.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Run number (1–4).
    pub run: usize,
    /// One cell per timeout, in the order supplied.
    pub cells: Vec<CellResult>,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct SimulationTable {
    /// Display title.
    pub title: String,
    /// Per-run results.
    pub runs: Vec<RunResult>,
}

impl SimulationTable {
    /// Renders the table in the paper's layout (one row group per run,
    /// one column group per timeout).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for run in &self.runs {
            let mut header: Vec<String> = vec!["Observation".into()];
            for cell in &run.cells {
                for who in ["Rel1", "Rel2", "System"] {
                    header.push(format!("{who}@{}s", cell.timeout));
                }
            }
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table =
                TextTable::new(format!("{} — Run {}", self.title, run.run), &header_refs);
            let groups = |cell: &CellResult| [cell.rel1, cell.rel2, cell.system];
            let mut push_metric = |name: &str, f: &dyn Fn(&crate::midsim::GroupStats) -> String| {
                let mut row = vec![name.to_owned()];
                for cell in &run.cells {
                    for g in groups(cell) {
                        row.push(f(&g));
                    }
                }
                table.push_row(row);
            };
            push_metric("MET", &|g| format!("{:.4}", g.met));
            push_metric("CR", &|g| g.cr.to_string());
            push_metric("EER", &|g| g.eer.to_string());
            push_metric("NER", &|g| g.ner.to_string());
            push_metric("Total", &|g| g.total.to_string());
            push_metric("NRDT", &|g| g.nrdt.to_string());
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

/// Runs Table 5 with the paper's parameters.
pub fn run_table5(seed: MasterSeed) -> SimulationTable {
    run_table5_with(
        seed,
        PAPER_REQUESTS,
        &PAPER_TIMEOUTS,
        ExecTimeModel::paper(),
    )
}

/// Runs Table 5 with explicit request count, timeouts and timing model.
pub fn run_table5_with(
    seed: MasterSeed,
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
) -> SimulationTable {
    run_table5_observed(seed, requests, timeouts, timing, &ObsSinks::default())
}

/// [`run_table5_with`] with observability sinks threaded into every
/// simulated cell (tagged `table5/run{n}/t{timeout}`).
pub fn run_table5_observed(
    seed: MasterSeed,
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
    sinks: &ObsSinks,
) -> SimulationTable {
    run_table5_jobs(seed, requests, timeouts, timing, sinks, Jobs::serial())
}

/// [`run_table5_observed`] over a worker pool: every `(run, timeout)`
/// cell is one replication. Results, traces and metrics are merged in
/// replication order, so the output is byte-identical for any `jobs`.
pub fn run_table5_jobs(
    seed: MasterSeed,
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
    sinks: &ObsSinks,
    jobs: Jobs,
) -> SimulationTable {
    run_table5_sharded(
        seed,
        requests,
        timeouts,
        timing,
        sinks,
        jobs,
        Shards::serial(),
    )
}

/// [`run_table5_jobs`] with intra-cell sharding on top: each cell's
/// demand loop runs as a prepare/commit pipeline over `shards` workers
/// (see [`crate::midsim::simulate_cell_sharded`]). Neither knob changes
/// a byte of output.
#[allow(clippy::too_many_arguments)]
pub fn run_table5_sharded(
    seed: MasterSeed,
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
    sinks: &ObsSinks,
    jobs: Jobs,
    shards: Shards,
) -> SimulationTable {
    let specs = RunSpec::all();
    let cells = simulate_table_cells(
        "table5",
        &specs,
        requests,
        timeouts,
        timing,
        seed,
        sinks,
        jobs,
        shards,
        CorrelatedOutcomes::from_run,
    );
    SimulationTable {
        title: "Table 5: correlated release failures".to_owned(),
        runs: group_cells(&specs, timeouts, cells),
    }
}

/// Fans the `(run, timeout)` grid out as replications, run-major and
/// timeout-minor (the sequential iteration order). Each cell re-derives
/// its run's demand plan — identical for every cell of the run, see
/// [`plan_run`] — and simulates its own timeout column with its own
/// generator, RNG streams and observability sinks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_table_cells<G, F>(
    table_tag: &str,
    specs: &[RunSpec],
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
    seed: MasterSeed,
    sinks: &ObsSinks,
    jobs: Jobs,
    shards: Shards,
    make_gen: F,
) -> Vec<CellResult>
where
    G: wsu_workload::outcomes::OutcomePairGen,
    F: Fn(&RunSpec) -> G + Sync,
{
    run_replications(jobs, specs.len() * timeouts.len(), sinks, |r, local| {
        let spec = &specs[r / timeouts.len()];
        let timeout = timeouts[r % timeouts.len()];
        let gen = make_gen(spec);
        let run_tag = format!("{table_tag}/run{}", spec.run);
        let plan = plan_run(&gen, timing, requests, seed, &run_tag);
        simulate_cell_sharded(
            &plan,
            MiddlewareConfig::paper(timeout),
            seed,
            local,
            &format!("{run_tag}/t{timeout}"),
            shards,
        )
    })
}

/// Groups a flat cell vector (run-major, timeout-minor) back into
/// per-run rows.
pub(crate) fn group_cells(
    specs: &[RunSpec],
    timeouts: &[f64],
    cells: Vec<CellResult>,
) -> Vec<RunResult> {
    specs
        .iter()
        .zip(cells.chunks(timeouts.len().max(1)))
        .map(|(spec, chunk)| RunResult {
            run: spec.run,
            cells: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SimulationTable {
        run_table5_with(
            MasterSeed::new(41),
            2_000,
            &[1.5, 3.0],
            ExecTimeModel::paper(),
        )
    }

    #[test]
    fn four_runs_two_timeouts() {
        let table = quick();
        assert_eq!(table.runs.len(), 4);
        for run in &table.runs {
            assert_eq!(run.cells.len(), 2);
            assert_eq!(run.cells[0].requests, 2_000);
        }
    }

    #[test]
    fn rel2_degrades_across_runs() {
        // Table 3/4: release 2's correctness drops from run 1 to run 4.
        let table = quick();
        let cr = |i: usize| table.runs[i].cells[0].rel2.correct_fraction();
        assert!(cr(0) > cr(3), "run1 {} !> run4 {}", cr(0), cr(3));
    }

    #[test]
    fn high_correlation_keeps_system_close_to_better_release() {
        // Run 1 (diagonal 0.9): system correctness is at least close to
        // the better release's; at lower correlation (run 4) the random
        // pick among disagreeing valid responses drags the system toward
        // the worse release.
        let table = quick();
        let run1 = &table.runs[0].cells[0];
        let run4 = &table.runs[3].cells[0];
        let rel_gap_run1 = run1.rel1.correct_fraction() - run1.system.correct_fraction();
        let rel_gap_run4 = run4.rel1.correct_fraction() - run4.system.correct_fraction();
        assert!(
            rel_gap_run4 > rel_gap_run1,
            "gap run4 {rel_gap_run4} !> gap run1 {rel_gap_run1}"
        );
    }

    #[test]
    fn render_contains_all_runs_and_metrics() {
        let table = quick();
        let text = table.render();
        for needle in ["Run 1", "Run 4", "MET", "NRDT", "Rel1@1.5s", "System@3s"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
