//! The fault-injection campaign: a matrix of fault plans swept over the
//! two-release managed upgrade.
//!
//! Each plan in the matrix wraps both releases in
//! [`FaultInjector`](wsu_faults::FaultInjector)s armed with a
//! [`FaultScenario`](wsu_faults::FaultScenario), runs the managed
//! upgrade to completion and reports what the monitoring subsystem's
//! detection audit made of the injected ground truth: detection
//! coverage, false-alarm rate, the switch/abort decision and system
//! availability. Plans fan out as replications via
//! [`run_replications`], so the campaign is byte-identical at any
//! `--jobs` value.

use wsu_core::manage::AbortPolicy;
use wsu_core::middleware::MiddlewareConfig;
use wsu_core::upgrade::{DetectorKind, ManagedUpgrade, UpgradeConfig, UpgradePhase};
use wsu_faults::{FaultAction, FaultClause, FaultInjector, FaultScenario, FaultTrigger};
use wsu_obs::DependabilitySnapshot;
use wsu_simcore::dist::DelayModel;
use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_wstack::endpoint::SyntheticService;

use crate::midsim::ObsSinks;
use crate::replicate::run_replications;
use crate::report::TextTable;

/// Sizing knobs of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Demands each plan processes.
    pub demands: u64,
    /// Bayesian assessment cadence, in demands.
    pub assess_interval: u64,
    /// Inference grid resolution.
    pub resolution: wsu_bayes::whitebox::Resolution,
    /// Middleware timeout, in seconds.
    pub timeout_secs: f64,
}

impl CampaignConfig {
    /// The committed-artifact scale: 2,500 demands per plan, assessment
    /// every 250.
    pub fn paper() -> CampaignConfig {
        CampaignConfig {
            demands: 2_500,
            assess_interval: 250,
            resolution: wsu_bayes::whitebox::Resolution {
                a_cells: 48,
                b_cells: 48,
                q_cells: 16,
            },
            timeout_secs: 2.0,
        }
    }

    /// A fast scale for tests and smoke runs.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            demands: 800,
            assess_interval: 100,
            ..CampaignConfig::paper()
        }
    }
}

/// One cell of the campaign matrix: a fault scenario and the failure
/// detector adjudicating it.
#[derive(Debug, Clone)]
pub struct PlanSpec {
    /// The two-release fault scenario.
    pub scenario: FaultScenario,
    /// The detector the monitoring subsystem scores the pair with.
    pub detector: DetectorKind,
}

impl PlanSpec {
    /// Pairs a scenario with a detector.
    pub fn new(scenario: FaultScenario, detector: DetectorKind) -> PlanSpec {
        PlanSpec { scenario, detector }
    }
}

/// The standard campaign matrix.
///
/// Eleven plans chosen so every fault kind the plan language can express
/// appears at least once, under detectors ranging from perfect to
/// omission-prone and false-alarming.
pub fn standard_plans() -> Vec<PlanSpec> {
    vec![
        // No faults at all: the audit's control group.
        PlanSpec::new(FaultScenario::new("baseline"), DetectorKind::Omission(0.15)),
        // The old release crashes for a window of demands mid-run.
        PlanSpec::new(
            FaultScenario::new("old-crash-window").old_clause(FaultClause::new(
                "crash-window",
                FaultTrigger::DemandWindow { from: 200, to: 400 },
                FaultAction::Crash,
            )),
            DetectorKind::Perfect,
        ),
        // The new release hangs past the timeout on a random 5%.
        PlanSpec::new(
            FaultScenario::new("new-hang").new_clause(FaultClause::new(
                "hang",
                FaultTrigger::Probabilistic {
                    p: 0.05,
                    stream: "new/hang".into(),
                },
                FaultAction::Hang { delay_secs: 10.0 },
            )),
            DetectorKind::Omission(0.1),
        ),
        // Deterministic evident wrong values on the old release.
        PlanSpec::new(
            FaultScenario::new("old-wrong-evident").old_clause(FaultClause::new(
                "wrong-evident",
                FaultTrigger::EveryNth { n: 7, phase: 3 },
                FaultAction::WrongValue { evident: true },
            )),
            DetectorKind::Perfect,
        ),
        // Plausible-but-wrong answers from the new release: only a
        // detector can tell.
        PlanSpec::new(
            FaultScenario::new("new-wrong-nonevident").new_clause(FaultClause::new(
                "wrong-nonevident",
                FaultTrigger::Probabilistic {
                    p: 0.08,
                    stream: "new/ner".into(),
                },
                FaultAction::WrongValue { evident: false },
            )),
            DetectorKind::Omission(0.15),
        ),
        // Latency spikes that push some responses over the timeout.
        PlanSpec::new(
            FaultScenario::new("old-latency-spike").old_clause(FaultClause::new(
                "spike",
                FaultTrigger::Probabilistic {
                    p: 0.1,
                    stream: "old/spike".into(),
                },
                FaultAction::LatencySpike { extra_secs: 1.8 },
            )),
            DetectorKind::Perfect,
        ),
        // Responses landing just past the timeout boundary.
        PlanSpec::new(
            FaultScenario::new("new-timeout-boundary").new_clause(FaultClause::new(
                "boundary",
                FaultTrigger::EveryNth { n: 11, phase: 0 },
                FaultAction::TimeoutBoundary {
                    timeout_secs: 2.0,
                    margin_secs: 0.1,
                },
            )),
            DetectorKind::Perfect,
        ),
        // Transport-level chaos: drops on the old side, duplicates and
        // corruption on the new side.
        PlanSpec::new(
            FaultScenario::new("transport-chaos")
                .old_clause(FaultClause::new(
                    "drop",
                    FaultTrigger::Probabilistic {
                        p: 0.04,
                        stream: "old/drop".into(),
                    },
                    FaultAction::DropResponse,
                ))
                .new_clause(FaultClause::new(
                    "duplicate",
                    FaultTrigger::Probabilistic {
                        p: 0.04,
                        stream: "new/dup".into(),
                    },
                    FaultAction::DuplicateRequest,
                ))
                .new_clause(FaultClause::new(
                    "corrupt",
                    FaultTrigger::Probabilistic {
                        p: 0.04,
                        stream: "new/corrupt".into(),
                    },
                    FaultAction::CorruptMessage,
                )),
            DetectorKind::Omission(0.1),
        ),
        // The old release flaps up and down through the first 600
        // demands.
        PlanSpec::new(
            FaultScenario::new("flap-old").old_clause(FaultClause::new(
                "flap",
                FaultTrigger::DemandWindow { from: 0, to: 600 },
                FaultAction::Flap { period: 50 },
            )),
            DetectorKind::Perfect,
        ),
        // Correlated crashes: both releases share one probabilistic
        // stream, so they go down on exactly the same demands.
        PlanSpec::new(
            FaultScenario::new("coincident-burst").coincident(FaultClause::new(
                "burst",
                FaultTrigger::Probabilistic {
                    p: 0.05,
                    stream: "burst".into(),
                },
                FaultAction::Crash,
            )),
            DetectorKind::BackToBackThenOmission(0.1),
        ),
        // No faults, but the detector cries wolf.
        PlanSpec::new(
            FaultScenario::new("false-alarm"),
            DetectorKind::FalseAlarm(0.05),
        ),
    ]
}

/// One plan's campaign outcome.
#[derive(Debug, Clone)]
pub struct PlanResult {
    /// Scenario name.
    pub name: String,
    /// Detector label (its `Debug` form).
    pub detector: String,
    /// Demands processed.
    pub demands: u64,
    /// Injections by fault kind, merged across both releases and sorted
    /// by kind label.
    pub injected: Vec<(String, u64)>,
    /// Total injections across both releases.
    pub injected_total: u64,
    /// Ground-truth failures the detector caught (audit true positives,
    /// both releases).
    pub detected: u64,
    /// Empirical detection coverage on the old release.
    pub coverage_old: Option<f64>,
    /// Empirical detection coverage on the new release.
    pub coverage_new: Option<f64>,
    /// Empirical false-alarm rate on the old release.
    pub false_alarm_old: Option<f64>,
    /// Empirical false-alarm rate on the new release.
    pub false_alarm_new: Option<f64>,
    /// Final upgrade phase (`transitional`, `switched@N`, `aborted@N`).
    pub outcome: String,
    /// System availability over the run.
    pub availability: f64,
    /// 99th-percentile consumer-visible response time (seconds).
    pub p99: f64,
    /// 99.9th-percentile consumer-visible response time (seconds).
    pub p999: f64,
    /// Availability of the worst completed SLO window.
    pub worst_window_availability: f64,
    /// Full windowed dependability snapshot at end of run.
    pub snapshot: DependabilitySnapshot,
}

/// The rendered campaign.
#[derive(Debug, Clone)]
pub struct CampaignTable {
    /// Display title.
    pub title: String,
    /// One row per plan, in matrix order.
    pub rows: Vec<PlanResult>,
}

fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{r:.3}"),
        None => "—".to_owned(),
    }
}

impl CampaignTable {
    /// Renders the per-plan detection-coverage table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            self.title.clone(),
            &[
                "Plan", "Detector", "Demands", "Injected", "Kinds", "Detected", "Cov(old)",
                "Cov(new)", "FA(old)", "FA(new)", "Outcome", "Avail", "p99(s)", "p999(s)",
                "WinAvail",
            ],
        );
        for row in &self.rows {
            let kinds = if row.injected.is_empty() {
                "—".to_owned()
            } else {
                row.injected
                    .iter()
                    .map(|(kind, count)| format!("{kind}:{count}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            table.push_row(vec![
                row.name.clone(),
                row.detector.clone(),
                row.demands.to_string(),
                row.injected_total.to_string(),
                kinds,
                row.detected.to_string(),
                fmt_rate(row.coverage_old),
                fmt_rate(row.coverage_new),
                fmt_rate(row.false_alarm_old),
                fmt_rate(row.false_alarm_new),
                row.outcome.clone(),
                format!("{:.4}", row.availability),
                format!("{:.3}", row.p99),
                format!("{:.3}", row.p999),
                format!("{:.4}", row.worst_window_availability),
            ]);
        }
        table.render()
    }

    /// The per-plan dependability snapshots as one JSON document, the
    /// body `faultcampaign --serve-metrics` publishes on `/snapshot`.
    pub fn snapshots_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"wsu-campaign-snapshot/1\",\"plans\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"plan\":\"{}\",\"snapshot\":{}}}",
                row.name,
                row.snapshot.to_json()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Runs the standard matrix at paper scale, serially.
pub fn run_campaign(seed: MasterSeed) -> CampaignTable {
    run_campaign_jobs(
        &standard_plans(),
        &CampaignConfig::paper(),
        seed,
        &ObsSinks::default(),
        Jobs::serial(),
    )
}

/// Runs `specs` over a worker pool: each plan is one replication.
/// Results, traces and metrics merge in matrix order, so every output
/// is byte-identical for any `jobs`.
pub fn run_campaign_jobs(
    specs: &[PlanSpec],
    config: &CampaignConfig,
    seed: MasterSeed,
    sinks: &ObsSinks,
    jobs: Jobs,
) -> CampaignTable {
    let rows = run_replications(jobs, specs.len(), sinks, |index, local| {
        run_plan(&specs[index], config, seed, local)
    });
    CampaignTable {
        title: "Fault-injection campaign: detection coverage per plan".to_owned(),
        rows,
    }
}

/// Simulates one plan of the matrix and audits what the detector saw.
///
/// The base services are always-correct, so *every* ground-truth failure
/// in the run is injected — which is what lets the audit's true
/// positives be read as "injected faults detected".
fn run_plan(
    spec: &PlanSpec,
    config: &CampaignConfig,
    seed: MasterSeed,
    local: &ObsSinks,
) -> PlanResult {
    let name = spec.scenario.name.clone();
    let scenario_seed = {
        let mut derive = seed.stream(&format!("campaign/{name}"));
        MasterSeed::new(derive.next_u64())
    };
    // Constant execution time, safely inside the timeout: the base
    // services never fail on their own, so every ground-truth failure
    // in the run is injected (an exponential model would trip the
    // timeout on its tail and blur the audit).
    let service = |release: &str| {
        SyntheticService::builder("Composite", release)
            .exec_time(DelayModel::constant(0.5))
            .build()
    };
    let arm = |release: &str, plan: &wsu_faults::FaultPlan| {
        let mut injector = FaultInjector::new(service(release), plan.clone(), scenario_seed);
        if let Some(recorder) = &local.recorder {
            injector = injector.with_recorder(recorder.clone());
        }
        if let Some(metrics) = &local.metrics {
            injector = injector.with_metrics(metrics.clone());
        }
        injector
    };
    let old = arm("1.0", &spec.scenario.old);
    let new = arm("2.0", &spec.scenario.new);
    let old_tally = old.tally();
    let new_tally = new.tally();

    let upgrade_config = UpgradeConfig::default()
        .with_middleware(MiddlewareConfig::paper(config.timeout_secs))
        .with_detector(spec.detector)
        .with_assess_interval(config.assess_interval)
        .with_resolution(config.resolution)
        .with_abort(AbortPolicy::new(0.99));
    let mut upgrade = ManagedUpgrade::new(old, new, upgrade_config, scenario_seed);
    if let Some(recorder) = &local.recorder {
        upgrade.attach_recorder(recorder.clone());
    }
    if let Some(metrics) = &local.metrics {
        upgrade.attach_metrics(metrics);
    }
    upgrade.run_demands(config.demands);

    let mut injected: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for tally in [&old_tally, &new_tally] {
        for (kind, count) in tally.by_kind() {
            *injected.entry(kind.to_owned()).or_insert(0) += count;
        }
    }
    let audit = upgrade
        .monitor()
        .pair()
        .expect("campaign tracks the release pair")
        .audit();
    let (a, b) = (audit.release_a(), audit.release_b());
    if let Some(metrics) = &local.metrics {
        metrics.add_counter(
            "wsu_fault_detected_total",
            &[("plan", &name), ("release", "old")],
            a.true_positives,
        );
        metrics.add_counter(
            "wsu_fault_detected_total",
            &[("plan", &name), ("release", "new")],
            b.true_positives,
        );
    }
    let outcome = match upgrade.phase() {
        UpgradePhase::Transitional => "transitional".to_owned(),
        UpgradePhase::Switched { at_demand } => format!("switched@{at_demand}"),
        UpgradePhase::Aborted { at_demand } => format!("aborted@{at_demand}"),
    };
    let snapshot = upgrade.monitor().dependability_snapshot();
    PlanResult {
        name,
        detector: format!("{:?}", spec.detector),
        demands: config.demands,
        injected_total: injected.values().sum(),
        injected: injected.into_iter().collect(),
        detected: a.true_positives + b.true_positives,
        coverage_old: a.coverage(),
        coverage_new: b.coverage(),
        false_alarm_old: a.false_alarm_rate(),
        false_alarm_new: b.false_alarm_rate(),
        outcome,
        availability: upgrade.monitor().system_stats().availability(),
        p99: upgrade.monitor().response_quantiles().p99(),
        p999: upgrade.monitor().response_quantiles().p999(),
        worst_window_availability: snapshot.worst_window_availability,
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_obs::{SharedRecorder, SharedRegistry};

    const SEED: MasterSeed = MasterSeed::new(0xCA_4A16);

    fn quick() -> CampaignTable {
        run_campaign_jobs(
            &standard_plans(),
            &CampaignConfig::quick(),
            SEED,
            &ObsSinks::default(),
            Jobs::serial(),
        )
    }

    #[test]
    fn baseline_has_no_injections_or_failures() {
        let table = quick();
        let baseline = &table.rows[0];
        assert_eq!(baseline.name, "baseline");
        assert_eq!(baseline.injected_total, 0);
        assert_eq!(baseline.detected, 0);
        // No true failures ever happened: coverage is undefined.
        assert_eq!(baseline.coverage_old, None);
        assert_eq!(baseline.coverage_new, None);
        assert_eq!(baseline.false_alarm_old, Some(0.0));
    }

    #[test]
    fn every_fault_kind_appears_in_the_matrix() {
        let table = quick();
        let kinds: std::collections::BTreeSet<&str> = table
            .rows
            .iter()
            .flat_map(|row| row.injected.iter().map(|(kind, _)| kind.as_str()))
            .collect();
        for kind in [
            "crash",
            "hang",
            "wrong-evident",
            "wrong-non-evident",
            "latency-spike",
            "timeout-boundary",
            "drop",
            "duplicate",
            "corrupt",
            "flap",
        ] {
            assert!(kinds.contains(kind), "matrix never injected {kind}");
        }
    }

    #[test]
    fn perfect_detector_has_full_coverage_where_failures_occurred() {
        let table = quick();
        let crash = table
            .rows
            .iter()
            .find(|row| row.name == "old-crash-window")
            .unwrap();
        assert!(crash.injected_total > 0);
        assert_eq!(crash.coverage_old, Some(1.0));
        assert_eq!(crash.false_alarm_old, Some(0.0));
    }

    #[test]
    fn false_alarm_plan_raises_alarms_without_faults() {
        let table = quick();
        let row = table.rows.iter().find(|r| r.name == "false-alarm").unwrap();
        assert_eq!(row.injected_total, 0);
        let fa = row.false_alarm_old.unwrap();
        assert!(fa > 0.01 && fa < 0.1, "false-alarm rate {fa}");
    }

    #[test]
    fn render_contains_every_plan_and_column() {
        let table = quick();
        let text = table.render();
        for row in &table.rows {
            assert!(text.contains(&row.name), "missing plan {}", row.name);
        }
        for needle in [
            "Cov(old)", "FA(new)", "Outcome", "Avail", "Detected", "p99(s)", "p999(s)", "WinAvail",
        ] {
            assert!(text.contains(needle), "missing column {needle}");
        }
    }

    #[test]
    fn tail_latency_and_window_columns_are_sane() {
        let table = quick();
        let baseline = &table.rows[0];
        // Constant 0.5 s services + dT: every response time is 0.6 s, so
        // p99 and p999 sit there (within the sketch's 1% bound) and every
        // window is fully available.
        assert!((baseline.p99 - 0.6).abs() / 0.6 <= 0.01, "{}", baseline.p99);
        assert!((baseline.p999 - 0.6).abs() / 0.6 <= 0.01);
        assert_eq!(baseline.worst_window_availability, 1.0);
        // The hang plan drags the tail out to the timeout.
        let hang = table.rows.iter().find(|r| r.name == "new-hang").unwrap();
        assert!(
            hang.p999 > baseline.p999,
            "{} vs {}",
            hang.p999,
            baseline.p999
        );
        // Coincident crashes take both releases down at once: the worst
        // window shows the dip that the lifetime average smooths over.
        let burst = table
            .rows
            .iter()
            .find(|r| r.name == "coincident-burst")
            .unwrap();
        assert!(burst.worst_window_availability < burst.availability);
    }

    #[test]
    fn snapshots_json_lists_every_plan() {
        let table = quick();
        let json = table.snapshots_json();
        assert!(json.starts_with("{\"schema\":\"wsu-campaign-snapshot/1\""));
        for row in &table.rows {
            assert!(
                json.contains(&format!("{{\"plan\":\"{}\",\"snapshot\":{{", row.name)),
                "missing {}",
                row.name
            );
        }
        // Each embedded snapshot is the monitor's own rendering.
        assert!(json.contains("\"schema\":\"wsu-snapshot/1\""));
        assert!(wsu_obs::parse_jsonl(&json).is_ok(), "snapshot JSON parses");
    }

    #[test]
    fn campaign_is_jobs_invariant_with_observability() {
        let observed = |jobs| {
            let sinks = ObsSinks {
                recorder: Some(SharedRecorder::new()),
                metrics: Some(SharedRegistry::new()),
            };
            let table = run_campaign_jobs(
                &standard_plans()[..4],
                &CampaignConfig::quick(),
                SEED,
                &sinks,
                jobs,
            );
            (
                table.render(),
                sinks.metrics.as_ref().unwrap().render_snapshot(),
                sinks.recorder.as_ref().unwrap().snapshot(),
            )
        };
        let (text1, prom1, trace1) = observed(Jobs::serial());
        let (text4, prom4, trace4) = observed(Jobs::new(4));
        assert_eq!(text1, text4, "rendered table differs with jobs=4");
        assert_eq!(prom1, prom4, "metrics snapshot differs with jobs=4");
        assert_eq!(trace1, trace4, "event trace differs with jobs=4");
        assert!(prom1.contains("wsu_fault_injected_total"), "{prom1}");
        assert!(
            trace1.iter().any(|e| e.kind() == "FaultInjected"),
            "trace carries injection events"
        );
    }

    #[test]
    fn detected_metric_matches_audit() {
        let sinks = ObsSinks {
            recorder: None,
            metrics: Some(SharedRegistry::new()),
        };
        let table = run_campaign_jobs(
            &standard_plans()[1..2], // old-crash-window
            &CampaignConfig::quick(),
            SEED,
            &sinks,
            Jobs::serial(),
        );
        let row = &table.rows[0];
        let metrics = sinks.metrics.as_ref().unwrap();
        let detected = metrics.with(|r| {
            r.counter(
                "wsu_fault_detected_total",
                &[("plan", "old-crash-window"), ("release", "old")],
            ) + r.counter(
                "wsu_fault_detected_total",
                &[("plan", "old-crash-window"), ("release", "new")],
            )
        });
        assert_eq!(detected, row.detected);
        assert!(detected > 0);
    }
}
