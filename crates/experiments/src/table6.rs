//! Table 6: simulation results assuming independence of release
//! failures.
//!
//! Same structure as Table 5, but each release samples its own marginals
//! (Table 3) independently. The paper's headline: under independence the
//! 1-out-of-2 system beats both releases — "fault-tolerance works" —
//! though the assumption is implausible for two releases of the same
//! service.

use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_simcore::shard::Shards;
use wsu_workload::outcomes::IndependentOutcomes;
use wsu_workload::runs::RunSpec;
use wsu_workload::timing::ExecTimeModel;

use crate::midsim::ObsSinks;
use crate::table5::{group_cells, simulate_table_cells, SimulationTable};
use crate::{PAPER_REQUESTS, PAPER_TIMEOUTS};

/// Runs Table 6 with the paper's parameters.
pub fn run_table6(seed: MasterSeed) -> SimulationTable {
    run_table6_with(
        seed,
        PAPER_REQUESTS,
        &PAPER_TIMEOUTS,
        ExecTimeModel::paper(),
    )
}

/// Runs Table 6 with explicit request count, timeouts and timing model.
pub fn run_table6_with(
    seed: MasterSeed,
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
) -> SimulationTable {
    run_table6_observed(seed, requests, timeouts, timing, &ObsSinks::default())
}

/// [`run_table6_with`] with observability sinks threaded into every
/// simulated cell (tagged `table6/run{n}/t{timeout}`).
pub fn run_table6_observed(
    seed: MasterSeed,
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
    sinks: &ObsSinks,
) -> SimulationTable {
    run_table6_jobs(seed, requests, timeouts, timing, sinks, Jobs::serial())
}

/// [`run_table6_observed`] over a worker pool: every `(run, timeout)`
/// cell is one replication. Results, traces and metrics are merged in
/// replication order, so the output is byte-identical for any `jobs`.
pub fn run_table6_jobs(
    seed: MasterSeed,
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
    sinks: &ObsSinks,
    jobs: Jobs,
) -> SimulationTable {
    run_table6_sharded(
        seed,
        requests,
        timeouts,
        timing,
        sinks,
        jobs,
        Shards::serial(),
    )
}

/// [`run_table6_jobs`] with intra-cell sharding on top: each cell's
/// demand loop runs as a prepare/commit pipeline over `shards` workers
/// (see [`crate::midsim::simulate_cell_sharded`]). Neither knob changes
/// a byte of output.
#[allow(clippy::too_many_arguments)]
pub fn run_table6_sharded(
    seed: MasterSeed,
    requests: u64,
    timeouts: &[f64],
    timing: ExecTimeModel,
    sinks: &ObsSinks,
    jobs: Jobs,
    shards: Shards,
) -> SimulationTable {
    let specs = RunSpec::all();
    let cells = simulate_table_cells(
        "table6",
        &specs,
        requests,
        timeouts,
        timing,
        seed,
        sinks,
        jobs,
        shards,
        IndependentOutcomes::from_run,
    );
    SimulationTable {
        title: "Table 6: independent release failures".to_owned(),
        runs: group_cells(&specs, timeouts, cells),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SimulationTable {
        run_table6_with(MasterSeed::new(43), 4_000, &[2.0], ExecTimeModel::paper())
    }

    #[test]
    fn system_beats_both_releases_under_independence() {
        // The fault-tolerance headline of Table 6, checked on every run.
        let table = quick();
        for run in &table.runs {
            let cell = &run.cells[0];
            let sys = cell.system.correct_fraction();
            let best = cell
                .rel1
                .correct_fraction()
                .max(cell.rel2.correct_fraction());
            assert!(
                sys > best - 0.005,
                "run {}: system {sys} vs best release {best}",
                run.run
            );
        }
    }

    #[test]
    fn marginals_match_table3() {
        let table = quick();
        // Run 3: Rel2 samples 0.50/0.25/0.25 independently.
        let cell = &table.runs[2].cells[0];
        let frac = cell.rel2.cr as f64 / (cell.rel2.total + cell.rel2.nrdt) as f64;
        // CR among all demands is diluted by NRDT; compare among responses.
        let among_responses = cell.rel2.cr as f64 / cell.rel2.total as f64;
        assert!((among_responses - 0.50).abs() < 0.03, "{among_responses}");
        assert!(frac <= among_responses);
    }

    #[test]
    fn title_distinguishes_the_tables() {
        assert!(quick().title.contains("independent"));
    }
}
