//! The fleet study: staged canary chains swept over a (fleet size ×
//! recovery strategy) fault matrix.
//!
//! Each cell deploys an N-release canary chain behind the weighted-fleet
//! middleware ([`wsu_core::fleet::FleetOrchestrator`]), wraps every
//! release in a [`FaultInjector`] armed with the cell's slice of a
//! [`FleetFaultScenario`], and runs the chain to completion under one of
//! the three recovery strategies (restart-in-place, demote-and-rollback,
//! substitute). The scenario is the same for every cell:
//!
//! * the **first canary** crashes for a burst of its own demands —
//!   a transient fault a restart genuinely cures;
//! * the **last stage** returns evident wrong values on every second
//!   demand — a persistent fault restarts can never cure;
//! * **every release** shares a low-probability crash clause — the
//!   correlated background noise.
//!
//! The table reports, per cell, the incidents declared, how many of
//! their recovery probes succeeded (**RecProb** = recovered/incidents),
//! the chain's lifecycle counters (promotions, rollbacks,
//! substitutions) and system availability — the fleet analogue of the
//! fault campaign's detection-coverage table. Cells fan out as
//! replications via [`run_replications`], so the rendered table, the
//! metrics snapshot and the event trace are byte-identical at any
//! `--jobs` value.

use wsu_core::composite::{CompositeEndpoint, CompositeService};
use wsu_core::fleet::{
    FleetOrchestrator, FleetPlan, ProbeRule, PromotionRule, RollbackRule, SubstitutePool,
};
use wsu_core::manage::RecoveryStrategy;
use wsu_faults::{FaultAction, FaultClause, FaultInjector, FaultTrigger, FleetFaultScenario};
use wsu_simcore::dist::DelayModel;
use wsu_simcore::par::Jobs;
use wsu_simcore::rng::MasterSeed;
use wsu_wstack::endpoint::SyntheticService;
use wsu_wstack::registry::ServiceRecord;
use wsu_wstack::wsdl::ServiceDescription;

use crate::midsim::ObsSinks;
use crate::replicate::run_replications;
use crate::report::TextTable;

/// Sizing knobs of a fleet-study run.
#[derive(Debug, Clone)]
pub struct FleetStudyConfig {
    /// Demands each cell processes.
    pub demands: u64,
    /// Canary assessment cadence, in demands.
    pub assess_interval: u64,
}

impl FleetStudyConfig {
    /// The committed-artifact scale: 4,000 demands per cell, assessment
    /// every 100.
    pub fn paper() -> FleetStudyConfig {
        FleetStudyConfig {
            demands: 4_000,
            assess_interval: 100,
        }
    }

    /// A fast scale for tests and smoke runs.
    pub fn quick() -> FleetStudyConfig {
        FleetStudyConfig {
            demands: 1_200,
            assess_interval: 50,
        }
    }
}

/// One cell of the study matrix.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Cell label (row name), e.g. `fleet3-substitute`.
    pub name: String,
    /// Releases in the chain, stable included (≥ 2).
    pub fleet: usize,
    /// The recovery strategy under test.
    pub strategy: RecoveryStrategy,
}

/// The standard matrix: fleet sizes {2, 3, 4} × the three recovery
/// strategies.
pub fn standard_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for fleet in [2usize, 3, 4] {
        for strategy in RecoveryStrategy::all() {
            cells.push(CellSpec {
                name: format!("fleet{fleet}-{}", strategy.label()),
                fleet,
                strategy,
            });
        }
    }
    cells
}

/// One cell's outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cell label.
    pub name: String,
    /// Fleet size (releases in the chain).
    pub fleet: usize,
    /// Strategy label.
    pub strategy: String,
    /// Demands processed.
    pub demands: u64,
    /// Total fault injections across all releases.
    pub injected_total: u64,
    /// Injections by fault kind, merged across releases and sorted.
    pub injected: Vec<(String, u64)>,
    /// Incidents declared.
    pub incidents: u64,
    /// Incidents whose recovery probe succeeded.
    pub recovered: u64,
    /// `recovered / incidents`; `None` when no incident was declared.
    pub recovery_probability: Option<f64>,
    /// Canary promotions.
    pub promotions: u64,
    /// Canary demotions.
    pub rollbacks: u64,
    /// Atomic substitutions bound.
    pub substitutions: u64,
    /// System availability over the run.
    pub availability: f64,
}

/// The rendered study.
#[derive(Debug, Clone)]
pub struct FleetTable {
    /// Display title.
    pub title: String,
    /// One row per cell, in matrix order.
    pub rows: Vec<CellResult>,
}

impl FleetTable {
    /// Renders the per-cell recovery table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            self.title.clone(),
            &[
                "Plan",
                "Fleet",
                "Strategy",
                "Demands",
                "Injected",
                "Incidents",
                "Recovered",
                "RecProb",
                "Promote",
                "Rollback",
                "Subst",
                "Avail",
            ],
        );
        for row in &self.rows {
            let rec_prob = match row.recovery_probability {
                Some(p) => format!("{p:.3}"),
                None => "—".to_owned(),
            };
            table.push_row(vec![
                row.name.clone(),
                row.fleet.to_string(),
                row.strategy.clone(),
                row.demands.to_string(),
                row.injected_total.to_string(),
                row.incidents.to_string(),
                row.recovered.to_string(),
                rec_prob,
                row.promotions.to_string(),
                row.rollbacks.to_string(),
                row.substitutions.to_string(),
                format!("{:.4}", row.availability),
            ]);
        }
        table.render()
    }

    /// The per-cell results as one JSON document, for
    /// `fleetstudy --serve-metrics`'s `/snapshot`.
    pub fn rows_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"schema\":\"wsu-fleetstudy/1\",\"cells\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rec_prob = match row.recovery_probability {
                Some(p) => format!("{p}"),
                None => "null".to_owned(),
            };
            let _ = write!(
                out,
                "{{\"cell\":\"{}\",\"fleet\":{},\"strategy\":\"{}\",\"demands\":{},\
                 \"injected\":{},\"incidents\":{},\"recovered\":{},\
                 \"recovery_probability\":{rec_prob},\"promotions\":{},\"rollbacks\":{},\
                 \"substitutions\":{},\"availability\":{}}}",
                row.name,
                row.fleet,
                row.strategy,
                row.demands,
                row.injected_total,
                row.incidents,
                row.recovered,
                row.promotions,
                row.rollbacks,
                row.substitutions,
                row.availability,
            );
        }
        out.push_str("]}");
        out
    }
}

/// The shared fault scenario, sliced per fleet size: a transient crash
/// burst on the first canary, a persistent evident fault on the last
/// stage, a correlated low-probability crash everywhere.
fn cell_scenario(name: &str, fleet: usize) -> FleetFaultScenario {
    FleetFaultScenario::new(name, fleet)
        .release_clause(
            1,
            FaultClause::new(
                "canary-burst",
                FaultTrigger::DemandWindow { from: 40, to: 80 },
                FaultAction::Crash,
            ),
        )
        .release_clause(
            fleet - 1,
            FaultClause::new(
                "persistent-wrong",
                FaultTrigger::EveryNth { n: 2, phase: 0 },
                FaultAction::WrongValue { evident: true },
            ),
        )
        .coincident(FaultClause::new(
            "co-crash",
            FaultTrigger::Probabilistic {
                p: 0.01,
                stream: "fleet/co-crash".into(),
            },
            FaultAction::Crash,
        ))
}

/// Runs the standard matrix at paper scale, serially.
pub fn run_fleetstudy(seed: MasterSeed) -> FleetTable {
    run_fleetstudy_jobs(
        &standard_cells(),
        &FleetStudyConfig::paper(),
        seed,
        &ObsSinks::default(),
        Jobs::serial(),
    )
}

/// Runs `cells` over a worker pool: each cell is one replication.
/// Results, traces and metrics merge in matrix order, so every output
/// is byte-identical for any `jobs`.
pub fn run_fleetstudy_jobs(
    cells: &[CellSpec],
    config: &FleetStudyConfig,
    seed: MasterSeed,
    sinks: &ObsSinks,
    jobs: Jobs,
) -> FleetTable {
    let rows = run_replications(jobs, cells.len(), sinks, |index, local| {
        run_cell(&cells[index], config, seed, local)
    });
    FleetTable {
        title: "Fleet study: recovery probability and availability per (fleet × strategy)"
            .to_owned(),
        rows,
    }
}

/// Simulates one cell of the matrix.
///
/// The base services are always-correct with constant execution time,
/// so every ground-truth failure in the run is injected — the same
/// discipline as the fault campaign.
fn run_cell(
    spec: &CellSpec,
    config: &FleetStudyConfig,
    seed: MasterSeed,
    local: &ObsSinks,
) -> CellResult {
    let name = spec.name.clone();
    let cell_seed = {
        let mut derive = seed.stream(&format!("fleetstudy/{name}"));
        MasterSeed::new(derive.next_u64())
    };
    let scenario = cell_scenario(&name, spec.fleet);
    let service = |release: &str| {
        SyntheticService::builder("Composite", release)
            .exec_time(DelayModel::constant(0.5))
            .build()
    };
    let arm = |release: &str, plan: &wsu_faults::FaultPlan| {
        let mut injector = FaultInjector::new(service(release), plan.clone(), cell_seed);
        if let Some(recorder) = &local.recorder {
            injector = injector.with_recorder(recorder.clone());
        }
        if let Some(metrics) = &local.metrics {
            injector = injector.with_metrics(metrics.clone());
        }
        injector
    };

    let releases: Vec<String> = (0..spec.fleet).map(|i| format!("1.{i}")).collect();
    let injectors: Vec<_> = releases
        .iter()
        .zip(&scenario.plans)
        .map(|(release, plan)| arm(release, plan))
        .collect();
    let tallies: Vec<_> = injectors.iter().map(|injector| injector.tally()).collect();

    let plan = FleetPlan {
        assess_interval: config.assess_interval,
        promotion: PromotionRule {
            target_pfd: 0.05,
            confidence: 0.8,
            min_demands: 25,
        },
        rollback: RollbackRule {
            window: 12,
            max_fault_rate: 0.4,
        },
        probe: ProbeRule {
            window: 30,
            min_availability: 0.9,
        },
        suspend_after: 5,
        ..FleetPlan::with_strategy(spec.strategy)
    };

    let mut injectors = injectors.into_iter();
    let mut orchestrator = FleetOrchestrator::new(
        injectors.next().expect("fleet has a stable release"),
        plan,
        cell_seed,
    );
    for injector in injectors {
        orchestrator.push_stage(injector);
    }
    // Stand-ins for the substitute strategy: functionally-equivalent
    // *composite* services published in the registry pool, one per
    // canary stage, bound atomically when a canary is demoted.
    if spec.strategy == RecoveryStrategy::Substitute {
        let mut pool = SubstitutePool::new();
        for stage in 1..spec.fleet {
            let stand_in_name = format!("CompositeAlt{stage}");
            let composite = CompositeService::builder(stand_in_name.clone())
                .component(
                    "backend",
                    SyntheticService::builder("Backend", "1.0")
                        .exec_time(DelayModel::constant(0.5))
                        .build(),
                )
                .build();
            pool.register(
                ServiceRecord::new(
                    &stand_in_name,
                    format!("http://standby/{stand_in_name}"),
                    "composite-equivalent",
                    ServiceDescription::new(&stand_in_name, "sub-1.0"),
                ),
                Box::new(CompositeEndpoint::new(composite, "sub-1.0")),
            );
        }
        orchestrator.set_substitutes(pool, "composite-equivalent");
    }
    if let Some(recorder) = &local.recorder {
        orchestrator.attach_recorder(recorder.clone());
    }
    if let Some(metrics) = &local.metrics {
        orchestrator.attach_metrics(metrics);
    }
    orchestrator.run_demands(config.demands);

    let mut injected: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for tally in &tallies {
        for (kind, count) in tally.by_kind() {
            *injected.entry(kind.to_owned()).or_insert(0) += count;
        }
    }
    let stats = orchestrator.stats();
    CellResult {
        name,
        fleet: spec.fleet,
        strategy: spec.strategy.label().to_owned(),
        demands: config.demands,
        injected_total: injected.values().sum(),
        injected: injected.into_iter().collect(),
        incidents: stats.incidents,
        recovered: stats.recovered,
        recovery_probability: stats.recovery_probability(),
        promotions: stats.promotions,
        rollbacks: stats.rollbacks,
        substitutions: stats.substitutions,
        availability: stats.availability(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsu_obs::{SharedRecorder, SharedRegistry};

    const SEED: MasterSeed = MasterSeed::new(0xF1EE7);

    fn quick() -> FleetTable {
        run_fleetstudy_jobs(
            &standard_cells(),
            &FleetStudyConfig::quick(),
            SEED,
            &ObsSinks::default(),
            Jobs::serial(),
        )
    }

    #[test]
    fn matrix_covers_every_fleet_size_and_strategy() {
        let cells = standard_cells();
        assert_eq!(cells.len(), 9);
        for fleet in [2usize, 3, 4] {
            for strategy in ["restart", "rollback", "substitute"] {
                assert!(
                    cells
                        .iter()
                        .any(|c| c.fleet == fleet && c.strategy.label() == strategy),
                    "missing cell fleet={fleet} strategy={strategy}"
                );
            }
        }
    }

    #[test]
    fn every_cell_suffers_and_reports_injections() {
        let table = quick();
        assert_eq!(table.rows.len(), 9);
        for row in &table.rows {
            assert!(row.injected_total > 0, "{} injected nothing", row.name);
            assert!(row.incidents > 0, "{} declared no incident", row.name);
            assert!(
                row.availability > 0.5,
                "{} availability collapsed",
                row.name
            );
        }
    }

    #[test]
    fn rollback_halts_the_chain_and_substitute_keeps_it_going() {
        let table = quick();
        for fleet in [3usize, 4] {
            let rollback = table
                .rows
                .iter()
                .find(|r| r.fleet == fleet && r.strategy == "rollback")
                .unwrap();
            let substitute = table
                .rows
                .iter()
                .find(|r| r.fleet == fleet && r.strategy == "substitute")
                .unwrap();
            assert!(rollback.rollbacks >= 1, "{rollback:?}");
            assert_eq!(rollback.substitutions, 0);
            assert!(substitute.substitutions >= 1, "{substitute:?}");
            // A substituted chain keeps promoting where a rolled-back
            // one halted.
            assert!(
                substitute.promotions >= rollback.promotions,
                "{substitute:?} vs {rollback:?}"
            );
        }
    }

    #[test]
    fn render_contains_every_cell_and_column() {
        let table = quick();
        let text = table.render();
        for row in &table.rows {
            assert!(text.contains(&row.name), "missing cell {}", row.name);
        }
        for needle in [
            "Fleet",
            "Strategy",
            "Injected",
            "Incidents",
            "Recovered",
            "RecProb",
            "Promote",
            "Rollback",
            "Subst",
            "Avail",
        ] {
            assert!(text.contains(needle), "missing column {needle}");
        }
    }

    #[test]
    fn rows_json_is_parseable_and_lists_every_cell() {
        let table = quick();
        let json = table.rows_json();
        assert!(json.starts_with("{\"schema\":\"wsu-fleetstudy/1\""));
        for row in &table.rows {
            assert!(json.contains(&format!("\"cell\":\"{}\"", row.name)));
        }
        assert!(wsu_obs::parse_jsonl(&json).is_ok(), "snapshot JSON parses");
    }

    #[test]
    fn study_is_jobs_invariant_with_observability() {
        let observed = |jobs| {
            let sinks = ObsSinks {
                recorder: Some(SharedRecorder::new()),
                metrics: Some(SharedRegistry::new()),
            };
            let table = run_fleetstudy_jobs(
                &standard_cells()[..5],
                &FleetStudyConfig::quick(),
                SEED,
                &sinks,
                jobs,
            );
            (
                table.render(),
                sinks.metrics.as_ref().unwrap().render_snapshot(),
                sinks.recorder.as_ref().unwrap().snapshot(),
            )
        };
        let (text1, prom1, trace1) = observed(Jobs::serial());
        let (text4, prom4, trace4) = observed(Jobs::new(4));
        assert_eq!(text1, text4, "rendered table differs with jobs=4");
        assert_eq!(prom1, prom4, "metrics snapshot differs with jobs=4");
        assert_eq!(trace1, trace4, "event trace differs with jobs=4");
        assert!(prom1.contains("wsu_fleet_weight"), "{prom1}");
        assert!(prom1.contains("wsu_fleet_incidents_total"));
    }
}
