//! Snapshot tests: the committed `results/` artefacts must be exactly
//! reproducible from the current code.
//!
//! The full-scale tests are `#[ignore]`d because they take minutes in a
//! debug build; CI's perf-smoke job (and `cargo test --release -p
//! wsu-experiments -- --ignored`) runs them at release speed. A quick
//! reduced-scale determinism check runs unconditionally.

use std::path::PathBuf;

use wsu_bayes::whitebox::Resolution;
use wsu_experiments::bayes_study::StudyConfig;
use wsu_experiments::campaign::{run_campaign_jobs, standard_plans, CampaignConfig};
use wsu_experiments::midsim::ObsSinks;
use wsu_experiments::{figures, table2, DEFAULT_SEED};
use wsu_simcore::par::Jobs;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

fn paper_study1() -> StudyConfig {
    StudyConfig {
        demands: 50_000,
        checkpoint_every: 500,
        resolution: Resolution::default(),
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    }
}

fn paper_study2() -> StudyConfig {
    StudyConfig {
        demands: 10_000,
        checkpoint_every: 100,
        resolution: Resolution::default(),
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    }
}

#[test]
#[ignore = "full paper scale; run with --release (CI perf-smoke job)"]
fn table2_artefact_is_reproducible() {
    let golden = std::fs::read_to_string(results_dir().join("table2.txt"))
        .expect("committed results/table2.txt");
    let rendered = table2::run_table2_with(DEFAULT_SEED, &paper_study1(), &paper_study2()).render();
    assert_eq!(rendered, golden, "results/table2.txt drifted");
}

#[test]
#[ignore = "full paper scale; run with --release (CI perf-smoke job)"]
fn fig7_artefact_is_reproducible() {
    let golden = std::fs::read_to_string(results_dir().join("fig7.tsv"))
        .expect("committed results/fig7.tsv");
    let (fig7, _) = figures::run_fig7(&paper_study1());
    assert_eq!(fig7.to_tsv(), golden, "results/fig7.tsv drifted");
}

#[test]
#[ignore = "full paper scale; run with --release (CI perf-smoke job)"]
fn faultcampaign_artefact_is_reproducible() {
    let golden = std::fs::read_to_string(results_dir().join("faultcampaign.txt"))
        .expect("committed results/faultcampaign.txt");
    let rendered = run_campaign_jobs(
        &standard_plans(),
        &CampaignConfig::paper(),
        DEFAULT_SEED,
        &ObsSinks::default(),
        Jobs::serial(),
    )
    .render();
    assert_eq!(rendered, golden, "results/faultcampaign.txt drifted");
}

#[test]
fn quick_faultcampaign_is_deterministic() {
    let run = || {
        run_campaign_jobs(
            &standard_plans()[..4],
            &CampaignConfig::quick(),
            DEFAULT_SEED,
            &ObsSinks::default(),
            Jobs::serial(),
        )
        .render()
    };
    assert_eq!(run(), run(), "quick campaign run is not deterministic");
}

#[test]
fn quick_table2_is_deterministic() {
    let res = Resolution {
        a_cells: 24,
        b_cells: 24,
        q_cells: 8,
    };
    let config = StudyConfig {
        demands: 2_000,
        checkpoint_every: 500,
        resolution: res,
        adaptive: None,
        confidence: 0.99,
        target: 1e-3,
        seed: DEFAULT_SEED,
    };
    let first = table2::run_table2_with(DEFAULT_SEED, &config, &config).render();
    let second = table2::run_table2_with(DEFAULT_SEED, &config, &config).render();
    assert_eq!(first, second, "quick Table 2 run is not deterministic");
}
