//! End-to-end test: `wsu-loadgen`'s closed loop against `wsu-serve`'s
//! front, over real sockets, with at least two worker threads — the
//! in-process version of the CI http-smoke job.

use std::time::Duration;

use wsu_core::serve::ServeSpec;
use wsu_experiments::loadgen::{render_bench_json, run_load, scrape_demand_total, LoadgenConfig};
use wsu_experiments::serve::{FrontConfig, HttpFront};
use wsu_obs::http::{http_get, HttpClient};

fn start_front(workers: usize) -> HttpFront {
    HttpFront::start(FrontConfig::new(
        "127.0.0.1:0",
        workers,
        ServeSpec::deterministic(23),
    ))
    .expect("start front")
}

#[test]
fn closed_loop_roundtrip_against_two_workers() {
    let front = start_front(2);
    let addr = front.local_addr();
    let config = LoadgenConfig {
        addr,
        connections: 2,
        requests_per_conn: 200,
        warmup_per_conn: 20,
        timeout: Duration::from_secs(5),
        open_rate: None,
    };
    let summary = run_load(&config).expect("load run");

    // Every demand against the deterministic spec must succeed.
    assert_eq!(summary.errors, 0, "no request may fail on loopback");
    assert_eq!(summary.ok, 400);
    assert_eq!(summary.warmup_ok, 40);
    assert!(summary.requests_per_sec > 0.0);
    assert!(summary.latency.count() == 400);
    assert!(summary.latency_ns(0.50) > 0);
    assert!(summary.latency_ns(0.999) >= summary.latency_ns(0.50));

    // Server-side books must agree exactly with the client's count.
    let server_total = scrape_demand_total(addr).expect("scrape");
    assert_eq!(
        server_total,
        summary.ok + summary.warmup_ok,
        "server demand counter must match the client-side 200 count"
    );
    assert_eq!(front.demands(), server_total);

    // The deterministic spec answers every demand correctly: the
    // verdict counters must show nothing but CR.
    let metrics = front.metrics_text();
    let cr: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("wsu_http_verdicts_total{verdict=\"CR\""))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert_eq!(cr, server_total, "all verdicts must be CR");
    // The other verdict series are pre-registered but must stay zero.
    let non_cr: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("wsu_http_verdicts_total") && !l.contains("verdict=\"CR\""))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert_eq!(non_cr, 0, "no non-CR verdicts on the deterministic spec");

    // Both workers must actually have served demands: two closed-loop
    // connections occupy two workers for the whole run, so neither
    // counter can be zero.
    let per_worker: Vec<u64> = metrics
        .lines()
        .filter(|l| l.starts_with("wsu_http_demands_total{worker="))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .collect();
    assert_eq!(per_worker.len(), 2, "both workers must appear in /metrics");
    assert!(
        per_worker.iter().all(|&c| c > 0),
        "both workers must serve demands, got {per_worker:?}"
    );

    // The bench report renders from a real run.
    let json = render_bench_json(&summary);
    assert!(json.contains("\"bench\": \"BENCH_http\""));
    assert!(json.contains("http/demand/latency_p999"));

    front.shutdown();
}

#[test]
fn open_loop_reports_drops_under_overload_and_none_when_feasible() {
    let front = start_front(2);
    let addr = front.local_addr();
    let base = LoadgenConfig {
        addr,
        connections: 2,
        requests_per_conn: 150,
        warmup_per_conn: 10,
        timeout: Duration::from_secs(5),
        open_rate: None,
    };

    // A feasible rate: loopback serves a demand in well under 20 ms,
    // so a 100/s schedule keeps up. (Oversleeps under a loaded test
    // harness can still shed the odd slot — the claim is statistical:
    // nearly everything is sent, and every slot is accounted for.)
    let feasible = LoadgenConfig {
        open_rate: Some(100.0),
        requests_per_conn: 20,
        ..base.clone()
    };
    let summary = run_load(&feasible).expect("load run");
    assert_eq!(summary.errors, 0);
    assert_eq!(
        summary.ok + summary.dropped,
        40,
        "every slot is accounted for"
    );
    assert!(
        summary.drop_rate() < 0.5,
        "a feasible schedule mostly sends, got drop_rate {}",
        summary.drop_rate()
    );
    // The schedule paces the run: 20 slots at 20 ms each ≈ 400 ms
    // (shortened only by whatever slots were shed).
    assert!(summary.elapsed.as_secs_f64() > 0.15);
    assert!(summary.latency_ns(0.50) > 0);

    // An absurd rate: the schedule outruns loopback service time, so
    // slots are dropped and every sent request still succeeds.
    let overload = LoadgenConfig {
        open_rate: Some(50_000_000.0),
        ..base.clone()
    };
    let summary = run_load(&overload).expect("load run");
    assert_eq!(summary.errors, 0);
    assert!(
        summary.drop_rate() > 0.5,
        "a 50M/s schedule must shed most load, got ok={} dropped={}",
        summary.ok,
        summary.dropped
    );
    assert_eq!(summary.ok + summary.dropped, 300);
    // The bench report carries the drop accounting.
    let json = render_bench_json(&summary);
    assert!(json.contains("\"requests_dropped\":"));
    assert!(json.contains("\"drop_rate\":"));

    // A non-positive rate is a config error, not a hang.
    let bad = LoadgenConfig {
        open_rate: Some(0.0),
        ..base
    };
    assert!(run_load(&bad).is_err());

    front.shutdown();
}

#[test]
fn demand_outcomes_are_deterministic_json() {
    let front = start_front(1);
    let mut client =
        HttpClient::connect(front.local_addr(), Duration::from_secs(5)).expect("connect");
    // One worker, one connection: the outcome stream is exactly the
    // deterministic spec's, so the first responses are predictable.
    for seq in 0..3 {
        let resp = client.request("POST", "/demand", b"").expect("demand");
        assert_eq!(resp.status, 200);
        assert!(
            resp.body
                .contains(&format!("\"seq\":{seq},\"worker\":0,\"verdict\":\"CR\"")),
            "unexpected outcome JSON: {}",
            resp.body
        );
        assert!(resp.body.contains("\"response_time\":0.15"));
        assert!(resp.body.contains("\"responders\":2"));
    }
    front.shutdown();
}

#[test]
fn serving_front_route_semantics() {
    let front = start_front(2);
    let addr = front.local_addr();

    let health = http_get(addr, "/health").expect("health");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    let mut client = HttpClient::connect(addr, Duration::from_secs(5)).expect("connect");

    // GET on the POST route: 405 with Allow: POST.
    let resp = client.request("GET", "/demand", b"").expect("GET /demand");
    assert_eq!(resp.status, 405);
    // POST on a GET route: 405 with Allow: GET.
    let resp = client
        .request("POST", "/health", b"")
        .expect("POST /health");
    assert_eq!(resp.status, 405);
    // Unknown path: 404.
    let resp = client
        .request("GET", "/missing", b"")
        .expect("GET /missing");
    assert_eq!(resp.status, 404);
    // The connection survived all three errors (keep-alive intact).
    let resp = client
        .request("POST", "/demand", b"")
        .expect("POST /demand");
    assert_eq!(resp.status, 200);

    let snap = http_get(addr, "/snapshot").expect("snapshot");
    assert_eq!(snap.status, 200);
    assert!(snap.body.contains("\"demands\":1"));
    front.shutdown();
}

#[test]
fn front_shutdown_is_prompt_and_clean() {
    use std::sync::mpsc;
    let front = start_front(4);
    let addr = front.local_addr();
    let mut client = HttpClient::connect(addr, Duration::from_secs(5)).expect("connect");
    assert_eq!(
        client
            .request("POST", "/demand", b"")
            .expect("demand")
            .status,
        200
    );
    drop(client);
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        front.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(5))
        .expect("front shutdown hung");
}
