//! Demand-level failure oracles.
//!
//! An oracle judges, for each demand, whether each of the two releases
//! failed. The true pair is produced by the workload generator; the oracle
//! returns the pair the assessor *records*, which is what the Bayesian
//! inference sees.

use wsu_simcore::rng::StreamRng;

/// Ground truth (or an observation) of one demand: did each release fail?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DemandOutcome {
    /// Release A (the old release) failed.
    pub a_failed: bool,
    /// Release B (the new release) failed.
    pub b_failed: bool,
}

impl DemandOutcome {
    /// Both releases succeeded.
    pub const BOTH_OK: DemandOutcome = DemandOutcome {
        a_failed: false,
        b_failed: false,
    };

    /// Both releases failed.
    pub const BOTH_FAILED: DemandOutcome = DemandOutcome {
        a_failed: true,
        b_failed: true,
    };

    /// Creates an outcome.
    pub fn new(a_failed: bool, b_failed: bool) -> DemandOutcome {
        DemandOutcome { a_failed, b_failed }
    }

    /// Returns `true` if both releases failed on this demand.
    pub fn is_coincident(self) -> bool {
        self.a_failed && self.b_failed
    }

    /// Returns `true` if at least one release failed.
    pub fn any_failed(self) -> bool {
        self.a_failed || self.b_failed
    }
}

/// Scores demands, possibly imperfectly.
///
/// Implementations are deterministic functions of the truth and the
/// supplied RNG stream, so experiments are reproducible.
pub trait FailureDetector {
    /// A short name for reports (e.g. `"omission(0.15)"`).
    fn name(&self) -> String;

    /// Returns the recorded outcome for a demand whose true outcome is
    /// `truth`.
    fn observe(&mut self, truth: DemandOutcome, rng: &mut StreamRng) -> DemandOutcome;
}

/// The ideal detector: records exactly the truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfectOracle;

impl FailureDetector for PerfectOracle {
    fn name(&self) -> String {
        "perfect".to_owned()
    }

    fn observe(&mut self, truth: DemandOutcome, _rng: &mut StreamRng) -> DemandOutcome {
        truth
    }
}

/// An oracle that *misses* failures: each release's failure is recorded as
/// a success with probability `p_omit`, independently.
///
/// This is the dangerous direction — the inference becomes optimistic and
/// the switch to the new release may happen too early (Section 5.1.1.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmissionOracle {
    p_omit: f64,
}

impl OmissionOracle {
    /// Creates an omission oracle missing each failure with probability
    /// `p_omit`.
    ///
    /// # Panics
    ///
    /// Panics if `p_omit` is outside `[0, 1]`.
    pub fn new(p_omit: f64) -> OmissionOracle {
        assert!(
            (0.0..=1.0).contains(&p_omit),
            "omission probability {p_omit} not in [0, 1]"
        );
        OmissionOracle { p_omit }
    }

    /// The omission probability.
    pub fn p_omit(self) -> f64 {
        self.p_omit
    }

    /// The paper's configuration, `P_omit = 0.15`.
    pub fn paper() -> OmissionOracle {
        OmissionOracle::new(0.15)
    }
}

impl FailureDetector for OmissionOracle {
    fn name(&self) -> String {
        format!("omission({})", self.p_omit)
    }

    fn observe(&mut self, truth: DemandOutcome, rng: &mut StreamRng) -> DemandOutcome {
        let a = truth.a_failed && !rng.bernoulli(self.p_omit);
        let b = truth.b_failed && !rng.bernoulli(self.p_omit);
        DemandOutcome::new(a, b)
    }
}

/// An oracle that raises *false alarms*: a success is recorded as a
/// failure with probability `p_false`, independently per release.
///
/// The paper excludes this from its study because its effect is merely
/// pessimistic (the switch is delayed, never premature); it is included
/// here for the coverage ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FalseAlarmOracle {
    p_false: f64,
}

impl FalseAlarmOracle {
    /// Creates a false-alarm oracle.
    ///
    /// # Panics
    ///
    /// Panics if `p_false` is outside `[0, 1]`.
    pub fn new(p_false: f64) -> FalseAlarmOracle {
        assert!(
            (0.0..=1.0).contains(&p_false),
            "false-alarm probability {p_false} not in [0, 1]"
        );
        FalseAlarmOracle { p_false }
    }

    /// The false-alarm probability.
    pub fn p_false(self) -> f64 {
        self.p_false
    }
}

impl FailureDetector for FalseAlarmOracle {
    fn name(&self) -> String {
        format!("false-alarm({})", self.p_false)
    }

    fn observe(&mut self, truth: DemandOutcome, rng: &mut StreamRng) -> DemandOutcome {
        let a = truth.a_failed || rng.bernoulli(self.p_false);
        let b = truth.b_failed || rng.bernoulli(self.p_false);
        DemandOutcome::new(a, b)
    }
}

/// Applies several detectors in sequence: the observation of one becomes
/// the "truth" seen by the next.
///
/// # Example
///
/// ```
/// use wsu_detect::oracle::{ChainDetector, FailureDetector, OmissionOracle};
/// use wsu_detect::back2back::BackToBackDetector;
/// use wsu_simcore::rng::StreamRng;
///
/// // Back-to-back comparison first, then an imperfect oracle on the rest.
/// let mut chain = ChainDetector::new()
///     .then(BackToBackDetector::pessimistic())
///     .then(OmissionOracle::new(0.1));
/// assert!(chain.name().contains("back-to-back"));
/// ```
#[derive(Default)]
pub struct ChainDetector {
    stages: Vec<Box<dyn FailureDetector>>,
}

impl ChainDetector {
    /// Creates an empty chain (acts as a perfect oracle).
    pub fn new() -> ChainDetector {
        ChainDetector { stages: Vec::new() }
    }

    /// Appends a stage.
    pub fn then(mut self, stage: impl FailureDetector + 'static) -> ChainDetector {
        self.stages.push(Box::new(stage));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl std::fmt::Debug for ChainDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChainDetector({})", self.name())
    }
}

impl FailureDetector for ChainDetector {
    fn name(&self) -> String {
        if self.stages.is_empty() {
            return "identity".to_owned();
        }
        self.stages
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    fn observe(&mut self, truth: DemandOutcome, rng: &mut StreamRng) -> DemandOutcome {
        let mut current = truth;
        for stage in &mut self.stages {
            current = stage.observe(current, rng);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        assert!(DemandOutcome::BOTH_FAILED.is_coincident());
        assert!(!DemandOutcome::BOTH_OK.any_failed());
        assert!(DemandOutcome::new(true, false).any_failed());
        assert!(!DemandOutcome::new(true, false).is_coincident());
    }

    #[test]
    fn perfect_oracle_is_identity() {
        let mut oracle = PerfectOracle;
        let mut rng = StreamRng::from_seed(1);
        for truth in [
            DemandOutcome::BOTH_OK,
            DemandOutcome::BOTH_FAILED,
            DemandOutcome::new(true, false),
            DemandOutcome::new(false, true),
        ] {
            assert_eq!(oracle.observe(truth, &mut rng), truth);
        }
        assert_eq!(oracle.name(), "perfect");
    }

    #[test]
    fn omission_misses_at_configured_rate() {
        let mut oracle = OmissionOracle::new(0.15);
        let mut rng = StreamRng::from_seed(2);
        let n = 100_000;
        let mut missed = 0;
        for _ in 0..n {
            let seen = oracle.observe(DemandOutcome::new(true, false), &mut rng);
            if !seen.a_failed {
                missed += 1;
            }
            // B never failed, so B must never be recorded as failed.
            assert!(!seen.b_failed);
        }
        assert!((missed as f64 / n as f64 - 0.15).abs() < 0.005);
    }

    #[test]
    fn omission_never_invents_failures() {
        let mut oracle = OmissionOracle::new(0.9);
        let mut rng = StreamRng::from_seed(3);
        for _ in 0..1000 {
            assert_eq!(
                oracle.observe(DemandOutcome::BOTH_OK, &mut rng),
                DemandOutcome::BOTH_OK
            );
        }
    }

    #[test]
    fn omission_paper_preset() {
        assert_eq!(OmissionOracle::paper().p_omit(), 0.15);
        assert_eq!(OmissionOracle::paper().name(), "omission(0.15)");
    }

    #[test]
    fn false_alarm_invents_at_configured_rate() {
        let mut oracle = FalseAlarmOracle::new(0.1);
        let mut rng = StreamRng::from_seed(4);
        let n = 100_000;
        let mut alarms = 0;
        for _ in 0..n {
            let seen = oracle.observe(DemandOutcome::BOTH_OK, &mut rng);
            if seen.a_failed {
                alarms += 1;
            }
        }
        assert!((alarms as f64 / n as f64 - 0.1).abs() < 0.005);
        assert_eq!(oracle.p_false(), 0.1);
    }

    #[test]
    fn false_alarm_never_hides_failures() {
        let mut oracle = FalseAlarmOracle::new(0.0);
        let mut rng = StreamRng::from_seed(5);
        assert_eq!(
            oracle.observe(DemandOutcome::BOTH_FAILED, &mut rng),
            DemandOutcome::BOTH_FAILED
        );
    }

    #[test]
    fn chain_composes_in_order() {
        // Omission with p=1 erases everything regardless of later stages.
        let mut chain = ChainDetector::new()
            .then(OmissionOracle::new(1.0))
            .then(FalseAlarmOracle::new(0.0));
        let mut rng = StreamRng::from_seed(6);
        assert_eq!(
            chain.observe(DemandOutcome::BOTH_FAILED, &mut rng),
            DemandOutcome::BOTH_OK
        );
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
        assert_eq!(chain.name(), "omission(1) -> false-alarm(0)");
    }

    #[test]
    fn empty_chain_is_identity() {
        let mut chain = ChainDetector::new();
        let mut rng = StreamRng::from_seed(7);
        assert_eq!(
            chain.observe(DemandOutcome::BOTH_FAILED, &mut rng),
            DemandOutcome::BOTH_FAILED
        );
        assert_eq!(chain.name(), "identity");
        assert!(chain.is_empty());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn omission_rejects_bad_probability() {
        let _ = OmissionOracle::new(1.5);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn false_alarm_rejects_bad_probability() {
        let _ = FalseAlarmOracle::new(-0.1);
    }
}
