//! Detection-coverage audits.
//!
//! [`DetectionAudit`] accumulates a per-release confusion matrix between
//! ground truth and a detector's observations, yielding the empirical
//! miss rate (1 − coverage) and false-alarm rate. The coverage ablation
//! uses it to relate configured to effective coverage.

use crate::oracle::DemandOutcome;

/// Confusion counts for one release.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Failures recorded as failures.
    pub true_positives: u64,
    /// Failures recorded as successes (omissions).
    pub false_negatives: u64,
    /// Successes recorded as failures (false alarms).
    pub false_positives: u64,
    /// Successes recorded as successes.
    pub true_negatives: u64,
}

impl ConfusionCounts {
    /// Empirical detection coverage `TP / (TP + FN)`; `None` if no true
    /// failures were seen.
    pub fn coverage(self) -> Option<f64> {
        let failures = self.true_positives + self.false_negatives;
        if failures == 0 {
            None
        } else {
            Some(self.true_positives as f64 / failures as f64)
        }
    }

    /// Empirical false-alarm rate `FP / (FP + TN)`; `None` if no true
    /// successes were seen.
    pub fn false_alarm_rate(self) -> Option<f64> {
        let successes = self.false_positives + self.true_negatives;
        if successes == 0 {
            None
        } else {
            Some(self.false_positives as f64 / successes as f64)
        }
    }

    fn record(&mut self, truth: bool, seen: bool) {
        match (truth, seen) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }
}

/// A two-release detection audit.
///
/// # Example
///
/// ```
/// use wsu_detect::coverage::DetectionAudit;
/// use wsu_detect::oracle::DemandOutcome;
///
/// let mut audit = DetectionAudit::new();
/// audit.record(
///     DemandOutcome::new(true, false),   // truth: A failed
///     DemandOutcome::new(false, false),  // seen: missed
/// );
/// assert_eq!(audit.release_a().coverage(), Some(0.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionAudit {
    a: ConfusionCounts,
    b: ConfusionCounts,
    demands: u64,
}

impl DetectionAudit {
    /// Creates an empty audit.
    pub fn new() -> DetectionAudit {
        DetectionAudit::default()
    }

    /// Records one demand: the ground truth and what the detector saw.
    pub fn record(&mut self, truth: DemandOutcome, seen: DemandOutcome) {
        self.demands += 1;
        self.a.record(truth.a_failed, seen.a_failed);
        self.b.record(truth.b_failed, seen.b_failed);
    }

    /// Confusion counts for release A.
    pub fn release_a(&self) -> ConfusionCounts {
        self.a
    }

    /// Confusion counts for release B.
    pub fn release_b(&self) -> ConfusionCounts {
        self.b
    }

    /// Demands audited.
    pub fn demands(&self) -> u64 {
        self.demands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FailureDetector, OmissionOracle};
    use wsu_simcore::rng::StreamRng;

    #[test]
    fn confusion_counting() {
        let mut audit = DetectionAudit::new();
        audit.record(
            DemandOutcome::new(true, true),
            DemandOutcome::new(true, false),
        );
        audit.record(
            DemandOutcome::new(false, false),
            DemandOutcome::new(true, false),
        );
        let a = audit.release_a();
        assert_eq!(a.true_positives, 1);
        assert_eq!(a.false_positives, 1);
        let b = audit.release_b();
        assert_eq!(b.false_negatives, 1);
        assert_eq!(b.true_negatives, 1);
        assert_eq!(audit.demands(), 2);
    }

    #[test]
    fn rates_with_no_observations_are_none() {
        let c = ConfusionCounts::default();
        assert_eq!(c.coverage(), None);
        assert_eq!(c.false_alarm_rate(), None);
    }

    #[test]
    fn audit_recovers_omission_rate() {
        let mut oracle = OmissionOracle::new(0.15);
        let mut audit = DetectionAudit::new();
        let mut rng = StreamRng::from_seed(11);
        for i in 0..100_000u32 {
            // A fails on every 10th demand; B on every 7th.
            let truth = DemandOutcome::new(i % 10 == 0, i % 7 == 0);
            let seen = oracle.observe(truth, &mut rng);
            audit.record(truth, seen);
        }
        let cov_a = audit.release_a().coverage().unwrap();
        let cov_b = audit.release_b().coverage().unwrap();
        assert!((cov_a - 0.85).abs() < 0.01, "cov_a {cov_a}");
        assert!((cov_b - 0.85).abs() < 0.01, "cov_b {cov_b}");
        assert_eq!(audit.release_a().false_alarm_rate(), Some(0.0));
    }

    #[test]
    fn zero_demand_audit_has_no_rates() {
        let audit = DetectionAudit::new();
        assert_eq!(audit.demands(), 0);
        for counts in [audit.release_a(), audit.release_b()] {
            assert_eq!(counts.coverage(), None);
            assert_eq!(counts.false_alarm_rate(), None);
            assert_eq!(counts, ConfusionCounts::default());
        }
    }

    #[test]
    fn coverage_is_none_when_release_never_failed() {
        // Demands were audited, but this release's truth was always
        // "success": coverage is undefined, not 0 or 1.
        let mut audit = DetectionAudit::new();
        for _ in 0..10 {
            audit.record(DemandOutcome::BOTH_OK, DemandOutcome::BOTH_OK);
        }
        assert_eq!(audit.demands(), 10);
        assert_eq!(audit.release_a().coverage(), None);
        assert_eq!(audit.release_a().false_alarm_rate(), Some(0.0));
    }

    #[test]
    fn all_false_positive_detector() {
        // Every truth is success, every observation is failure: the
        // false-alarm rate saturates at 1 and coverage stays undefined
        // (there was never a real failure to cover).
        let mut audit = DetectionAudit::new();
        for _ in 0..8 {
            audit.record(DemandOutcome::BOTH_OK, DemandOutcome::BOTH_FAILED);
        }
        for counts in [audit.release_a(), audit.release_b()] {
            assert_eq!(counts.false_positives, 8);
            assert_eq!(counts.true_negatives, 0);
            assert_eq!(counts.false_alarm_rate(), Some(1.0));
            assert_eq!(counts.coverage(), None);
        }
    }

    #[test]
    fn all_failures_leave_false_alarm_rate_undefined() {
        // The mirror case: every truth is failure, so there is no
        // success from which to raise a false alarm.
        let mut audit = DetectionAudit::new();
        audit.record(DemandOutcome::BOTH_FAILED, DemandOutcome::BOTH_OK);
        audit.record(DemandOutcome::BOTH_FAILED, DemandOutcome::BOTH_FAILED);
        for counts in [audit.release_a(), audit.release_b()] {
            assert_eq!(counts.coverage(), Some(0.5));
            assert_eq!(counts.false_alarm_rate(), None);
        }
    }

    #[test]
    fn disagreement_on_both_releases_splits_per_release() {
        // Truth: A failed, B ok. Seen: A ok, B failed — a miss on A and
        // a false alarm on B, in the same demand.
        let mut audit = DetectionAudit::new();
        audit.record(
            DemandOutcome::new(true, false),
            DemandOutcome::new(false, true),
        );
        let a = audit.release_a();
        assert_eq!(
            (
                a.true_positives,
                a.false_negatives,
                a.false_positives,
                a.true_negatives
            ),
            (0, 1, 0, 0)
        );
        let b = audit.release_b();
        assert_eq!(
            (
                b.true_positives,
                b.false_negatives,
                b.false_positives,
                b.true_negatives
            ),
            (0, 0, 1, 0)
        );
        assert_eq!(a.coverage(), Some(0.0));
        assert_eq!(b.false_alarm_rate(), Some(1.0));
    }

    #[test]
    fn perfect_detection_audit() {
        let mut audit = DetectionAudit::new();
        for truth in [DemandOutcome::BOTH_OK, DemandOutcome::BOTH_FAILED] {
            audit.record(truth, truth);
        }
        assert_eq!(audit.release_a().coverage(), Some(1.0));
        assert_eq!(audit.release_a().false_alarm_rate(), Some(0.0));
    }
}
